//! Umbrella crate for the Viyojit reproduction workspace: re-exports the
//! public crates so examples and integration tests have one import root.
pub use battery_sim;
pub use kvstore;
pub use mem_sim;
pub use pheap;
pub use sim_clock;
pub use ssd_sim;
pub use telemetry;
pub use trace_analysis;
pub use viyojit;
pub use workloads;
