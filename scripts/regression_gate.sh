#!/usr/bin/env bash
# Byte-identical regression gate for the virtual-time benches.
#
# The page-state bitmaps (and any future wall-clock optimisation of the
# simulator) must be observationally invisible: same virtual time, same
# victim order, same stats. This script reruns the benches whose
# outputs are committed as goldens and fails on any byte difference.
#
# Regenerate the goldens (only after an *intentional* semantic change):
#   scripts/regression_gate.sh --bless
set -euo pipefail

cd "$(dirname "$0")/.."
golden=results/golden
out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

cargo build --release -p viyojit-bench --bins

# The committed wall-clock artifact must carry the density sweep the
# CI gate compares against: the high-density cells and the uniform-runs
# layout that exercises the 2 MiB huge-page tier. An artifact blessed
# before the density-adaptive dispatch landed lacks them, and the gate
# would silently check nothing — fail loudly instead.
artifact=BENCH_wallclock.json
for needle in '"schema_version": 2' '"layout": "uniform_runs"' '"density": 0.5' \
              '"fault_flush_ns_optimized"' '"epoch_walk_speedup"'; do
    if ! grep -qF "$needle" "$artifact"; then
        echo "gate: $artifact lacks $needle — re-bless with" \
             "'cargo run --release -p viyojit-bench --bin wallclock -- --out $artifact'" >&2
        exit 1
    fi
done
echo "gate: $artifact carries the full density sweep"

./target/release/fault_storm 5 >"$out/fault_storm_5.csv"
./target/release/shard_scaling >"$out/shard_scaling.csv"
./target/release/fig7 >"$out/fig7.csv"
./target/release/tenant_storm 42 --check >"$out/tenant_storm.csv"

if [[ "${1:-}" == "--bless" ]]; then
    cp "$out"/*.csv "$golden"/
    echo "blessed: goldens updated from this run"
    exit 0
fi

status=0
for f in fault_storm_5.csv shard_scaling.csv fig7.csv tenant_storm.csv; do
    if [[ ! -f "$golden/$f" ]]; then
        echo "gate: MISSING golden $golden/$f — run scripts/regression_gate.sh --bless" \
             "after reviewing the new bench output" >&2
        status=1
        continue
    fi
    if cmp -s "$golden/$f" "$out/$f"; then
        echo "gate: $f identical"
    else
        echo "gate: $f DIFFERS from $golden/$f:"
        diff "$golden/$f" "$out/$f" | head -20 || true
        status=1
    fi
done
exit $status
