#!/usr/bin/env bash
# Regenerates every figure and extension experiment into results/.
# All runs are deterministic; see EXPERIMENTS.md for the paper-vs-measured
# comparison of each output.
set -euo pipefail
cd "$(dirname "$0")"
mkdir -p results
for f in fig1 fig2 fig3 fig4 fig5 fig7 fig8 fig9 fig10 ycsb_e \
         ablation_tlb ablation_pressure ablation_mmu ablation_codec \
         ballooning battery_fluctuation shutdown_time trace_replay fs_replay; do
  echo "=== $f ==="
  cargo run --release -p viyojit-bench --bin "$f" > "results/$f.csv"
done
echo "all results regenerated under results/"
