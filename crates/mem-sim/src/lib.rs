//! A software model of the x86-64 memory-management hardware that Viyojit
//! drives: page tables with dirty/write-protect bits, a TLB with realistic
//! staleness semantics, and an MMU that raises write-protection faults.
//!
//! The Viyojit paper (§5) implements dirty-page tracking with three hardware
//! mechanisms, all reproduced here:
//!
//! 1. **Write-protection faults** — writes to a protected page trap to a
//!    software handler *before* the write executes ([`Mmu::write`] returns
//!    [`AccessError::WriteProtected`] without modifying memory; the handler
//!    unprotects and the MMU retries).
//! 2. **PTE dirty bits** — the first write through a TLB entry whose cached
//!    dirty bit is clear sets the PTE dirty bit; later writes through the
//!    same entry do *not* touch the PTE. This is exactly why §5.2's epoch
//!    walker must flush the TLB: clearing a PTE dirty bit without
//!    invalidating the TLB entry makes subsequent updates invisible.
//! 3. **TLB flush costs** — every flush and refill is charged to the shared
//!    virtual [`Clock`](sim_clock::Clock) using the calibrated
//!    [`CostModel`](sim_clock::CostModel).
//!
//! # Examples
//!
//! ```
//! use mem_sim::{AccessError, Mmu, PageId};
//! use sim_clock::{Clock, CostModel};
//!
//! let mut mmu = Mmu::new(16, Clock::new(), CostModel::free());
//! mmu.protect_page(PageId(0));
//! // First write traps, exactly like the hardware WP fault in Fig. 6.
//! assert!(matches!(mmu.write(0, b"hi"), Err(AccessError::WriteProtected(PageId(0)))));
//! mmu.unprotect_page(PageId(0));
//! mmu.write(0, b"hi").unwrap();
//! assert!(mmu.page_table().flags(PageId(0)).is_dirty());
//! ```

pub mod atomic_bitmap;
pub mod bitmap;
pub mod dispatch;
mod mmu;
mod page;
mod page_table;
mod tlb;

pub use atomic_bitmap::AtomicBitmap2L;
pub use bitmap::{Bitmap2L, HugeBitmap, RunClass, ScanPath, RUN_PAGES, RUN_WORDS};
pub use dispatch::DispatchCounts;
pub use mmu::{AccessError, Mmu, MmuStats, WalkOptions, SECTOR_BYTES};
pub use page::{page_count, PageId, PAGE_SIZE};
pub use page_table::{PageTable, PteFlags};
pub use tlb::{Tlb, TlbEntry, TlbStats};
