//! A set-associative TLB model with hardware-faithful dirty-bit caching.
//!
//! The crucial behaviour for Viyojit (§5.2) is that the TLB caches the
//! dirty bit: a write through an entry whose cached dirty bit is already set
//! does **not** update the PTE. Software that clears PTE dirty bits without
//! flushing the TLB will therefore read stale values on the next epoch walk
//! — the exact effect the paper measures in its TLB-flush ablation (§6.3).

use crate::{PageId, PteFlags};

/// One cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// The page this entry translates.
    pub page: PageId,
    /// Cached writable permission.
    pub writable: bool,
    /// Cached dirty status; while set, writes skip the PTE dirty update.
    pub dirty: bool,
    /// Cached §5.4 shadow-dirty status; while set, writes skip the PTE
    /// shadow update. Cleared independently of `dirty` so software can
    /// sample update recency without disturbing the hardware counter.
    pub shadow: bool,
    /// Insertion stamp used for LRU replacement within a set.
    stamp: u64,
}

/// Hit/miss/flush counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that found a valid entry.
    pub hits: u64,
    /// Lookups that required a page-table walk.
    pub misses: u64,
    /// Full flushes.
    pub flushes: u64,
    /// Single-entry invalidations.
    pub invalidations: u64,
}

/// A set-associative TLB.
///
/// # Examples
///
/// ```
/// use mem_sim::{PageId, PteFlags, Tlb};
///
/// let mut tlb = Tlb::new(4, 2);
/// assert!(tlb.lookup(PageId(1)).is_none());
/// tlb.fill(PageId(1), PteFlags::present().with_writable(true));
/// assert!(tlb.lookup(PageId(1)).unwrap().writable);
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    sets: usize,
    ways: usize,
    entries: Vec<Option<TlbEntry>>,
    next_stamp: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with `sets` sets of `ways` entries each.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or either argument is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets.is_power_of_two(),
            "TLB set count must be a power of two"
        );
        assert!(ways > 0, "TLB must have at least one way");
        Tlb {
            sets,
            ways,
            entries: vec![None; sets * ways],
            next_stamp: 0,
            stats: TlbStats::default(),
        }
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Accumulated counters.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    fn set_range(&self, page: PageId) -> std::ops::Range<usize> {
        let set = (page.0 as usize) & (self.sets - 1);
        set * self.ways..(set + 1) * self.ways
    }

    /// Looks up `page`, bumping hit/miss counters. On a hit the entry's LRU
    /// stamp is refreshed and a mutable reference is returned so the MMU can
    /// update the cached dirty bit.
    pub fn lookup(&mut self, page: PageId) -> Option<&mut TlbEntry> {
        let range = self.set_range(page);
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        let slot = self.entries[range.clone()]
            .iter()
            .position(|e| e.is_some_and(|e| e.page == page));
        match slot {
            Some(i) => {
                self.stats.hits += 1;
                let entry = self.entries[range.start + i]
                    .as_mut()
                    .expect("slot checked non-empty");
                entry.stamp = stamp;
                Some(entry)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Checks whether `page` is cached without affecting stats or LRU order.
    pub fn peek(&self, page: PageId) -> Option<TlbEntry> {
        let range = self.set_range(page);
        self.entries[range]
            .iter()
            .flatten()
            .find(|e| e.page == page)
            .copied()
    }

    /// Inserts a translation for `page` from its PTE flags, evicting the
    /// least-recently-used entry in the set if necessary.
    pub fn fill(&mut self, page: PageId, flags: PteFlags) {
        let range = self.set_range(page);
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        let entry = TlbEntry {
            page,
            writable: flags.is_writable(),
            dirty: flags.is_dirty(),
            shadow: flags.is_shadow_dirty(),
            stamp,
        };
        // Prefer an empty way; otherwise evict the LRU way.
        let slots = &mut self.entries[range];
        if let Some(empty) = slots.iter_mut().find(|e| e.is_none()) {
            *empty = Some(entry);
            return;
        }
        let victim = slots
            .iter_mut()
            .min_by_key(|e| e.map(|e| e.stamp).unwrap_or(0))
            .expect("ways > 0");
        *victim = Some(entry);
    }

    /// Invalidates the entry for `page`, if cached. Required after any PTE
    /// permission change (the paper's kernel module does this per page).
    pub fn invalidate(&mut self, page: PageId) {
        self.stats.invalidations += 1;
        let range = self.set_range(page);
        for e in &mut self.entries[range] {
            if e.is_some_and(|e| e.page == page) {
                *e = None;
            }
        }
    }

    /// Flushes every entry (the full shootdown the epoch walker performs).
    pub fn flush(&mut self) {
        self.stats.flushes += 1;
        self.entries.fill(None);
    }

    /// Number of currently valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags_rw() -> PteFlags {
        PteFlags::present().with_writable(true)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut tlb = Tlb::new(8, 2);
        assert!(tlb.lookup(PageId(5)).is_none());
        tlb.fill(PageId(5), flags_rw());
        assert!(tlb.lookup(PageId(5)).is_some());
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest_in_set() {
        // 1 set, 2 ways: pages all map to the same set.
        let mut tlb = Tlb::new(1, 2);
        tlb.fill(PageId(1), flags_rw());
        tlb.fill(PageId(2), flags_rw());
        // Touch page 1 so page 2 becomes LRU.
        assert!(tlb.lookup(PageId(1)).is_some());
        tlb.fill(PageId(3), flags_rw());
        assert!(
            tlb.peek(PageId(1)).is_some(),
            "recently used entry survived"
        );
        assert!(tlb.peek(PageId(2)).is_none(), "LRU entry evicted");
        assert!(tlb.peek(PageId(3)).is_some());
    }

    #[test]
    fn flush_empties_everything() {
        let mut tlb = Tlb::new(4, 2);
        for i in 0..8 {
            tlb.fill(PageId(i), flags_rw());
        }
        assert!(tlb.occupancy() > 0);
        tlb.flush();
        assert_eq!(tlb.occupancy(), 0);
        assert_eq!(tlb.stats().flushes, 1);
    }

    #[test]
    fn invalidate_removes_only_target() {
        let mut tlb = Tlb::new(1, 4);
        for i in 0..3 {
            tlb.fill(PageId(i), flags_rw());
        }
        tlb.invalidate(PageId(1));
        assert!(tlb.peek(PageId(0)).is_some());
        assert!(tlb.peek(PageId(1)).is_none());
        assert!(tlb.peek(PageId(2)).is_some());
    }

    #[test]
    fn cached_dirty_bit_is_mutable_through_lookup() {
        let mut tlb = Tlb::new(2, 1);
        tlb.fill(PageId(0), flags_rw());
        assert!(!tlb.lookup(PageId(0)).unwrap().dirty);
        tlb.lookup(PageId(0)).unwrap().dirty = true;
        assert!(tlb.peek(PageId(0)).unwrap().dirty);
    }

    #[test]
    fn pages_map_to_distinct_sets() {
        let mut tlb = Tlb::new(4, 1);
        // Pages 0..4 map to sets 0..4; all fit despite 1 way per set.
        for i in 0..4 {
            tlb.fill(PageId(i), flags_rw());
        }
        assert_eq!(tlb.occupancy(), 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        let _ = Tlb::new(3, 1);
    }
}
