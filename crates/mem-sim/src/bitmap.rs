//! Bit-packed hierarchical bitmaps for page-state tracking, with
//! density-adaptive scan dispatch and a 2 MiB huge-page summary tier.
//!
//! The simulator's hot loops — the §5.2 epoch walk, the hardware
//! discovery scan, dirty-set iteration — must be O(dirty), not O(DRAM):
//! at the paper's scale (140 GB ≈ 36.7M 4 KB pages) a byte-per-page scan
//! per simulated epoch makes the *simulator* the experiment bottleneck.
//! [`Bitmap2L`] packs one flag per page into `u64` leaf words and keeps a
//! second *summary* level with one bit per non-zero leaf word, so sparse
//! scans skip clean space 64 pages at a time at the leaf level and 4096
//! pages at a time at the summary level.
//!
//! Word-skipping is the wrong plan once most words are non-zero: the
//! summary indirection plus `trailing_zeros`-per-bit extraction loses to
//! a straight-line walk. Every scan primitive therefore *dispatches* on
//! the maintained density ([`Bitmap2L::scan_path`]) between the word-skip
//! path, a straight-line full-word walk, and a 4-wide unrolled walk whose
//! inner loop autovectorizes (no unsafe intrinsics).
//!
//! On top of the leaf words sits a huge-page tier ([`HugeBitmap`]): one
//! maintained popcount per 512-page run (2 MiB at 4 KiB pages). Uniformly
//! clean runs are skipped and uniformly dirty runs are taken wholesale in
//! O(runs), without touching leaf words — the fix for scans over
//! mid/high-density state.
//!
//! # Examples
//!
//! ```
//! use mem_sim::Bitmap2L;
//!
//! let mut b = Bitmap2L::new(10_000);
//! b.set(3);
//! b.set(9_999);
//! assert_eq!(b.count(), 2);
//! assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![3, 9_999]);
//! assert_eq!(b.next_one_from(4), Some(9_999));
//! ```

/// Pages per huge-tier run: 2 MiB at 4 KiB pages.
pub const RUN_PAGES: usize = 512;

/// Leaf words per huge-tier run.
pub const RUN_WORDS: usize = RUN_PAGES / 64;

/// The scan strategy picked per scan from the maintained density.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanPath {
    /// Summary-guided word skipping: O(ones + summary words). Wins when
    /// most leaf words are zero.
    Skip,
    /// Straight-line walk over every leaf word. Wins once enough words
    /// are non-zero that the summary indirection stops paying.
    Dense,
    /// Straight-line walk in 4-word chunks with a combined zero test —
    /// autovectorizable, for scans where most words are non-zero.
    Unrolled,
}

/// Classification of one 512-page run by its maintained popcount.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunClass {
    /// No bit set in the run: skip it without touching leaf words.
    Empty,
    /// Some bits set: the run's leaf words must be walked.
    Mixed,
    /// Every addressable bit in the run is set: take it wholesale.
    Full,
}

/// The 2 MiB huge-page summary tier: one maintained popcount per
/// 512-page run.
///
/// Budget accounting, clean-page mask checks, and emergency obligation
/// collection use [`HugeBitmap::class`] to classify runs in O(runs) —
/// uniformly clean runs are skipped and uniformly dirty runs are taken
/// as whole ranges, so only mixed runs pay a leaf-word walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HugeBitmap {
    /// Number of addressable bits in the owning bitmap.
    len: usize,
    /// Per-run popcounts; values in `0..=RUN_PAGES`.
    pop: Vec<u16>,
}

impl HugeBitmap {
    fn new(len: usize) -> Self {
        HugeBitmap {
            len,
            pop: vec![0; len.div_ceil(RUN_PAGES)],
        }
    }

    fn filled(len: usize) -> Self {
        let mut h = Self::new(len);
        for (r, pop) in h.pop.iter_mut().enumerate() {
            *pop = ((len - r * RUN_PAGES).min(RUN_PAGES)) as u16;
        }
        h
    }

    /// Number of 512-page runs (the last may be partial).
    pub fn runs(&self) -> usize {
        self.pop.len()
    }

    /// Addressable bits in run `r`: `RUN_PAGES`, or fewer for a trailing
    /// partial run.
    ///
    /// # Panics
    ///
    /// Panics if `r` is past the last run.
    #[inline]
    pub fn run_len(&self, r: usize) -> usize {
        assert!(r < self.pop.len(), "run index {r} out of range");
        (self.len - r * RUN_PAGES).min(RUN_PAGES)
    }

    /// Maintained popcount of run `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is past the last run.
    #[inline]
    pub fn run_pop(&self, r: usize) -> usize {
        self.pop[r] as usize
    }

    /// Classifies run `r` from its maintained popcount, in O(1).
    ///
    /// # Panics
    ///
    /// Panics if `r` is past the last run.
    #[inline]
    pub fn class(&self, r: usize) -> RunClass {
        let pop = self.pop[r] as usize;
        if pop == 0 {
            RunClass::Empty
        } else if pop == self.run_len(r) {
            RunClass::Full
        } else {
            RunClass::Mixed
        }
    }

    /// Calls `f(run_index, class)` for every run in ascending order.
    pub fn for_each_run(&self, mut f: impl FnMut(usize, RunClass)) {
        for r in 0..self.pop.len() {
            f(r, self.class(r));
        }
    }

    #[inline]
    fn add(&mut self, i: usize) {
        self.pop[i / RUN_PAGES] += 1;
    }

    #[inline]
    fn sub(&mut self, i: usize) {
        self.pop[i / RUN_PAGES] -= 1;
    }

    #[inline]
    fn sub_word(&mut self, w: usize, bits: u32) {
        self.pop[w / RUN_WORDS] -= bits as u16;
    }
}

/// A fixed-size bitmap with a one-bit-per-word summary level and a
/// per-512-page-run popcount tier.
///
/// All index arguments must be `< len`; out-of-range indices panic, like
/// slice indexing. Mutating operations keep the summary, the run
/// popcounts, and the running total popcount consistent, so
/// [`Bitmap2L::count`] is O(1), every scan primitive can dispatch on
/// density, and run classification never touches leaf words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap2L {
    /// Number of addressable bits.
    len: usize,
    /// Leaf level: bit `i % 64` of `words[i / 64]` is bit `i`.
    words: Vec<u64>,
    /// Summary level: bit `w % 64` of `summary[w / 64]` is set iff
    /// `words[w] != 0`.
    summary: Vec<u64>,
    /// Huge-page tier: per-512-page-run popcounts.
    huge: HugeBitmap,
    /// Running popcount, maintained by `set`/`clear`/`drain_words`.
    ones: usize,
}

impl Bitmap2L {
    /// Creates an all-zero bitmap over `len` bits.
    pub fn new(len: usize) -> Self {
        let n_words = len.div_ceil(64);
        Bitmap2L {
            len,
            words: vec![0; n_words],
            summary: vec![0; n_words.div_ceil(64)],
            huge: HugeBitmap::new(len),
            ones: 0,
        }
    }

    /// Creates an all-ones bitmap over `len` bits.
    pub fn filled(len: usize) -> Self {
        let mut b = Self::new(len);
        for (w, word) in b.words.iter_mut().enumerate() {
            let bits_here = (len - w * 64).min(64);
            *word = if bits_here == 64 {
                !0
            } else {
                (1u64 << bits_here) - 1
            };
        }
        for (s, sword) in b.summary.iter_mut().enumerate() {
            let words_here = (b.words.len() - s * 64).min(64);
            *sword = if words_here == 64 {
                !0
            } else {
                (1u64 << words_here) - 1
            };
        }
        b.huge = HugeBitmap::filled(len);
        b.ones = len;
        b
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the bitmap addresses no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits. O(1): the popcount is maintained incrementally.
    pub fn count(&self) -> usize {
        self.ones
    }

    /// Recomputes the popcount from the leaf words in one pass — the
    /// ground truth `count()` must agree with.
    pub fn recount(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The huge-page summary tier: per-512-page-run popcounts and
    /// classification.
    #[inline]
    pub fn huge(&self) -> &HugeBitmap {
        &self.huge
    }

    /// Picks the scan strategy for the maintained density.
    ///
    /// Thresholds (set-bit density over `len`, measured on the wallclock
    /// harness — see DESIGN.md):
    ///
    /// - below 1/256 (< ~0.4 bits/word): [`ScanPath::Skip`] — most leaf
    ///   words are zero, summary skipping wins;
    /// - below 1/8 (< 8 bits/word): [`ScanPath::Dense`];
    /// - otherwise: [`ScanPath::Unrolled`].
    #[inline]
    pub fn scan_path(&self) -> ScanPath {
        Self::path_for(self.ones, self.len)
    }

    /// The scan strategy for `ones` set bits over `len` — the pure
    /// heuristic behind [`Bitmap2L::scan_path`].
    #[inline]
    pub fn path_for(ones: usize, len: usize) -> ScanPath {
        if ones * 256 < len {
            ScanPath::Skip
        } else if ones * 8 < len {
            ScanPath::Dense
        } else {
            ScanPath::Unrolled
        }
    }

    #[inline]
    fn check_index(&self, i: usize) {
        assert!(
            i < self.len,
            "bit index {i} out of range for bitmap of {} bits",
            self.len
        );
    }

    /// Tests bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn test(&self, i: usize) -> bool {
        self.check_index(i);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Sets bit `i`, returning `true` if it was previously clear.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        self.check_index(i);
        let w = i / 64;
        let mask = 1u64 << (i % 64);
        let word = self.words[w];
        if word & mask != 0 {
            return false;
        }
        self.words[w] = word | mask;
        if word == 0 {
            self.summary[w / 64] |= 1u64 << (w % 64);
        }
        self.huge.add(i);
        self.ones += 1;
        true
    }

    /// Clears bit `i`, returning `true` if it was previously set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn clear(&mut self, i: usize) -> bool {
        self.check_index(i);
        let w = i / 64;
        let mask = 1u64 << (i % 64);
        let word = self.words[w];
        if word & mask == 0 {
            return false;
        }
        let new = word & !mask;
        self.words[w] = new;
        if new == 0 {
            self.summary[w / 64] &= !(1u64 << (w % 64));
        }
        self.huge.sub(i);
        self.ones -= 1;
        true
    }

    /// Clears every bit. O(words).
    pub fn clear_all(&mut self) {
        self.words.fill(0);
        self.summary.fill(0);
        self.huge.pop.fill(0);
        self.ones = 0;
    }

    /// The raw leaf word holding bits `w * 64 .. w * 64 + 64`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is past the last word.
    #[inline]
    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// Number of leaf words.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The position of the first set bit at or after `start`, skipping
    /// clean space word-by-word at the leaf level and 64-words-at-a-time
    /// at the summary level.
    pub fn next_one_from(&self, start: usize) -> Option<usize> {
        if start >= self.len {
            return None;
        }
        let w = start / 64;
        let bits = self.words[w] & (!0u64 << (start % 64));
        if bits != 0 {
            return Some(w * 64 + bits.trailing_zeros() as usize);
        }
        self.next_one_in_word_from(w + 1)
    }

    /// First set bit in any word at or after `from_word`.
    fn next_one_in_word_from(&self, from_word: usize) -> Option<usize> {
        if from_word >= self.words.len() {
            return None;
        }
        let first_s = from_word / 64;
        for s in first_s..self.summary.len() {
            let mut sbits = self.summary[s];
            if s == first_s {
                sbits &= !0u64 << (from_word % 64);
            }
            if sbits != 0 {
                let w = s * 64 + sbits.trailing_zeros() as usize;
                return Some(w * 64 + self.words[w].trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterates the positions of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        let mut next = 0usize;
        std::iter::from_fn(move || {
            let i = self.next_one_from(next)?;
            next = i + 1;
            Some(i)
        })
    }

    /// Iterates set bits within `start..end` in ascending order.
    ///
    /// `end` is clamped to `len`; an inverted range yields nothing.
    pub fn iter_ones_in(&self, start: usize, end: usize) -> impl Iterator<Item = usize> + '_ {
        let end = end.min(self.len);
        let mut next = start;
        std::iter::from_fn(move || {
            if next >= end {
                return None;
            }
            let i = self.next_one_from(next)?;
            if i >= end {
                next = end;
                return None;
            }
            next = i + 1;
            Some(i)
        })
    }

    /// Calls `f(word_index, word)` for every non-zero leaf word in
    /// ascending order, dispatching on density ([`Bitmap2L::scan_path`]).
    /// Bit `b` of the passed word is page `word_index * 64 + b`.
    pub fn for_each_word(&self, f: impl FnMut(usize, u64)) {
        let path = self.scan_path();
        crate::dispatch::record(path);
        self.for_each_word_with(path, f);
    }

    /// [`Bitmap2L::for_each_word`] with the scan path forced — the
    /// equivalence tests use this to exercise each path regardless of
    /// density. All paths visit the same non-zero words in the same
    /// ascending order.
    pub fn for_each_word_with(&self, path: ScanPath, mut f: impl FnMut(usize, u64)) {
        match path {
            ScanPath::Skip => {
                for (s, &sword) in self.summary.iter().enumerate() {
                    let mut sbits = sword;
                    while sbits != 0 {
                        let j = sbits.trailing_zeros() as usize;
                        sbits &= sbits - 1;
                        let w = s * 64 + j;
                        f(w, self.words[w]);
                    }
                }
            }
            ScanPath::Dense => {
                for (w, &word) in self.words.iter().enumerate() {
                    if word != 0 {
                        f(w, word);
                    }
                }
            }
            ScanPath::Unrolled => {
                let words = &self.words;
                let n = words.len();
                let mut w = 0;
                while w + 4 <= n {
                    let (a, b, c, d) = (words[w], words[w + 1], words[w + 2], words[w + 3]);
                    if a | b | c | d != 0 {
                        if a != 0 {
                            f(w, a);
                        }
                        if b != 0 {
                            f(w + 1, b);
                        }
                        if c != 0 {
                            f(w + 2, c);
                        }
                        if d != 0 {
                            f(w + 3, d);
                        }
                    }
                    w += 4;
                }
                while w < n {
                    if words[w] != 0 {
                        f(w, words[w]);
                    }
                    w += 1;
                }
            }
        }
    }

    /// Reads and clears every non-zero leaf word: `f(word_index, word)`
    /// is called with the word's prior value, in ascending order, and the
    /// word (with its summary bit, run popcount, and total-popcount
    /// share) is cleared. The word-granularity analogue of a
    /// read-and-clear epoch walk. Dispatches on density.
    pub fn drain_words(&mut self, f: impl FnMut(usize, u64)) {
        let path = self.scan_path();
        crate::dispatch::record(path);
        self.drain_words_with(path, f);
    }

    /// [`Bitmap2L::drain_words`] with the scan path forced.
    pub fn drain_words_with(&mut self, path: ScanPath, mut f: impl FnMut(usize, u64)) {
        match path {
            ScanPath::Skip => {
                for s in 0..self.summary.len() {
                    let mut sbits = std::mem::take(&mut self.summary[s]);
                    while sbits != 0 {
                        let j = sbits.trailing_zeros() as usize;
                        sbits &= sbits - 1;
                        let w = s * 64 + j;
                        let word = std::mem::take(&mut self.words[w]);
                        let pop = word.count_ones();
                        self.huge.sub_word(w, pop);
                        self.ones -= pop as usize;
                        f(w, word);
                    }
                }
            }
            ScanPath::Dense | ScanPath::Unrolled => {
                // The walk drains everything, so the summary, run
                // popcounts, and total are wiped wholesale afterwards.
                if path == ScanPath::Dense {
                    for w in 0..self.words.len() {
                        let word = self.words[w];
                        if word != 0 {
                            self.words[w] = 0;
                            f(w, word);
                        }
                    }
                } else {
                    let n = self.words.len();
                    let mut w = 0;
                    while w + 4 <= n {
                        let (a, b, c, d) = (
                            self.words[w],
                            self.words[w + 1],
                            self.words[w + 2],
                            self.words[w + 3],
                        );
                        if a | b | c | d != 0 {
                            self.words[w] = 0;
                            self.words[w + 1] = 0;
                            self.words[w + 2] = 0;
                            self.words[w + 3] = 0;
                            if a != 0 {
                                f(w, a);
                            }
                            if b != 0 {
                                f(w + 1, b);
                            }
                            if c != 0 {
                                f(w + 2, c);
                            }
                            if d != 0 {
                                f(w + 3, d);
                            }
                        }
                        w += 4;
                    }
                    while w < n {
                        let word = self.words[w];
                        if word != 0 {
                            self.words[w] = 0;
                            f(w, word);
                        }
                        w += 1;
                    }
                }
                self.summary.fill(0);
                self.huge.pop.fill(0);
                self.ones = 0;
            }
        }
    }

    /// Calls `f(word_index, self_word, other_word)` for every leaf word
    /// that is non-zero in *either* bitmap, in ascending order,
    /// dispatching on the combined density. The two bitmaps must have the
    /// same length. Words zero in both are never visited.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn for_each_word_union(&self, other: &Bitmap2L, f: impl FnMut(usize, u64, u64)) {
        assert_eq!(self.len, other.len, "bitmap lengths differ");
        let path = Self::path_for(self.ones + other.ones, self.len.max(1));
        crate::dispatch::record(path);
        self.for_each_word_union_with(other, path, f);
    }

    /// [`Bitmap2L::for_each_word_union`] with the scan path forced.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn for_each_word_union_with(
        &self,
        other: &Bitmap2L,
        path: ScanPath,
        mut f: impl FnMut(usize, u64, u64),
    ) {
        assert_eq!(self.len, other.len, "bitmap lengths differ");
        match path {
            ScanPath::Skip => {
                for (s, (&sa, &sb)) in self.summary.iter().zip(&other.summary).enumerate() {
                    let mut sbits = sa | sb;
                    while sbits != 0 {
                        let j = sbits.trailing_zeros() as usize;
                        sbits &= sbits - 1;
                        let w = s * 64 + j;
                        f(w, self.words[w], other.words[w]);
                    }
                }
            }
            ScanPath::Dense => {
                for (w, (&wa, &wb)) in self.words.iter().zip(&other.words).enumerate() {
                    if wa | wb != 0 {
                        f(w, wa, wb);
                    }
                }
            }
            ScanPath::Unrolled => {
                let (xs, ys) = (&self.words, &other.words);
                let n = xs.len();
                let mut w = 0;
                while w + 4 <= n {
                    let u0 = xs[w] | ys[w];
                    let u1 = xs[w + 1] | ys[w + 1];
                    let u2 = xs[w + 2] | ys[w + 2];
                    let u3 = xs[w + 3] | ys[w + 3];
                    if u0 | u1 | u2 | u3 != 0 {
                        if u0 != 0 {
                            f(w, xs[w], ys[w]);
                        }
                        if u1 != 0 {
                            f(w + 1, xs[w + 1], ys[w + 1]);
                        }
                        if u2 != 0 {
                            f(w + 2, xs[w + 2], ys[w + 2]);
                        }
                        if u3 != 0 {
                            f(w + 3, xs[w + 3], ys[w + 3]);
                        }
                    }
                    w += 4;
                }
                while w < n {
                    if xs[w] | ys[w] != 0 {
                        f(w, xs[w], ys[w]);
                    }
                    w += 1;
                }
            }
        }
    }

    /// Appends every set bit position, ascending, to `out`. Dispatches on
    /// density; the dense paths additionally consult the huge tier, so
    /// empty runs are skipped and full runs are appended as straight
    /// ranges without touching leaf words.
    pub fn collect_into(&self, out: &mut Vec<usize>) {
        self.collect_into_map(out, |i| i);
    }

    /// [`Bitmap2L::collect_into`] with the scan path forced.
    pub fn collect_into_with(&self, path: ScanPath, out: &mut Vec<usize>) {
        self.collect_into_map_with(path, out, |i| i);
    }

    /// [`Bitmap2L::collect_into`] with each position mapped through `f`,
    /// so called collections of typed IDs need no second pass.
    pub fn collect_into_map<T>(&self, out: &mut Vec<T>, f: impl Fn(usize) -> T + Copy) {
        let path = self.scan_path();
        crate::dispatch::record(path);
        self.collect_into_map_with(path, out, f);
    }

    /// [`Bitmap2L::collect_into_map`] with the scan path forced.
    pub fn collect_into_map_with<T>(
        &self,
        path: ScanPath,
        out: &mut Vec<T>,
        f: impl Fn(usize) -> T + Copy,
    ) {
        out.reserve(self.ones);
        match path {
            ScanPath::Skip => {
                self.for_each_word_with(ScanPath::Skip, |w, bits| {
                    extend_from_word(out, w, bits, f)
                });
            }
            ScanPath::Dense | ScanPath::Unrolled => {
                for r in 0..self.huge.runs() {
                    match self.huge.class(r) {
                        RunClass::Empty => {}
                        RunClass::Full => {
                            let base = r * RUN_PAGES;
                            out.extend((base..base + self.huge.run_len(r)).map(f));
                        }
                        RunClass::Mixed => {
                            let w0 = r * RUN_WORDS;
                            let w1 = (w0 + RUN_WORDS).min(self.words.len());
                            if path == ScanPath::Dense {
                                for w in w0..w1 {
                                    extend_from_word(out, w, self.words[w], f);
                                }
                            } else {
                                let mut w = w0;
                                while w + 4 <= w1 {
                                    let (a, b, c, d) = (
                                        self.words[w],
                                        self.words[w + 1],
                                        self.words[w + 2],
                                        self.words[w + 3],
                                    );
                                    if a | b | c | d != 0 {
                                        extend_from_word(out, w, a, f);
                                        extend_from_word(out, w + 1, b, f);
                                        extend_from_word(out, w + 2, c, f);
                                        extend_from_word(out, w + 3, d, f);
                                    }
                                    w += 4;
                                }
                                while w < w1 {
                                    extend_from_word(out, w, self.words[w], f);
                                    w += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Appends every set bit in `start..end`, ascending, to `out`.
    /// `end` is clamped to `len`. Runs entirely inside the range are
    /// classified through the huge tier (skipped when empty, appended as
    /// ranges when full); only mixed runs and partial edge words pay a
    /// leaf-word walk. Bit order matches `iter_ones_in` exactly.
    pub fn collect_range_into(&self, start: usize, end: usize, out: &mut Vec<usize>) {
        self.collect_range_into_map(start, end, out, |i| i);
    }

    /// [`Bitmap2L::collect_range_into`] with each position mapped
    /// through `f`.
    pub fn collect_range_into_map<T>(
        &self,
        start: usize,
        end: usize,
        out: &mut Vec<T>,
        f: impl Fn(usize) -> T + Copy,
    ) {
        let end = end.min(self.len);
        if start >= end {
            return;
        }
        crate::dispatch::record(self.scan_path());
        let first_w = start / 64;
        let last_w = (end - 1) / 64;
        let mut w = first_w;
        while w <= last_w {
            // A run-aligned word starting a run wholly inside [start, end)
            // can be classified through the huge tier.
            if w % RUN_WORDS == 0 && w * 64 >= start && (w + RUN_WORDS) * 64 <= end {
                let r = w / RUN_WORDS;
                match self.huge.class(r) {
                    RunClass::Empty => {
                        w += RUN_WORDS;
                        continue;
                    }
                    RunClass::Full => {
                        let base = r * RUN_PAGES;
                        out.extend((base..base + RUN_PAGES).map(f));
                        w += RUN_WORDS;
                        continue;
                    }
                    RunClass::Mixed => {}
                }
            }
            let mut bits = self.words[w];
            if w == first_w {
                bits &= !0u64 << (start % 64);
            }
            if w == last_w && end % 64 != 0 {
                bits &= (1u64 << (end % 64)) - 1;
            }
            extend_from_word(out, w, bits, f);
            w += 1;
        }
    }

    /// Iterates, in ascending order, the positions set in `self` *or*
    /// `other`. Both bitmaps must have the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn iter_ones_union<'a>(&'a self, other: &'a Bitmap2L) -> impl Iterator<Item = usize> + 'a {
        assert_eq!(self.len, other.len, "bitmap lengths differ");
        let mut pending: u64 = 0;
        let mut base = 0usize;
        let mut next_word = 0usize;
        std::iter::from_fn(move || loop {
            if pending != 0 {
                let b = pending.trailing_zeros() as usize;
                pending &= pending - 1;
                return Some(base + b);
            }
            // Find the next word non-zero in either bitmap via the
            // summaries.
            let w = loop {
                if next_word >= self.words.len() {
                    return None;
                }
                let s = next_word / 64;
                let sbits = (self.summary[s] | other.summary[s]) & (!0u64 << (next_word % 64));
                if sbits != 0 {
                    break s * 64 + sbits.trailing_zeros() as usize;
                }
                next_word = (s + 1) * 64;
            };
            pending = self.words[w] | other.words[w];
            base = w * 64;
            next_word = w + 1;
        })
    }

    /// Verifies internal consistency: the summary mirrors the leaf words,
    /// the run popcounts mirror per-run recounts, and the maintained
    /// popcount matches a recount.
    ///
    /// # Errors
    ///
    /// A static description of the first inconsistency found.
    pub fn check_consistency(&self) -> Result<(), &'static str> {
        for (w, &word) in self.words.iter().enumerate() {
            let summarized = self.summary[w / 64] & (1u64 << (w % 64)) != 0;
            if summarized != (word != 0) {
                return Err("summary bit out of sync with leaf word");
            }
        }
        for r in 0..self.huge.runs() {
            let w0 = r * RUN_WORDS;
            let w1 = (w0 + RUN_WORDS).min(self.words.len());
            let pop: usize = self.words[w0..w1]
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum();
            if pop != self.huge.run_pop(r) {
                return Err("run popcount out of sync with leaf words");
            }
        }
        if self.recount() != self.ones {
            return Err("maintained popcount out of sync with leaf words");
        }
        Ok(())
    }
}

/// Appends the set bit positions of `bits` (word `w`), mapped through
/// `f`, to `out` in ascending order. All-ones words append a straight
/// range — the big win for dense scans, where `trailing_zeros`-per-bit
/// extraction is the bottleneck.
#[inline]
pub fn extend_from_word<T>(out: &mut Vec<T>, w: usize, mut bits: u64, f: impl Fn(usize) -> T) {
    let base = w * 64;
    if bits == !0u64 {
        out.extend((base..base + 64).map(f));
        return;
    }
    while bits != 0 {
        let b = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        out.push(f(base + b));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_PATHS: [ScanPath; 3] = [ScanPath::Skip, ScanPath::Dense, ScanPath::Unrolled];

    #[test]
    fn empty_bitmap_has_nothing() {
        let b = Bitmap2L::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count(), 0);
        assert_eq!(b.next_one_from(0), None);
        assert_eq!(b.iter_ones().count(), 0);
        assert_eq!(b.huge().runs(), 0);
        b.check_consistency().unwrap();
    }

    #[test]
    fn single_bit_round_trips() {
        let mut b = Bitmap2L::new(100);
        assert!(b.set(37));
        assert!(!b.set(37), "second set reports no change");
        assert!(b.test(37));
        assert_eq!(b.count(), 1);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![37]);
        assert!(b.clear(37));
        assert!(!b.clear(37), "second clear reports no change");
        assert_eq!(b.count(), 0);
        b.check_consistency().unwrap();
    }

    #[test]
    fn word_boundaries_63_64_65() {
        let mut b = Bitmap2L::new(130);
        for i in [63usize, 64, 65] {
            b.set(i);
        }
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![63, 64, 65]);
        assert_eq!(b.next_one_from(0), Some(63));
        assert_eq!(b.next_one_from(64), Some(64));
        assert_eq!(b.next_one_from(66), None);
        b.clear(64);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![63, 65]);
        assert_eq!(b.next_one_from(64), Some(65));
        b.check_consistency().unwrap();
    }

    /// Satellite: huge-tier analogue of `word_boundaries_63_64_65` — bits
    /// at the 511/512/513 run boundary land in the right runs and the run
    /// popcounts track set/clear exactly.
    #[test]
    fn run_boundaries_511_512_513() {
        let mut b = Bitmap2L::new(3 * RUN_PAGES);
        for i in [511usize, 512, 513] {
            b.set(i);
        }
        assert_eq!(b.huge().runs(), 3);
        assert_eq!(b.huge().run_pop(0), 1, "bit 511 is the last of run 0");
        assert_eq!(b.huge().run_pop(1), 2, "bits 512 and 513 open run 1");
        assert_eq!(b.huge().run_pop(2), 0);
        assert_eq!(b.huge().class(0), RunClass::Mixed);
        assert_eq!(b.huge().class(2), RunClass::Empty);
        b.clear(512);
        assert_eq!(b.huge().run_pop(1), 1);
        b.clear(511);
        assert_eq!(b.huge().run_pop(0), 0);
        assert_eq!(b.huge().class(0), RunClass::Empty);
        b.check_consistency().unwrap();
        let mut collected = Vec::new();
        b.collect_into(&mut collected);
        assert_eq!(collected, vec![513]);
    }

    /// Satellite: a trailing partial run classifies as Full at its
    /// *partial* length, never at 512.
    #[test]
    fn partial_trailing_run_classifies_at_its_own_length() {
        // 513 bits: run 0 is full-length, run 1 holds a single bit.
        let mut b = Bitmap2L::new(RUN_PAGES + 1);
        assert_eq!(b.huge().runs(), 2);
        assert_eq!(b.huge().run_len(0), RUN_PAGES);
        assert_eq!(b.huge().run_len(1), 1);
        b.set(RUN_PAGES);
        assert_eq!(b.huge().class(1), RunClass::Full, "1/1 bits set");
        assert_eq!(b.huge().class(0), RunClass::Empty);
        // A 511-bit bitmap is a single partial run.
        let full = Bitmap2L::filled(RUN_PAGES - 1);
        assert_eq!(full.huge().runs(), 1);
        assert_eq!(full.huge().run_len(0), RUN_PAGES - 1);
        assert_eq!(full.huge().class(0), RunClass::Full);
        full.check_consistency().unwrap();
        // Collection through the huge tier honours the partial length.
        let mut collected = Vec::new();
        full.collect_into_with(ScanPath::Unrolled, &mut collected);
        assert_eq!(collected, (0..RUN_PAGES - 1).collect::<Vec<_>>());
    }

    /// Satellite: filled() and drain/clear keep the run tier consistent
    /// across whole-run and partial-run edges.
    #[test]
    fn run_tier_tracks_fill_drain_and_clear_all() {
        let mut b = Bitmap2L::filled(2 * RUN_PAGES + 100);
        assert_eq!(b.huge().runs(), 3);
        for r in 0..3 {
            assert_eq!(b.huge().class(r), RunClass::Full);
        }
        let mut seen_pop = 0usize;
        b.drain_words(|_, bits| seen_pop += bits.count_ones() as usize);
        assert_eq!(seen_pop, 2 * RUN_PAGES + 100);
        for r in 0..3 {
            assert_eq!(b.huge().class(r), RunClass::Empty);
        }
        b.check_consistency().unwrap();
        let mut c = Bitmap2L::filled(RUN_PAGES + 7);
        c.clear_all();
        assert_eq!(c.huge().run_pop(0), 0);
        assert_eq!(c.huge().run_pop(1), 0);
        c.check_consistency().unwrap();
    }

    #[test]
    fn for_each_run_reports_classes_in_order() {
        let mut b = Bitmap2L::new(3 * RUN_PAGES);
        for i in 0..RUN_PAGES {
            b.set(RUN_PAGES + i);
        }
        b.set(2 * RUN_PAGES + 9);
        let mut seen = Vec::new();
        b.huge().for_each_run(|r, class| seen.push((r, class)));
        assert_eq!(
            seen,
            vec![
                (0, RunClass::Empty),
                (1, RunClass::Full),
                (2, RunClass::Mixed)
            ]
        );
    }

    #[test]
    fn last_partial_word_is_addressable() {
        let mut b = Bitmap2L::new(65);
        b.set(64);
        assert_eq!(b.count(), 1);
        assert_eq!(b.next_one_from(0), Some(64));
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![64]);
        b.check_consistency().unwrap();
    }

    #[test]
    fn filled_bitmap_is_full() {
        let b = Bitmap2L::filled(130);
        assert_eq!(b.count(), 130);
        assert_eq!(b.recount(), 130);
        assert!(b.test(0) && b.test(129));
        assert_eq!(b.iter_ones().count(), 130);
        b.check_consistency().unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_test_panics() {
        let b = Bitmap2L::new(65);
        b.test(65);
    }

    #[test]
    fn summary_skips_across_many_clean_words() {
        // One bit far past a sea of zero words: next_one_from must find it
        // through the summary level, and the summary must clear with it.
        let mut b = Bitmap2L::new(1 << 20);
        b.set((1 << 20) - 1);
        assert_eq!(b.next_one_from(0), Some((1 << 20) - 1));
        b.clear((1 << 20) - 1);
        assert_eq!(b.next_one_from(0), None);
        b.check_consistency().unwrap();
    }

    #[test]
    fn iter_ones_in_respects_bounds() {
        let mut b = Bitmap2L::new(256);
        for i in [0usize, 63, 64, 127, 128, 255] {
            b.set(i);
        }
        assert_eq!(
            b.iter_ones_in(1, 128).collect::<Vec<_>>(),
            vec![63, 64, 127]
        );
        assert_eq!(
            b.iter_ones_in(128, 1000).collect::<Vec<_>>(),
            vec![128, 255]
        );
        assert_eq!(b.iter_ones_in(10, 10).count(), 0);
    }

    #[test]
    fn for_each_word_visits_only_nonzero_words_on_every_path() {
        let mut b = Bitmap2L::new(64 * 100);
        b.set(64 * 3 + 5);
        b.set(64 * 97);
        for path in ALL_PATHS {
            let mut seen = Vec::new();
            b.for_each_word_with(path, |w, bits| seen.push((w, bits)));
            assert_eq!(seen, vec![(3, 1 << 5), (97, 1)], "path {path:?}");
        }
    }

    #[test]
    fn drain_words_clears_and_reports_on_every_path() {
        for path in ALL_PATHS {
            let mut b = Bitmap2L::new(200);
            b.set(1);
            b.set(65);
            b.set(66);
            let mut seen = Vec::new();
            b.drain_words_with(path, |w, bits| seen.push((w, bits)));
            assert_eq!(seen, vec![(0, 2), (1, 0b110)], "path {path:?}");
            assert_eq!(b.count(), 0);
            assert_eq!(b.next_one_from(0), None);
            b.check_consistency().unwrap();
        }
    }

    #[test]
    fn union_iteration_merges_in_order() {
        let mut a = Bitmap2L::new(300);
        let mut b = Bitmap2L::new(300);
        a.set(2);
        b.set(70);
        a.set(131);
        b.set(131);
        b.set(299);
        assert_eq!(
            a.iter_ones_union(&b).collect::<Vec<_>>(),
            vec![2, 70, 131, 299]
        );
        for path in ALL_PATHS {
            let mut words = Vec::new();
            a.for_each_word_union_with(&b, path, |w, wa, wb| words.push((w, wa, wb)));
            assert_eq!(words.len(), 4, "words 0, 1, 2, 4 on path {path:?}");
            assert_eq!(words[0], (0, 1 << 2, 0));
        }
    }

    #[test]
    fn collect_matches_iter_on_every_path() {
        let mut b = Bitmap2L::new(4 * RUN_PAGES + 77);
        // Empty run 0, full run 1, mixed runs 2-3, partial tail.
        for i in RUN_PAGES..2 * RUN_PAGES {
            b.set(i);
        }
        for i in (2 * RUN_PAGES..3 * RUN_PAGES).step_by(7) {
            b.set(i);
        }
        b.set(4 * RUN_PAGES + 76);
        let want: Vec<usize> = b.iter_ones().collect();
        for path in ALL_PATHS {
            let mut got = Vec::new();
            b.collect_into_with(path, &mut got);
            assert_eq!(got, want, "path {path:?}");
        }
    }

    #[test]
    fn collect_range_matches_iter_ones_in() {
        let mut b = Bitmap2L::new(4 * RUN_PAGES);
        for i in RUN_PAGES..2 * RUN_PAGES {
            b.set(i);
        }
        for i in (0..4 * RUN_PAGES).step_by(131) {
            b.set(i);
        }
        for (start, end) in [
            (0, 4 * RUN_PAGES),
            (1, 4 * RUN_PAGES - 1),
            (RUN_PAGES, 2 * RUN_PAGES),
            (RUN_PAGES - 1, 2 * RUN_PAGES + 1),
            (RUN_PAGES + 63, RUN_PAGES + 65),
            (100, 100),
            (513, 511),
            (0, usize::MAX),
        ] {
            let want: Vec<usize> = b.iter_ones_in(start, end).collect();
            let mut got = Vec::new();
            b.collect_range_into(start, end, &mut got);
            assert_eq!(got, want, "range {start}..{end}");
        }
    }

    #[test]
    fn scan_path_tracks_density() {
        let mut b = Bitmap2L::new(1 << 16);
        assert_eq!(b.scan_path(), ScanPath::Skip);
        for i in 0..(1 << 16) / 128 {
            b.set(i * 128);
        }
        assert_eq!(b.scan_path(), ScanPath::Dense, "1/128 density");
        for i in 0..(1 << 16) / 4 {
            b.set(i * 4 + 1);
        }
        assert_eq!(b.scan_path(), ScanPath::Unrolled, "over 1/8 density");
    }

    #[test]
    fn clear_all_resets_everything() {
        let mut b = Bitmap2L::filled(100);
        b.clear_all();
        assert_eq!(b.count(), 0);
        assert_eq!(b.next_one_from(0), None);
        b.check_consistency().unwrap();
    }
}
