//! Bit-packed two-level hierarchical bitmaps for page-state tracking.
//!
//! The simulator's hot loops — the §5.2 epoch walk, the hardware
//! discovery scan, dirty-set iteration — must be O(dirty), not O(DRAM):
//! at the paper's scale (140 GB ≈ 36.7M 4 KB pages) a byte-per-page scan
//! per simulated epoch makes the *simulator* the experiment bottleneck.
//! [`Bitmap2L`] packs one flag per page into `u64` leaf words and keeps a
//! second *summary* level with one bit per non-zero leaf word, so scans
//! skip clean space 64 pages at a time at the leaf level and 4096 pages
//! at a time at the summary level.
//!
//! # Examples
//!
//! ```
//! use mem_sim::Bitmap2L;
//!
//! let mut b = Bitmap2L::new(10_000);
//! b.set(3);
//! b.set(9_999);
//! assert_eq!(b.count(), 2);
//! assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![3, 9_999]);
//! assert_eq!(b.next_one_from(4), Some(9_999));
//! ```

/// A fixed-size bitmap with a one-bit-per-word summary level.
///
/// All index arguments must be `< len`; out-of-range indices panic, like
/// slice indexing. Mutating operations keep the summary and the running
/// popcount consistent, so [`Bitmap2L::count`] is O(1) and every scan
/// primitive skips zero words without touching them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap2L {
    /// Number of addressable bits.
    len: usize,
    /// Leaf level: bit `i % 64` of `words[i / 64]` is bit `i`.
    words: Vec<u64>,
    /// Summary level: bit `w % 64` of `summary[w / 64]` is set iff
    /// `words[w] != 0`.
    summary: Vec<u64>,
    /// Running popcount, maintained by `set`/`clear`/`drain_words`.
    ones: usize,
}

impl Bitmap2L {
    /// Creates an all-zero bitmap over `len` bits.
    pub fn new(len: usize) -> Self {
        let n_words = len.div_ceil(64);
        Bitmap2L {
            len,
            words: vec![0; n_words],
            summary: vec![0; n_words.div_ceil(64)],
            ones: 0,
        }
    }

    /// Creates an all-ones bitmap over `len` bits.
    pub fn filled(len: usize) -> Self {
        let mut b = Self::new(len);
        for (w, word) in b.words.iter_mut().enumerate() {
            let bits_here = (len - w * 64).min(64);
            *word = if bits_here == 64 {
                !0
            } else {
                (1u64 << bits_here) - 1
            };
        }
        for (s, sword) in b.summary.iter_mut().enumerate() {
            let words_here = (b.words.len() - s * 64).min(64);
            *sword = if words_here == 64 {
                !0
            } else {
                (1u64 << words_here) - 1
            };
        }
        b.ones = len;
        b
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the bitmap addresses no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits. O(1): the popcount is maintained incrementally.
    pub fn count(&self) -> usize {
        self.ones
    }

    /// Recomputes the popcount from the leaf words in one pass — the
    /// ground truth `count()` must agree with.
    pub fn recount(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    #[inline]
    fn check_index(&self, i: usize) {
        assert!(
            i < self.len,
            "bit index {i} out of range for bitmap of {} bits",
            self.len
        );
    }

    /// Tests bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn test(&self, i: usize) -> bool {
        self.check_index(i);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Sets bit `i`, returning `true` if it was previously clear.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        self.check_index(i);
        let w = i / 64;
        let mask = 1u64 << (i % 64);
        if self.words[w] & mask != 0 {
            return false;
        }
        self.words[w] |= mask;
        self.summary[w / 64] |= 1u64 << (w % 64);
        self.ones += 1;
        true
    }

    /// Clears bit `i`, returning `true` if it was previously set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn clear(&mut self, i: usize) -> bool {
        self.check_index(i);
        let w = i / 64;
        let mask = 1u64 << (i % 64);
        if self.words[w] & mask == 0 {
            return false;
        }
        self.words[w] &= !mask;
        if self.words[w] == 0 {
            self.summary[w / 64] &= !(1u64 << (w % 64));
        }
        self.ones -= 1;
        true
    }

    /// Clears every bit. O(words).
    pub fn clear_all(&mut self) {
        self.words.fill(0);
        self.summary.fill(0);
        self.ones = 0;
    }

    /// The raw leaf word holding bits `w * 64 .. w * 64 + 64`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is past the last word.
    #[inline]
    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// Number of leaf words.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The position of the first set bit at or after `start`, skipping
    /// clean space word-by-word at the leaf level and 64-words-at-a-time
    /// at the summary level.
    pub fn next_one_from(&self, start: usize) -> Option<usize> {
        if start >= self.len {
            return None;
        }
        let w = start / 64;
        let bits = self.words[w] & (!0u64 << (start % 64));
        if bits != 0 {
            return Some(w * 64 + bits.trailing_zeros() as usize);
        }
        self.next_one_in_word_from(w + 1)
    }

    /// First set bit in any word at or after `from_word`.
    fn next_one_in_word_from(&self, from_word: usize) -> Option<usize> {
        if from_word >= self.words.len() {
            return None;
        }
        let first_s = from_word / 64;
        for s in first_s..self.summary.len() {
            let mut sbits = self.summary[s];
            if s == first_s {
                sbits &= !0u64 << (from_word % 64);
            }
            if sbits != 0 {
                let w = s * 64 + sbits.trailing_zeros() as usize;
                return Some(w * 64 + self.words[w].trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterates the positions of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        let mut next = 0usize;
        std::iter::from_fn(move || {
            let i = self.next_one_from(next)?;
            next = i + 1;
            Some(i)
        })
    }

    /// Iterates set bits within `start..end` in ascending order.
    ///
    /// `end` is clamped to `len`; an inverted range yields nothing.
    pub fn iter_ones_in(&self, start: usize, end: usize) -> impl Iterator<Item = usize> + '_ {
        let end = end.min(self.len);
        let mut next = start;
        std::iter::from_fn(move || {
            if next >= end {
                return None;
            }
            let i = self.next_one_from(next)?;
            if i >= end {
                next = end;
                return None;
            }
            next = i + 1;
            Some(i)
        })
    }

    /// Calls `f(word_index, word)` for every non-zero leaf word in
    /// ascending order, located through the summary level with
    /// `trailing_zeros`. Bit `b` of the passed word is page
    /// `word_index * 64 + b`.
    pub fn for_each_word(&self, mut f: impl FnMut(usize, u64)) {
        for (s, &sword) in self.summary.iter().enumerate() {
            let mut sbits = sword;
            while sbits != 0 {
                let j = sbits.trailing_zeros() as usize;
                sbits &= sbits - 1;
                let w = s * 64 + j;
                f(w, self.words[w]);
            }
        }
    }

    /// Reads and clears every non-zero leaf word: `f(word_index, word)`
    /// is called with the word's prior value, in ascending order, and the
    /// word (with its summary bit and popcount share) is cleared. The
    /// word-granularity analogue of a read-and-clear epoch walk.
    pub fn drain_words(&mut self, mut f: impl FnMut(usize, u64)) {
        for s in 0..self.summary.len() {
            let mut sbits = std::mem::take(&mut self.summary[s]);
            while sbits != 0 {
                let j = sbits.trailing_zeros() as usize;
                sbits &= sbits - 1;
                let w = s * 64 + j;
                let word = std::mem::take(&mut self.words[w]);
                self.ones -= word.count_ones() as usize;
                f(w, word);
            }
        }
    }

    /// Calls `f(word_index, self_word, other_word)` for every leaf word
    /// that is non-zero in *either* bitmap, in ascending order. The two
    /// bitmaps must have the same length. Words zero in both are never
    /// visited, so comparing two sparse bitmaps is O(ones), not O(len).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn for_each_word_union(&self, other: &Bitmap2L, mut f: impl FnMut(usize, u64, u64)) {
        assert_eq!(self.len, other.len, "bitmap lengths differ");
        for (s, (&sa, &sb)) in self.summary.iter().zip(&other.summary).enumerate() {
            let mut sbits = sa | sb;
            while sbits != 0 {
                let j = sbits.trailing_zeros() as usize;
                sbits &= sbits - 1;
                let w = s * 64 + j;
                f(w, self.words[w], other.words[w]);
            }
        }
    }

    /// Iterates, in ascending order, the positions set in `self` *or*
    /// `other`. Both bitmaps must have the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn iter_ones_union<'a>(&'a self, other: &'a Bitmap2L) -> impl Iterator<Item = usize> + 'a {
        assert_eq!(self.len, other.len, "bitmap lengths differ");
        let mut pending: u64 = 0;
        let mut base = 0usize;
        let mut next_word = 0usize;
        std::iter::from_fn(move || loop {
            if pending != 0 {
                let b = pending.trailing_zeros() as usize;
                pending &= pending - 1;
                return Some(base + b);
            }
            // Find the next word non-zero in either bitmap via the
            // summaries.
            let w = loop {
                if next_word >= self.words.len() {
                    return None;
                }
                let s = next_word / 64;
                let sbits = (self.summary[s] | other.summary[s]) & (!0u64 << (next_word % 64));
                if sbits != 0 {
                    break s * 64 + sbits.trailing_zeros() as usize;
                }
                next_word = (s + 1) * 64;
            };
            pending = self.words[w] | other.words[w];
            base = w * 64;
            next_word = w + 1;
        })
    }

    /// Verifies internal consistency: the summary mirrors the leaf words
    /// and the maintained popcount matches a recount.
    ///
    /// # Errors
    ///
    /// A static description of the first inconsistency found.
    pub fn check_consistency(&self) -> Result<(), &'static str> {
        for (w, &word) in self.words.iter().enumerate() {
            let summarized = self.summary[w / 64] & (1u64 << (w % 64)) != 0;
            if summarized != (word != 0) {
                return Err("summary bit out of sync with leaf word");
            }
        }
        if self.recount() != self.ones {
            return Err("maintained popcount out of sync with leaf words");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bitmap_has_nothing() {
        let b = Bitmap2L::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count(), 0);
        assert_eq!(b.next_one_from(0), None);
        assert_eq!(b.iter_ones().count(), 0);
        b.check_consistency().unwrap();
    }

    #[test]
    fn single_bit_round_trips() {
        let mut b = Bitmap2L::new(100);
        assert!(b.set(37));
        assert!(!b.set(37), "second set reports no change");
        assert!(b.test(37));
        assert_eq!(b.count(), 1);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![37]);
        assert!(b.clear(37));
        assert!(!b.clear(37), "second clear reports no change");
        assert_eq!(b.count(), 0);
        b.check_consistency().unwrap();
    }

    #[test]
    fn word_boundaries_63_64_65() {
        let mut b = Bitmap2L::new(130);
        for i in [63usize, 64, 65] {
            b.set(i);
        }
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![63, 64, 65]);
        assert_eq!(b.next_one_from(0), Some(63));
        assert_eq!(b.next_one_from(64), Some(64));
        assert_eq!(b.next_one_from(66), None);
        b.clear(64);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![63, 65]);
        assert_eq!(b.next_one_from(64), Some(65));
        b.check_consistency().unwrap();
    }

    #[test]
    fn last_partial_word_is_addressable() {
        let mut b = Bitmap2L::new(65);
        b.set(64);
        assert_eq!(b.count(), 1);
        assert_eq!(b.next_one_from(0), Some(64));
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![64]);
        b.check_consistency().unwrap();
    }

    #[test]
    fn filled_bitmap_is_full() {
        let b = Bitmap2L::filled(130);
        assert_eq!(b.count(), 130);
        assert_eq!(b.recount(), 130);
        assert!(b.test(0) && b.test(129));
        assert_eq!(b.iter_ones().count(), 130);
        b.check_consistency().unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_test_panics() {
        let b = Bitmap2L::new(65);
        b.test(65);
    }

    #[test]
    fn summary_skips_across_many_clean_words() {
        // One bit far past a sea of zero words: next_one_from must find it
        // through the summary level, and the summary must clear with it.
        let mut b = Bitmap2L::new(1 << 20);
        b.set((1 << 20) - 1);
        assert_eq!(b.next_one_from(0), Some((1 << 20) - 1));
        b.clear((1 << 20) - 1);
        assert_eq!(b.next_one_from(0), None);
        b.check_consistency().unwrap();
    }

    #[test]
    fn iter_ones_in_respects_bounds() {
        let mut b = Bitmap2L::new(256);
        for i in [0usize, 63, 64, 127, 128, 255] {
            b.set(i);
        }
        assert_eq!(
            b.iter_ones_in(1, 128).collect::<Vec<_>>(),
            vec![63, 64, 127]
        );
        assert_eq!(
            b.iter_ones_in(128, 1000).collect::<Vec<_>>(),
            vec![128, 255]
        );
        assert_eq!(b.iter_ones_in(10, 10).count(), 0);
    }

    #[test]
    fn for_each_word_visits_only_nonzero_words() {
        let mut b = Bitmap2L::new(64 * 100);
        b.set(64 * 3 + 5);
        b.set(64 * 97);
        let mut seen = Vec::new();
        b.for_each_word(|w, bits| seen.push((w, bits)));
        assert_eq!(seen, vec![(3, 1 << 5), (97, 1)]);
    }

    #[test]
    fn drain_words_clears_and_reports() {
        let mut b = Bitmap2L::new(200);
        b.set(1);
        b.set(65);
        b.set(66);
        let mut seen = Vec::new();
        b.drain_words(|w, bits| seen.push((w, bits)));
        assert_eq!(seen, vec![(0, 2), (1, 0b110)]);
        assert_eq!(b.count(), 0);
        assert_eq!(b.next_one_from(0), None);
        b.check_consistency().unwrap();
    }

    #[test]
    fn union_iteration_merges_in_order() {
        let mut a = Bitmap2L::new(300);
        let mut b = Bitmap2L::new(300);
        a.set(2);
        b.set(70);
        a.set(131);
        b.set(131);
        b.set(299);
        assert_eq!(
            a.iter_ones_union(&b).collect::<Vec<_>>(),
            vec![2, 70, 131, 299]
        );
        let mut words = Vec::new();
        a.for_each_word_union(&b, |w, wa, wb| words.push((w, wa, wb)));
        assert_eq!(words.len(), 4, "words 0, 1, 2, 4");
        assert_eq!(words[0], (0, 1 << 2, 0));
    }

    #[test]
    fn clear_all_resets_everything() {
        let mut b = Bitmap2L::filled(100);
        b.clear_all();
        assert_eq!(b.count(), 0);
        assert_eq!(b.next_one_from(0), None);
        b.check_consistency().unwrap();
    }
}
