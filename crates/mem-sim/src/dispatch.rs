//! Process-global counters for density-adaptive scan dispatch.
//!
//! Every dispatched scan over a [`Bitmap2L`](crate::Bitmap2L) records
//! which path the density heuristic picked. The counters are wall-clock
//! observability only: they are monotone process totals, never enter the
//! virtual-time metrics registry (which must replay deterministically),
//! and are exported as `bitmap.dispatch.{skip,dense,unrolled}` by the
//! engine's telemetry publication.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::bitmap::ScanPath;

static SKIP: AtomicU64 = AtomicU64::new(0);
static DENSE: AtomicU64 = AtomicU64::new(0);
static UNROLLED: AtomicU64 = AtomicU64::new(0);

/// Point-in-time totals of dispatched scans per path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchCounts {
    /// Scans that took the summary-guided word-skip path.
    pub skip: u64,
    /// Scans that took the straight-line full-word walk.
    pub dense: u64,
    /// Scans that took the 4-wide unrolled walk.
    pub unrolled: u64,
}

impl DispatchCounts {
    /// Total dispatched scans across all paths.
    pub fn total(&self) -> u64 {
        self.skip + self.dense + self.unrolled
    }
}

/// Records one dispatched scan. Relaxed: the counters are statistics,
/// not synchronization.
#[inline]
pub fn record(path: ScanPath) {
    let c = match path {
        ScanPath::Skip => &SKIP,
        ScanPath::Dense => &DENSE,
        ScanPath::Unrolled => &UNROLLED,
    };
    c.fetch_add(1, Ordering::Relaxed);
}

/// Snapshot of the process-global dispatch totals.
pub fn snapshot() -> DispatchCounts {
    DispatchCounts {
        skip: SKIP.load(Ordering::Relaxed),
        dense: DENSE.load(Ordering::Relaxed),
        unrolled: UNROLLED.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_moves_the_matching_counter() {
        let before = snapshot();
        record(ScanPath::Skip);
        record(ScanPath::Dense);
        record(ScanPath::Dense);
        record(ScanPath::Unrolled);
        let after = snapshot();
        // Other tests may record concurrently, so assert lower bounds.
        assert!(after.skip >= before.skip + 1);
        assert!(after.dense >= before.dense + 2);
        assert!(after.unrolled >= before.unrolled + 1);
        assert!(after.total() >= before.total() + 4);
    }
}
