//! Page-table entries and the per-region page table.

use std::fmt;

use crate::bitmap::Bitmap2L;
use crate::PageId;

/// Permission and status bits of one page-table entry.
///
/// Mirrors the x86-64 bits Viyojit manipulates: present, writable (the
/// write-protection bit, inverted), dirty, and accessed.
///
/// # Examples
///
/// ```
/// use mem_sim::PteFlags;
///
/// let f = PteFlags::present().with_writable(true).with_dirty(true);
/// assert!(f.is_writable() && f.is_dirty());
/// assert!(!f.with_dirty(false).is_dirty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PteFlags(u8);

impl PteFlags {
    const PRESENT: u8 = 1 << 0;
    const WRITABLE: u8 = 1 << 1;
    const DIRTY: u8 = 1 << 2;
    const ACCESSED: u8 = 1 << 3;
    const SHADOW_DIRTY: u8 = 1 << 4;

    /// A present, read-only, clean entry.
    pub const fn present() -> Self {
        PteFlags(Self::PRESENT)
    }

    /// A non-present entry.
    pub const fn not_present() -> Self {
        PteFlags(0)
    }

    /// `true` if the page is mapped.
    pub const fn is_present(self) -> bool {
        self.0 & Self::PRESENT != 0
    }

    /// `true` if writes are allowed (write-protection bit clear).
    pub const fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE != 0
    }

    /// `true` if the hardware dirty bit is set.
    pub const fn is_dirty(self) -> bool {
        self.0 & Self::DIRTY != 0
    }

    /// `true` if the hardware accessed bit is set.
    pub const fn is_accessed(self) -> bool {
        self.0 & Self::ACCESSED != 0
    }

    /// Returns a copy with the writable bit set to `w`.
    #[must_use]
    pub const fn with_writable(self, w: bool) -> Self {
        if w {
            PteFlags(self.0 | Self::WRITABLE)
        } else {
            PteFlags(self.0 & !Self::WRITABLE)
        }
    }

    /// Returns a copy with the dirty bit set to `d`.
    #[must_use]
    pub const fn with_dirty(self, d: bool) -> Self {
        if d {
            PteFlags(self.0 | Self::DIRTY)
        } else {
            PteFlags(self.0 & !Self::DIRTY)
        }
    }

    /// Returns a copy with the accessed bit set to `a`.
    #[must_use]
    pub const fn with_accessed(self, a: bool) -> Self {
        if a {
            PteFlags(self.0 | Self::ACCESSED)
        } else {
            PteFlags(self.0 & !Self::ACCESSED)
        }
    }

    /// `true` if the shadow dirty bit is set. The shadow bit is the §5.4
    /// MMU extension: hardware sets it together with the dirty bit, and
    /// software reads and clears it to track update recency *without*
    /// disturbing the dirty bit the hardware counter depends on.
    pub const fn is_shadow_dirty(self) -> bool {
        self.0 & Self::SHADOW_DIRTY != 0
    }

    /// Returns a copy with the shadow dirty bit set to `d`.
    #[must_use]
    pub const fn with_shadow_dirty(self, d: bool) -> Self {
        if d {
            PteFlags(self.0 | Self::SHADOW_DIRTY)
        } else {
            PteFlags(self.0 & !Self::SHADOW_DIRTY)
        }
    }
}

impl fmt::Display for PteFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}{}{}",
            if self.is_present() { 'P' } else { '-' },
            if self.is_writable() { 'W' } else { '-' },
            if self.is_dirty() { 'D' } else { '-' },
            if self.is_accessed() { 'A' } else { '-' },
            if self.is_shadow_dirty() { 'S' } else { '-' },
        )
    }
}

/// The page table of one simulated NV-DRAM region.
///
/// Software (the Viyojit kernel module in the paper) manipulates these
/// entries directly; the [`Mmu`](crate::Mmu) consults and updates them on
/// every access that misses the TLB.
///
/// Internally the table is stored column-wise: one [`Bitmap2L`] per flag
/// rather than a `Vec<PteFlags>` row per page. The per-entry API below is
/// unchanged, but scans that care about one flag — the epoch walk reading
/// dirty bits, the discovery scan, `dirty_count` — use the word-level
/// primitives (`iter_dirty_pages`, `take_dirty_words`, ...) and skip
/// clean space through the bitmap summary level instead of touching every
/// entry.
///
/// # Examples
///
/// ```
/// use mem_sim::{PageId, PageTable};
///
/// let mut pt = PageTable::new(8);
/// pt.set_writable(PageId(3), true);
/// assert!(pt.flags(PageId(3)).is_writable());
/// assert!(!pt.flags(PageId(4)).is_writable());
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    present: Bitmap2L,
    writable: Bitmap2L,
    dirty: Bitmap2L,
    accessed: Bitmap2L,
    shadow: Bitmap2L,
}

impl PageTable {
    /// Creates a table of `pages` present, write-protected, clean entries —
    /// the state Viyojit establishes at startup (Fig. 6 step 1).
    pub fn new(pages: usize) -> Self {
        PageTable {
            present: Bitmap2L::filled(pages),
            writable: Bitmap2L::new(pages),
            dirty: Bitmap2L::new(pages),
            accessed: Bitmap2L::new(pages),
            shadow: Bitmap2L::new(pages),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.present.len()
    }

    /// `true` if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.present.is_empty()
    }

    /// The flags of `page`, reassembled from the per-flag bitmaps.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn flags(&self, page: PageId) -> PteFlags {
        let i = page.index();
        let mut f = if self.present.test(i) {
            PteFlags::present()
        } else {
            PteFlags::not_present()
        };
        f = f
            .with_writable(self.writable.test(i))
            .with_dirty(self.dirty.test(i))
            .with_accessed(self.accessed.test(i));
        f.with_shadow_dirty(self.shadow.test(i))
    }

    /// Sets the writable bit of `page`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn set_writable(&mut self, page: PageId, writable: bool) {
        if writable {
            self.writable.set(page.index());
        } else {
            self.writable.clear(page.index());
        }
    }

    /// Sets the dirty bit of `page` (as the MMU does on a tracked write).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    #[inline]
    pub fn set_dirty(&mut self, page: PageId, dirty: bool) {
        if dirty {
            self.dirty.set(page.index());
        } else {
            self.dirty.clear(page.index());
        }
    }

    /// Sets the accessed bit of `page`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn set_accessed(&mut self, page: PageId, accessed: bool) {
        if accessed {
            self.accessed.set(page.index());
        } else {
            self.accessed.clear(page.index());
        }
    }

    /// Reads and clears the dirty bit of `page`, returning its prior value.
    /// This is the per-entry primitive of §5.2's epoch walk.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    #[inline]
    pub fn take_dirty(&mut self, page: PageId) -> bool {
        self.dirty.clear(page.index())
    }

    /// Sets the shadow dirty bit of `page` (hardware mirror of the dirty
    /// bit, §5.4).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn set_shadow_dirty(&mut self, page: PageId, dirty: bool) {
        if dirty {
            self.shadow.set(page.index());
        } else {
            self.shadow.clear(page.index());
        }
    }

    /// Reads and clears the shadow dirty bit of `page`, returning its
    /// prior value — the §5.4 recency-tracking primitive that leaves the
    /// real dirty bit (and the hardware counter) untouched.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn take_shadow_dirty(&mut self, page: PageId) -> bool {
        self.shadow.clear(page.index())
    }

    /// `true` if the dirty bit of `page` is set, without assembling the
    /// full flag set — the write-path fast check.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn is_dirty(&self, page: PageId) -> bool {
        self.dirty.test(page.index())
    }

    /// Iterates over `(PageId, PteFlags)` for every entry.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, PteFlags)> + '_ {
        (0..self.len()).map(|i| {
            let page = PageId(i as u64);
            (page, self.flags(page))
        })
    }

    /// Count of entries whose dirty bit is set. O(1): the bitmap keeps a
    /// running popcount.
    pub fn dirty_count(&self) -> usize {
        self.dirty.count()
    }

    /// Iterates the pages whose dirty bit is set, in ascending order,
    /// skipping clean space through the bitmap summary level.
    pub fn iter_dirty_pages(&self) -> impl Iterator<Item = PageId> + '_ {
        self.dirty.iter_ones().map(|i| PageId(i as u64))
    }

    /// Reads and clears the dirty bits 64 entries at a time: `f` receives
    /// `(first_page_index, word)` for every non-zero word, where bit `b`
    /// of `word` is page `first_page_index + b`. Clean space is skipped
    /// via the summary level — the word-granularity epoch-walk primitive.
    pub fn take_dirty_words(&mut self, mut f: impl FnMut(u64, u64)) {
        self.dirty.drain_words(|w, word| f(w as u64 * 64, word));
    }

    /// Reads and clears the shadow dirty bits 64 entries at a time; see
    /// [`PageTable::take_dirty_words`].
    pub fn take_shadow_dirty_words(&mut self, mut f: impl FnMut(u64, u64)) {
        self.shadow.drain_words(|w, word| f(w as u64 * 64, word));
    }

    /// Clears every dirty bit. O(words), regardless of how many are set.
    pub fn clear_all_dirty(&mut self) {
        self.dirty.clear_all();
    }

    /// Clears every shadow dirty bit. O(words).
    pub fn clear_all_shadow_dirty(&mut self) {
        self.shadow.clear_all();
    }

    /// The dirty-bit column as a bitmap, for word-level scans.
    pub fn dirty_bits(&self) -> &Bitmap2L {
        &self.dirty
    }

    /// The shadow-dirty-bit column as a bitmap, for word-level scans.
    pub fn shadow_dirty_bits(&self) -> &Bitmap2L {
        &self.shadow
    }

    /// The writable-bit column as a bitmap, for word-level scans.
    pub fn writable_bits(&self) -> &Bitmap2L {
        &self.writable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_table_is_protected_and_clean() {
        let pt = PageTable::new(4);
        for (_, f) in pt.iter() {
            assert!(f.is_present());
            assert!(!f.is_writable());
            assert!(!f.is_dirty());
            assert!(!f.is_accessed());
        }
    }

    #[test]
    fn flag_bits_are_independent() {
        let f = PteFlags::present()
            .with_writable(true)
            .with_dirty(true)
            .with_accessed(true);
        assert!(f.is_present() && f.is_writable() && f.is_dirty() && f.is_accessed());
        let f2 = f.with_dirty(false);
        assert!(f2.is_writable() && f2.is_accessed() && !f2.is_dirty());
    }

    #[test]
    fn take_dirty_clears_and_reports() {
        let mut pt = PageTable::new(2);
        pt.set_dirty(PageId(1), true);
        assert!(pt.take_dirty(PageId(1)));
        assert!(!pt.take_dirty(PageId(1)));
        assert!(!pt.take_dirty(PageId(0)));
    }

    #[test]
    fn dirty_count_tracks_set_bits() {
        let mut pt = PageTable::new(10);
        assert_eq!(pt.dirty_count(), 0);
        for i in [1u64, 3, 5] {
            pt.set_dirty(PageId(i), true);
        }
        assert_eq!(pt.dirty_count(), 3);
    }

    #[test]
    #[should_panic]
    fn out_of_range_page_panics() {
        let pt = PageTable::new(1);
        let _ = pt.flags(PageId(1));
    }

    #[test]
    fn display_shows_all_bits() {
        let f = PteFlags::present().with_writable(true);
        assert_eq!(f.to_string(), "PW---");
        assert_eq!(PteFlags::not_present().to_string(), "-----");
        assert_eq!(
            PteFlags::present().with_shadow_dirty(true).to_string(),
            "P---S"
        );
    }

    #[test]
    fn iter_dirty_pages_is_ascending_and_exact() {
        let mut pt = PageTable::new(200);
        for i in [130u64, 2, 64, 63] {
            pt.set_dirty(PageId(i), true);
        }
        let pages: Vec<u64> = pt.iter_dirty_pages().map(|p| p.0).collect();
        assert_eq!(pages, vec![2, 63, 64, 130]);
    }

    #[test]
    fn take_dirty_words_reads_and_clears() {
        let mut pt = PageTable::new(200);
        pt.set_dirty(PageId(1), true);
        pt.set_dirty(PageId(65), true);
        let mut seen = Vec::new();
        pt.take_dirty_words(|base, word| seen.push((base, word)));
        assert_eq!(seen, vec![(0, 2), (64, 2)]);
        assert_eq!(pt.dirty_count(), 0);
        assert!(!pt.flags(PageId(1)).is_dirty());
    }

    #[test]
    fn shadow_and_dirty_columns_are_independent() {
        let mut pt = PageTable::new(70);
        pt.set_dirty(PageId(69), true);
        pt.set_shadow_dirty(PageId(69), true);
        assert!(pt.take_shadow_dirty(PageId(69)));
        assert!(pt.flags(PageId(69)).is_dirty());
        pt.clear_all_dirty();
        assert_eq!(pt.dirty_count(), 0);
    }
}
