//! Page-granularity addressing.

use std::fmt;

/// Size of one page in bytes, matching the x86-64 base page size the paper
/// tracks dirty data at.
pub const PAGE_SIZE: usize = 4096;

/// Index of a page within a simulated NV-DRAM region.
///
/// # Examples
///
/// ```
/// use mem_sim::{PageId, PAGE_SIZE};
///
/// let p = PageId::containing(PAGE_SIZE as u64 * 3 + 17);
/// assert_eq!(p, PageId(3));
/// assert_eq!(p.base_addr(), 3 * PAGE_SIZE as u64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(pub u64);

impl PageId {
    /// The page containing byte offset `addr`.
    pub const fn containing(addr: u64) -> PageId {
        PageId(addr / PAGE_SIZE as u64)
    }

    /// Byte offset of the first byte of this page.
    pub const fn base_addr(self) -> u64 {
        self.0 * PAGE_SIZE as u64
    }

    /// This page's index as a `usize`, for indexing page-table vectors.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

impl From<u64> for PageId {
    fn from(v: u64) -> Self {
        PageId(v)
    }
}

/// Number of pages needed to hold `bytes` bytes.
///
/// # Examples
///
/// ```
/// use mem_sim::{page_count, PAGE_SIZE};
///
/// assert_eq!(page_count(0), 0);
/// assert_eq!(page_count(1), 1);
/// assert_eq!(page_count(PAGE_SIZE as u64), 1);
/// assert_eq!(page_count(PAGE_SIZE as u64 + 1), 2);
/// ```
pub const fn page_count(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containing_and_base_addr_are_inverse_on_boundaries() {
        for i in 0..100 {
            let p = PageId(i);
            assert_eq!(PageId::containing(p.base_addr()), p);
            assert_eq!(PageId::containing(p.base_addr() + PAGE_SIZE as u64 - 1), p);
        }
    }

    #[test]
    fn page_count_boundaries() {
        assert_eq!(page_count(2 * PAGE_SIZE as u64 - 1), 2);
        assert_eq!(page_count(2 * PAGE_SIZE as u64), 2);
        assert_eq!(page_count(2 * PAGE_SIZE as u64 + 1), 3);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(PageId(7).to_string(), "page#7");
    }
}
