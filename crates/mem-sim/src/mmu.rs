//! The MMU: translation, permission checks, dirty-bit maintenance, and
//! write-protection faults over a byte-addressable simulated DRAM region.

use std::error::Error;
use std::fmt;

use sim_clock::{Clock, CostModel};
use telemetry::{CostClass, Profiler};

use crate::{PageId, PageTable, Tlb, PAGE_SIZE};

/// Sub-page tracking granularity (§7's Mondrian-style extension): one
/// cache line.
pub const SECTOR_BYTES: usize = 64;

/// Why an access could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessError {
    /// A write hit a write-protected page. No bytes were written; the
    /// caller (Viyojit's fault handler) must unprotect and retry, exactly
    /// like the hardware fault/retry cycle in the paper's Fig. 6.
    WriteProtected(PageId),
    /// The access fell outside the mapped region.
    OutOfRange {
        /// Starting byte offset of the offending access.
        addr: u64,
        /// Length of the offending access.
        len: usize,
    },
    /// A write would have dirtied a new page while the hardware dirty
    /// counter already sits at its configured limit (§5.4's MMU
    /// extension). No bytes were written; the handler must free a budget
    /// slot and retry.
    DirtyLimitReached(PageId),
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::WriteProtected(p) => {
                write!(f, "write-protection fault on {p}")
            }
            AccessError::OutOfRange { addr, len } => {
                write!(f, "access of {len} bytes at offset {addr} is out of range")
            }
            AccessError::DirtyLimitReached(p) => {
                write!(f, "dirty-limit interrupt on {p}")
            }
        }
    }
}

impl Error for AccessError {}

/// How an epoch dirty-bit walk should behave.
///
/// # Examples
///
/// ```
/// use mem_sim::WalkOptions;
///
/// let exact = WalkOptions::exact();
/// assert!(exact.flush_tlb && !exact.charge_costs);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkOptions {
    /// Flush the TLB before reading dirty bits, making them exact.
    pub flush_tlb: bool,
    /// Charge walk and flush costs to the shared clock (foreground walk).
    pub charge_costs: bool,
}

impl WalkOptions {
    /// Exact dirty bits, costs off the application's critical path — how
    /// Viyojit's background walker runs.
    pub const fn exact() -> Self {
        WalkOptions {
            flush_tlb: true,
            charge_costs: false,
        }
    }

    /// Stale dirty bits (no TLB flush): the §6.3 ablation configuration.
    pub const fn stale() -> Self {
        WalkOptions {
            flush_tlb: false,
            charge_costs: false,
        }
    }

    /// Exact dirty bits with costs charged to the calling timeline.
    pub const fn exact_foreground() -> Self {
        WalkOptions {
            flush_tlb: true,
            charge_costs: true,
        }
    }
}

/// Access counters maintained by the MMU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MmuStats {
    /// Completed read accesses.
    pub reads: u64,
    /// Completed write accesses.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Write-protection faults raised.
    pub write_faults: u64,
    /// Writes that set a PTE dirty bit (first write since last clear,
    /// through a TLB entry with a clean cached dirty bit).
    pub pte_dirtied: u64,
}

/// The simulated MMU for one NV-DRAM region: page table + TLB + backing
/// bytes + virtual-time cost accounting.
///
/// All application accesses go through [`Mmu::read`] / [`Mmu::write`];
/// privileged software (Viyojit) manipulates protection with
/// [`Mmu::protect_page`] / [`Mmu::unprotect_page`] and performs epoch walks
/// with [`Mmu::walk_and_clear_dirty`]. DMA-style access for the flusher and
/// recovery bypasses translation via [`Mmu::page_data`] /
/// [`Mmu::page_data_mut`].
///
/// # Examples
///
/// ```
/// use mem_sim::{Mmu, PageId};
/// use sim_clock::{Clock, CostModel};
///
/// let mut mmu = Mmu::new(4, Clock::new(), CostModel::free());
/// mmu.write(10, b"abc")?;
/// let mut buf = [0u8; 3];
/// mmu.read(10, &mut buf)?;
/// assert_eq!(&buf, b"abc");
/// # Ok::<(), mem_sim::AccessError>(())
/// ```
#[derive(Debug)]
pub struct Mmu {
    page_table: PageTable,
    tlb: Tlb,
    memory: Vec<u8>,
    clock: Clock,
    costs: CostModel,
    /// Attribution of the costs this MMU charges; disabled by default.
    profiler: Profiler,
    stats: MmuStats,
    /// §5.4 hardware dirty accounting: when set, the MMU counts dirty-bit
    /// transitions and refuses (with [`AccessError::DirtyLimitReached`])
    /// to dirty a new page at the limit.
    dirty_limit: Option<u64>,
    dirty_counted: u64,
    /// Mondrian-style sub-page tracking (§7): one bit per 64 B sector per
    /// page, set by every write, read-and-cleared by the flush path so
    /// copies can ship only the modified sectors.
    sector_masks: Vec<u64>,
}

impl Mmu {
    /// Default TLB geometry: 256 sets x 4 ways = 1024 entries (4 MiB of
    /// reach), a typical L2 dTLB size for the Nehalem-era machine the paper
    /// calibrates against.
    const DEFAULT_TLB_SETS: usize = 256;
    const DEFAULT_TLB_WAYS: usize = 4;

    /// Creates an MMU over `pages` zeroed, present, *writable* pages with
    /// the default TLB geometry. (Viyojit write-protects pages explicitly
    /// at startup; a raw region starts writable like ordinary mmap memory.)
    pub fn new(pages: usize, clock: Clock, costs: CostModel) -> Self {
        Self::with_tlb_geometry(
            pages,
            clock,
            costs,
            Self::DEFAULT_TLB_SETS,
            Self::DEFAULT_TLB_WAYS,
        )
    }

    /// Creates an MMU with an explicit TLB geometry.
    ///
    /// # Panics
    ///
    /// Panics if `tlb_sets` is not a power of two or `tlb_ways` is zero.
    pub fn with_tlb_geometry(
        pages: usize,
        clock: Clock,
        costs: CostModel,
        tlb_sets: usize,
        tlb_ways: usize,
    ) -> Self {
        let mut page_table = PageTable::new(pages);
        for i in 0..pages {
            page_table.set_writable(PageId(i as u64), true);
        }
        Mmu {
            page_table,
            tlb: Tlb::new(tlb_sets, tlb_ways),
            memory: vec![0u8; pages * PAGE_SIZE],
            clock,
            costs,
            profiler: Profiler::disabled(),
            stats: MmuStats::default(),
            dirty_limit: None,
            dirty_counted: 0,
            sector_masks: vec![0; pages],
        }
    }

    /// Enables §5.4 hardware dirty counting with the given page limit, or
    /// disables it with `None`. The counter starts from the current number
    /// of dirty PTEs.
    pub fn set_dirty_limit(&mut self, limit: Option<u64>) {
        self.dirty_limit = limit;
        self.dirty_counted = self.page_table.dirty_count() as u64;
    }

    /// The hardware dirty counter (§5.4). Only meaningful while a dirty
    /// limit is set.
    pub fn dirty_counted(&self) -> u64 {
        self.dirty_counted
    }

    /// Retires one dirty page from the hardware counter: clears its dirty
    /// and shadow bits and invalidates its TLB entry, so the next write
    /// re-counts it. Called by the §5.4 runtime when a page's flush
    /// completes.
    ///
    /// # Panics
    ///
    /// Panics if the page's dirty bit is not set.
    pub fn credit_dirty_page(&mut self, page: PageId) {
        assert!(
            self.page_table.take_dirty(page),
            "credited {page} was not dirty"
        );
        self.page_table.set_shadow_dirty(page, false);
        self.tlb.invalidate(page);
        self.dirty_counted -= 1;
    }

    /// Clears every PTE dirty and shadow bit in one word-level pass,
    /// without charging costs or touching the TLB — recovery's bulk reset.
    /// Callers must have invalidated any TLB entries whose cached dirty
    /// bits could go stale (recovery's unprotect pass already does), and
    /// should re-arm the dirty limit afterwards so the hardware counter
    /// recounts from the cleared table.
    pub fn clear_dirty_tracking_bits(&mut self) {
        self.page_table.clear_all_dirty();
        self.page_table.clear_all_shadow_dirty();
    }

    /// Number of mapped pages.
    pub fn pages(&self) -> usize {
        self.page_table.len()
    }

    /// Region size in bytes.
    pub fn size_bytes(&self) -> u64 {
        (self.page_table.len() * PAGE_SIZE) as u64
    }

    /// The region's page table (read-only view).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// TLB counters.
    pub fn tlb_stats(&self) -> crate::TlbStats {
        self.tlb.stats()
    }

    /// Access counters.
    pub fn stats(&self) -> MmuStats {
        self.stats
    }

    /// The shared virtual clock this MMU charges costs to.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The cost model in force.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// Attaches a profiler; every cost this MMU charges to the clock is
    /// then attributed to its [`CostClass`] (TLB hit/miss, DRAM line,
    /// WP trap, PTE update, walk). Disabled by default.
    pub fn attach_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    fn check_range(&self, addr: u64, len: usize) -> Result<(), AccessError> {
        if addr
            .checked_add(len as u64)
            .is_none_or(|end| end > self.size_bytes())
        {
            return Err(AccessError::OutOfRange { addr, len });
        }
        Ok(())
    }

    /// Translates `page`, charging TLB hit/miss costs and filling on miss.
    /// Returns the effective (possibly cached) `(writable, dirty, shadow)`
    /// view.
    fn translate(&mut self, page: PageId) -> (bool, bool, bool) {
        if let Some(entry) = self.tlb.lookup(page) {
            let view = (entry.writable, entry.dirty, entry.shadow);
            self.clock.advance(self.costs.tlb_hit);
            self.profiler.charge(CostClass::TlbHit, self.costs.tlb_hit);
            view
        } else {
            self.clock.advance(self.costs.tlb_miss);
            self.profiler
                .charge(CostClass::TlbMiss, self.costs.tlb_miss);
            let flags = self.page_table.flags(page);
            self.page_table.set_accessed(page, true);
            self.tlb.fill(page, flags);
            (
                flags.is_writable(),
                flags.is_dirty(),
                flags.is_shadow_dirty(),
            )
        }
    }

    /// Reads `buf.len()` bytes starting at byte offset `addr`. Reads may
    /// span pages and never fault on protection (Viyojit never
    /// read-protects).
    ///
    /// # Errors
    ///
    /// Returns [`AccessError::OutOfRange`] if the range exceeds the region.
    pub fn read(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), AccessError> {
        self.check_range(addr, buf.len())?;
        let mut off = addr;
        let mut remaining: &mut [u8] = buf;
        while !remaining.is_empty() {
            let page = PageId::containing(off);
            let in_page = (PAGE_SIZE - (off as usize % PAGE_SIZE)).min(remaining.len());
            self.translate(page);
            let (chunk, rest) = remaining.split_at_mut(in_page);
            chunk.copy_from_slice(&self.memory[off as usize..off as usize + in_page]);
            let cost = self.costs.dram_access(in_page);
            self.clock.advance(cost);
            self.profiler.charge(CostClass::DramAccess, cost);
            remaining = rest;
            off += in_page as u64;
        }
        self.stats.reads += 1;
        self.stats.bytes_read += buf.len() as u64;
        Ok(())
    }

    /// Writes `data` starting at byte offset `addr`. The write must not
    /// cross a page boundary: callers (the NV region layer) chunk larger
    /// writes per page so the fault/retry protocol stays per-page, like a
    /// faulting store instruction.
    ///
    /// # Errors
    ///
    /// - [`AccessError::WriteProtected`] if the page is write-protected;
    ///   no bytes are written and the fault cost is charged.
    /// - [`AccessError::OutOfRange`] if the range exceeds the region.
    ///
    /// # Panics
    ///
    /// Panics if `data` crosses a page boundary.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), AccessError> {
        self.check_range(addr, data.len())?;
        assert!(
            data.is_empty()
                || PageId::containing(addr) == PageId::containing(addr + data.len() as u64 - 1),
            "Mmu::write must not cross a page boundary"
        );
        if data.is_empty() {
            return Ok(());
        }
        let page = PageId::containing(addr);
        let (writable, cached_dirty, cached_shadow) = self.translate(page);
        if !writable {
            self.stats.write_faults += 1;
            self.clock.advance(self.costs.write_fault);
            self.profiler
                .charge(CostClass::WpTrap, self.costs.write_fault);
            return Err(AccessError::WriteProtected(page));
        }
        // Hardware dirty-bit protocol: only a write through a translation
        // whose cached dirty bit is clear updates the PTE dirty bit.
        if !cached_dirty {
            let newly_dirty = !self.page_table.is_dirty(page);
            if newly_dirty {
                if let Some(limit) = self.dirty_limit {
                    if self.dirty_counted >= limit {
                        // §5.4: the MMU raises a dirty-limit interrupt
                        // instead of completing the write.
                        self.stats.write_faults += 1;
                        self.clock.advance(self.costs.write_fault);
                        self.profiler
                            .charge(CostClass::WpTrap, self.costs.write_fault);
                        return Err(AccessError::DirtyLimitReached(page));
                    }
                    self.dirty_counted += 1;
                }
            }
            self.page_table.set_dirty(page, true);
            self.stats.pte_dirtied += 1;
            if let Some(entry) = self.tlb.lookup(page) {
                entry.dirty = true;
            }
        }
        // The shadow bit (§5.4) is cached and updated independently, so
        // clearing it for recency sampling does not disturb the dirty bit
        // or the hardware counter.
        if !cached_shadow {
            self.page_table.set_shadow_dirty(page, true);
            if let Some(entry) = self.tlb.lookup(page) {
                entry.shadow = true;
            }
        }
        self.memory[addr as usize..addr as usize + data.len()].copy_from_slice(data);
        // Mondrian-style sector tracking (§7): mark every 64 B sector the
        // write touched.
        let first_sector = (addr as usize % PAGE_SIZE) / SECTOR_BYTES;
        let last_sector = ((addr as usize + data.len() - 1) % PAGE_SIZE) / SECTOR_BYTES;
        for sector in first_sector..=last_sector {
            self.sector_masks[page.index()] |= 1 << sector;
        }
        let cost = self.costs.dram_access(data.len());
        self.clock.advance(cost);
        self.profiler.charge(CostClass::DramAccess, cost);
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        Ok(())
    }

    /// The §7 sub-page dirty mask of `page`: bit *i* set means sector *i*
    /// (64 B) was written since the mask was last cleared.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn sector_mask(&self, page: PageId) -> u64 {
        self.sector_masks[page.index()]
    }

    /// Clears the sector mask of `page` (the flush path does this when it
    /// snapshots the page).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn clear_sector_mask(&mut self, page: PageId) {
        self.sector_masks[page.index()] = 0;
    }

    /// Bytes of `page` modified since its mask was cleared (sector
    /// granularity).
    pub fn dirty_sector_bytes(&self, page: PageId) -> usize {
        self.sector_masks[page.index()].count_ones() as usize * SECTOR_BYTES
    }

    /// Write-protects `page`, invalidating its TLB entry (the paper's
    /// kernel module pairs every PTE permission change with an
    /// invalidation, §5.1).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn protect_page(&mut self, page: PageId) {
        self.page_table.set_writable(page, false);
        self.tlb.invalidate(page);
        self.clock.advance(self.costs.pte_protect);
        self.profiler
            .charge(CostClass::PteUpdate, self.costs.pte_protect);
    }

    /// Removes write protection from `page`, invalidating its TLB entry.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn unprotect_page(&mut self, page: PageId) {
        self.page_table.set_writable(page, true);
        self.tlb.invalidate(page);
        self.clock.advance(self.costs.pte_protect);
        self.profiler
            .charge(CostClass::PteUpdate, self.costs.pte_protect);
    }

    /// Epoch walk (§5.2): reads and clears the dirty bit of each page in
    /// `pages`, returning those that were dirty.
    ///
    /// If [`WalkOptions::flush_tlb`] is set the TLB is flushed first so the
    /// PTE dirty bits are exact. If not — the ablation the paper runs in
    /// §6.3 — cached dirty bits in the TLB mean subsequent writes will not
    /// re-set the cleared PTE bits, so later walks read stale data and the
    /// update-recency history degrades.
    ///
    /// If [`WalkOptions::charge_costs`] is clear, no virtual time is charged
    /// to the shared clock: the paper runs the walker on a core off the
    /// application's critical path, so only the TLB-state fallout (misses
    /// after the flush) is visible to the application timeline.
    pub fn walk_and_clear_dirty(&mut self, pages: &[PageId], options: WalkOptions) -> Vec<PageId> {
        if options.flush_tlb {
            self.tlb.flush();
            if options.charge_costs {
                self.clock.advance(self.costs.tlb_flush);
                self.profiler
                    .charge(CostClass::TlbFlush, self.costs.tlb_flush);
            }
        }
        let mut dirty = Vec::new();
        for &page in pages {
            if options.charge_costs {
                self.clock.advance(self.costs.pte_walk);
            }
            if self.page_table.take_dirty(page) {
                dirty.push(page);
            }
        }
        if options.charge_costs {
            // One bulk attribution for the whole scan: the watermark model
            // folds every per-PTE advance above into a single charge.
            self.profiler
                .charge(CostClass::PteWalk, self.costs.pte_walk * pages.len() as u64);
        }
        dirty
    }

    /// Shadow-bit epoch walk (§5.4): reads and clears the *shadow* dirty
    /// bit of each page, returning those that were updated, without
    /// touching the real dirty bits the hardware counter depends on.
    pub fn walk_and_clear_shadow(&mut self, pages: &[PageId], options: WalkOptions) -> Vec<PageId> {
        if options.flush_tlb {
            self.tlb.flush();
            if options.charge_costs {
                self.clock.advance(self.costs.tlb_flush);
                self.profiler
                    .charge(CostClass::TlbFlush, self.costs.tlb_flush);
            }
        }
        let mut updated = Vec::new();
        for &page in pages {
            if options.charge_costs {
                self.clock.advance(self.costs.pte_walk);
            }
            if self.page_table.take_shadow_dirty(page) {
                updated.push(page);
            }
        }
        if options.charge_costs {
            self.profiler
                .charge(CostClass::PteWalk, self.costs.pte_walk * pages.len() as u64);
        }
        updated
    }

    /// Direct (DMA-style) read of one page's bytes, bypassing translation
    /// and cost accounting. Used by the flusher to hand pages to the SSD
    /// and by tests to inspect memory.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn page_data(&self, page: PageId) -> &[u8] {
        let start = page.base_addr() as usize;
        &self.memory[start..start + PAGE_SIZE]
    }

    /// Direct (DMA-style) write of one page's bytes, bypassing translation,
    /// permission checks, and dirty tracking. Used by recovery to reload a
    /// region from the backing SSD.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn page_data_mut(&mut self, page: PageId) -> &mut [u8] {
        let start = page.base_addr() as usize;
        &mut self.memory[start..start + PAGE_SIZE]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_clock::SimDuration;

    fn mmu(pages: usize) -> Mmu {
        Mmu::new(pages, Clock::new(), CostModel::free())
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut m = mmu(2);
        m.write(100, b"hello").unwrap();
        let mut buf = [0u8; 5];
        m.read(100, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn read_spans_pages() {
        let mut m = mmu(2);
        let boundary = PAGE_SIZE as u64 - 2;
        m.write(boundary, b"ab").unwrap();
        m.write(PAGE_SIZE as u64, b"cd").unwrap();
        let mut buf = [0u8; 4];
        m.read(boundary, &mut buf).unwrap();
        assert_eq!(&buf, b"abcd");
    }

    #[test]
    #[should_panic(expected = "cross a page boundary")]
    fn write_across_pages_panics() {
        let mut m = mmu(2);
        let _ = m.write(PAGE_SIZE as u64 - 1, b"xy");
    }

    #[test]
    fn protected_write_faults_without_side_effects() {
        let mut m = mmu(1);
        m.write(0, b"orig").unwrap();
        m.protect_page(PageId(0));
        let err = m.write(0, b"newx").unwrap_err();
        assert_eq!(err, AccessError::WriteProtected(PageId(0)));
        let mut buf = [0u8; 4];
        m.read(0, &mut buf).unwrap();
        assert_eq!(&buf, b"orig", "faulting write must not modify memory");
        assert_eq!(m.stats().write_faults, 1);
    }

    #[test]
    fn unprotect_allows_retry() {
        let mut m = mmu(1);
        m.protect_page(PageId(0));
        assert!(m.write(0, b"x").is_err());
        m.unprotect_page(PageId(0));
        assert!(m.write(0, b"x").is_ok());
    }

    #[test]
    fn first_write_sets_pte_dirty_once() {
        let mut m = mmu(1);
        m.write(0, b"a").unwrap();
        assert!(m.page_table().flags(PageId(0)).is_dirty());
        assert_eq!(m.stats().pte_dirtied, 1);
        m.write(1, b"b").unwrap();
        assert_eq!(
            m.stats().pte_dirtied,
            1,
            "second write reuses cached dirty bit"
        );
    }

    #[test]
    fn walk_clears_dirty_and_reports() {
        let mut m = mmu(4);
        m.write(0, b"a").unwrap();
        m.write(2 * PAGE_SIZE as u64, b"b").unwrap();
        let pages: Vec<PageId> = (0..4).map(PageId).collect();
        let dirty = m.walk_and_clear_dirty(&pages, WalkOptions::exact_foreground());
        assert_eq!(dirty, vec![PageId(0), PageId(2)]);
        assert!(m
            .walk_and_clear_dirty(&pages, WalkOptions::exact_foreground())
            .is_empty());
    }

    #[test]
    fn stale_tlb_hides_rewrites_from_walker() {
        // The §6.3 ablation mechanism: without a TLB flush, a page written
        // again after its PTE dirty bit was cleared is invisible to the
        // next walk, because the cached dirty bit short-circuits the PTE
        // update.
        let mut m = mmu(1);
        m.write(0, b"a").unwrap();
        let pages = [PageId(0)];
        assert_eq!(
            m.walk_and_clear_dirty(&pages, WalkOptions::stale()).len(),
            1
        );
        m.write(1, b"b").unwrap(); // rewrite through the stale TLB entry
        assert!(
            m.walk_and_clear_dirty(&pages, WalkOptions::stale())
                .is_empty(),
            "stale cached dirty bit must hide the rewrite"
        );
        // With a flush the rewrite is observed again.
        m.write(2, b"c").unwrap();
        assert_eq!(
            m.walk_and_clear_dirty(&pages, WalkOptions::exact_foreground())
                .len(),
            0
        );
        m.write(3, b"d").unwrap();
        assert_eq!(
            m.walk_and_clear_dirty(&pages, WalkOptions::exact_foreground())
                .len(),
            1
        );
    }

    #[test]
    fn flushed_tlb_makes_walks_exact() {
        let mut m = mmu(1);
        let pages = [PageId(0)];
        for round in 0..5 {
            m.write(0, &[round]).unwrap();
            let dirty = m.walk_and_clear_dirty(&pages, WalkOptions::exact_foreground());
            assert_eq!(dirty.len(), 1, "round {round} must observe the write");
        }
    }

    #[test]
    fn out_of_range_accesses_are_rejected() {
        let mut m = mmu(1);
        let mut buf = [0u8; 8];
        assert!(matches!(
            m.read(PAGE_SIZE as u64 - 4, &mut buf),
            Err(AccessError::OutOfRange { .. })
        ));
        assert!(matches!(
            m.write(u64::MAX, b"x"),
            Err(AccessError::OutOfRange { .. })
        ));
    }

    #[test]
    fn costs_are_charged_to_the_clock() {
        let clock = Clock::new();
        let costs = CostModel::free()
            .with_tlb_miss(SimDuration::from_nanos(100))
            .with_dram_line_access(SimDuration::from_nanos(10));
        let mut m = Mmu::new(1, clock.clone(), costs);
        m.write(0, b"x").unwrap(); // 1 miss + 1 line
        assert_eq!(clock.now().as_nanos(), 110);
        m.write(1, b"y").unwrap(); // hit (free) + 1 line
        assert_eq!(clock.now().as_nanos(), 120);
    }

    #[test]
    fn fault_cost_is_charged() {
        let clock = Clock::new();
        let costs = CostModel::free().with_write_fault(SimDuration::from_micros(4));
        let mut m = Mmu::new(1, clock.clone(), costs);
        m.protect_page(PageId(0));
        let _ = m.write(0, b"x");
        assert_eq!(clock.now().as_micros(), 4);
    }

    #[test]
    fn profiler_attributes_every_mmu_charge() {
        let clock = Clock::new();
        let costs = CostModel::free()
            .with_tlb_miss(SimDuration::from_nanos(100))
            .with_dram_line_access(SimDuration::from_nanos(10))
            .with_write_fault(SimDuration::from_micros(4))
            .with_pte_protect(SimDuration::from_nanos(400));
        let mut m = Mmu::new(1, clock.clone(), costs);
        let profiler = telemetry::Profiler::enabled(clock.clone());
        m.attach_profiler(profiler.clone());

        m.write(0, b"x").unwrap(); // TLB miss + one DRAM line
        m.protect_page(PageId(0)); // PTE update, invalidates the TLB entry
        let _ = m.write(0, b"y"); // TLB miss again + WP trap

        let report = profiler.report().unwrap();
        assert!(report.is_conserved());
        assert_eq!(report.class_nanos("tlb_miss"), 200);
        assert_eq!(report.class_nanos("dram_access"), 10);
        assert_eq!(report.class_nanos("pte_update"), 400);
        assert_eq!(report.class_nanos("wp_trap"), 4_000);
        assert_eq!(report.elapsed.as_nanos(), 4_610);
    }

    #[test]
    fn profiler_attributes_foreground_walks() {
        let clock = Clock::new();
        let costs = CostModel::free()
            .with_tlb_flush(SimDuration::from_micros(12))
            .with_pte_walk(SimDuration::from_nanos(60));
        let mut m = Mmu::new(4, clock.clone(), costs);
        let profiler = telemetry::Profiler::enabled(clock.clone());
        m.attach_profiler(profiler.clone());

        let pages: Vec<PageId> = (0..4).map(PageId).collect();
        m.walk_and_clear_dirty(&pages, WalkOptions::exact_foreground());

        let report = profiler.report().unwrap();
        assert!(report.is_conserved());
        assert_eq!(report.class_nanos("tlb_flush"), 12_000);
        assert_eq!(report.class_nanos("pte_walk"), 4 * 60);
    }

    #[test]
    fn empty_write_is_a_no_op() {
        let mut m = mmu(1);
        m.protect_page(PageId(0));
        assert!(m.write(0, b"").is_ok(), "zero-length writes never fault");
        assert_eq!(m.stats().writes, 0);
    }

    #[test]
    fn dirty_limit_blocks_at_capacity_and_credits_release() {
        let mut m = mmu(8);
        m.set_dirty_limit(Some(2));
        m.write(0, b"a").unwrap();
        m.write(PAGE_SIZE as u64, b"b").unwrap();
        assert_eq!(m.dirty_counted(), 2);
        // Third page would exceed the limit: hardware interrupt, no write.
        let err = m.write(2 * PAGE_SIZE as u64, b"c").unwrap_err();
        assert_eq!(err, AccessError::DirtyLimitReached(PageId(2)));
        let mut buf = [0u8];
        m.read(2 * PAGE_SIZE as u64, &mut buf).unwrap();
        assert_eq!(buf[0], 0, "blocked write must not land");
        // Crediting a page frees a slot; the retry then succeeds.
        m.credit_dirty_page(PageId(0));
        assert_eq!(m.dirty_counted(), 1);
        m.write(2 * PAGE_SIZE as u64, b"c").unwrap();
        assert_eq!(m.dirty_counted(), 2);
    }

    #[test]
    fn rewrites_of_dirty_pages_never_hit_the_limit() {
        let mut m = mmu(4);
        m.set_dirty_limit(Some(1));
        m.write(0, b"a").unwrap();
        for i in 0..100u64 {
            m.write(i % PAGE_SIZE as u64, b"x").unwrap();
        }
        assert_eq!(m.dirty_counted(), 1);
        assert_eq!(m.stats().write_faults, 0);
    }

    #[test]
    fn credited_pages_recount_on_rewrite() {
        let mut m = mmu(4);
        m.set_dirty_limit(Some(4));
        m.write(0, b"a").unwrap();
        m.credit_dirty_page(PageId(0));
        assert_eq!(m.dirty_counted(), 0);
        m.write(0, b"b").unwrap();
        assert_eq!(m.dirty_counted(), 1, "post-credit rewrite must recount");
    }

    #[test]
    fn shadow_walk_tracks_recency_without_disturbing_dirty_bits() {
        let mut m = mmu(4);
        m.write(0, b"a").unwrap();
        let pages = [PageId(0)];
        let updated = m.walk_and_clear_shadow(&pages, WalkOptions::exact());
        assert_eq!(updated, vec![PageId(0)]);
        assert!(
            m.page_table().flags(PageId(0)).is_dirty(),
            "shadow walk must not clear the real dirty bit"
        );
        // A rewrite re-sets the shadow bit (after the flush emptied the TLB).
        m.write(1, b"b").unwrap();
        assert_eq!(
            m.walk_and_clear_shadow(&pages, WalkOptions::exact()).len(),
            1
        );
        // No rewrite: next walk sees nothing.
        assert!(m
            .walk_and_clear_shadow(&pages, WalkOptions::exact())
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "was not dirty")]
    fn crediting_a_clean_page_panics() {
        let mut m = mmu(1);
        m.set_dirty_limit(Some(1));
        m.credit_dirty_page(PageId(0));
    }

    #[test]
    fn sector_masks_track_written_ranges() {
        let mut m = mmu(2);
        m.write(0, &[1u8; 64]).unwrap(); // sector 0
        m.write(130, &[2u8; 10]).unwrap(); // sectors 2 (byte 130..139)
        assert_eq!(m.sector_mask(PageId(0)), 0b101);
        assert_eq!(m.dirty_sector_bytes(PageId(0)), 128);
        // Spanning sector boundary sets both.
        m.write(63, &[3u8; 2]).unwrap(); // sectors 0 and 1
        assert_eq!(m.sector_mask(PageId(0)), 0b111);
        m.clear_sector_mask(PageId(0));
        assert_eq!(m.dirty_sector_bytes(PageId(0)), 0);
    }

    #[test]
    fn sector_masks_are_per_page() {
        let mut m = mmu(2);
        m.write(PAGE_SIZE as u64 + 4000, &[1u8; 96]).unwrap();
        assert_eq!(m.sector_mask(PageId(0)), 0);
        assert_eq!(m.dirty_sector_bytes(PageId(1)), 128);
    }

    #[test]
    fn dma_access_bypasses_protection() {
        let mut m = mmu(1);
        m.protect_page(PageId(0));
        m.page_data_mut(PageId(0))[0] = 0xAB;
        assert_eq!(m.page_data(PageId(0))[0], 0xAB);
        assert!(!m.page_table().flags(PageId(0)).is_dirty());
    }
}
