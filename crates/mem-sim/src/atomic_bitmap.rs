//! A lock-free `AtomicU64`-word variant of [`Bitmap2L`] for cross-thread
//! dirty-page publication.
//!
//! The parallel sharded engine runs one engine per OS thread, each owning
//! its shard's private [`Bitmap2L`] page state. Observers on *other*
//! threads (the control plane, monitoring loops) still want an
//! approximate global dirty picture without stopping the data plane, so
//! each shard thread periodically *publishes* its dirty words into a
//! shared [`AtomicBitmap2L`] with plain word stores — no locks, no
//! coordination beyond the atomics themselves.
//!
//! Concurrency contract:
//!
//! - **Disjoint-word writers are exact.** When every word is written by
//!   at most one thread at a time (the sharded engine's discipline: each
//!   shard owns a word-aligned slice), the maintained popcount and the
//!   summary level are exact once the writers are quiescent.
//! - **Racing writers stay safe but conservative.** Concurrent `set`/
//!   `clear`/`store_word` on the *same* word never lose a set bit's
//!   summary coverage and never corrupt the popcount (each transition is
//!   counted exactly once, against the `fetch_or`/`fetch_and` return
//!   value), but the summary may transiently keep a bit for a word that
//!   has gone zero. Scans tolerate that: a summary bit is a hint, and
//!   zero words found through it are skipped.
//!
//! # Examples
//!
//! ```
//! use mem_sim::AtomicBitmap2L;
//!
//! let b = AtomicBitmap2L::new(10_000);
//! b.set(3);
//! b.store_word(1, 0b101); // publish bits 64 and 66 in one store
//! assert_eq!(b.count(), 3);
//! assert!(b.test(66));
//! assert_eq!(b.to_bitmap().iter_ones().collect::<Vec<_>>(), vec![3, 64, 66]);
//! ```

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::bitmap::{Bitmap2L, RunClass, RUN_PAGES, RUN_WORDS};

/// A fixed-size concurrent bitmap with a one-bit-per-word summary level
/// and a maintained popcount, mirroring [`Bitmap2L`]'s shape with every
/// level held in `AtomicU64`s.
///
/// All index arguments must be in range; out-of-range indices panic, like
/// slice indexing. `&self` suffices for every operation, so one instance
/// can be shared across threads behind an `Arc` with no further locking.
#[derive(Debug)]
pub struct AtomicBitmap2L {
    /// Number of addressable bits.
    len: usize,
    /// Leaf level: bit `i % 64` of `words[i / 64]` is bit `i`.
    words: Vec<AtomicU64>,
    /// Summary level: bit `w % 64` of `summary[w / 64]` is set if
    /// `words[w]` *may* be non-zero (conservative under races).
    summary: Vec<AtomicU64>,
    /// Huge-page tier: maintained popcount per 512-page run; exact at
    /// quiescence (transition-exact like `ones`).
    run_pops: Vec<AtomicU32>,
    /// Maintained popcount; exact at quiescence, never drifting (every
    /// bit transition is counted against the atomic op's return value).
    ones: AtomicU64,
}

impl AtomicBitmap2L {
    /// Creates an all-zero bitmap over `len` bits.
    pub fn new(len: usize) -> Self {
        let n_words = len.div_ceil(64);
        AtomicBitmap2L {
            len,
            words: (0..n_words).map(|_| AtomicU64::new(0)).collect(),
            summary: (0..n_words.div_ceil(64))
                .map(|_| AtomicU64::new(0))
                .collect(),
            run_pops: (0..len.div_ceil(RUN_PAGES))
                .map(|_| AtomicU32::new(0))
                .collect(),
            ones: AtomicU64::new(0),
        }
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the bitmap addresses no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of leaf words.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Number of set bits. Exact once concurrent writers are quiescent.
    pub fn count(&self) -> u64 {
        self.ones.load(Ordering::Acquire)
    }

    /// Recomputes the popcount from the leaf words in one pass.
    pub fn recount(&self) -> u64 {
        self.words
            .iter()
            .map(|w| u64::from(w.load(Ordering::Acquire).count_ones()))
            .sum()
    }

    #[inline]
    fn check_index(&self, i: usize) {
        assert!(
            i < self.len,
            "bit index {i} out of range for bitmap of {} bits",
            self.len
        );
    }

    /// Tests bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn test(&self, i: usize) -> bool {
        self.check_index(i);
        self.words[i / 64].load(Ordering::Acquire) & (1u64 << (i % 64)) != 0
    }

    /// Loads the raw leaf word holding bits `w * 64 .. w * 64 + 64`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is past the last word.
    #[inline]
    pub fn load_word(&self, w: usize) -> u64 {
        self.words[w].load(Ordering::Acquire)
    }

    /// Sets bit `i`, returning `true` if this call made the transition.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        self.check_index(i);
        let w = i / 64;
        let mask = 1u64 << (i % 64);
        let old = self.words[w].fetch_or(mask, Ordering::AcqRel);
        if old & mask != 0 {
            return false;
        }
        self.summary[w / 64].fetch_or(1u64 << (w % 64), Ordering::AcqRel);
        self.run_pops[i / RUN_PAGES].fetch_add(1, Ordering::AcqRel);
        self.ones.fetch_add(1, Ordering::AcqRel);
        true
    }

    /// Clears bit `i`, returning `true` if this call made the transition.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn clear(&self, i: usize) -> bool {
        self.check_index(i);
        let w = i / 64;
        let mask = 1u64 << (i % 64);
        let old = self.words[w].fetch_and(!mask, Ordering::AcqRel);
        if old & mask == 0 {
            return false;
        }
        self.run_pops[i / RUN_PAGES].fetch_sub(1, Ordering::AcqRel);
        self.ones.fetch_sub(1, Ordering::AcqRel);
        if old == mask {
            self.retire_summary_bit(w);
        }
        true
    }

    /// Replaces the whole leaf word `w` with `val`, returning the prior
    /// word. The popcount moves by the exact bit delta; the summary bit
    /// follows the stored value. This is the publication primitive: a
    /// shard thread pushes each changed word of its private bitmap in one
    /// store instead of 64 bit operations.
    ///
    /// # Panics
    ///
    /// Panics if `w` is past the last word, or if `val` sets bits past
    /// `len` in the final partial word.
    pub fn store_word(&self, w: usize, val: u64) -> u64 {
        let bits_here = (self.len - (w * 64).min(self.len)).min(64);
        assert!(
            bits_here == 64 || val & !((1u64 << bits_here) - 1) == 0,
            "word {w} value sets bits past the bitmap's {} bits",
            self.len
        );
        let old = self.words[w].swap(val, Ordering::AcqRel);
        let gained = u64::from(val.count_ones());
        let lost = u64::from(old.count_ones());
        if gained > lost {
            self.run_pops[w / RUN_WORDS].fetch_add((gained - lost) as u32, Ordering::AcqRel);
            self.ones.fetch_add(gained - lost, Ordering::AcqRel);
        } else if lost > gained {
            self.run_pops[w / RUN_WORDS].fetch_sub((lost - gained) as u32, Ordering::AcqRel);
            self.ones.fetch_sub(lost - gained, Ordering::AcqRel);
        }
        if val != 0 {
            self.summary[w / 64].fetch_or(1u64 << (w % 64), Ordering::AcqRel);
        } else if old != 0 {
            self.retire_summary_bit(w);
        }
        old
    }

    /// Clears word `w`'s summary bit, then re-sets it if the word has
    /// concurrently become non-zero again — the re-check keeps the
    /// summary free of false *negatives* under racing writers (false
    /// positives are tolerated by every scan).
    fn retire_summary_bit(&self, w: usize) {
        let sbit = 1u64 << (w % 64);
        self.summary[w / 64].fetch_and(!sbit, Ordering::AcqRel);
        if self.words[w].load(Ordering::Acquire) != 0 {
            self.summary[w / 64].fetch_or(sbit, Ordering::AcqRel);
        }
    }

    /// Clears every bit. Not atomic as a whole — concurrent writers may
    /// interleave — but each word store is, and the popcount stays
    /// transition-exact.
    pub fn clear_all(&self) {
        for w in 0..self.words.len() {
            self.store_word(w, 0);
        }
    }

    /// Calls `f(word_index, word)` for every non-zero leaf word in
    /// ascending order, located through the summary level. Each word is
    /// loaded once; words that went zero behind a stale summary bit are
    /// skipped. The view is per-word consistent, not a global snapshot.
    pub fn for_each_word(&self, mut f: impl FnMut(usize, u64)) {
        for (s, sword) in self.summary.iter().enumerate() {
            let mut sbits = sword.load(Ordering::Acquire);
            while sbits != 0 {
                let j = sbits.trailing_zeros() as usize;
                sbits &= sbits - 1;
                let w = s * 64 + j;
                let word = self.words[w].load(Ordering::Acquire);
                if word != 0 {
                    f(w, word);
                }
            }
        }
    }

    /// Materialises a point-in-time (per-word consistent) [`Bitmap2L`]
    /// copy, for handing to sequential scan code.
    pub fn to_bitmap(&self) -> Bitmap2L {
        let mut out = Bitmap2L::new(self.len);
        self.for_each_word(|w, word| {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                out.set(w * 64 + b);
            }
        });
        out
    }

    /// Number of 512-page runs in the huge tier (the last may be
    /// partial).
    pub fn runs(&self) -> usize {
        self.run_pops.len()
    }

    /// Addressable bits in run `r`: `RUN_PAGES`, or fewer for a trailing
    /// partial run.
    ///
    /// # Panics
    ///
    /// Panics if `r` is past the last run.
    #[inline]
    pub fn run_len(&self, r: usize) -> usize {
        assert!(r < self.run_pops.len(), "run index {r} out of range");
        (self.len - r * RUN_PAGES).min(RUN_PAGES)
    }

    /// Maintained popcount of run `r`. Exact at quiescence.
    ///
    /// # Panics
    ///
    /// Panics if `r` is past the last run.
    #[inline]
    pub fn run_pop(&self, r: usize) -> usize {
        self.run_pops[r].load(Ordering::Acquire) as usize
    }

    /// Classifies run `r` from its maintained popcount, in O(1). Exact
    /// at quiescence; a racing writer can make the class momentarily
    /// stale, never torn.
    ///
    /// # Panics
    ///
    /// Panics if `r` is past the last run.
    #[inline]
    pub fn run_class(&self, r: usize) -> RunClass {
        let pop = self.run_pop(r);
        if pop == 0 {
            RunClass::Empty
        } else if pop == self.run_len(r) {
            RunClass::Full
        } else {
            RunClass::Mixed
        }
    }

    /// Publishes the words `new` at `base_word ..`, diffing against
    /// `shadow` (this thread's record of what it last published) and
    /// storing only changed words, in a single pass over the slice.
    /// Unchanged 8-word runs are skipped with one branch-free XOR
    /// compare; past the diff threshold every chunk compare fails and
    /// the walk degrades to straight-line plain stores, so a
    /// uniformly-dirty run publishes as eight stores. The total
    /// popcount moves with one RMW, touched summary words with one RMW
    /// each, and touched run popcounts with one RMW each — instead of
    /// 3–4 RMWs *per word* via [`AtomicBitmap2L::store_word`]. `shadow`
    /// is updated to match `new`. Returns the number of words stored.
    ///
    /// Caller contract: words `base_word .. base_word + new.len()` are
    /// written only by this thread (the sharded engine's word-aligned
    /// slice discipline), and `shadow` faithfully holds their current
    /// values. The batch summary RMWs only touch this slice's bits, so
    /// other shards under shared summary words are unaffected.
    ///
    /// # Panics
    ///
    /// Panics if `new` and `shadow` differ in length, if the slice runs
    /// past the last word, or if `new` sets bits past `len` in the final
    /// partial word.
    pub fn publish_words(&self, base_word: usize, new: &[u64], shadow: &mut [u64]) -> usize {
        assert_eq!(new.len(), shadow.len(), "new/shadow lengths differ");
        if new.is_empty() {
            return 0;
        }
        let last = base_word + new.len() - 1;
        assert!(last < self.words.len(), "word slice out of range");
        let bits_last = (self.len - last * 64).min(64);
        assert!(
            bits_last == 64 || new[new.len() - 1] & !((1u64 << bits_last) - 1) == 0,
            "word {last} value sets bits past the bitmap's {} bits",
            self.len
        );
        let words = &self.words[base_word..=last];
        let mut gained = 0u64;
        let mut lost = 0u64;
        let mut stored = 0usize;
        // Streaming accumulators: words ascend, so summary-word and run
        // indices are non-decreasing — one RMW per touched summary word
        // and per touched run, flushed on index change, no allocation.
        let mut cur_s = usize::MAX;
        let mut set_mask = 0u64;
        let mut clear_mask = 0u64;
        let mut cur_r = usize::MAX;
        let mut run_delta = 0i64;
        let flush_summary = |s: usize, sm: u64, cm: u64| {
            if sm != 0 {
                self.summary[s].fetch_or(sm, Ordering::AcqRel);
            }
            if cm != 0 {
                self.summary[s].fetch_and(!cm, Ordering::AcqRel);
            }
        };
        let flush_run = |r: usize, d: i64| {
            if d > 0 {
                self.run_pops[r].fetch_add(d as u32, Ordering::AcqRel);
            } else if d < 0 {
                self.run_pops[r].fetch_sub((-d) as u32, Ordering::AcqRel);
            }
        };
        let mut i = 0;
        while i < new.len() {
            // One branch-free XOR compare per 8-word chunk (autovectorizes;
            // no memcmp call): unchanged chunks cost only their loads, and
            // a fully-changed slice degrades naturally to straight-line
            // stores with batched RMWs — never the 3–4 RMWs per word the
            // `store_word` path would pay.
            let j = (i + RUN_WORDS).min(new.len());
            let mut diff = 0u64;
            for (a, b) in new[i..j].iter().zip(&shadow[i..j]) {
                diff |= a ^ b;
            }
            if diff == 0 {
                i = j;
                continue;
            }
            for k in i..j {
                let (val, old) = (new[k], shadow[k]);
                if val == old {
                    continue;
                }
                let w = base_word + k;
                words[k].store(val, Ordering::Release);
                stored += 1;
                let (np, op) = (u64::from(val.count_ones()), u64::from(old.count_ones()));
                gained += np;
                lost += op;
                let r = w / RUN_WORDS;
                if r != cur_r {
                    if cur_r != usize::MAX {
                        flush_run(cur_r, run_delta);
                    }
                    cur_r = r;
                    run_delta = 0;
                }
                run_delta += np as i64 - op as i64;
                if (old == 0) != (val == 0) {
                    let s = w / 64;
                    if s != cur_s {
                        if cur_s != usize::MAX {
                            flush_summary(cur_s, set_mask, clear_mask);
                        }
                        cur_s = s;
                        set_mask = 0;
                        clear_mask = 0;
                    }
                    if old == 0 {
                        set_mask |= 1u64 << (w % 64);
                    } else {
                        clear_mask |= 1u64 << (w % 64);
                    }
                }
                shadow[k] = val;
            }
            i = j;
        }
        if cur_r != usize::MAX {
            flush_run(cur_r, run_delta);
        }
        if cur_s != usize::MAX {
            flush_summary(cur_s, set_mask, clear_mask);
        }
        if gained > lost {
            self.ones.fetch_add(gained - lost, Ordering::AcqRel);
        } else if lost > gained {
            self.ones.fetch_sub(lost - gained, Ordering::AcqRel);
        }
        stored
    }

    /// Sum of set bits in leaf words `start_word .. end_word` (clamped).
    /// The sharded engine uses this for per-shard published counts, since
    /// each shard owns a word-aligned slice.
    pub fn count_words_in(&self, start_word: usize, end_word: usize) -> u64 {
        let end = end_word.min(self.words.len());
        self.words[start_word.min(end)..end]
            .iter()
            .map(|w| u64::from(w.load(Ordering::Acquire).count_ones()))
            .sum()
    }

    /// Verifies quiescent consistency: no word is non-zero without its
    /// summary bit, and the maintained popcount matches a recount. Call
    /// only while writers are quiescent — a mid-flight writer can make a
    /// fresh count legitimately disagree with a racing recount.
    ///
    /// # Errors
    ///
    /// A static description of the first inconsistency found.
    pub fn check_consistency(&self) -> Result<(), &'static str> {
        for (w, word) in self.words.iter().enumerate() {
            let summarized = self.summary[w / 64].load(Ordering::Acquire) & (1u64 << (w % 64)) != 0;
            if word.load(Ordering::Acquire) != 0 && !summarized {
                return Err("non-zero leaf word lacks its summary bit");
            }
        }
        for r in 0..self.run_pops.len() {
            let w0 = r * RUN_WORDS;
            let w1 = (w0 + RUN_WORDS).min(self.words.len());
            let pop: u64 = self.words[w0..w1]
                .iter()
                .map(|w| u64::from(w.load(Ordering::Acquire).count_ones()))
                .sum();
            if pop != self.run_pop(r) as u64 {
                return Err("run popcount out of sync with leaf words");
            }
        }
        if self.recount() != self.count() {
            return Err("maintained popcount out of sync with leaf words");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Deterministic xorshift64* for the seeded interleaving tests.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    #[test]
    fn single_bit_round_trips() {
        let b = AtomicBitmap2L::new(100);
        assert!(b.set(37));
        assert!(!b.set(37), "second set reports no transition");
        assert!(b.test(37));
        assert_eq!(b.count(), 1);
        assert!(b.clear(37));
        assert!(!b.clear(37), "second clear reports no transition");
        assert_eq!(b.count(), 0);
        b.check_consistency().unwrap();
    }

    #[test]
    fn store_word_tracks_the_bit_delta() {
        let b = AtomicBitmap2L::new(256);
        assert_eq!(b.store_word(1, 0b1011), 0);
        assert_eq!(b.count(), 3);
        assert_eq!(b.store_word(1, 0b0110), 0b1011);
        assert_eq!(b.count(), 2);
        assert_eq!(b.store_word(1, 0), 0b0110);
        assert_eq!(b.count(), 0);
        b.check_consistency().unwrap();
    }

    #[test]
    fn matches_sequential_bitmap_under_a_seeded_op_stream() {
        let atomic = AtomicBitmap2L::new(1000);
        let mut model = Bitmap2L::new(1000);
        let mut rng = 0x5eed;
        for _ in 0..20_000 {
            let r = xorshift(&mut rng);
            let i = (r % 1000) as usize;
            if r & (1 << 40) == 0 {
                assert_eq!(atomic.set(i), model.set(i));
            } else {
                assert_eq!(atomic.clear(i), model.clear(i));
            }
        }
        assert_eq!(atomic.count() as usize, model.count());
        assert_eq!(
            atomic.to_bitmap().iter_ones().collect::<Vec<_>>(),
            model.iter_ones().collect::<Vec<_>>()
        );
        atomic.check_consistency().unwrap();
    }

    #[test]
    fn for_each_word_skips_stale_summary_bits() {
        let b = AtomicBitmap2L::new(64 * 100);
        b.set(64 * 3 + 5);
        b.set(64 * 97);
        b.clear(64 * 3 + 5);
        let mut seen = Vec::new();
        b.for_each_word(|w, bits| seen.push((w, bits)));
        assert_eq!(seen, vec![(97, 1)]);
    }

    #[test]
    fn partial_last_word_rejects_out_of_range_stores() {
        let b = AtomicBitmap2L::new(70);
        b.store_word(1, 0b10_0000); // bit 69: allowed
        assert_eq!(b.count(), 1);
        let res = std::panic::catch_unwind(|| b.store_word(1, 1 << 6));
        assert!(res.is_err(), "bit 70 is out of range");
    }

    #[test]
    fn publish_words_matches_store_word_semantics() {
        let pub_map = AtomicBitmap2L::new(64 * 64);
        let ref_map = AtomicBitmap2L::new(64 * 64);
        let mut shadow = vec![0u64; 64];
        let mut rng = 0xD15Bu64;
        for round in 0..50 {
            // Alternate sparse diffs and dense rewrites to hit both the
            // skip-unchanged-runs path and the dense fallback.
            let mut new = shadow.clone();
            let n_changes = if round % 2 == 0 { 3 } else { 50 };
            for _ in 0..n_changes {
                let w = (xorshift(&mut rng) % 64) as usize;
                new[w] = xorshift(&mut rng);
            }
            pub_map.publish_words(0, &new, &mut shadow);
            for (w, &val) in new.iter().enumerate() {
                ref_map.store_word(w, val);
            }
            assert_eq!(shadow, new, "shadow tracks published state");
            assert_eq!(pub_map.count(), ref_map.count(), "round {round}");
            for w in 0..64 {
                assert_eq!(pub_map.load_word(w), ref_map.load_word(w));
            }
            pub_map.check_consistency().unwrap();
        }
    }

    #[test]
    fn publish_words_skips_unchanged_state_entirely() {
        let b = AtomicBitmap2L::new(64 * 32);
        let mut shadow = vec![0u64; 32];
        let mut new = vec![0u64; 32];
        new[5] = 0b1010;
        assert_eq!(b.publish_words(0, &new, &mut shadow), 1);
        assert_eq!(b.publish_words(0, &new, &mut shadow), 0, "no diff");
        assert_eq!(b.count(), 2);
        b.check_consistency().unwrap();
    }

    #[test]
    fn publish_words_tracks_run_popcounts() {
        // Two full runs plus a partial word of slack.
        let b = AtomicBitmap2L::new(2 * 512 + 40);
        assert_eq!(b.runs(), 3);
        let mut shadow = vec![0u64; b.word_count()];
        let mut new = vec![0u64; b.word_count()];
        for w in 0..8 {
            new[w] = !0; // run 0 uniformly dirty
        }
        new[8] = 1; // one bit in run 1
        b.publish_words(0, &new, &mut shadow);
        assert_eq!(b.run_pop(0), 512);
        assert_eq!(b.run_class(0), RunClass::Full);
        assert_eq!(b.run_pop(1), 1);
        assert_eq!(b.run_class(1), RunClass::Mixed);
        assert_eq!(b.run_class(2), RunClass::Empty);
        assert_eq!(b.run_len(2), 40);
        b.check_consistency().unwrap();
        // Retract run 0; the run classifies empty again.
        for w in 0..8 {
            new[w] = 0;
        }
        b.publish_words(0, &new, &mut shadow);
        assert_eq!(b.run_class(0), RunClass::Empty);
        assert_eq!(b.count(), 1);
        b.check_consistency().unwrap();
    }

    #[test]
    fn publish_words_rejects_out_of_range_tail_bits() {
        let b = AtomicBitmap2L::new(70);
        let mut shadow = vec![0u64; 2];
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.publish_words(0, &[0, 1 << 6], &mut shadow)
        }));
        assert!(res.is_err(), "bit 70 is out of range");
    }

    /// Satellite: seeded-interleaving publication test. Each of 4 threads
    /// owns a disjoint word-aligned slice and publishes a deterministic
    /// word stream; after joining, the shared bitmap must equal the union
    /// of the per-thread final states and pass the quiescent checks.
    #[test]
    fn disjoint_word_publication_is_exact_across_threads() {
        const WORDS_PER_THREAD: usize = 32;
        const THREADS: usize = 4;
        let shared = Arc::new(AtomicBitmap2L::new(64 * WORDS_PER_THREAD * THREADS));
        let mut expected: Vec<u64> = vec![0; WORDS_PER_THREAD * THREADS];
        // Precompute each thread's deterministic final words.
        for t in 0..THREADS {
            let mut rng = 0xA11CE ^ (t as u64) << 8;
            for w in 0..WORDS_PER_THREAD {
                for _ in 0..50 {
                    expected[t * WORDS_PER_THREAD + w] = xorshift(&mut rng);
                }
            }
        }
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let base = t * WORDS_PER_THREAD;
                    let mut rng = 0xA11CE ^ (t as u64) << 8;
                    for w in 0..WORDS_PER_THREAD {
                        for _ in 0..50 {
                            shared.store_word(base + w, xorshift(&mut rng));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        shared.check_consistency().unwrap();
        let want: u64 = expected.iter().map(|w| u64::from(w.count_ones())).sum();
        assert_eq!(shared.count(), want);
        for (w, &val) in expected.iter().enumerate() {
            assert_eq!(shared.load_word(w), val, "word {w} diverged");
        }
        // Per-slice counts see only their owner's words.
        for t in 0..THREADS {
            let want: u64 = expected[t * WORDS_PER_THREAD..(t + 1) * WORDS_PER_THREAD]
                .iter()
                .map(|w| u64::from(w.count_ones()))
                .sum();
            assert_eq!(
                shared.count_words_in(t * WORDS_PER_THREAD, (t + 1) * WORDS_PER_THREAD),
                want
            );
        }
    }

    /// Racing bit operations on *shared* words: transitions are counted
    /// exactly once, so after every thread sets the same population and
    /// half clear it again, the count matches the surviving bits.
    #[test]
    fn racing_bit_ops_keep_the_popcount_transition_exact() {
        const BITS: usize = 4096;
        let shared = Arc::new(AtomicBitmap2L::new(BITS));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut rng = 0xBEEF ^ t;
                    for _ in 0..30_000 {
                        let r = xorshift(&mut rng);
                        let i = (r % BITS as u64) as usize;
                        if r & (1 << 33) == 0 {
                            shared.set(i);
                        } else {
                            shared.clear(i);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.count(), shared.recount());
        shared.check_consistency().unwrap();
    }
}
