//! A lock-free `AtomicU64`-word variant of [`Bitmap2L`] for cross-thread
//! dirty-page publication.
//!
//! The parallel sharded engine runs one engine per OS thread, each owning
//! its shard's private [`Bitmap2L`] page state. Observers on *other*
//! threads (the control plane, monitoring loops) still want an
//! approximate global dirty picture without stopping the data plane, so
//! each shard thread periodically *publishes* its dirty words into a
//! shared [`AtomicBitmap2L`] with plain word stores — no locks, no
//! coordination beyond the atomics themselves.
//!
//! Concurrency contract:
//!
//! - **Disjoint-word writers are exact.** When every word is written by
//!   at most one thread at a time (the sharded engine's discipline: each
//!   shard owns a word-aligned slice), the maintained popcount and the
//!   summary level are exact once the writers are quiescent.
//! - **Racing writers stay safe but conservative.** Concurrent `set`/
//!   `clear`/`store_word` on the *same* word never lose a set bit's
//!   summary coverage and never corrupt the popcount (each transition is
//!   counted exactly once, against the `fetch_or`/`fetch_and` return
//!   value), but the summary may transiently keep a bit for a word that
//!   has gone zero. Scans tolerate that: a summary bit is a hint, and
//!   zero words found through it are skipped.
//!
//! # Examples
//!
//! ```
//! use mem_sim::AtomicBitmap2L;
//!
//! let b = AtomicBitmap2L::new(10_000);
//! b.set(3);
//! b.store_word(1, 0b101); // publish bits 64 and 66 in one store
//! assert_eq!(b.count(), 3);
//! assert!(b.test(66));
//! assert_eq!(b.to_bitmap().iter_ones().collect::<Vec<_>>(), vec![3, 64, 66]);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use crate::bitmap::Bitmap2L;

/// A fixed-size concurrent bitmap with a one-bit-per-word summary level
/// and a maintained popcount, mirroring [`Bitmap2L`]'s shape with every
/// level held in `AtomicU64`s.
///
/// All index arguments must be in range; out-of-range indices panic, like
/// slice indexing. `&self` suffices for every operation, so one instance
/// can be shared across threads behind an `Arc` with no further locking.
#[derive(Debug)]
pub struct AtomicBitmap2L {
    /// Number of addressable bits.
    len: usize,
    /// Leaf level: bit `i % 64` of `words[i / 64]` is bit `i`.
    words: Vec<AtomicU64>,
    /// Summary level: bit `w % 64` of `summary[w / 64]` is set if
    /// `words[w]` *may* be non-zero (conservative under races).
    summary: Vec<AtomicU64>,
    /// Maintained popcount; exact at quiescence, never drifting (every
    /// bit transition is counted against the atomic op's return value).
    ones: AtomicU64,
}

impl AtomicBitmap2L {
    /// Creates an all-zero bitmap over `len` bits.
    pub fn new(len: usize) -> Self {
        let n_words = len.div_ceil(64);
        AtomicBitmap2L {
            len,
            words: (0..n_words).map(|_| AtomicU64::new(0)).collect(),
            summary: (0..n_words.div_ceil(64))
                .map(|_| AtomicU64::new(0))
                .collect(),
            ones: AtomicU64::new(0),
        }
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the bitmap addresses no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of leaf words.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Number of set bits. Exact once concurrent writers are quiescent.
    pub fn count(&self) -> u64 {
        self.ones.load(Ordering::Acquire)
    }

    /// Recomputes the popcount from the leaf words in one pass.
    pub fn recount(&self) -> u64 {
        self.words
            .iter()
            .map(|w| u64::from(w.load(Ordering::Acquire).count_ones()))
            .sum()
    }

    #[inline]
    fn check_index(&self, i: usize) {
        assert!(
            i < self.len,
            "bit index {i} out of range for bitmap of {} bits",
            self.len
        );
    }

    /// Tests bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn test(&self, i: usize) -> bool {
        self.check_index(i);
        self.words[i / 64].load(Ordering::Acquire) & (1u64 << (i % 64)) != 0
    }

    /// Loads the raw leaf word holding bits `w * 64 .. w * 64 + 64`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is past the last word.
    #[inline]
    pub fn load_word(&self, w: usize) -> u64 {
        self.words[w].load(Ordering::Acquire)
    }

    /// Sets bit `i`, returning `true` if this call made the transition.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        self.check_index(i);
        let w = i / 64;
        let mask = 1u64 << (i % 64);
        let old = self.words[w].fetch_or(mask, Ordering::AcqRel);
        if old & mask != 0 {
            return false;
        }
        self.summary[w / 64].fetch_or(1u64 << (w % 64), Ordering::AcqRel);
        self.ones.fetch_add(1, Ordering::AcqRel);
        true
    }

    /// Clears bit `i`, returning `true` if this call made the transition.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn clear(&self, i: usize) -> bool {
        self.check_index(i);
        let w = i / 64;
        let mask = 1u64 << (i % 64);
        let old = self.words[w].fetch_and(!mask, Ordering::AcqRel);
        if old & mask == 0 {
            return false;
        }
        self.ones.fetch_sub(1, Ordering::AcqRel);
        if old == mask {
            self.retire_summary_bit(w);
        }
        true
    }

    /// Replaces the whole leaf word `w` with `val`, returning the prior
    /// word. The popcount moves by the exact bit delta; the summary bit
    /// follows the stored value. This is the publication primitive: a
    /// shard thread pushes each changed word of its private bitmap in one
    /// store instead of 64 bit operations.
    ///
    /// # Panics
    ///
    /// Panics if `w` is past the last word, or if `val` sets bits past
    /// `len` in the final partial word.
    pub fn store_word(&self, w: usize, val: u64) -> u64 {
        let bits_here = (self.len - (w * 64).min(self.len)).min(64);
        assert!(
            bits_here == 64 || val & !((1u64 << bits_here) - 1) == 0,
            "word {w} value sets bits past the bitmap's {} bits",
            self.len
        );
        let old = self.words[w].swap(val, Ordering::AcqRel);
        let gained = u64::from(val.count_ones());
        let lost = u64::from(old.count_ones());
        if gained > lost {
            self.ones.fetch_add(gained - lost, Ordering::AcqRel);
        } else if lost > gained {
            self.ones.fetch_sub(lost - gained, Ordering::AcqRel);
        }
        if val != 0 {
            self.summary[w / 64].fetch_or(1u64 << (w % 64), Ordering::AcqRel);
        } else if old != 0 {
            self.retire_summary_bit(w);
        }
        old
    }

    /// Clears word `w`'s summary bit, then re-sets it if the word has
    /// concurrently become non-zero again — the re-check keeps the
    /// summary free of false *negatives* under racing writers (false
    /// positives are tolerated by every scan).
    fn retire_summary_bit(&self, w: usize) {
        let sbit = 1u64 << (w % 64);
        self.summary[w / 64].fetch_and(!sbit, Ordering::AcqRel);
        if self.words[w].load(Ordering::Acquire) != 0 {
            self.summary[w / 64].fetch_or(sbit, Ordering::AcqRel);
        }
    }

    /// Clears every bit. Not atomic as a whole — concurrent writers may
    /// interleave — but each word store is, and the popcount stays
    /// transition-exact.
    pub fn clear_all(&self) {
        for w in 0..self.words.len() {
            self.store_word(w, 0);
        }
    }

    /// Calls `f(word_index, word)` for every non-zero leaf word in
    /// ascending order, located through the summary level. Each word is
    /// loaded once; words that went zero behind a stale summary bit are
    /// skipped. The view is per-word consistent, not a global snapshot.
    pub fn for_each_word(&self, mut f: impl FnMut(usize, u64)) {
        for (s, sword) in self.summary.iter().enumerate() {
            let mut sbits = sword.load(Ordering::Acquire);
            while sbits != 0 {
                let j = sbits.trailing_zeros() as usize;
                sbits &= sbits - 1;
                let w = s * 64 + j;
                let word = self.words[w].load(Ordering::Acquire);
                if word != 0 {
                    f(w, word);
                }
            }
        }
    }

    /// Materialises a point-in-time (per-word consistent) [`Bitmap2L`]
    /// copy, for handing to sequential scan code.
    pub fn to_bitmap(&self) -> Bitmap2L {
        let mut out = Bitmap2L::new(self.len);
        self.for_each_word(|w, word| {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                out.set(w * 64 + b);
            }
        });
        out
    }

    /// Sum of set bits in leaf words `start_word .. end_word` (clamped).
    /// The sharded engine uses this for per-shard published counts, since
    /// each shard owns a word-aligned slice.
    pub fn count_words_in(&self, start_word: usize, end_word: usize) -> u64 {
        let end = end_word.min(self.words.len());
        self.words[start_word.min(end)..end]
            .iter()
            .map(|w| u64::from(w.load(Ordering::Acquire).count_ones()))
            .sum()
    }

    /// Verifies quiescent consistency: no word is non-zero without its
    /// summary bit, and the maintained popcount matches a recount. Call
    /// only while writers are quiescent — a mid-flight writer can make a
    /// fresh count legitimately disagree with a racing recount.
    ///
    /// # Errors
    ///
    /// A static description of the first inconsistency found.
    pub fn check_consistency(&self) -> Result<(), &'static str> {
        for (w, word) in self.words.iter().enumerate() {
            let summarized = self.summary[w / 64].load(Ordering::Acquire) & (1u64 << (w % 64)) != 0;
            if word.load(Ordering::Acquire) != 0 && !summarized {
                return Err("non-zero leaf word lacks its summary bit");
            }
        }
        if self.recount() != self.count() {
            return Err("maintained popcount out of sync with leaf words");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Deterministic xorshift64* for the seeded interleaving tests.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    #[test]
    fn single_bit_round_trips() {
        let b = AtomicBitmap2L::new(100);
        assert!(b.set(37));
        assert!(!b.set(37), "second set reports no transition");
        assert!(b.test(37));
        assert_eq!(b.count(), 1);
        assert!(b.clear(37));
        assert!(!b.clear(37), "second clear reports no transition");
        assert_eq!(b.count(), 0);
        b.check_consistency().unwrap();
    }

    #[test]
    fn store_word_tracks_the_bit_delta() {
        let b = AtomicBitmap2L::new(256);
        assert_eq!(b.store_word(1, 0b1011), 0);
        assert_eq!(b.count(), 3);
        assert_eq!(b.store_word(1, 0b0110), 0b1011);
        assert_eq!(b.count(), 2);
        assert_eq!(b.store_word(1, 0), 0b0110);
        assert_eq!(b.count(), 0);
        b.check_consistency().unwrap();
    }

    #[test]
    fn matches_sequential_bitmap_under_a_seeded_op_stream() {
        let atomic = AtomicBitmap2L::new(1000);
        let mut model = Bitmap2L::new(1000);
        let mut rng = 0x5eed;
        for _ in 0..20_000 {
            let r = xorshift(&mut rng);
            let i = (r % 1000) as usize;
            if r & (1 << 40) == 0 {
                assert_eq!(atomic.set(i), model.set(i));
            } else {
                assert_eq!(atomic.clear(i), model.clear(i));
            }
        }
        assert_eq!(atomic.count() as usize, model.count());
        assert_eq!(
            atomic.to_bitmap().iter_ones().collect::<Vec<_>>(),
            model.iter_ones().collect::<Vec<_>>()
        );
        atomic.check_consistency().unwrap();
    }

    #[test]
    fn for_each_word_skips_stale_summary_bits() {
        let b = AtomicBitmap2L::new(64 * 100);
        b.set(64 * 3 + 5);
        b.set(64 * 97);
        b.clear(64 * 3 + 5);
        let mut seen = Vec::new();
        b.for_each_word(|w, bits| seen.push((w, bits)));
        assert_eq!(seen, vec![(97, 1)]);
    }

    #[test]
    fn partial_last_word_rejects_out_of_range_stores() {
        let b = AtomicBitmap2L::new(70);
        b.store_word(1, 0b10_0000); // bit 69: allowed
        assert_eq!(b.count(), 1);
        let res = std::panic::catch_unwind(|| b.store_word(1, 1 << 6));
        assert!(res.is_err(), "bit 70 is out of range");
    }

    /// Satellite: seeded-interleaving publication test. Each of 4 threads
    /// owns a disjoint word-aligned slice and publishes a deterministic
    /// word stream; after joining, the shared bitmap must equal the union
    /// of the per-thread final states and pass the quiescent checks.
    #[test]
    fn disjoint_word_publication_is_exact_across_threads() {
        const WORDS_PER_THREAD: usize = 32;
        const THREADS: usize = 4;
        let shared = Arc::new(AtomicBitmap2L::new(64 * WORDS_PER_THREAD * THREADS));
        let mut expected: Vec<u64> = vec![0; WORDS_PER_THREAD * THREADS];
        // Precompute each thread's deterministic final words.
        for t in 0..THREADS {
            let mut rng = 0xA11CE ^ (t as u64) << 8;
            for w in 0..WORDS_PER_THREAD {
                for _ in 0..50 {
                    expected[t * WORDS_PER_THREAD + w] = xorshift(&mut rng);
                }
            }
        }
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let base = t * WORDS_PER_THREAD;
                    let mut rng = 0xA11CE ^ (t as u64) << 8;
                    for w in 0..WORDS_PER_THREAD {
                        for _ in 0..50 {
                            shared.store_word(base + w, xorshift(&mut rng));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        shared.check_consistency().unwrap();
        let want: u64 = expected.iter().map(|w| u64::from(w.count_ones())).sum();
        assert_eq!(shared.count(), want);
        for (w, &val) in expected.iter().enumerate() {
            assert_eq!(shared.load_word(w), val, "word {w} diverged");
        }
        // Per-slice counts see only their owner's words.
        for t in 0..THREADS {
            let want: u64 = expected[t * WORDS_PER_THREAD..(t + 1) * WORDS_PER_THREAD]
                .iter()
                .map(|w| u64::from(w.count_ones()))
                .sum();
            assert_eq!(
                shared.count_words_in(t * WORDS_PER_THREAD, (t + 1) * WORDS_PER_THREAD),
                want
            );
        }
    }

    /// Racing bit operations on *shared* words: transitions are counted
    /// exactly once, so after every thread sets the same population and
    /// half clear it again, the count matches the surviving bits.
    #[test]
    fn racing_bit_ops_keep_the_popcount_transition_exact() {
        const BITS: usize = 4096;
        let shared = Arc::new(AtomicBitmap2L::new(BITS));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut rng = 0xBEEF ^ t;
                    for _ in 0..30_000 {
                        let r = xorshift(&mut rng);
                        let i = (r % BITS as u64) as usize;
                        if r & (1 << 33) == 0 {
                            shared.set(i);
                        } else {
                            shared.clear(i);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.count(), shared.recount());
        shared.check_consistency().unwrap();
    }
}
