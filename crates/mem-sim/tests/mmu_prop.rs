//! Property tests of the MMU model: memory behaves like flat bytes, write
//! protection is exact, and the hardware dirty counter never diverges from
//! the page-table ground truth.

use mem_sim::{AccessError, Mmu, PageId, WalkOptions, PAGE_SIZE};
use proptest::prelude::*;
use sim_clock::{Clock, CostModel};

const PAGES: usize = 16;

#[derive(Debug, Clone)]
enum Op {
    Write { addr: u64, len: u8, fill: u8 },
    Read { addr: u64, len: u8 },
    Protect { page: u8 },
    Unprotect { page: u8 },
    WalkExact,
    WalkStale,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let max_addr = (PAGES * PAGE_SIZE) as u64 - 256;
    prop_oneof![
        4 => (0..max_addr, 1..=255u8, any::<u8>())
            .prop_map(|(addr, len, fill)| Op::Write { addr, len, fill }),
        3 => (0..max_addr, 1..=255u8).prop_map(|(addr, len)| Op::Read { addr, len }),
        1 => (0..PAGES as u8).prop_map(|page| Op::Protect { page }),
        1 => (0..PAGES as u8).prop_map(|page| Op::Unprotect { page }),
        1 => Just(Op::WalkExact),
        1 => Just(Op::WalkStale),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn memory_matches_model_and_protection_is_exact(
        ops in prop::collection::vec(op_strategy(), 1..150)
    ) {
        let mut mmu = Mmu::new(PAGES, Clock::new(), CostModel::calibrated());
        let mut model = vec![0u8; PAGES * PAGE_SIZE];
        let mut protected = [false; PAGES];
        let all_pages: Vec<PageId> = (0..PAGES as u64).map(PageId).collect();

        for op in &ops {
            match *op {
                Op::Write { addr, len, fill } => {
                    // Clamp the chunk to its page, like the NV region layer.
                    let in_page = PAGE_SIZE - (addr as usize % PAGE_SIZE);
                    let n = (len as usize).min(in_page);
                    let data = vec![fill; n];
                    let page = PageId::containing(addr);
                    match mmu.write(addr, &data) {
                        Ok(()) => {
                            prop_assert!(!protected[page.index()],
                                "write through protection succeeded");
                            model[addr as usize..addr as usize + n].fill(fill);
                        }
                        Err(AccessError::WriteProtected(p)) => {
                            prop_assert_eq!(p, page);
                            prop_assert!(protected[page.index()],
                                "spurious fault on writable page");
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("write: {e}"))),
                    }
                }
                Op::Read { addr, len } => {
                    let mut buf = vec![0u8; len as usize];
                    mmu.read(addr, &mut buf).unwrap();
                    prop_assert_eq!(&buf[..], &model[addr as usize..addr as usize + len as usize]);
                }
                Op::Protect { page } => {
                    mmu.protect_page(PageId(page as u64));
                    protected[page as usize] = true;
                }
                Op::Unprotect { page } => {
                    mmu.unprotect_page(PageId(page as u64));
                    protected[page as usize] = false;
                }
                Op::WalkExact => {
                    let _ = mmu.walk_and_clear_dirty(&all_pages, WalkOptions::exact());
                }
                Op::WalkStale => {
                    let _ = mmu.walk_and_clear_dirty(&all_pages, WalkOptions::stale());
                }
            }
        }
    }

    #[test]
    fn exact_walks_never_lose_dirty_pages(
        writes in prop::collection::vec((0..PAGES as u64, any::<u8>()), 1..60)
    ) {
        // After any write sequence, an exact walk must report exactly the
        // set of pages written since the previous exact walk.
        let mut mmu = Mmu::new(PAGES, Clock::new(), CostModel::calibrated());
        let all_pages: Vec<PageId> = (0..PAGES as u64).map(PageId).collect();
        let _ = mmu.walk_and_clear_dirty(&all_pages, WalkOptions::exact());

        let mut written: std::collections::HashSet<u64> = Default::default();
        for &(page, fill) in &writes {
            mmu.write(page * PAGE_SIZE as u64, &[fill]).unwrap();
            written.insert(page);
        }
        let dirty: std::collections::HashSet<u64> = mmu
            .walk_and_clear_dirty(&all_pages, WalkOptions::exact())
            .into_iter()
            .map(|p| p.0)
            .collect();
        prop_assert_eq!(dirty, written);
    }

    #[test]
    fn hardware_counter_equals_pte_dirty_population(
        writes in prop::collection::vec(0..PAGES as u64, 1..100),
        limit in 1..=PAGES as u64,
        credits in prop::collection::vec(0..PAGES as u64, 0..20),
    ) {
        let mut mmu = Mmu::new(PAGES, Clock::new(), CostModel::calibrated());
        mmu.set_dirty_limit(Some(limit));
        for &page in &writes {
            match mmu.write(page * PAGE_SIZE as u64, &[1]) {
                Ok(()) => {}
                Err(AccessError::DirtyLimitReached(_)) => {
                    prop_assert_eq!(mmu.dirty_counted(), limit,
                        "interrupt must fire exactly at the limit");
                }
                Err(e) => return Err(TestCaseError::fail(format!("write: {e}"))),
            }
            prop_assert!(mmu.dirty_counted() <= limit);
            prop_assert_eq!(
                mmu.dirty_counted(),
                mmu.page_table().dirty_count() as u64,
                "counter must track PTE ground truth"
            );
        }
        for &page in &credits {
            if mmu.page_table().flags(PageId(page)).is_dirty() {
                mmu.credit_dirty_page(PageId(page));
            }
            prop_assert_eq!(
                mmu.dirty_counted(),
                mmu.page_table().dirty_count() as u64
            );
        }
    }
}
