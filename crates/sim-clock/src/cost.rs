//! Named per-event virtual-time costs, calibrated from the paper.
//!
//! Section 5 of the Viyojit paper reports the costs that dominate its
//! software implementation on an Intel Nehalem-class machine: a full TLB
//! flush takes ~3.5 ms, batch-setting or clearing write-protection bits
//! takes ~3 ms, and first-write faults cost several microseconds each
//! (a user-level fault handler round trip: trap, kernel entry, handler
//! body, PTE update, return). The
//! [`CostModel::calibrated`] constructor encodes those measurements (scaled
//! to per-page costs where the paper reports batch numbers) so that the
//! simulated Viyojit-vs-baseline comparison reproduces the paper's cost
//! *ratios* rather than absolute wall-clock numbers.

use crate::SimDuration;

/// Per-event virtual-time costs charged by the simulated substrates.
///
/// Construct with [`CostModel::calibrated`] for paper-faithful defaults, or
/// start from [`CostModel::free`] in unit tests that want pure functional
/// behaviour with no time accounting. Individual fields can be overridden
/// with the `with_*` builder methods.
///
/// # Examples
///
/// ```
/// use sim_clock::{CostModel, SimDuration};
///
/// let costs = CostModel::calibrated().with_write_fault(SimDuration::from_micros(10));
/// assert_eq!(costs.write_fault, SimDuration::from_micros(10));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of taking a write-protection fault and running the user-level
    /// handler (trap, context save/restore, handler body). Paper §5.4 calls
    /// this "the trap overhead for the first write to a page".
    pub write_fault: SimDuration,
    /// Cost of a TLB miss (a page-table walk on the simulated machine).
    pub tlb_miss: SimDuration,
    /// Cost of a TLB hit lookup.
    pub tlb_hit: SimDuration,
    /// Cost of flushing the entire TLB. The paper measures ~3.5 ms for its
    /// development machine's full flush; that figure includes the fallout of
    /// refills, which we model separately per miss, so the direct cost here
    /// is the shootdown itself.
    pub tlb_flush: SimDuration,
    /// Cost of changing one PTE's write-protection bit (including the
    /// single-page invalidation it requires).
    pub pte_protect: SimDuration,
    /// Cost of inspecting (and optionally clearing) one PTE's dirty bit
    /// during the epoch page-table walk.
    pub pte_walk: SimDuration,
    /// Per-cache-line (64 B) cost of a DRAM access performed by the
    /// application through an NV region.
    pub dram_line_access: SimDuration,
    /// Fixed per-operation cost of the host application (request parsing,
    /// hashing, client round-trip share, ...). This is what bounds the
    /// baseline's throughput.
    pub app_op_base: SimDuration,
}

impl CostModel {
    /// Paper-calibrated defaults (see module docs).
    ///
    /// The absolute values are chosen so a baseline single-threaded
    /// key-value store sustains a few tens of K-ops/s, matching Fig. 7's
    /// NV-DRAM baselines, and so the trap/TLB costs sit in the ratios the
    /// paper reports.
    pub fn calibrated() -> Self {
        CostModel {
            write_fault: SimDuration::from_micros(4),
            tlb_miss: SimDuration::from_nanos(120),
            tlb_hit: SimDuration::from_nanos(1),
            tlb_flush: SimDuration::from_micros(12),
            pte_protect: SimDuration::from_nanos(400),
            pte_walk: SimDuration::from_nanos(60),
            dram_line_access: SimDuration::from_nanos(8),
            app_op_base: SimDuration::from_micros(24),
        }
    }

    /// A cost model in which every event is free.
    ///
    /// Useful in unit tests that assert functional behaviour (fault state
    /// machine, dirty accounting) without reasoning about time.
    pub fn free() -> Self {
        CostModel {
            write_fault: SimDuration::ZERO,
            tlb_miss: SimDuration::ZERO,
            tlb_hit: SimDuration::ZERO,
            tlb_flush: SimDuration::ZERO,
            pte_protect: SimDuration::ZERO,
            pte_walk: SimDuration::ZERO,
            dram_line_access: SimDuration::ZERO,
            app_op_base: SimDuration::ZERO,
        }
    }

    /// Returns `self` with the write-fault cost replaced.
    pub fn with_write_fault(mut self, d: SimDuration) -> Self {
        self.write_fault = d;
        self
    }

    /// Returns `self` with the TLB miss cost replaced.
    pub fn with_tlb_miss(mut self, d: SimDuration) -> Self {
        self.tlb_miss = d;
        self
    }

    /// Returns `self` with the full-TLB-flush cost replaced.
    pub fn with_tlb_flush(mut self, d: SimDuration) -> Self {
        self.tlb_flush = d;
        self
    }

    /// Returns `self` with the per-PTE protect cost replaced.
    pub fn with_pte_protect(mut self, d: SimDuration) -> Self {
        self.pte_protect = d;
        self
    }

    /// Returns `self` with the per-PTE walk cost replaced.
    pub fn with_pte_walk(mut self, d: SimDuration) -> Self {
        self.pte_walk = d;
        self
    }

    /// Returns `self` with the per-line DRAM access cost replaced.
    pub fn with_dram_line_access(mut self, d: SimDuration) -> Self {
        self.dram_line_access = d;
        self
    }

    /// Returns `self` with the fixed per-application-op cost replaced.
    pub fn with_app_op_base(mut self, d: SimDuration) -> Self {
        self.app_op_base = d;
        self
    }

    /// Cost of accessing `bytes` bytes of DRAM (rounded up to 64 B lines).
    pub fn dram_access(&self, bytes: usize) -> SimDuration {
        let lines = (bytes as u64).div_ceil(64).max(1);
        self.dram_line_access * lines
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_costs_preserve_paper_ordering() {
        let c = CostModel::calibrated();
        // A first-write fault is far more expensive than a TLB miss, which
        // is more expensive than a hit; a full flush dwarfs a single protect.
        assert!(c.write_fault > c.tlb_miss);
        assert!(c.tlb_miss > c.tlb_hit);
        assert!(c.tlb_flush > c.pte_protect);
        assert!(c.app_op_base > c.write_fault);
    }

    #[test]
    fn free_model_charges_nothing() {
        let c = CostModel::free();
        assert!(c.dram_access(4096).is_zero());
        assert!(c.write_fault.is_zero());
    }

    #[test]
    fn dram_access_rounds_up_to_lines() {
        let c = CostModel::calibrated().with_dram_line_access(SimDuration::from_nanos(10));
        assert_eq!(c.dram_access(1), SimDuration::from_nanos(10));
        assert_eq!(c.dram_access(64), SimDuration::from_nanos(10));
        assert_eq!(c.dram_access(65), SimDuration::from_nanos(20));
        assert_eq!(c.dram_access(4096), SimDuration::from_nanos(640));
    }

    #[test]
    fn builder_overrides_apply() {
        let c = CostModel::calibrated()
            .with_tlb_miss(SimDuration::from_nanos(1))
            .with_tlb_flush(SimDuration::from_nanos(2))
            .with_pte_protect(SimDuration::from_nanos(3))
            .with_pte_walk(SimDuration::from_nanos(4))
            .with_app_op_base(SimDuration::from_nanos(5));
        assert_eq!(c.tlb_miss.as_nanos(), 1);
        assert_eq!(c.tlb_flush.as_nanos(), 2);
        assert_eq!(c.pte_protect.as_nanos(), 3);
        assert_eq!(c.pte_walk.as_nanos(), 4);
        assert_eq!(c.app_op_base.as_nanos(), 5);
    }
}
