//! Virtual time and cost accounting for the Viyojit simulation stack.
//!
//! Every substrate in this workspace (MMU, TLB, SSD, battery, key-value
//! store) runs against a *virtual* nanosecond clock rather than wall-clock
//! time. This crate provides:
//!
//! - [`SimTime`] / [`SimDuration`]: nanosecond-precision instants and spans,
//! - [`Clock`]: a shareable, monotonically advancing virtual clock,
//! - [`CostModel`]: named per-event costs, calibrated from the measurements
//!   the Viyojit paper reports (trap handling, TLB flush, PTE updates, ...),
//! - [`EventQueue`]: a deterministic time-ordered event queue,
//! - [`Histogram`]: a log-bucketed latency histogram for percentile
//!   reporting in the figure harnesses.
//!
//! # Examples
//!
//! ```
//! use sim_clock::{Clock, SimDuration};
//!
//! let clock = Clock::new();
//! clock.advance(SimDuration::from_micros(25));
//! assert_eq!(clock.now().as_nanos(), 25_000);
//! ```

mod cost;
mod events;
mod histogram;
mod time;

pub use cost::CostModel;
pub use events::EventQueue;
pub use histogram::Histogram;
pub use time::{Clock, SimDuration, SimTime};
