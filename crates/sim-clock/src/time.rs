//! Virtual instants, durations, and the shared simulation clock.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An instant on the virtual timeline, in nanoseconds since simulation start.
///
/// `SimTime` is a transparent newtype over `u64`; it exists so that instants
/// and durations cannot be confused ([`SimDuration`] is the span type).
///
/// # Examples
///
/// ```
/// use sim_clock::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_micros(), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of the simulation timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// This instant expressed in nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in whole microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// This instant expressed in whole milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// This instant expressed in (fractional) seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A span of virtual time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use sim_clock::SimDuration;
///
/// let epoch = SimDuration::from_millis(1);
/// assert_eq!(epoch * 3, SimDuration::from_micros(3_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, rounding to whole nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// This span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// This span in whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// This span in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of two spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracted a later SimTime from an earlier one"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracted a longer SimDuration from a shorter one"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

/// A shareable, monotonically advancing virtual clock.
///
/// Cloning a `Clock` yields a handle to the *same* timeline, so the MMU, the
/// SSD, and the Viyojit runtime all observe a single consistent notion of
/// "now". The clock only moves when some component explicitly charges time
/// to it, which keeps runs bit-for-bit deterministic.
///
/// # Examples
///
/// ```
/// use sim_clock::{Clock, SimDuration};
///
/// let clock = Clock::new();
/// let view = clock.clone();
/// clock.advance(SimDuration::from_nanos(7));
/// assert_eq!(view.now().as_nanos(), 7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now_nanos: Arc<AtomicU64>,
}

impl Clock {
    /// Creates a clock at `SimTime::ZERO`.
    pub fn new() -> Self {
        Clock::default()
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        SimTime(self.now_nanos.load(Ordering::Acquire))
    }

    /// Advances the clock by `d` and returns the new instant.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        SimTime(self.now_nanos.fetch_add(d.as_nanos(), Ordering::AcqRel) + d.as_nanos())
    }

    /// Advances the clock to `t` if `t` is in the future; never moves the
    /// clock backwards. Returns the (possibly unchanged) current instant.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        self.now_nanos.fetch_max(t.as_nanos(), Ordering::AcqRel);
        self.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_nanos(1_500);
        let d = SimDuration::from_micros(2);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).as_nanos(), 3_500);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
    }

    #[test]
    fn duration_from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1.5e-9).as_nanos(), 2);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_millis(), 250);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn duration_from_negative_secs_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn clock_handles_share_a_timeline() {
        let a = Clock::new();
        let b = a.clone();
        a.advance(SimDuration::from_nanos(10));
        b.advance(SimDuration::from_nanos(5));
        assert_eq!(a.now(), SimTime::from_nanos(15));
        assert_eq!(b.now(), SimTime::from_nanos(15));
    }

    #[test]
    fn advance_to_never_moves_backwards() {
        let c = Clock::new();
        c.advance(SimDuration::from_nanos(100));
        c.advance_to(SimTime::from_nanos(50));
        assert_eq!(c.now(), SimTime::from_nanos(100));
        c.advance_to(SimTime::from_nanos(150));
        assert_eq!(c.now(), SimTime::from_nanos(150));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(30);
        assert_eq!(late.saturating_since(early).as_nanos(), 20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_a_readable_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }
}
