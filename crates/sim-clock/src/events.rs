//! A deterministic time-ordered event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A min-heap of `(SimTime, payload)` pairs with deterministic tie-breaking.
///
/// Events that are scheduled for the same instant pop in insertion order
/// (FIFO), which keeps simulations reproducible regardless of heap
/// internals. Used by the SSD model for completions and by the Viyojit
/// runtime for epoch boundaries.
///
/// # Examples
///
/// ```
/// use sim_clock::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "b");
/// q.schedule(SimTime::from_nanos(10), "a");
/// assert_eq!(q.pop_before(SimTime::from_nanos(15)), Some((SimTime::from_nanos(10), "a")));
/// assert_eq!(q.pop_before(SimTime::from_nanos(15)), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` to fire at instant `at`.
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
    }

    /// The instant of the earliest pending event, if any.
    pub fn next_at(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Pops the earliest event if it fires at or before `now`.
    pub fn pop_before(&mut self, now: SimTime) -> Option<(SimTime, T)> {
        if self.next_at()? <= now {
            let Reverse(e) = self.heap.pop().expect("peeked entry vanished");
            Some((e.at, e.payload))
        } else {
            None
        }
    }

    /// Pops the earliest event unconditionally.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_before_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "x");
        assert!(q.pop_before(SimTime::from_nanos(9)).is_none());
        assert!(q.pop_before(SimTime::from_nanos(10)).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, ());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
