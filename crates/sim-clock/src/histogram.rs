//! A log-bucketed latency histogram for percentile reporting.

use crate::SimDuration;

/// Number of linear sub-buckets per power-of-two bucket. More sub-buckets
/// means finer percentile resolution at the cost of memory.
const SUB_BUCKETS: usize = 32;
/// Number of power-of-two buckets; covers values up to 2^48 ns (~3 days).
const LOG_BUCKETS: usize = 48;

/// A fixed-memory histogram of [`SimDuration`] samples with ~3% relative
/// error, in the spirit of HdrHistogram.
///
/// Used by the figure harnesses to report average and 99th-percentile
/// operation latencies (paper Fig. 8).
///
/// # Examples
///
/// ```
/// use sim_clock::{Histogram, SimDuration};
///
/// let mut h = Histogram::new();
/// for us in 1..=100 {
///     h.record(SimDuration::from_micros(us));
/// }
/// assert_eq!(h.len(), 100);
/// let p50 = h.percentile(50.0).as_micros();
/// assert!((45..=55).contains(&p50));
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum_nanos: u128,
    max: SimDuration,
    min: SimDuration,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; LOG_BUCKETS * SUB_BUCKETS],
            total: 0,
            sum_nanos: 0,
            max: SimDuration::ZERO,
            min: SimDuration::from_nanos(u64::MAX),
        }
    }

    fn bucket_index(nanos: u64) -> usize {
        if nanos < SUB_BUCKETS as u64 {
            return nanos as usize;
        }
        let log = 63 - nanos.leading_zeros() as usize; // floor(log2(nanos)) >= 5
        let shift = log - SUB_BUCKETS.trailing_zeros() as usize;
        let sub = ((nanos >> shift) as usize) - SUB_BUCKETS;
        let idx = (shift + 1) * SUB_BUCKETS + sub;
        idx.min(LOG_BUCKETS * SUB_BUCKETS - 1)
    }

    fn bucket_value(idx: usize) -> u64 {
        if idx < SUB_BUCKETS {
            return idx as u64;
        }
        let shift = idx / SUB_BUCKETS - 1;
        let sub = idx % SUB_BUCKETS;
        ((SUB_BUCKETS + sub) as u64) << shift
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        let nanos = d.as_nanos();
        self.counts[Self::bucket_index(nanos)] += 1;
        self.total += 1;
        self.sum_nanos += nanos as u128;
        if d > self.max {
            self.max = d;
        }
        if d < self.min {
            self.min = d;
        }
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact sum of all samples in nanoseconds.
    pub fn sum_nanos(&self) -> u128 {
        self.sum_nanos
    }

    /// Arithmetic mean of all samples; zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum_nanos / self.total as u128) as u64)
    }

    /// The largest recorded sample; zero if empty.
    pub fn max(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            self.max
        }
    }

    /// The smallest recorded sample; zero if empty.
    pub fn min(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            self.min
        }
    }

    /// The value at percentile `p` (0–100), with the histogram's bucket
    /// resolution (~3% relative error). Returns zero if empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> SimDuration {
        assert!(
            (0.0..=100.0).contains(&p),
            "percentile must be in [0,100], got {p}"
        );
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return SimDuration::from_nanos(Self::bucket_value(idx)).min_of(self.max);
            }
        }
        self.max
    }

    /// Occupied buckets as `(bucket_lower_bound_nanos, count)` pairs,
    /// ascending. Two histograms with equal bucket sequences hold
    /// identical distributions at the histogram's resolution, so this is
    /// the comparison surface for bucket-for-bucket conservation tests
    /// and for exposition-format export.
    pub fn bucket_counts(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_value(i), c))
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_nanos += other.sum_nanos;
        if other.total > 0 {
            if other.max > self.max {
                self.max = other.max;
            }
            if other.min < self.min {
                self.min = other.min;
            }
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

trait MinOf {
    fn min_of(self, other: SimDuration) -> SimDuration;
}
impl MinOf for SimDuration {
    fn min_of(self, other: SimDuration) -> SimDuration {
        if self < other {
            self
        } else {
            other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.percentile(99.0), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::ZERO);
    }

    #[test]
    fn empty_histogram_is_zero_at_every_percentile() {
        let h = Histogram::new();
        for &p in &[0.0f64, 0.1, 50.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), SimDuration::ZERO);
        }
        assert_eq!(h.min(), SimDuration::ZERO);
    }

    #[test]
    fn single_small_sample_is_exact_at_every_percentile() {
        // Values below SUB_BUCKETS nanos are bucketed exactly.
        let mut h = Histogram::new();
        h.record(SimDuration::from_nanos(17));
        assert_eq!(h.len(), 1);
        for &p in &[0.0f64, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(
                h.percentile(p),
                SimDuration::from_nanos(17),
                "p{p} of a single exact-range sample must be that sample"
            );
        }
        assert_eq!(h.mean(), SimDuration::from_nanos(17));
        assert_eq!(h.min(), h.max());
    }

    #[test]
    fn single_large_sample_dominates_every_percentile() {
        // Above the exact range the one occupied bucket floors the value,
        // so every percentile agrees and sits within the error bound.
        let mut h = Histogram::new();
        h.record(SimDuration::from_micros(7));
        let p0 = h.percentile(0.0);
        for &p in &[1.0f64, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), p0, "p{p} disagrees with p0");
        }
        let got = p0.as_nanos();
        assert!(
            got <= 7_000 && got as f64 >= 7_000.0 * 0.96,
            "single-sample percentile out of bounds: {got} ns"
        );
        assert_eq!(h.mean(), SimDuration::from_micros(7));
        assert_eq!(h.min(), h.max());
    }

    #[test]
    fn all_equal_samples_collapse_the_distribution() {
        let mut h = Histogram::new();
        for _ in 0..1_000 {
            h.record(SimDuration::from_micros(250));
        }
        assert_eq!(h.len(), 1_000);
        // Every percentile lands in the one occupied bucket, clamped to
        // the true (recorded) maximum.
        for &p in &[0.0f64, 10.0, 50.0, 99.0, 99.9, 100.0] {
            let got = h.percentile(p).as_nanos();
            assert!(
                got <= 250_000 && got as f64 >= 250_000.0 * 0.96,
                "p{p} of constant samples drifted: {got} ns"
            );
        }
        assert_eq!(h.mean(), SimDuration::from_micros(250));
        assert_eq!(h.min(), h.max());
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for n in 0..SUB_BUCKETS as u64 {
            h.record(SimDuration::from_nanos(n));
        }
        assert_eq!(h.min().as_nanos(), 0);
        assert_eq!(h.max().as_nanos(), SUB_BUCKETS as u64 - 1);
        assert_eq!(h.percentile(100.0).as_nanos(), SUB_BUCKETS as u64 - 1);
    }

    #[test]
    fn percentile_error_is_bounded() {
        let mut h = Histogram::new();
        for us in 1..=10_000u64 {
            h.record(SimDuration::from_micros(us));
        }
        for &p in &[50.0f64, 90.0, 99.0, 99.9] {
            let exact: f64 = (p / 100.0 * 10_000.0).ceil();
            let got = h.percentile(p).as_micros() as f64;
            let err = (got - exact).abs() / exact;
            assert!(err < 0.04, "p{p}: got {got}, exact {exact}, err {err}");
        }
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_nanos(100));
        h.record(SimDuration::from_nanos(300));
        assert_eq!(h.mean().as_nanos(), 200);
    }

    #[test]
    fn bucket_counts_expose_the_distribution() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for h in [&mut a, &mut b] {
            h.record(SimDuration::from_nanos(3));
            h.record(SimDuration::from_micros(9));
            h.record(SimDuration::from_micros(9));
        }
        let got: Vec<(u64, u64)> = a.bucket_counts().collect();
        let want: Vec<(u64, u64)> = b.bucket_counts().collect();
        assert_eq!(got, want);
        assert_eq!(got.iter().map(|&(_, c)| c).sum::<u64>(), a.len());
        assert_eq!(got[0], (3, 1));
        b.record(SimDuration::from_nanos(3));
        let diverged: Vec<(u64, u64)> = b.bucket_counts().collect();
        assert_ne!(got, diverged);
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(SimDuration::from_nanos(10));
        b.record(SimDuration::from_nanos(1_000_000));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.min().as_nanos(), 10);
        assert_eq!(a.max().as_nanos(), 1_000_000);
    }

    #[test]
    fn bucket_round_trip_is_monotone_and_close() {
        let mut prev = 0;
        for exp in 0..40u32 {
            let v = 1u64 << exp;
            for &v in &[v, v + v / 3, v + v / 2] {
                let idx = Histogram::bucket_index(v);
                let back = Histogram::bucket_value(idx);
                assert!(back <= v, "bucket value {back} exceeds sample {v}");
                assert!(
                    (v - back) as f64 <= v as f64 * 0.04,
                    "bucket error too large: {v} -> {back}"
                );
                assert!(back >= prev, "bucket values must be monotone");
                prev = back;
            }
        }
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn percentile_out_of_range_panics() {
        Histogram::new().percentile(101.0);
    }
}
