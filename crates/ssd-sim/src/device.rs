//! The SSD device: content store, service-time model, and statistics.

use fault_sim::FaultPlan;
use mem_sim::{PageId, PAGE_SIZE};
use sim_clock::{Clock, SimDuration, SimTime};
use telemetry::{CostClass, Profiler, Telemetry, TraceEvent};

use crate::WearTracker;

/// Device parameters.
///
/// # Examples
///
/// ```
/// use ssd_sim::SsdConfig;
///
/// let cfg = SsdConfig::datacenter();
/// assert!(cfg.channels >= 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SsdConfig {
    /// Fixed device latency of one page write.
    pub write_latency: SimDuration,
    /// Fixed device latency of one page read.
    pub read_latency: SimDuration,
    /// Sustained sequential bandwidth in bytes per second, shared across
    /// channels.
    pub bandwidth_bytes_per_sec: u64,
    /// Number of internal channels that can service IOs concurrently.
    pub channels: usize,
    /// Pages per erase block (wear accounting granularity).
    pub pages_per_block: usize,
    /// Write-amplification factor of the FTL.
    pub write_amplification: f64,
}

impl SsdConfig {
    /// A datacenter NVMe-class device like the paper's Azure VM SSD
    /// (625 K-IOPS class): ~30 us program latency, ~25 us read latency,
    /// 2 GB/s sustained, 8 channels.
    pub fn datacenter() -> Self {
        SsdConfig {
            write_latency: SimDuration::from_micros(30),
            read_latency: SimDuration::from_micros(25),
            bandwidth_bytes_per_sec: 2_000_000_000,
            channels: 8,
            pages_per_block: 256,
            write_amplification: 1.1,
        }
    }

    /// An instantaneous device for functional unit tests.
    pub fn instant() -> Self {
        SsdConfig {
            write_latency: SimDuration::ZERO,
            read_latency: SimDuration::ZERO,
            bandwidth_bytes_per_sec: u64::MAX,
            channels: 1,
            pages_per_block: 256,
            write_amplification: 1.0,
        }
    }

    /// Time to move `bytes` bytes at sustained sequential bandwidth (the
    /// shared kernel of [`SsdConfig::drain_time`] and the per-IO transfer
    /// term).
    fn sequential_time(&self, bytes: f64) -> SimDuration {
        if self.bandwidth_bytes_per_sec == u64::MAX {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes / self.bandwidth_bytes_per_sec as f64)
    }

    /// Time the bandwidth term adds for `bytes` bytes.
    fn transfer_time(&self, bytes: usize) -> SimDuration {
        self.sequential_time(bytes as f64)
    }

    /// Conservative time to sequentially drain `bytes` bytes to the device
    /// at sustained bandwidth — the §5.1 estimate used to convert battery
    /// hold-up time into a dirty budget.
    pub fn drain_time(&self, bytes: u64) -> SimDuration {
        self.sequential_time(bytes as f64)
    }
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig::datacenter()
    }
}

/// IO counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SsdStats {
    /// Page writes submitted.
    pub writes: u64,
    /// Page reads submitted.
    pub reads: u64,
    /// Logical bytes written.
    pub bytes_written: u64,
    /// Logical bytes read.
    pub bytes_read: u64,
    /// Transient write errors (injected or modelled); each occupied a
    /// channel and charged wear without making its page durable.
    pub write_errors: u64,
}

/// A transiently failed write submission.
///
/// The failed attempt still occupied a channel and consumed program energy
/// (wear), but the page did not become durable; the caller may retry after
/// `retry_after`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsdWriteError {
    /// The page whose write failed.
    pub page: u64,
    /// Instant at which the failed attempt released its channel.
    pub retry_after: SimTime,
}

/// The simulated SSD backing one NV-DRAM region.
///
/// Content written here is what survives a power failure; recovery reads
/// pages back with [`Ssd::page_data`]. Service times are computed against
/// the shared virtual clock: a submission returns its completion instant,
/// and the caller decides whether to block (advance the clock) or proceed.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct Ssd {
    config: SsdConfig,
    clock: Clock,
    store: Vec<u8>,
    page_present: Vec<bool>,
    channel_free: Vec<SimTime>,
    inflight: Vec<SimTime>,
    stats: SsdStats,
    wear: WearTracker,
    telemetry: Telemetry,
    profiler: Profiler,
    faults: FaultPlan,
}

impl Ssd {
    /// Creates a device with capacity for `pages` pages.
    pub fn new(pages: usize, config: SsdConfig, clock: Clock) -> Self {
        let wear = WearTracker::new(pages, config.pages_per_block, config.write_amplification);
        Ssd {
            channel_free: vec![SimTime::ZERO; config.channels.max(1)],
            config,
            clock,
            store: vec![0u8; pages * PAGE_SIZE],
            page_present: vec![false; pages],
            inflight: Vec::new(),
            stats: SsdStats::default(),
            wear,
            telemetry: Telemetry::disabled(),
            profiler: Profiler::disabled(),
            faults: FaultPlan::none(),
        }
    }

    /// Device capacity in pages.
    pub fn pages(&self) -> usize {
        self.page_present.len()
    }

    /// The device configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// IO counters.
    pub fn stats(&self) -> SsdStats {
        self.stats
    }

    /// Wear accounting.
    pub fn wear(&self) -> &WearTracker {
        &self.wear
    }

    /// Attaches a telemetry handle; subsequent submissions emit
    /// `SsdSubmit`/`SsdComplete` trace events and [`Ssd::publish_metrics`]
    /// writes into its registry.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Attaches a profiler; each serviced IO then records its channel
    /// queue wait and its device busy time (program latency + bus
    /// transfer) in the profiler's auxiliary table. Device time overlaps
    /// wall time across channels, so it is accounted off-clock and never
    /// against the span-conservation invariant.
    pub fn attach_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    /// Attaches a fault plan; subsequent [`Ssd::try_submit_write_sized`]
    /// calls consult it for stalls, latency spikes, and transient errors.
    /// The plain [`Ssd::submit_write`]/[`Ssd::submit_write_sized`] path
    /// never consults the plan, so callers that cannot tolerate failure
    /// keep their historical behaviour bit for bit.
    pub fn attach_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// The attached fault plan (inactive by default).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Records a transient write error modelled outside the device (the
    /// emergency-flush executor steps attempt time on a local timeline and
    /// accounts the failed program here so error-rate observers see it).
    pub fn note_write_error(&mut self, page: u64, physical_bytes: usize) {
        self.stats.write_errors += 1;
        self.wear.record_bytes_written(page, physical_bytes as u64);
    }

    /// Publishes IO, wear, and queue state into the attached registry.
    ///
    /// Called by the owning store at epoch boundaries; a no-op when the
    /// handle is disabled.
    pub fn publish_metrics(&mut self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let stats = self.stats;
        let (logical, physical, erases, max_block) = (
            self.wear.logical_bytes_written(),
            self.wear.physical_bytes_written(),
            self.wear.total_erases(),
            self.wear.max_block_erases(),
        );
        let queue = self.outstanding() as f64;
        self.telemetry.metrics(|m| {
            m.counter_set("ssd.writes", stats.writes);
            m.counter_set("ssd.reads", stats.reads);
            m.counter_set("ssd.bytes_written", stats.bytes_written);
            m.counter_set("ssd.bytes_read", stats.bytes_read);
            m.counter_set("ssd.logical_bytes_written", logical);
            m.counter_set("ssd.physical_bytes_written", physical);
            m.counter_set("ssd.erases", erases);
            m.gauge_set("ssd.max_block_erases", max_block as f64);
            m.gauge_set("ssd.outstanding", queue);
            // Published only once nonzero so fault-free runs keep their
            // historical snapshot layout byte for byte.
            if stats.write_errors > 0 {
                m.counter_set("ssd.write_errors", stats.write_errors);
            }
        });
    }

    fn prune_inflight(&mut self) {
        let now = self.clock.now();
        self.inflight.retain(|&t| t > now);
    }

    /// Number of IOs still in flight at the current instant.
    pub fn outstanding(&mut self) -> usize {
        self.prune_inflight();
        self.inflight.len()
    }

    /// Earliest completion instant among in-flight IOs, if any.
    pub fn earliest_completion(&mut self) -> Option<SimTime> {
        self.prune_inflight();
        self.inflight.iter().copied().min()
    }

    fn service(&mut self, latency: SimDuration, bytes: usize) -> SimTime {
        let now = self.clock.now();
        let (idx, &free) = self
            .channel_free
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .expect("at least one channel");
        let start = now.max(free);
        let busy = latency + self.config.transfer_time(bytes);
        let done = start + busy;
        self.channel_free[idx] = done;
        self.inflight.push(done);
        let wait = start.saturating_since(now);
        if !wait.is_zero() {
            self.profiler.aux_charge(CostClass::SsdQueueWait, wait);
        }
        self.profiler.aux_charge(CostClass::SsdTransfer, busy);
        done
    }

    /// Submits a page write; the content is durable from the returned
    /// completion instant onward. The caller is responsible for the
    /// write-protect-before-flush ordering (Fig. 6 step 6) that makes the
    /// submitted snapshot safe.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range or `data` is not exactly one page.
    pub fn submit_write(&mut self, page: PageId, data: &[u8]) -> SimTime {
        self.submit_write_sized(page, data, PAGE_SIZE)
    }

    /// Submits a page write whose on-wire/programmed payload is only
    /// `physical_bytes` (compressed, deduplicated, or partial-sector
    /// flushes — the §7 traffic reductions). The full logical snapshot is
    /// stored; bandwidth, byte counters, and wear are charged for the
    /// physical payload.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range, `data` is not exactly one page,
    /// or `physical_bytes` exceeds a page.
    pub fn submit_write_sized(
        &mut self,
        page: PageId,
        data: &[u8],
        physical_bytes: usize,
    ) -> SimTime {
        let latency = self.config.write_latency;
        self.submit_with_latency(page, data, physical_bytes, latency)
    }

    /// Fault-aware submission: consults the attached [`FaultPlan`] for a
    /// whole-device stall, a latency spike, and a transient error, in that
    /// order. A failed attempt still occupies its channel and charges wear
    /// for the aborted program, but the page does not become durable and
    /// the caller gets the channel-release instant back for retry pacing.
    ///
    /// With an inactive plan this is exactly [`Ssd::submit_write_sized`].
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range, `data` is not exactly one page,
    /// or `physical_bytes` exceeds a page.
    pub fn try_submit_write_sized(
        &mut self,
        page: PageId,
        data: &[u8],
        physical_bytes: usize,
    ) -> Result<SimTime, SsdWriteError> {
        assert_eq!(data.len(), PAGE_SIZE, "SSD writes are page-granularity");
        assert!(
            physical_bytes <= PAGE_SIZE,
            "physical payload cannot exceed the logical page"
        );
        let fault = self.faults.ssd_write_fault(page.0);
        if !fault.stall.is_zero() {
            let now = self.clock.now();
            for free in &mut self.channel_free {
                *free = (*free).max(now) + fault.stall;
            }
        }
        let latency = self.config.write_latency * fault.latency_factor as u64;
        if fault.error {
            self.stats.write_errors += 1;
            self.wear
                .record_bytes_written(page.0, physical_bytes as u64);
            let retry_after = self.service(latency, physical_bytes);
            return Err(SsdWriteError {
                page: page.0,
                retry_after,
            });
        }
        Ok(self.submit_with_latency(page, data, physical_bytes, latency))
    }

    fn submit_with_latency(
        &mut self,
        page: PageId,
        data: &[u8],
        physical_bytes: usize,
        latency: SimDuration,
    ) -> SimTime {
        assert_eq!(data.len(), PAGE_SIZE, "SSD writes are page-granularity");
        assert!(
            physical_bytes <= PAGE_SIZE,
            "physical payload cannot exceed the logical page"
        );
        let start = page.base_addr() as usize;
        self.store[start..start + PAGE_SIZE].copy_from_slice(data);
        self.page_present[page.index()] = true;
        self.stats.writes += 1;
        self.stats.bytes_written += physical_bytes as u64;
        self.wear
            .record_bytes_written(page.0, physical_bytes as u64);
        let done = self.service(latency, physical_bytes);
        self.telemetry.emit(|| TraceEvent::SsdSubmit {
            page: page.0,
            bytes: physical_bytes as u64,
        });
        self.telemetry
            .emit_at(done, || TraceEvent::SsdComplete { page: page.0 });
        done
    }

    /// Submits a page read into `buf`, returning the completion instant.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range, `buf` is not one page, or the page
    /// has never been written.
    pub fn submit_read(&mut self, page: PageId, buf: &mut [u8]) -> SimTime {
        assert_eq!(buf.len(), PAGE_SIZE, "SSD reads are page-granularity");
        assert!(
            self.page_present[page.index()],
            "read of never-written SSD {page}"
        );
        let start = page.base_addr() as usize;
        buf.copy_from_slice(&self.store[start..start + PAGE_SIZE]);
        self.stats.reads += 1;
        self.stats.bytes_read += PAGE_SIZE as u64;
        self.service(self.config.read_latency, PAGE_SIZE)
    }

    /// Zero-time view of a page's durable content (recovery / verification
    /// path). Returns `None` if the page was never written.
    pub fn page_data(&self, page: PageId) -> Option<&[u8]> {
        if !self.page_present[page.index()] {
            return None;
        }
        let start = page.base_addr() as usize;
        Some(&self.store[start..start + PAGE_SIZE])
    }

    /// `true` if `page` has durable content.
    pub fn contains(&self, page: PageId) -> bool {
        self.page_present[page.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(fill: u8) -> Vec<u8> {
        vec![fill; PAGE_SIZE]
    }

    #[test]
    fn write_then_read_round_trips() {
        let clock = Clock::new();
        let mut ssd = Ssd::new(4, SsdConfig::instant(), clock.clone());
        ssd.submit_write(PageId(2), &page(9));
        let mut buf = page(0);
        ssd.submit_read(PageId(2), &mut buf);
        assert_eq!(buf, page(9));
    }

    #[test]
    fn completion_reflects_latency_and_bandwidth() {
        let clock = Clock::new();
        let cfg = SsdConfig {
            write_latency: SimDuration::from_micros(100),
            read_latency: SimDuration::from_micros(50),
            bandwidth_bytes_per_sec: PAGE_SIZE as u64 * 1_000, // 1 page per ms
            channels: 1,
            pages_per_block: 64,
            write_amplification: 1.0,
        };
        let mut ssd = Ssd::new(4, cfg, clock.clone());
        let done = ssd.submit_write(PageId(0), &page(1));
        assert_eq!(done.as_micros(), 100 + 1_000);
    }

    #[test]
    fn single_channel_serializes_requests() {
        let clock = Clock::new();
        let cfg = SsdConfig {
            write_latency: SimDuration::from_micros(10),
            read_latency: SimDuration::from_micros(10),
            bandwidth_bytes_per_sec: u64::MAX,
            channels: 1,
            pages_per_block: 64,
            write_amplification: 1.0,
        };
        let mut ssd = Ssd::new(4, cfg, clock.clone());
        let d1 = ssd.submit_write(PageId(0), &page(1));
        let d2 = ssd.submit_write(PageId(1), &page(2));
        assert_eq!(d1.as_micros(), 10);
        assert_eq!(d2.as_micros(), 20, "second IO queues behind the first");
    }

    #[test]
    fn channels_service_in_parallel() {
        let clock = Clock::new();
        let cfg = SsdConfig {
            write_latency: SimDuration::from_micros(10),
            read_latency: SimDuration::from_micros(10),
            bandwidth_bytes_per_sec: u64::MAX,
            channels: 2,
            pages_per_block: 64,
            write_amplification: 1.0,
        };
        let mut ssd = Ssd::new(4, cfg, clock.clone());
        let d1 = ssd.submit_write(PageId(0), &page(1));
        let d2 = ssd.submit_write(PageId(1), &page(2));
        assert_eq!(d1, d2, "two channels overlap two IOs fully");
    }

    #[test]
    fn outstanding_tracks_the_clock() {
        let clock = Clock::new();
        let cfg = SsdConfig {
            write_latency: SimDuration::from_micros(10),
            read_latency: SimDuration::from_micros(10),
            bandwidth_bytes_per_sec: u64::MAX,
            channels: 4,
            pages_per_block: 64,
            write_amplification: 1.0,
        };
        let mut ssd = Ssd::new(8, cfg, clock.clone());
        for i in 0..3 {
            ssd.submit_write(PageId(i), &page(i as u8));
        }
        assert_eq!(ssd.outstanding(), 3);
        let earliest = ssd.earliest_completion().unwrap();
        clock.advance_to(earliest);
        assert_eq!(ssd.outstanding(), 0, "all IOs complete at the same instant");
    }

    #[test]
    fn profiler_splits_queue_wait_from_device_busy_time() {
        let clock = Clock::new();
        let cfg = SsdConfig {
            write_latency: SimDuration::from_micros(10),
            read_latency: SimDuration::from_micros(10),
            bandwidth_bytes_per_sec: u64::MAX,
            channels: 1,
            pages_per_block: 64,
            write_amplification: 1.0,
        };
        let mut ssd = Ssd::new(4, cfg, clock.clone());
        let profiler = Profiler::enabled(clock.clone());
        ssd.attach_profiler(profiler.clone());
        ssd.submit_write(PageId(0), &page(1)); // starts immediately
        ssd.submit_write(PageId(1), &page(2)); // queues 10us behind it
        let report = profiler.report().unwrap();
        // Device time is off-clock: conservation still holds at 0 elapsed.
        assert!(report.is_conserved());
        assert_eq!(report.elapsed, SimDuration::ZERO);
        assert_eq!(
            report.aux,
            vec![("ssd_queue_wait", 1, 10_000), ("ssd_transfer", 2, 20_000)]
        );
    }

    #[test]
    fn never_written_pages_are_absent() {
        let ssd = Ssd::new(2, SsdConfig::instant(), Clock::new());
        assert!(ssd.page_data(PageId(0)).is_none());
        assert!(!ssd.contains(PageId(0)));
    }

    #[test]
    #[should_panic(expected = "never-written")]
    fn reading_absent_page_panics() {
        let clock = Clock::new();
        let mut ssd = Ssd::new(2, SsdConfig::instant(), clock);
        let mut buf = page(0);
        let _ = ssd.submit_read(PageId(0), &mut buf);
    }

    #[test]
    fn stats_and_wear_accumulate() {
        let clock = Clock::new();
        let mut ssd = Ssd::new(4, SsdConfig::instant(), clock);
        ssd.submit_write(PageId(0), &page(1));
        ssd.submit_write(PageId(0), &page(2));
        let mut buf = page(0);
        ssd.submit_read(PageId(0), &mut buf);
        assert_eq!(ssd.stats().writes, 2);
        assert_eq!(ssd.stats().reads, 1);
        assert_eq!(ssd.stats().bytes_written, 2 * PAGE_SIZE as u64);
        assert_eq!(ssd.wear().logical_bytes_written(), 2 * PAGE_SIZE as u64);
    }

    #[test]
    fn faulty_submit_errors_occupy_channel_and_charge_wear() {
        use fault_sim::FaultConfig;
        let clock = Clock::new();
        let cfg = SsdConfig {
            write_latency: SimDuration::from_micros(10),
            read_latency: SimDuration::from_micros(10),
            bandwidth_bytes_per_sec: u64::MAX,
            channels: 1,
            pages_per_block: 64,
            write_amplification: 1.0,
        };
        let mut ssd = Ssd::new(4, cfg, clock);
        let mut config = FaultConfig::none();
        config.ssd_write_error_rate = 1.0;
        ssd.attach_faults(FaultPlan::seeded(3, config));
        let err = ssd
            .try_submit_write_sized(PageId(0), &page(7), PAGE_SIZE)
            .unwrap_err();
        assert_eq!(err.page, 0);
        assert_eq!(err.retry_after.as_micros(), 10, "error held the channel");
        assert!(!ssd.contains(PageId(0)), "failed write is not durable");
        assert_eq!(ssd.stats().write_errors, 1);
        assert_eq!(ssd.stats().writes, 0);
        assert_eq!(ssd.wear().logical_bytes_written(), PAGE_SIZE as u64);
    }

    #[test]
    fn inactive_plan_try_submit_matches_plain_submit() {
        let clock_a = Clock::new();
        let clock_b = Clock::new();
        let mut a = Ssd::new(4, SsdConfig::datacenter(), clock_a);
        let mut b = Ssd::new(4, SsdConfig::datacenter(), clock_b);
        let done_a = a.try_submit_write_sized(PageId(1), &page(5), 512).unwrap();
        let done_b = b.submit_write_sized(PageId(1), &page(5), 512);
        assert_eq!(done_a, done_b);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.page_data(PageId(1)), b.page_data(PageId(1)));
    }

    #[test]
    fn latency_spike_multiplies_service_time() {
        use fault_sim::FaultConfig;
        let clock = Clock::new();
        let cfg = SsdConfig {
            write_latency: SimDuration::from_micros(10),
            read_latency: SimDuration::from_micros(10),
            bandwidth_bytes_per_sec: u64::MAX,
            channels: 1,
            pages_per_block: 64,
            write_amplification: 1.0,
        };
        let mut ssd = Ssd::new(4, cfg, clock);
        let mut config = FaultConfig::none();
        config.ssd_latency_spike_rate = 1.0;
        config.ssd_latency_spike_factor = 4;
        ssd.attach_faults(FaultPlan::seeded(9, config));
        let done = ssd
            .try_submit_write_sized(PageId(0), &page(1), PAGE_SIZE)
            .unwrap();
        assert_eq!(done.as_micros(), 40);
        assert!(ssd.contains(PageId(0)));
    }

    #[test]
    fn stall_pushes_every_channel_back() {
        use fault_sim::FaultConfig;
        let clock = Clock::new();
        let cfg = SsdConfig {
            write_latency: SimDuration::from_micros(10),
            read_latency: SimDuration::from_micros(10),
            bandwidth_bytes_per_sec: u64::MAX,
            channels: 2,
            pages_per_block: 64,
            write_amplification: 1.0,
        };
        let mut ssd = Ssd::new(4, cfg, clock);
        let mut config = FaultConfig::none();
        config.ssd_stall_rate = 1.0;
        config.ssd_stall = SimDuration::from_millis(1);
        ssd.attach_faults(FaultPlan::seeded(2, config));
        let done = ssd
            .try_submit_write_sized(PageId(0), &page(1), PAGE_SIZE)
            .unwrap();
        assert_eq!(
            done.as_micros(),
            1_010,
            "stall delays the servicing channel"
        );
    }

    #[test]
    fn drain_time_is_linear_in_bytes() {
        let cfg = SsdConfig {
            bandwidth_bytes_per_sec: 1_000_000_000,
            ..SsdConfig::datacenter()
        };
        assert_eq!(cfg.drain_time(1_000_000_000).as_millis(), 1_000);
        assert_eq!(cfg.drain_time(500_000_000).as_millis(), 500);
    }
}
