//! Flash wear accounting: bytes written, erase counts, write amplification.

use mem_sim::PAGE_SIZE;

/// Tracks program/erase wear over the device's blocks.
///
/// Pages map statically to erase blocks of `pages_per_block` pages. Every
/// time a block accumulates one block's worth of programmed bytes it is
/// charged one erase — the steady-state behaviour of a log-structured FTL
/// with the configured write amplification.
///
/// # Examples
///
/// ```
/// use ssd_sim::WearTracker;
///
/// let mut wear = WearTracker::new(256, 64, 1.0);
/// for _ in 0..64 {
///     wear.record_page_write(0);
/// }
/// assert_eq!(wear.total_erases(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct WearTracker {
    pages_per_block: usize,
    write_amplification: f64,
    /// Physical bytes programmed into each block since its last erase.
    block_fill: Vec<f64>,
    erases: Vec<u64>,
    logical_bytes: u64,
}

impl WearTracker {
    /// Creates a tracker for a device of `pages` pages grouped into blocks
    /// of `pages_per_block`, with the given write-amplification factor.
    ///
    /// # Panics
    ///
    /// Panics if `pages_per_block` is zero or `write_amplification < 1.0`.
    pub fn new(pages: usize, pages_per_block: usize, write_amplification: f64) -> Self {
        assert!(pages_per_block > 0, "blocks must contain at least one page");
        assert!(
            write_amplification >= 1.0,
            "write amplification cannot be below 1.0"
        );
        let blocks = pages.div_ceil(pages_per_block).max(1);
        WearTracker {
            pages_per_block,
            write_amplification,
            block_fill: vec![0.0; blocks],
            erases: vec![0; blocks],
            logical_bytes: 0,
        }
    }

    /// Records one logical page write to `page`.
    pub fn record_page_write(&mut self, page: u64) {
        self.record_bytes_written(page, PAGE_SIZE as u64);
    }

    /// Records a write of `bytes` programmed bytes to `page` (less than a
    /// page for compressed or partial flushes).
    pub fn record_bytes_written(&mut self, page: u64, bytes: u64) {
        self.logical_bytes += bytes;
        let block = (page as usize / self.pages_per_block).min(self.block_fill.len() - 1);
        let block_bytes = (self.pages_per_block * PAGE_SIZE) as f64;
        self.block_fill[block] += bytes as f64 * self.write_amplification;
        while self.block_fill[block] >= block_bytes {
            self.block_fill[block] -= block_bytes;
            self.erases[block] += 1;
        }
    }

    /// Total logical bytes the host has written.
    pub fn logical_bytes_written(&self) -> u64 {
        self.logical_bytes
    }

    /// Total physical bytes programmed (logical x write amplification).
    pub fn physical_bytes_written(&self) -> u64 {
        (self.logical_bytes as f64 * self.write_amplification) as u64
    }

    /// Total erases across all blocks.
    pub fn total_erases(&self) -> u64 {
        self.erases.iter().sum()
    }

    /// The highest per-block erase count (the wear-out-limiting block).
    pub fn max_block_erases(&self) -> u64 {
        self.erases.iter().copied().max().unwrap_or(0)
    }

    /// Per-block erase counts.
    pub fn erase_counts(&self) -> &[u64] {
        &self.erases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erases_accumulate_per_block_fill() {
        let mut w = WearTracker::new(128, 64, 1.0);
        for _ in 0..63 {
            w.record_page_write(5);
        }
        assert_eq!(w.total_erases(), 0);
        w.record_page_write(5);
        assert_eq!(w.total_erases(), 1);
    }

    #[test]
    fn write_amplification_accelerates_wear() {
        let mut plain = WearTracker::new(64, 64, 1.0);
        let mut amplified = WearTracker::new(64, 64, 2.0);
        for _ in 0..64 {
            plain.record_page_write(0);
            amplified.record_page_write(0);
        }
        assert_eq!(plain.total_erases(), 1);
        assert_eq!(amplified.total_erases(), 2);
        assert_eq!(
            amplified.physical_bytes_written(),
            2 * plain.physical_bytes_written()
        );
    }

    #[test]
    fn writes_to_different_blocks_spread_wear() {
        let mut w = WearTracker::new(128, 64, 1.0);
        for _ in 0..64 {
            w.record_page_write(0); // block 0
            w.record_page_write(64); // block 1
        }
        assert_eq!(w.erase_counts(), &[1, 1]);
        assert_eq!(w.max_block_erases(), 1);
    }

    #[test]
    fn logical_bytes_count_every_write() {
        let mut w = WearTracker::new(16, 4, 1.5);
        w.record_page_write(0);
        w.record_page_write(1);
        assert_eq!(w.logical_bytes_written(), 2 * PAGE_SIZE as u64);
        assert_eq!(w.physical_bytes_written(), 3 * PAGE_SIZE as u64);
    }

    #[test]
    #[should_panic(expected = "write amplification")]
    fn sub_unity_write_amplification_panics() {
        let _ = WearTracker::new(16, 4, 0.5);
    }
}
