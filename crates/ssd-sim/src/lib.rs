//! A flash SSD device model: the backing store Viyojit proactively copies
//! dirty NV-DRAM pages to, and the destination of the battery-powered flush
//! after a power failure.
//!
//! The paper exercises the SSD only through page-granularity reads and
//! writes with a bounded number of outstanding requests (its experiments
//! cap outstanding IOs at 16). This model reproduces the three properties
//! the evaluation depends on:
//!
//! - **service time**: each IO costs a fixed device latency plus a
//!   bandwidth term, across a configurable number of parallel channels,
//! - **queuing**: completions are ordered on the shared virtual clock so a
//!   caller that must wait (a write blocked at the dirty budget, Fig. 6
//!   step 7) advances time to the completion instant,
//! - **wear**: total bytes written and per-block erase counts, which back
//!   the paper's §4.3 claim that LRU-directed copying keeps SSD write
//!   traffic (and thus wear) acceptable — measured in Fig. 9.
//!
//! # Examples
//!
//! ```
//! use mem_sim::PageId;
//! use sim_clock::Clock;
//! use ssd_sim::{Ssd, SsdConfig};
//!
//! let clock = Clock::new();
//! let mut ssd = Ssd::new(64, SsdConfig::datacenter(), clock.clone());
//! let done = ssd.submit_write(PageId(3), &[7u8; 4096]);
//! assert!(done > clock.now());
//! clock.advance_to(done);
//! assert_eq!(ssd.page_data(PageId(3)).unwrap()[0], 7);
//! ```

mod device;
mod wear;

pub use device::{Ssd, SsdConfig, SsdStats, SsdWriteError};
pub use wear::WearTracker;
