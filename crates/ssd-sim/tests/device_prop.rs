//! Property tests of the SSD device model: content fidelity, timing
//! sanity, and wear accounting.

use mem_sim::{PageId, PAGE_SIZE};
use proptest::prelude::*;
use sim_clock::{Clock, SimDuration, SimTime};
use ssd_sim::{Ssd, SsdConfig};

const PAGES: usize = 32;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn latest_write_wins_per_page(
        writes in prop::collection::vec((0..PAGES as u64, any::<u8>()), 1..80)
    ) {
        let clock = Clock::new();
        let mut ssd = Ssd::new(PAGES, SsdConfig::datacenter(), clock.clone());
        let mut last = std::collections::HashMap::new();
        for &(page, fill) in &writes {
            ssd.submit_write(PageId(page), &vec![fill; PAGE_SIZE]);
            last.insert(page, fill);
        }
        for (&page, &fill) in &last {
            prop_assert_eq!(
                ssd.page_data(PageId(page)).expect("written page"),
                &vec![fill; PAGE_SIZE][..]
            );
        }
        prop_assert_eq!(ssd.stats().writes, writes.len() as u64);
    }

    #[test]
    fn completions_are_never_before_submission_and_respect_latency(
        pages in prop::collection::vec(0..PAGES as u64, 1..40),
        advance_us in 0..500u64,
    ) {
        let clock = Clock::new();
        let cfg = SsdConfig::datacenter();
        let latency = cfg.write_latency;
        let mut ssd = Ssd::new(PAGES, cfg, clock.clone());
        for &page in &pages {
            clock.advance(SimDuration::from_micros(advance_us));
            let submitted = clock.now();
            let done = ssd.submit_write(PageId(page), &vec![1u8; PAGE_SIZE]);
            prop_assert!(done >= submitted + latency,
                "completion {done} earlier than latency allows");
        }
    }

    #[test]
    fn outstanding_never_exceeds_submissions_and_drains_to_zero(
        pages in prop::collection::vec(0..PAGES as u64, 1..40)
    ) {
        let clock = Clock::new();
        let mut ssd = Ssd::new(PAGES, SsdConfig::datacenter(), clock.clone());
        let mut latest = SimTime::ZERO;
        for &page in &pages {
            let done = ssd.submit_write(PageId(page), &vec![1u8; PAGE_SIZE]);
            latest = latest.max(done);
            prop_assert!(ssd.outstanding() <= pages.len());
        }
        clock.advance_to(latest);
        prop_assert_eq!(ssd.outstanding(), 0);
    }

    #[test]
    fn wear_is_conserved(
        writes in prop::collection::vec(0..PAGES as u64, 1..100)
    ) {
        let clock = Clock::new();
        let mut ssd = Ssd::new(PAGES, SsdConfig::datacenter(), clock);
        for &page in &writes {
            ssd.submit_write(PageId(page), &vec![0u8; PAGE_SIZE]);
        }
        let wear = ssd.wear();
        prop_assert_eq!(wear.logical_bytes_written(), writes.len() as u64 * PAGE_SIZE as u64);
        prop_assert!(wear.physical_bytes_written() >= wear.logical_bytes_written());
        prop_assert!(wear.max_block_erases() <= wear.total_erases());
    }
}
