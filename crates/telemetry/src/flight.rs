//! The flight recorder: black-box postmortem dumps.
//!
//! Every supervised crash seam — a worker panic (including injected
//! `CrashSignal`s), a `RoundTimeout`, the degradation governor entering
//! degraded mode — dumps the crashing thread's recent trace window as
//! `postmortem-<label>.jsonl` so a survived crash always leaves
//! evidence. A dump is:
//!
//! 1. the run-identity `meta` record ([`RunMeta`]), so `viyojit-trace`
//!    can refuse to read mismatched dumps;
//! 2. a `postmortem` record naming the dumping thread, the trigger, and
//!    the last budget round the thread saw;
//! 3. the thread's retained trace events ([`Telemetry::local_events`] —
//!    per-thread, so the dump is deterministic under the `FAULT_SEED`
//!    contract even while sibling threads are mid-flight);
//! 4. a final registry snapshot ([`Telemetry::peek_snapshot`], which
//!    never perturbs later real snapshot deltas) carrying the thread's
//!    dirty/budget gauges and counters at the moment of the dump.
//!
//! Everything in the dump is virtual-time data; wall-clock histograms
//! are deliberately excluded so dumps are byte-comparable across runs.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::profile::RunMeta;
use crate::sink::{push_json_escaped, JsonlSink, Sink};
use crate::Telemetry;

/// Writes `postmortem-<label>.jsonl` black boxes into one directory.
///
/// Cheap to clone behind an `Arc`; each dump is a whole-file write, and
/// a re-dump under the same label overwrites (the black box keeps the
/// most recent crash).
#[derive(Debug)]
pub struct FlightRecorder {
    dir: PathBuf,
    meta: RunMeta,
}

impl FlightRecorder {
    /// Creates the recorder, creating `dir` (and parents) if needed.
    ///
    /// # Errors
    ///
    /// Propagates the `create_dir_all` failure.
    pub fn new(dir: impl Into<PathBuf>, meta: RunMeta) -> io::Result<FlightRecorder> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(FlightRecorder { dir, meta })
    }

    /// The directory dumps are written into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The path a dump under `label` is written to.
    pub fn dump_path(&self, label: &str) -> PathBuf {
        self.dir.join(format!("postmortem-{label}.jsonl"))
    }

    /// Dumps the black box for `label` (e.g. `worker0`, `control`).
    ///
    /// `trigger` is a stable lowercase cause: `panic`,
    /// `crash_signal:<seam>`, `round_timeout`, or `degraded_mode`.
    /// `telemetry` should be the dumping thread's own handle; only its
    /// local ring and registry are captured.
    ///
    /// # Errors
    ///
    /// Propagates the file write failure.
    pub fn dump(
        &self,
        label: &str,
        trigger: &str,
        last_round: u64,
        telemetry: &Telemetry,
    ) -> io::Result<PathBuf> {
        let mut buf = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut buf);
            sink.meta(&self.meta);
        }
        let mut record = String::from("{\"type\":\"postmortem\",\"label\":\"");
        push_json_escaped(&mut record, label);
        record.push_str("\",\"trigger\":\"");
        push_json_escaped(&mut record, trigger);
        let _ = write!(record, "\",\"last_round\":{last_round}}}");
        record.push('\n');
        buf.extend_from_slice(record.as_bytes());
        {
            let mut sink = JsonlSink::new(&mut buf);
            for event in telemetry.local_events() {
                sink.event(&event);
            }
            if let Some(snap) = telemetry.peek_snapshot(last_round) {
                sink.snapshot(&snap);
            }
        }
        let path = self.dump_path(label);
        fs::write(&path, buf)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceEvent;
    use sim_clock::{Clock, SimDuration};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("viyojit-flight-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn dump_writes_meta_postmortem_events_and_snapshot() {
        let dir = temp_dir("basic");
        let meta = RunMeta::new("test", "Viyojit", "cfg", Some(7));
        let flight = FlightRecorder::new(&dir, meta).unwrap();
        let clock = Clock::new();
        let telemetry = Telemetry::recording(clock.clone());
        clock.advance(SimDuration::from_nanos(10));
        telemetry.emit(|| TraceEvent::WriteFault { page: 3 });
        telemetry.metrics(|m| m.counter_add("faults", 1));
        telemetry.metrics(|m| m.gauge_set("viyojit.dirty_pages", 2.0));

        let path = flight
            .dump("worker0", "crash_signal:budget_round", 5, &telemetry)
            .unwrap();
        assert_eq!(path, dir.join("postmortem-worker0.jsonl"));
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("{\"type\":\"meta\""));
        assert_eq!(
            lines[1],
            "{\"type\":\"postmortem\",\"label\":\"worker0\",\
             \"trigger\":\"crash_signal:budget_round\",\"last_round\":5}"
        );
        assert!(lines[2].contains("\"kind\":\"write_fault\""));
        assert!(lines[3].starts_with("{\"type\":\"snapshot\",\"epoch\":5"));
        assert!(lines[3].contains("\"faults\":{\"delta\":1,\"total\":1}"));
        assert!(lines[3].contains("\"viyojit.dirty_pages\":2"));

        // A dump must not perturb later real snapshot deltas.
        telemetry.snapshot_epoch(0);
        let snaps = telemetry.snapshots();
        assert_eq!(snaps[0].counter("faults").unwrap().delta, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn redump_overwrites_and_dumps_are_reproducible() {
        let dir = temp_dir("redump");
        let meta = RunMeta::new("test", "Viyojit", "cfg", None);
        let flight = FlightRecorder::new(&dir, meta).unwrap();
        let make = || {
            let clock = Clock::new();
            let t = Telemetry::recording(clock.clone());
            clock.advance(SimDuration::from_nanos(4));
            t.emit(|| TraceEvent::PageLost { page: 9 });
            t
        };
        flight.dump("w", "panic", 1, &make()).unwrap();
        let first = fs::read(flight.dump_path("w")).unwrap();
        flight.dump("w", "panic", 1, &make()).unwrap();
        let second = fs::read(flight.dump_path("w")).unwrap();
        assert_eq!(first, second);
        let _ = fs::remove_dir_all(&dir);
    }
}
