//! Named counters, gauges, and histograms with per-epoch snapshotting.
//!
//! Publishers (`ViyojitStats`, SSD wear/queue state, the battery model)
//! write cumulative counters and instantaneous gauges under stable
//! `&'static str` names. [`MetricsRegistry::snapshot`] closes an epoch:
//! it captures each counter's delta since the previous snapshot, so the
//! deltas of a metric across all snapshots sum back to its final total.
//! Maps are `BTreeMap`s so iteration (and therefore sink output) is
//! deterministic.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Mutex, OnceLock};

use sim_clock::{Histogram, SimDuration, SimTime};

fn intern_pool() -> &'static Mutex<BTreeSet<&'static str>> {
    static POOL: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Interns a runtime-built metric name into the `&'static str` namespace
/// the registry keys on.
///
/// Metric maps key on `&'static str` so the common case (compile-time
/// names) allocates nothing; dynamically-shaped publishers (e.g. one
/// gauge per shard) intern their names once at construction. Interning
/// is deduplicated: the first intern of a name leaks it, every later
/// intern of the same name returns the same pointer, so repeated
/// per-shard/per-tenant name construction costs one leak per distinct
/// name rather than one per call.
pub fn intern_metric_name(name: String) -> &'static str {
    let mut pool = intern_pool().lock().expect("intern pool poisoned");
    if let Some(&existing) = pool.get(name.as_str()) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.into_boxed_str());
    pool.insert(leaked);
    leaked
}

/// How a counter is written, which determines how per-shard values merge.
///
/// Incrementally written counters ([`MetricsRegistry::counter_add`]) are
/// disjoint per shard and merge by summing. Cumulative counters
/// ([`MetricsRegistry::counter_set`]) are published as owner-side totals
/// and historically shared one registry across shards, where the stored
/// value saturates to the maximum publisher; merging per-shard replicas
/// therefore takes the max so a merged view is byte-identical to what a
/// single shared registry would have held.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterKind {
    /// Written with `counter_add`: per-shard deltas, merged by sum.
    Sum,
    /// Written with `counter_set`: owner-published totals, merged by max.
    Cumulative,
}

/// The per-tenant metric names a multi-tenant frontend publishes,
/// interned once at construction (the registry keys on `&'static str`).
///
/// Both sharded frontends (sequential and thread-parallel) publish these
/// under `sharded.tenant{i}.*` at every rebalance, so tenant-level QoS —
/// budget received, stall time suffered, pages lost to power failures —
/// is observable without re-aggregating the per-shard gauges.
#[derive(Debug, Clone, Copy)]
pub struct TenantMetricNames {
    /// Gauge: sum of the budgets assigned to the tenant's shards.
    pub budget_pages: &'static str,
    /// Gauge: pages the tenant's shards currently count dirty.
    pub dirty_pages: &'static str,
    /// Counter: virtual nanoseconds the tenant's writers spent stalled.
    pub stall_nanos: &'static str,
    /// Counter: pages the tenant lost to emergency flushes.
    pub pages_lost: &'static str,
}

impl TenantMetricNames {
    /// Interns the name set for tenant `index`.
    pub fn for_tenant(index: usize) -> Self {
        TenantMetricNames {
            budget_pages: intern_metric_name(format!("sharded.tenant{index}.budget_pages")),
            dirty_pages: intern_metric_name(format!("sharded.tenant{index}.dirty_pages")),
            stall_nanos: intern_metric_name(format!("sharded.tenant{index}.stall_nanos")),
            pages_lost: intern_metric_name(format!("sharded.tenant{index}.pages_lost")),
        }
    }
}

/// A counter's position at one epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSample {
    /// Increase since the previous snapshot (or since zero for the first).
    pub delta: u64,
    /// Cumulative value at the snapshot instant.
    pub total: u64,
}

/// The registry's state at one epoch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSnapshot {
    /// Epoch number the snapshot closes.
    pub epoch: u64,
    /// Virtual instant the snapshot was taken.
    pub at: SimTime,
    /// Counter deltas and totals, sorted by name.
    pub counters: Vec<(&'static str, CounterSample)>,
    /// Gauge values at the instant, sorted by name.
    pub gauges: Vec<(&'static str, f64)>,
}

impl EpochSnapshot {
    /// Looks up one counter sample by name.
    pub fn counter(&self, name: &str) -> Option<CounterSample> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| *s)
    }

    /// Looks up one gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }
}

/// Named metric store shared by every instrumented crate.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    /// Write discipline per counter, recorded at first write; drives the
    /// shard merge rule ([`CounterKind`]).
    kinds: BTreeMap<&'static str, CounterKind>,
    /// Counter totals at the previous snapshot, for delta computation.
    snapshotted: BTreeMap<&'static str, u64>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to a monotonic counter, creating it at zero.
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        self.kinds.entry(name).or_insert(CounterKind::Sum);
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets a counter to a cumulative value published by its owner.
    ///
    /// Saturates upward: publishers own the cumulative value, and a
    /// re-publish of an unchanged total must not rewind the counter.
    pub fn counter_set(&mut self, name: &'static str, total: u64) {
        self.kinds.entry(name).or_insert(CounterKind::Cumulative);
        let slot = self.counters.entry(name).or_insert(0);
        *slot = (*slot).max(total);
    }

    /// The write discipline of a counter, if it was ever written.
    pub fn counter_kind(&self, name: &str) -> Option<CounterKind> {
        self.kinds.get(name).copied()
    }

    /// Current cumulative value of a counter (zero if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets an instantaneous gauge.
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records one duration sample into a named histogram.
    pub fn histogram_record(&mut self, name: &'static str, sample: SimDuration) {
        self.histograms.entry(name).or_default().record(sample);
    }

    /// Read access to a named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Names of all counters, sorted.
    pub fn counter_names(&self) -> Vec<&'static str> {
        self.counters.keys().copied().collect()
    }

    /// All counters as `(name, value)` pairs, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&n, &v)| (n, v))
    }

    /// All gauges as `(name, value)` pairs, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&n, &v)| (n, v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&n, h)| (n, h))
    }

    /// Folds another registry (a telemetry shard's) into this one using
    /// the per-kind merge rules: [`CounterKind::Sum`] counters add,
    /// [`CounterKind::Cumulative`] counters take the max (reproducing
    /// what a single shared registry would have saturated to), gauges are
    /// last-writer (`other` wins, so merging parent-then-shards in fork
    /// order keys the survivor by shard), and histograms merge
    /// bucket-wise.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (name, value) in other.counters() {
            match other.counter_kind(name).unwrap_or(CounterKind::Sum) {
                CounterKind::Sum => self.counter_add(name, value),
                CounterKind::Cumulative => self.counter_set(name, value),
            }
        }
        for (name, value) in other.gauges() {
            self.gauge_set(name, value);
        }
        for (name, hist) in other.histograms() {
            self.histograms.entry(name).or_default().merge(hist);
        }
    }

    fn render_snapshot(&self, epoch: u64, at: SimTime) -> EpochSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(&name, &total)| {
                let prev = self.snapshotted.get(name).copied().unwrap_or(0);
                (
                    name,
                    CounterSample {
                        delta: total - prev,
                        total,
                    },
                )
            })
            .collect();
        EpochSnapshot {
            epoch,
            at,
            counters,
            gauges: self.gauges.iter().map(|(&n, &v)| (n, v)).collect(),
        }
    }

    /// Closes an epoch: captures counter deltas since the previous
    /// snapshot plus current gauge values.
    pub fn snapshot(&mut self, epoch: u64, at: SimTime) -> EpochSnapshot {
        let snap = self.render_snapshot(epoch, at);
        self.snapshotted = self.counters.clone();
        snap
    }

    /// Renders the snapshot [`MetricsRegistry::snapshot`] would produce
    /// *without* advancing the delta baseline. The flight recorder uses
    /// this so a mid-run postmortem dump never perturbs the deltas of
    /// later real snapshots.
    pub fn peek_snapshot(&self, epoch: u64, at: SimTime) -> EpochSnapshot {
        self.render_snapshot(epoch, at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_deltas_sum_to_totals() {
        let mut reg = MetricsRegistry::new();
        let mut snaps = Vec::new();
        let mut cum = 0;
        for epoch in 0..5 {
            cum += epoch + 1;
            reg.counter_set("faults", cum);
            reg.counter_add("walks", 1);
            snaps.push(reg.snapshot(epoch, SimTime::from_nanos(epoch)));
        }
        let fault_sum: u64 = snaps
            .iter()
            .map(|s| s.counter("faults").unwrap().delta)
            .sum();
        let walk_sum: u64 = snaps
            .iter()
            .map(|s| s.counter("walks").unwrap().delta)
            .sum();
        assert_eq!(fault_sum, reg.counter("faults"));
        assert_eq!(walk_sum, reg.counter("walks"));
        assert_eq!(snaps.last().unwrap().counter("faults").unwrap().total, cum);
    }

    #[test]
    fn counter_set_never_rewinds() {
        let mut reg = MetricsRegistry::new();
        reg.counter_set("x", 10);
        reg.counter_set("x", 7);
        assert_eq!(reg.counter("x"), 10);
    }

    #[test]
    fn gauges_report_latest_value_only() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_set("dirty", 3.0);
        reg.gauge_set("dirty", 5.0);
        let snap = reg.snapshot(0, SimTime::ZERO);
        assert_eq!(snap.gauge("dirty"), Some(5.0));
        assert_eq!(reg.gauge("missing"), None);
    }

    #[test]
    fn interning_the_same_name_twice_returns_one_pointer() {
        let a = intern_metric_name("test.intern.dedupe.alpha".to_string());
        let b = intern_metric_name("test.intern.dedupe.alpha".to_string());
        assert!(
            std::ptr::eq(a, b),
            "two interns of one name must be the same allocation"
        );
        let c = intern_metric_name("test.intern.dedupe.beta".to_string());
        assert!(!std::ptr::eq(a, c));
        assert_eq!(a, b);
    }

    #[test]
    fn counter_kinds_follow_the_first_write() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("added", 1);
        reg.counter_set("published", 5);
        assert_eq!(reg.counter_kind("added"), Some(CounterKind::Sum));
        assert_eq!(reg.counter_kind("published"), Some(CounterKind::Cumulative));
        assert_eq!(reg.counter_kind("never"), None);
    }

    #[test]
    fn merge_sums_added_counters_and_maxes_published_ones() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.counter_add("faults", 3);
        b.counter_add("faults", 4);
        a.counter_set("viyojit.epochs", 10);
        b.counter_set("viyojit.epochs", 7);
        a.gauge_set("dirty", 1.0);
        b.gauge_set("dirty", 2.0);
        a.histogram_record("lat", SimDuration::from_nanos(100));
        b.histogram_record("lat", SimDuration::from_nanos(300));
        a.merge_from(&b);
        assert_eq!(a.counter("faults"), 7);
        assert_eq!(a.counter("viyojit.epochs"), 10);
        assert_eq!(a.gauge("dirty"), Some(2.0));
        assert_eq!(a.histogram("lat").unwrap().len(), 2);
    }

    #[test]
    fn peek_snapshot_leaves_the_delta_baseline_alone() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("faults", 2);
        reg.snapshot(0, SimTime::ZERO);
        reg.counter_add("faults", 3);
        let peek = reg.peek_snapshot(1, SimTime::from_nanos(1));
        assert_eq!(peek.counter("faults").unwrap().delta, 3);
        let real = reg.snapshot(1, SimTime::from_nanos(1));
        assert_eq!(real.counter("faults").unwrap().delta, 3);
    }

    #[test]
    fn histograms_accumulate_samples() {
        let mut reg = MetricsRegistry::new();
        reg.histogram_record("lat", SimDuration::from_nanos(100));
        reg.histogram_record("lat", SimDuration::from_nanos(300));
        assert_eq!(reg.histogram("lat").unwrap().len(), 2);
        assert!(reg.histogram("none").is_none());
    }
}
