//! Named counters, gauges, and histograms with per-epoch snapshotting.
//!
//! Publishers (`ViyojitStats`, SSD wear/queue state, the battery model)
//! write cumulative counters and instantaneous gauges under stable
//! `&'static str` names. [`MetricsRegistry::snapshot`] closes an epoch:
//! it captures each counter's delta since the previous snapshot, so the
//! deltas of a metric across all snapshots sum back to its final total.
//! Maps are `BTreeMap`s so iteration (and therefore sink output) is
//! deterministic.

use std::collections::BTreeMap;

use sim_clock::{Histogram, SimDuration, SimTime};

/// Interns a runtime-built metric name into the `&'static str` namespace
/// the registry keys on.
///
/// Metric maps key on `&'static str` so the common case (compile-time
/// names) allocates nothing; dynamically-shaped publishers (e.g. one
/// gauge per shard) intern their names once at construction. The string
/// is leaked, so callers must intern a *bounded* set of names — one per
/// shard, not one per event.
pub fn intern_metric_name(name: String) -> &'static str {
    Box::leak(name.into_boxed_str())
}

/// The per-tenant metric names a multi-tenant frontend publishes,
/// interned once at construction (the registry keys on `&'static str`).
///
/// Both sharded frontends (sequential and thread-parallel) publish these
/// under `sharded.tenant{i}.*` at every rebalance, so tenant-level QoS —
/// budget received, stall time suffered, pages lost to power failures —
/// is observable without re-aggregating the per-shard gauges.
#[derive(Debug, Clone, Copy)]
pub struct TenantMetricNames {
    /// Gauge: sum of the budgets assigned to the tenant's shards.
    pub budget_pages: &'static str,
    /// Gauge: pages the tenant's shards currently count dirty.
    pub dirty_pages: &'static str,
    /// Counter: virtual nanoseconds the tenant's writers spent stalled.
    pub stall_nanos: &'static str,
    /// Counter: pages the tenant lost to emergency flushes.
    pub pages_lost: &'static str,
}

impl TenantMetricNames {
    /// Interns the name set for tenant `index`.
    pub fn for_tenant(index: usize) -> Self {
        TenantMetricNames {
            budget_pages: intern_metric_name(format!("sharded.tenant{index}.budget_pages")),
            dirty_pages: intern_metric_name(format!("sharded.tenant{index}.dirty_pages")),
            stall_nanos: intern_metric_name(format!("sharded.tenant{index}.stall_nanos")),
            pages_lost: intern_metric_name(format!("sharded.tenant{index}.pages_lost")),
        }
    }
}

/// A counter's position at one epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSample {
    /// Increase since the previous snapshot (or since zero for the first).
    pub delta: u64,
    /// Cumulative value at the snapshot instant.
    pub total: u64,
}

/// The registry's state at one epoch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSnapshot {
    /// Epoch number the snapshot closes.
    pub epoch: u64,
    /// Virtual instant the snapshot was taken.
    pub at: SimTime,
    /// Counter deltas and totals, sorted by name.
    pub counters: Vec<(&'static str, CounterSample)>,
    /// Gauge values at the instant, sorted by name.
    pub gauges: Vec<(&'static str, f64)>,
}

impl EpochSnapshot {
    /// Looks up one counter sample by name.
    pub fn counter(&self, name: &str) -> Option<CounterSample> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| *s)
    }

    /// Looks up one gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }
}

/// Named metric store shared by every instrumented crate.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    /// Counter totals at the previous snapshot, for delta computation.
    snapshotted: BTreeMap<&'static str, u64>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to a monotonic counter, creating it at zero.
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets a counter to a cumulative value published by its owner.
    ///
    /// Saturates upward: publishers own the cumulative value, and a
    /// re-publish of an unchanged total must not rewind the counter.
    pub fn counter_set(&mut self, name: &'static str, total: u64) {
        let slot = self.counters.entry(name).or_insert(0);
        *slot = (*slot).max(total);
    }

    /// Current cumulative value of a counter (zero if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets an instantaneous gauge.
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records one duration sample into a named histogram.
    pub fn histogram_record(&mut self, name: &'static str, sample: SimDuration) {
        self.histograms.entry(name).or_default().record(sample);
    }

    /// Read access to a named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Names of all counters, sorted.
    pub fn counter_names(&self) -> Vec<&'static str> {
        self.counters.keys().copied().collect()
    }

    /// Closes an epoch: captures counter deltas since the previous
    /// snapshot plus current gauge values.
    pub fn snapshot(&mut self, epoch: u64, at: SimTime) -> EpochSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(&name, &total)| {
                let prev = self.snapshotted.get(name).copied().unwrap_or(0);
                (
                    name,
                    CounterSample {
                        delta: total - prev,
                        total,
                    },
                )
            })
            .collect();
        self.snapshotted = self.counters.clone();
        EpochSnapshot {
            epoch,
            at,
            counters,
            gauges: self.gauges.iter().map(|(&n, &v)| (n, v)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_deltas_sum_to_totals() {
        let mut reg = MetricsRegistry::new();
        let mut snaps = Vec::new();
        let mut cum = 0;
        for epoch in 0..5 {
            cum += epoch + 1;
            reg.counter_set("faults", cum);
            reg.counter_add("walks", 1);
            snaps.push(reg.snapshot(epoch, SimTime::from_nanos(epoch)));
        }
        let fault_sum: u64 = snaps
            .iter()
            .map(|s| s.counter("faults").unwrap().delta)
            .sum();
        let walk_sum: u64 = snaps
            .iter()
            .map(|s| s.counter("walks").unwrap().delta)
            .sum();
        assert_eq!(fault_sum, reg.counter("faults"));
        assert_eq!(walk_sum, reg.counter("walks"));
        assert_eq!(snaps.last().unwrap().counter("faults").unwrap().total, cum);
    }

    #[test]
    fn counter_set_never_rewinds() {
        let mut reg = MetricsRegistry::new();
        reg.counter_set("x", 10);
        reg.counter_set("x", 7);
        assert_eq!(reg.counter("x"), 10);
    }

    #[test]
    fn gauges_report_latest_value_only() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_set("dirty", 3.0);
        reg.gauge_set("dirty", 5.0);
        let snap = reg.snapshot(0, SimTime::ZERO);
        assert_eq!(snap.gauge("dirty"), Some(5.0));
        assert_eq!(reg.gauge("missing"), None);
    }

    #[test]
    fn histograms_accumulate_samples() {
        let mut reg = MetricsRegistry::new();
        reg.histogram_record("lat", SimDuration::from_nanos(100));
        reg.histogram_record("lat", SimDuration::from_nanos(300));
        assert_eq!(reg.histogram("lat").unwrap().len(), 2);
        assert!(reg.histogram("none").is_none());
    }
}
