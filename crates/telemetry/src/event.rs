//! Typed trace events stamped with virtual time.
//!
//! Every event names one step of the Fig. 6 control flow (or a
//! neighbouring device/battery transition) and carries only `Copy`
//! payloads so recording never allocates.

use std::fmt;

use sim_clock::SimTime;

/// Why a flush was issued (Fig. 6 step 5 vs the proactive §6.2 path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlushReason {
    /// Issued by the epoch walker to keep headroom below the threshold.
    Proactive,
    /// Issued on the fault path because the dirty budget was exhausted.
    Forced,
}

impl fmt::Display for FlushReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlushReason::Proactive => f.write_str("proactive"),
            FlushReason::Forced => f.write_str("forced"),
        }
    }
}

/// What a fault-injection layer perturbed.
///
/// Emitted inside [`TraceEvent::FaultInjected`] by the `fault-sim` plan so
/// every injection is visible in the trace alongside the control-flow step
/// it disturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// A submitted SSD write failed transiently and must be retried.
    SsdWriteError,
    /// A submitted SSD write was serviced at a multiple of nominal latency.
    SsdLatencySpike,
    /// The whole device stalled; every channel's free time was pushed back.
    SsdStall,
    /// The battery reported a state of charge that differs from reality.
    SocMisreport,
    /// The battery's real capacity dropped abruptly (cell failure).
    CapacityDrop,
    /// The battery delivered less hold-up energy than its health implied.
    HoldupShortfall,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::SsdWriteError => "ssd_write_error",
            FaultKind::SsdLatencySpike => "ssd_latency_spike",
            FaultKind::SsdStall => "ssd_stall",
            FaultKind::SocMisreport => "soc_misreport",
            FaultKind::CapacityDrop => "capacity_drop",
            FaultKind::HoldupShortfall => "holdup_shortfall",
        })
    }
}

/// One step of the simulated control flow.
///
/// Forced and proactive flushes share the [`TraceEvent::FlushIssued`]
/// variant and are distinguished by [`FlushReason`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A store hit a write-protected page (Fig. 6 step 1).
    WriteFault {
        /// Faulting NV-DRAM page index.
        page: u64,
    },
    /// A victim page was submitted to the SSD copier.
    FlushIssued {
        /// Victim NV-DRAM page index.
        page: u64,
        /// Forced (budget exhausted) or proactive (epoch walker).
        reason: FlushReason,
        /// Epoch of the victim's last update, if still tracked.
        last_update_epoch: Option<u64>,
    },
    /// A copier write-back completed and the page returned to clean.
    FlushComplete {
        /// The page whose flush retired.
        page: u64,
    },
    /// The fault path blocked because every budgeted slot was dirty or
    /// in flight.
    BudgetStall {
        /// Dirty pages at the moment of the stall.
        dirty: u64,
        /// The budget the store had to get back under.
        budget: u64,
    },
    /// The epoch walker scanned the page tables.
    EpochWalk {
        /// Epoch number that just closed.
        epoch: u64,
        /// PTEs inspected by the walk.
        walked: u64,
        /// Pages newly observed dirty during the closing epoch.
        new_dirty: u64,
    },
    /// The walker invalidated the TLB after clearing dirty bits.
    TlbFlush {
        /// Epoch whose walk triggered the invalidation.
        epoch: u64,
    },
    /// A write was submitted to the simulated SSD.
    SsdSubmit {
        /// Destination SSD page index.
        page: u64,
        /// Physical (post-codec) payload bytes charged to the device.
        bytes: u64,
    },
    /// A previously submitted SSD write reached durability.
    SsdComplete {
        /// The SSD page whose write completed.
        page: u64,
    },
    /// The battery model re-derived the dirty budget (§8 dynamics).
    BatteryRecalc {
        /// Dirty budget in pages after the recalculation.
        budget_pages: u64,
        /// Battery health in parts per thousand of nameplate capacity.
        health_permille: u64,
    },
    /// The fault plan perturbed a device or battery interaction.
    FaultInjected {
        /// What was perturbed.
        kind: FaultKind,
        /// Affected page, or `u64::MAX` when the fault is device/battery
        /// wide (omitted from the rendered payload in that case).
        page: u64,
        /// Kind-specific magnitude in parts per thousand (latency factor,
        /// misreport factor, drop factor, shortfall fraction); zero when
        /// the kind carries no magnitude.
        magnitude_permille: u64,
    },
    /// The emergency flush retried a transiently failed write.
    FlushRetry {
        /// Page whose write failed.
        page: u64,
        /// Attempt number that failed, starting at 1.
        attempt: u32,
        /// Exponential backoff charged before the next attempt, in
        /// virtual nanoseconds.
        backoff_nanos: u64,
    },
    /// The emergency flush abandoned a page (retries exhausted or the
    /// battery died first); the page's contents did not reach the SSD.
    PageLost {
        /// The abandoned page.
        page: u64,
    },
    /// The degradation governor changed operating mode.
    DegradedModeChanged {
        /// True when entering degraded mode, false on recovery to nominal.
        degraded: bool,
        /// Dirty budget in pages after the transition.
        budget_pages: u64,
    },
    /// A tenant's degraded-mode throttle changed: applied (its allocation
    /// capped while siblings keep their QoS) or lifted.
    TenantThrottled {
        /// Tenant index within the budget hierarchy.
        tenant: u64,
        /// True when the throttle was applied, false when lifted.
        throttled: bool,
        /// The allocation cap in pages while throttled; the tenant's
        /// restored QoS capacity (possibly `u64::MAX`) when lifted.
        cap_pages: u64,
    },
    /// A crash schedule fired: the run is about to unwind from the named
    /// state-mutation seam, modelling an instantaneous power cut there.
    CrashInjected {
        /// Stable crashpoint name (the seam that fired).
        point: &'static str,
        /// Which hit of the seam fired, 1-based.
        hit: u64,
    },
    /// A parallel worker thread panicked; its shards are quarantined while
    /// it recovers from durable state.
    ShardPanicked {
        /// First shard owned by the panicked thread.
        shard: u64,
        /// Self-recoveries this worker has performed so far, including
        /// the one this panic triggers.
        restarts: u64,
    },
    /// A panicked worker finished recovering its shards from durable state
    /// and rejoined the cluster.
    ShardRespawned {
        /// First shard owned by the recovered thread.
        shard: u64,
        /// Pages lost across the thread's shards during the crash flush.
        pages_lost: u64,
    },
    /// A budget-round participant gave up waiting for a grant decision:
    /// the arbiter (or a peer it was waiting on) went silent past the
    /// round timeout, so the worker abandoned the round with
    /// `ViyojitError::RoundTimeout`.
    RoundTimedOut {
        /// The round the worker was participating in when it timed out.
        round: u64,
        /// Index of the worker thread that gave up.
        thread: u64,
    },
    /// An executed emergency flush finished (successfully or not).
    EmergencyFlush {
        /// Pages that reached durability (including presumed-durable clean
        /// pages counted by the baseline's full-capacity obligation).
        pages_flushed: u64,
        /// Pages lost to exhausted retries or battery death.
        pages_lost: u64,
        /// Total write retries performed.
        retries: u64,
    },
}

impl TraceEvent {
    /// Stable lowercase name of the variant, used by the sinks.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::WriteFault { .. } => "write_fault",
            TraceEvent::FlushIssued { .. } => "flush_issued",
            TraceEvent::FlushComplete { .. } => "flush_complete",
            TraceEvent::BudgetStall { .. } => "budget_stall",
            TraceEvent::EpochWalk { .. } => "epoch_walk",
            TraceEvent::TlbFlush { .. } => "tlb_flush",
            TraceEvent::SsdSubmit { .. } => "ssd_submit",
            TraceEvent::SsdComplete { .. } => "ssd_complete",
            TraceEvent::BatteryRecalc { .. } => "battery_recalc",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::FlushRetry { .. } => "flush_retry",
            TraceEvent::PageLost { .. } => "page_lost",
            TraceEvent::DegradedModeChanged { .. } => "degraded_mode_changed",
            TraceEvent::TenantThrottled { .. } => "tenant_throttled",
            TraceEvent::CrashInjected { .. } => "crash_injected",
            TraceEvent::ShardPanicked { .. } => "shard_panicked",
            TraceEvent::ShardRespawned { .. } => "shard_respawned",
            TraceEvent::RoundTimedOut { .. } => "round_timed_out",
            TraceEvent::EmergencyFlush { .. } => "emergency_flush",
        }
    }
}

impl fmt::Display for TraceEvent {
    /// Renders the payload as `key=value` pairs separated by spaces, with
    /// no leading kind (the sinks emit [`TraceEvent::kind`] separately).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::WriteFault { page } => write!(f, "page={page}"),
            TraceEvent::FlushIssued {
                page,
                reason,
                last_update_epoch,
            } => {
                write!(f, "page={page} reason={reason}")?;
                match last_update_epoch {
                    Some(e) => write!(f, " last_update_epoch={e}"),
                    None => write!(f, " last_update_epoch=none"),
                }
            }
            TraceEvent::FlushComplete { page } => write!(f, "page={page}"),
            TraceEvent::BudgetStall { dirty, budget } => {
                write!(f, "dirty={dirty} budget={budget}")
            }
            TraceEvent::EpochWalk {
                epoch,
                walked,
                new_dirty,
            } => write!(f, "epoch={epoch} walked={walked} new_dirty={new_dirty}"),
            TraceEvent::TlbFlush { epoch } => write!(f, "epoch={epoch}"),
            TraceEvent::SsdSubmit { page, bytes } => write!(f, "page={page} bytes={bytes}"),
            TraceEvent::SsdComplete { page } => write!(f, "page={page}"),
            TraceEvent::BatteryRecalc {
                budget_pages,
                health_permille,
            } => write!(
                f,
                "budget_pages={budget_pages} health_permille={health_permille}"
            ),
            TraceEvent::FaultInjected {
                kind,
                page,
                magnitude_permille,
            } => {
                write!(f, "kind={kind}")?;
                if *page != u64::MAX {
                    write!(f, " page={page}")?;
                }
                write!(f, " magnitude_permille={magnitude_permille}")
            }
            TraceEvent::FlushRetry {
                page,
                attempt,
                backoff_nanos,
            } => write!(
                f,
                "page={page} attempt={attempt} backoff_nanos={backoff_nanos}"
            ),
            TraceEvent::PageLost { page } => write!(f, "page={page}"),
            TraceEvent::DegradedModeChanged {
                degraded,
                budget_pages,
            } => write!(f, "degraded={degraded} budget_pages={budget_pages}"),
            TraceEvent::TenantThrottled {
                tenant,
                throttled,
                cap_pages,
            } => write!(
                f,
                "tenant={tenant} throttled={throttled} cap_pages={cap_pages}"
            ),
            TraceEvent::CrashInjected { point, hit } => {
                write!(f, "point={point} hit={hit}")
            }
            TraceEvent::ShardPanicked { shard, restarts } => {
                write!(f, "shard={shard} restarts={restarts}")
            }
            TraceEvent::ShardRespawned { shard, pages_lost } => {
                write!(f, "shard={shard} pages_lost={pages_lost}")
            }
            TraceEvent::RoundTimedOut { round, thread } => {
                write!(f, "round={round} thread={thread}")
            }
            TraceEvent::EmergencyFlush {
                pages_flushed,
                pages_lost,
                retries,
            } => write!(
                f,
                "pages_flushed={pages_flushed} pages_lost={pages_lost} retries={retries}"
            ),
        }
    }
}

/// A [`TraceEvent`] stamped with the virtual instant it describes and a
/// monotonically increasing sequence number (recording order).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracedEvent {
    /// Virtual time the event describes. For [`TraceEvent::SsdComplete`]
    /// this is the completion instant, which may lie in the future of the
    /// clock at recording time; all other events are stamped `now`.
    pub at: SimTime,
    /// Recording order, starting at zero, counting dropped events too.
    pub seq: u64,
    /// The event payload.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_lowercase_names() {
        let e = TraceEvent::FlushIssued {
            page: 7,
            reason: FlushReason::Forced,
            last_update_epoch: Some(3),
        };
        assert_eq!(e.kind(), "flush_issued");
        assert_eq!(e.to_string(), "page=7 reason=forced last_update_epoch=3");
    }

    #[test]
    fn fault_event_omits_device_wide_page() {
        let device_wide = TraceEvent::FaultInjected {
            kind: FaultKind::SsdStall,
            page: u64::MAX,
            magnitude_permille: 0,
        };
        assert_eq!(device_wide.kind(), "fault_injected");
        assert_eq!(
            device_wide.to_string(),
            "kind=ssd_stall magnitude_permille=0"
        );
        let paged = TraceEvent::FaultInjected {
            kind: FaultKind::SsdWriteError,
            page: 9,
            magnitude_permille: 0,
        };
        assert_eq!(
            paged.to_string(),
            "kind=ssd_write_error page=9 magnitude_permille=0"
        );
    }

    #[test]
    fn emergency_events_render_key_value_payloads() {
        let retry = TraceEvent::FlushRetry {
            page: 4,
            attempt: 2,
            backoff_nanos: 100_000,
        };
        assert_eq!(retry.kind(), "flush_retry");
        assert_eq!(retry.to_string(), "page=4 attempt=2 backoff_nanos=100000");
        let lost = TraceEvent::PageLost { page: 11 };
        assert_eq!(lost.kind(), "page_lost");
        assert_eq!(lost.to_string(), "page=11");
        let mode = TraceEvent::DegradedModeChanged {
            degraded: true,
            budget_pages: 32,
        };
        assert_eq!(mode.kind(), "degraded_mode_changed");
        assert_eq!(mode.to_string(), "degraded=true budget_pages=32");
        let throttle = TraceEvent::TenantThrottled {
            tenant: 1,
            throttled: true,
            cap_pages: 12,
        };
        assert_eq!(throttle.kind(), "tenant_throttled");
        assert_eq!(throttle.to_string(), "tenant=1 throttled=true cap_pages=12");
        let done = TraceEvent::EmergencyFlush {
            pages_flushed: 30,
            pages_lost: 2,
            retries: 5,
        };
        assert_eq!(done.kind(), "emergency_flush");
        assert_eq!(done.to_string(), "pages_flushed=30 pages_lost=2 retries=5");
    }

    #[test]
    fn crash_and_supervision_events_render_key_value_payloads() {
        let crash = TraceEvent::CrashInjected {
            point: "flush_in_flight",
            hit: 2,
        };
        assert_eq!(crash.kind(), "crash_injected");
        assert_eq!(crash.to_string(), "point=flush_in_flight hit=2");
        let panicked = TraceEvent::ShardPanicked {
            shard: 3,
            restarts: 1,
        };
        assert_eq!(panicked.kind(), "shard_panicked");
        assert_eq!(panicked.to_string(), "shard=3 restarts=1");
        let respawned = TraceEvent::ShardRespawned {
            shard: 3,
            pages_lost: 0,
        };
        assert_eq!(respawned.kind(), "shard_respawned");
        assert_eq!(respawned.to_string(), "shard=3 pages_lost=0");
        let timed_out = TraceEvent::RoundTimedOut {
            round: 7,
            thread: 2,
        };
        assert_eq!(timed_out.kind(), "round_timed_out");
        assert_eq!(timed_out.to_string(), "round=7 thread=2");
    }

    #[test]
    fn display_handles_missing_history() {
        let e = TraceEvent::FlushIssued {
            page: 1,
            reason: FlushReason::Proactive,
            last_update_epoch: None,
        };
        assert_eq!(
            e.to_string(),
            "page=1 reason=proactive last_update_epoch=none"
        );
    }
}
