//! Typed trace events stamped with virtual time.
//!
//! Every event names one step of the Fig. 6 control flow (or a
//! neighbouring device/battery transition) and carries only `Copy`
//! payloads so recording never allocates.

use std::fmt;

use sim_clock::SimTime;

/// Why a flush was issued (Fig. 6 step 5 vs the proactive §6.2 path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlushReason {
    /// Issued by the epoch walker to keep headroom below the threshold.
    Proactive,
    /// Issued on the fault path because the dirty budget was exhausted.
    Forced,
}

impl fmt::Display for FlushReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlushReason::Proactive => f.write_str("proactive"),
            FlushReason::Forced => f.write_str("forced"),
        }
    }
}

/// One step of the simulated control flow.
///
/// Forced and proactive flushes share the [`TraceEvent::FlushIssued`]
/// variant and are distinguished by [`FlushReason`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A store hit a write-protected page (Fig. 6 step 1).
    WriteFault {
        /// Faulting NV-DRAM page index.
        page: u64,
    },
    /// A victim page was submitted to the SSD copier.
    FlushIssued {
        /// Victim NV-DRAM page index.
        page: u64,
        /// Forced (budget exhausted) or proactive (epoch walker).
        reason: FlushReason,
        /// Epoch of the victim's last update, if still tracked.
        last_update_epoch: Option<u64>,
    },
    /// A copier write-back completed and the page returned to clean.
    FlushComplete {
        /// The page whose flush retired.
        page: u64,
    },
    /// The fault path blocked because every budgeted slot was dirty or
    /// in flight.
    BudgetStall {
        /// Dirty pages at the moment of the stall.
        dirty: u64,
        /// The budget the store had to get back under.
        budget: u64,
    },
    /// The epoch walker scanned the page tables.
    EpochWalk {
        /// Epoch number that just closed.
        epoch: u64,
        /// PTEs inspected by the walk.
        walked: u64,
        /// Pages newly observed dirty during the closing epoch.
        new_dirty: u64,
    },
    /// The walker invalidated the TLB after clearing dirty bits.
    TlbFlush {
        /// Epoch whose walk triggered the invalidation.
        epoch: u64,
    },
    /// A write was submitted to the simulated SSD.
    SsdSubmit {
        /// Destination SSD page index.
        page: u64,
        /// Physical (post-codec) payload bytes charged to the device.
        bytes: u64,
    },
    /// A previously submitted SSD write reached durability.
    SsdComplete {
        /// The SSD page whose write completed.
        page: u64,
    },
    /// The battery model re-derived the dirty budget (§8 dynamics).
    BatteryRecalc {
        /// Dirty budget in pages after the recalculation.
        budget_pages: u64,
        /// Battery health in parts per thousand of nameplate capacity.
        health_permille: u64,
    },
}

impl TraceEvent {
    /// Stable lowercase name of the variant, used by the sinks.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::WriteFault { .. } => "write_fault",
            TraceEvent::FlushIssued { .. } => "flush_issued",
            TraceEvent::FlushComplete { .. } => "flush_complete",
            TraceEvent::BudgetStall { .. } => "budget_stall",
            TraceEvent::EpochWalk { .. } => "epoch_walk",
            TraceEvent::TlbFlush { .. } => "tlb_flush",
            TraceEvent::SsdSubmit { .. } => "ssd_submit",
            TraceEvent::SsdComplete { .. } => "ssd_complete",
            TraceEvent::BatteryRecalc { .. } => "battery_recalc",
        }
    }
}

impl fmt::Display for TraceEvent {
    /// Renders the payload as `key=value` pairs separated by spaces, with
    /// no leading kind (the sinks emit [`TraceEvent::kind`] separately).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::WriteFault { page } => write!(f, "page={page}"),
            TraceEvent::FlushIssued {
                page,
                reason,
                last_update_epoch,
            } => {
                write!(f, "page={page} reason={reason}")?;
                match last_update_epoch {
                    Some(e) => write!(f, " last_update_epoch={e}"),
                    None => write!(f, " last_update_epoch=none"),
                }
            }
            TraceEvent::FlushComplete { page } => write!(f, "page={page}"),
            TraceEvent::BudgetStall { dirty, budget } => {
                write!(f, "dirty={dirty} budget={budget}")
            }
            TraceEvent::EpochWalk {
                epoch,
                walked,
                new_dirty,
            } => write!(f, "epoch={epoch} walked={walked} new_dirty={new_dirty}"),
            TraceEvent::TlbFlush { epoch } => write!(f, "epoch={epoch}"),
            TraceEvent::SsdSubmit { page, bytes } => write!(f, "page={page} bytes={bytes}"),
            TraceEvent::SsdComplete { page } => write!(f, "page={page}"),
            TraceEvent::BatteryRecalc {
                budget_pages,
                health_permille,
            } => write!(
                f,
                "budget_pages={budget_pages} health_permille={health_permille}"
            ),
        }
    }
}

/// A [`TraceEvent`] stamped with the virtual instant it describes and a
/// monotonically increasing sequence number (recording order).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracedEvent {
    /// Virtual time the event describes. For [`TraceEvent::SsdComplete`]
    /// this is the completion instant, which may lie in the future of the
    /// clock at recording time; all other events are stamped `now`.
    pub at: SimTime,
    /// Recording order, starting at zero, counting dropped events too.
    pub seq: u64,
    /// The event payload.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_lowercase_names() {
        let e = TraceEvent::FlushIssued {
            page: 7,
            reason: FlushReason::Forced,
            last_update_epoch: Some(3),
        };
        assert_eq!(e.kind(), "flush_issued");
        assert_eq!(e.to_string(), "page=7 reason=forced last_update_epoch=3");
    }

    #[test]
    fn display_handles_missing_history() {
        let e = TraceEvent::FlushIssued {
            page: 1,
            reason: FlushReason::Proactive,
            last_update_epoch: None,
        };
        assert_eq!(
            e.to_string(),
            "page=1 reason=proactive last_update_epoch=none"
        );
    }
}
