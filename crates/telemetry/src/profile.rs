//! Causal, span-based virtual-time profiler.
//!
//! Every virtual nanosecond that the simulation charges to the shared
//! [`sim_clock::Clock`] is attributed to exactly one *leaf span*. A span
//! carries a [`CostClass`] (write-protection trap, TLB flush, budget
//! stall, ...) and spans nest causally: an epoch walk that issues a
//! proactive flush whose PTE update charges time yields the folded path
//! `app;epoch_walk;pte_update`. The root frame `app` absorbs all time
//! not inside any span — application work between instrumented sites.
//!
//! # Conservation
//!
//! Attribution uses a watermark: the profiler remembers the last instant
//! (`mark`) it accounted up to, and every instrumented site moves the
//! watermark forward, crediting the interval to the current span path.
//! By construction the folded totals sum to *exactly* the clock time
//! elapsed since the profiler was enabled — the invariant
//! `Σ leaf spans == clock elapsed` checked by
//! [`ProfileReport::is_conserved`] and by `viyojit-trace check`.
//!
//! Time that does not flow through the shared clock is tracked
//! separately and never counted against conservation:
//!
//! - *device time* (SSD queue wait and transfer time overlap wall time
//!   across channels), and
//! - the *local shutdown timeline* of the emergency flush executor.
//!
//! Both land in the auxiliary table ([`ProfileReport::aux`]).
//!
//! # Determinism
//!
//! Like [`crate::Telemetry`], a profiler observes the clock and never
//! advances it. The default handle is disabled and constructs nothing,
//! so runs with profiling off are bit-identical to uninstrumented runs.
//!
//! # Example
//!
//! ```
//! use sim_clock::{Clock, SimDuration};
//! use telemetry::{CostClass, Profiler};
//!
//! let clock = Clock::new();
//! let profiler = Profiler::enabled(clock.clone());
//!
//! clock.advance(SimDuration::from_micros(10)); // plain application work
//! {
//!     let _walk = profiler.span(CostClass::EpochWalk);
//!     clock.advance(SimDuration::from_micros(3)); // walk bookkeeping
//!     clock.advance(SimDuration::from_nanos(400)); // a PTE permission flip
//!     profiler.charge(CostClass::PteUpdate, SimDuration::from_nanos(400));
//! }
//!
//! let report = profiler.report().unwrap();
//! assert!(report.is_conserved());
//! assert_eq!(report.nanos_for("app"), 10_000);
//! assert_eq!(report.nanos_for("app;epoch_walk"), 3_000);
//! assert_eq!(report.nanos_for("app;epoch_walk;pte_update"), 400);
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use sim_clock::{Clock, SimDuration, SimTime};

/// Name of the implicit root frame absorbing unattributed time.
pub const ROOT_FRAME: &str = "app";

/// The mechanism a slice of virtual time is attributed to.
///
/// Each class maps 1:1 onto a stable lowercase frame name used in folded
/// stacks, `ProfileReport` tables, and the `viyojit-trace` CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CostClass {
    /// Write-protection trap: the fault itself plus its handling.
    WpTrap,
    /// TLB miss charged on address translation.
    TlbMiss,
    /// TLB hit charged on address translation.
    TlbHit,
    /// Whole-TLB invalidation (epoch boundary shootdown).
    TlbFlush,
    /// PTE permission change (protect/unprotect).
    PteUpdate,
    /// Per-PTE walk step during a dirty-bit scan.
    PteWalk,
    /// DRAM line transfer charged on reads/writes.
    DramAccess,
    /// Epoch-boundary bookkeeping: walk, threshold update, snapshots.
    EpochWalk,
    /// Waiting for a specific page's copy-out IO to land.
    CopyOutIo,
    /// Stalled because the dirty budget was exhausted.
    BudgetStall,
    /// Emergency flush executor (local shutdown timeline).
    EmergencyFlush,
    /// Retry/backoff of a failed flush attempt.
    FaultRetry,
    /// Degradation-governor decision and budget application.
    GovernorAction,
    /// SSD device: request waiting for a free channel.
    SsdQueueWait,
    /// SSD device: program latency plus bus transfer.
    SsdTransfer,
}

impl CostClass {
    /// Every cost class, in a stable order.
    pub const ALL: [CostClass; 15] = [
        CostClass::WpTrap,
        CostClass::TlbMiss,
        CostClass::TlbHit,
        CostClass::TlbFlush,
        CostClass::PteUpdate,
        CostClass::PteWalk,
        CostClass::DramAccess,
        CostClass::EpochWalk,
        CostClass::CopyOutIo,
        CostClass::BudgetStall,
        CostClass::EmergencyFlush,
        CostClass::FaultRetry,
        CostClass::GovernorAction,
        CostClass::SsdQueueWait,
        CostClass::SsdTransfer,
    ];

    /// Stable frame name used in folded stacks and reports.
    pub const fn name(self) -> &'static str {
        match self {
            CostClass::WpTrap => "wp_trap",
            CostClass::TlbMiss => "tlb_miss",
            CostClass::TlbHit => "tlb_hit",
            CostClass::TlbFlush => "tlb_flush",
            CostClass::PteUpdate => "pte_update",
            CostClass::PteWalk => "pte_walk",
            CostClass::DramAccess => "dram_access",
            CostClass::EpochWalk => "epoch_walk",
            CostClass::CopyOutIo => "copy_out_io",
            CostClass::BudgetStall => "budget_stall",
            CostClass::EmergencyFlush => "emergency_flush",
            CostClass::FaultRetry => "fault_retry",
            CostClass::GovernorAction => "governor_action",
            CostClass::SsdQueueWait => "ssd_queue_wait",
            CostClass::SsdTransfer => "ssd_transfer",
        }
    }
}

impl fmt::Display for CostClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct AuxSample {
    count: u64,
    nanos: u64,
}

#[derive(Debug)]
struct ProfilerState {
    clock: Clock,
    origin: SimTime,
    /// Everything up to this instant has been attributed.
    mark: SimTime,
    /// Open frames: `(leaf name, path length before this frame)`.
    frames: Vec<(&'static str, usize)>,
    /// Current folded path, always starting with [`ROOT_FRAME`].
    path: String,
    /// Self time per folded path.
    folded: BTreeMap<String, u64>,
    /// Self time per leaf frame name, across all paths.
    by_class: BTreeMap<&'static str, u64>,
    /// Self time per leaf frame name, split by epoch.
    by_epoch: BTreeMap<u64, BTreeMap<&'static str, u64>>,
    epoch: u64,
    /// Off-clock accounting (device time, shutdown timeline).
    aux: BTreeMap<&'static str, AuxSample>,
}

impl ProfilerState {
    fn new(clock: Clock) -> Self {
        let origin = clock.now();
        ProfilerState {
            clock,
            origin,
            mark: origin,
            frames: Vec::new(),
            path: String::from(ROOT_FRAME),
            folded: BTreeMap::new(),
            by_class: BTreeMap::new(),
            by_epoch: BTreeMap::new(),
            epoch: 0,
            aux: BTreeMap::new(),
        }
    }

    fn leaf(&self) -> &'static str {
        self.frames.last().map(|f| f.0).unwrap_or(ROOT_FRAME)
    }

    /// Credits `nanos` of self time to the current path.
    fn attribute(&mut self, nanos: u64) {
        if nanos == 0 {
            return;
        }
        *self.folded.entry(self.path.clone()).or_insert(0) += nanos;
        let leaf = self.leaf();
        *self.by_class.entry(leaf).or_insert(0) += nanos;
        *self
            .by_epoch
            .entry(self.epoch)
            .or_default()
            .entry(leaf)
            .or_insert(0) += nanos;
    }

    /// Moves the watermark to "now", crediting the interval to the
    /// current span.
    fn sync(&mut self) {
        let now = self.clock.now();
        let elapsed = now.saturating_since(self.mark).as_nanos();
        self.attribute(elapsed);
        self.mark = now;
    }

    fn push(&mut self, name: &'static str) {
        self.sync();
        self.frames.push((name, self.path.len()));
        self.path.push(';');
        self.path.push_str(name);
    }

    fn pop(&mut self) {
        self.sync();
        if let Some((_, len)) = self.frames.pop() {
            self.path.truncate(len);
        }
    }

    /// Attributes a known-size charge to `class` nested under the
    /// current span, and any preceding unaccounted time to the current
    /// span itself.
    fn charge(&mut self, class: CostClass, d: SimDuration) {
        let now = self.clock.now();
        let total = now.saturating_since(self.mark).as_nanos();
        let slice = d.as_nanos().min(total);
        self.attribute(total - slice);
        if slice > 0 {
            let len = self.path.len();
            self.frames.push((class.name(), len));
            self.path.push(';');
            self.path.push_str(class.name());
            self.attribute(slice);
            self.frames.pop();
            self.path.truncate(len);
        }
        self.mark = now;
    }

    fn aux_charge(&mut self, class: CostClass, d: SimDuration) {
        let entry = self.aux.entry(class.name()).or_default();
        entry.count += 1;
        entry.nanos += d.as_nanos();
    }

    fn set_epoch(&mut self, epoch: u64) {
        self.sync();
        self.epoch = epoch;
    }

    fn report(&mut self) -> ProfileReport {
        self.sync();
        let attributed: u64 = self.folded.values().sum();
        ProfileReport {
            elapsed: self.mark.saturating_since(self.origin),
            attributed: SimDuration::from_nanos(attributed),
            folded: self
                .folded
                .iter()
                .map(|(path, nanos)| (path.clone(), *nanos))
                .collect(),
            by_class: self.by_class.iter().map(|(n, v)| (*n, *v)).collect(),
            by_epoch: self
                .by_epoch
                .iter()
                .map(|(epoch, classes)| (*epoch, classes.iter().map(|(n, v)| (*n, *v)).collect()))
                .collect(),
            aux: self
                .aux
                .iter()
                .map(|(name, s)| (*name, s.count, s.nanos))
                .collect(),
        }
    }
}

/// Shared, cheaply clonable profiler handle.
///
/// Mirrors [`crate::Telemetry`]: the default handle is disabled and
/// constructs nothing; an enabled handle attributes every clock advance
/// to the innermost open span. All clones share one attribution state,
/// so the engine, MMU, and SSD cooperate on a single span stack.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    state: Option<Arc<Mutex<ProfilerState>>>,
}

impl Profiler {
    /// A disabled handle: attributes nothing, costs one branch per hook.
    pub fn disabled() -> Self {
        Profiler::default()
    }

    /// An enabled handle whose origin (and watermark) is `clock.now()`.
    pub fn enabled(clock: Clock) -> Self {
        Profiler {
            state: Some(Arc::new(Mutex::new(ProfilerState::new(clock)))),
        }
    }

    /// Whether this handle attributes anything.
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// A per-thread fork: a fresh profiler over `clock`, enabled exactly
    /// when this handle is enabled.
    ///
    /// The parallel sharded runtime cannot share one span stack across
    /// threads (spans would interleave nonsensically), so each shard
    /// thread forks the configured profiler against its own clock and the
    /// per-thread reports are collected separately.
    pub fn fork(&self, clock: Clock) -> Profiler {
        if self.is_enabled() {
            Profiler::enabled(clock)
        } else {
            Profiler::disabled()
        }
    }

    fn lock(&self) -> Option<std::sync::MutexGuard<'_, ProfilerState>> {
        self.state
            .as_ref()
            .map(|s| s.lock().expect("profiler poisoned"))
    }

    /// Opens a span for `class`; the span closes when the guard drops.
    ///
    /// Time elapsed before the span opens is credited to the enclosing
    /// span; time inside it (not claimed by nested spans or charges) is
    /// credited to this span.
    #[must_use = "the span closes when the guard is dropped"]
    pub fn span(&self, class: CostClass) -> SpanGuard {
        self.scope(class.name())
    }

    /// Opens a span with an arbitrary (interned) frame name.
    ///
    /// Used for grouping frames that are not cost classes, e.g. the
    /// per-shard `shard<N>` frames of the sharded manager.
    #[must_use = "the span closes when the guard is dropped"]
    pub fn scope(&self, name: &'static str) -> SpanGuard {
        if let Some(mut state) = self.lock() {
            state.push(name);
        }
        SpanGuard {
            state: self.state.clone(),
        }
    }

    /// Attributes a known-size charge (the cost-model amount just added
    /// to the clock) to `class`, nested under the current span.
    ///
    /// Any clock movement since the last accounting that *precedes* the
    /// charge is credited to the enclosing span, keeping attribution
    /// exact without requiring every site to open a span.
    #[inline]
    pub fn charge(&self, class: CostClass, d: SimDuration) {
        if let Some(mut state) = self.lock() {
            state.charge(class, d);
        }
    }

    /// Records off-clock time (device time, shutdown timeline) for
    /// `class` in the auxiliary table. Does not affect conservation.
    #[inline]
    pub fn aux_charge(&self, class: CostClass, d: SimDuration) {
        if let Some(mut state) = self.lock() {
            state.aux_charge(class, d);
        }
    }

    /// Switches the per-epoch attribution bucket, crediting time up to
    /// "now" to the previous epoch.
    pub fn set_epoch(&self, epoch: u64) {
        if let Some(mut state) = self.lock() {
            state.set_epoch(epoch);
        }
    }

    /// Moves the watermark to "now", crediting elapsed time to the
    /// current span.
    pub fn sync(&self) {
        if let Some(mut state) = self.lock() {
            state.sync();
        }
    }

    /// Snapshots attribution into a [`ProfileReport`] (`None` when
    /// disabled). Syncs first, so the report is conserved as of "now".
    pub fn report(&self) -> Option<ProfileReport> {
        self.lock().map(|mut state| state.report())
    }
}

/// RAII guard closing a span opened by [`Profiler::span`]/[`Profiler::scope`].
#[derive(Debug)]
pub struct SpanGuard {
    state: Option<Arc<Mutex<ProfilerState>>>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(state) = &self.state {
            state.lock().expect("profiler poisoned").pop();
        }
    }
}

/// Per-cost-class and per-epoch virtual-time breakdown.
///
/// Produced by [`Profiler::report`]. All durations are self time: the
/// folded table sums to [`ProfileReport::elapsed`] exactly when the
/// conservation invariant holds (it does by construction; see
/// [`ProfileReport::is_conserved`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// Clock time elapsed between enabling the profiler and the report.
    pub elapsed: SimDuration,
    /// Sum of all folded self times; equals `elapsed` when conserved.
    pub attributed: SimDuration,
    /// `(folded path, self nanos)` rows, lexicographic by path.
    pub folded: Vec<(String, u64)>,
    /// `(leaf frame name, self nanos)` rows across all paths.
    pub by_class: Vec<(&'static str, u64)>,
    /// Per-epoch `(leaf frame name, self nanos)` rows.
    pub by_epoch: Vec<(u64, Vec<(&'static str, u64)>)>,
    /// Off-clock accounting: `(class name, count, nanos)`.
    pub aux: Vec<(&'static str, u64, u64)>,
}

impl ProfileReport {
    /// Whether every elapsed nanosecond was attributed to exactly one
    /// leaf span: `Σ leaf spans == clock elapsed`.
    pub fn is_conserved(&self) -> bool {
        self.elapsed == self.attributed
    }

    /// Self nanos attributed to a folded path (0 when absent).
    pub fn nanos_for(&self, path: &str) -> u64 {
        self.folded
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Self nanos attributed to a leaf frame across all paths.
    pub fn class_nanos(&self, name: &str) -> u64 {
        self.by_class
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Renders the folded-stack format consumed by `inferno` /
    /// `flamegraph.pl`: one `path value` line per folded path.
    pub fn render_folded(&self) -> String {
        let mut out = String::new();
        for (path, nanos) in &self.folded {
            out.push_str(path);
            out.push(' ');
            out.push_str(&nanos.to_string());
            out.push('\n');
        }
        out
    }

    /// Writes [`ProfileReport::render_folded`] to a writer.
    pub fn write_folded<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(self.render_folded().as_bytes())
    }
}

/// Run identity stamped at the head of every trace.
///
/// `viyojit-trace diff` refuses to compare two traces whose
/// `config_hash` or `backend` differ (unless forced), so regressions are
/// only ever reported between comparable runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Crate version of the writer (`CARGO_PKG_VERSION`).
    pub version: String,
    /// Bench or tool that produced the trace (e.g. `fig7`).
    pub bench: String,
    /// Engine backend label (e.g. `Viyojit`, `Viyojit-MMU`, `NV-DRAM`).
    pub backend: String,
    /// Stable FNV-1a hash of the rendered experiment configuration.
    pub config_hash: u64,
    /// Fault-injection seed, when fault injection was active.
    pub fault_seed: Option<u64>,
}

impl RunMeta {
    /// Builds a header for `bench` running `backend` with the given
    /// rendered configuration (hashed with [`fnv1a_64`]).
    pub fn new(bench: &str, backend: &str, config_text: &str, fault_seed: Option<u64>) -> Self {
        RunMeta {
            version: env!("CARGO_PKG_VERSION").to_string(),
            bench: bench.to_string(),
            backend: backend.to_string(),
            config_hash: fnv1a_64(config_text.as_bytes()),
            fault_seed,
        }
    }
}

/// 64-bit FNV-1a. Stable across platforms and Rust versions, unlike
/// `DefaultHasher`, so config hashes written into traces stay comparable
/// between runs of different builds.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_constructs_nothing() {
        let profiler = Profiler::disabled();
        assert!(!profiler.is_enabled());
        let _guard = profiler.span(CostClass::WpTrap);
        profiler.charge(CostClass::TlbMiss, SimDuration::from_nanos(120));
        assert!(profiler.report().is_none());
    }

    #[test]
    fn unattributed_time_lands_on_the_root_frame() {
        let clock = Clock::new();
        let profiler = Profiler::enabled(clock.clone());
        clock.advance(SimDuration::from_micros(5));
        let report = profiler.report().unwrap();
        assert!(report.is_conserved());
        assert_eq!(report.nanos_for(ROOT_FRAME), 5_000);
    }

    #[test]
    fn spans_nest_and_conserve() {
        let clock = Clock::new();
        let profiler = Profiler::enabled(clock.clone());
        clock.advance(SimDuration::from_nanos(100));
        {
            let _fault = profiler.span(CostClass::WpTrap);
            clock.advance(SimDuration::from_nanos(40));
            {
                let _stall = profiler.span(CostClass::BudgetStall);
                clock.advance(SimDuration::from_nanos(60));
            }
            clock.advance(SimDuration::from_nanos(7));
        }
        let report = profiler.report().unwrap();
        assert!(report.is_conserved());
        assert_eq!(report.elapsed.as_nanos(), 207);
        assert_eq!(report.nanos_for("app"), 100);
        assert_eq!(report.nanos_for("app;wp_trap"), 47);
        assert_eq!(report.nanos_for("app;wp_trap;budget_stall"), 60);
        assert_eq!(report.class_nanos("wp_trap"), 47);
    }

    #[test]
    fn charge_splits_preceding_time_from_the_charge() {
        let clock = Clock::new();
        let profiler = Profiler::enabled(clock.clone());
        let _walk = profiler.span(CostClass::EpochWalk);
        clock.advance(SimDuration::from_nanos(30)); // walk bookkeeping
        clock.advance(SimDuration::from_nanos(400)); // the PTE charge
        profiler.charge(CostClass::PteUpdate, SimDuration::from_nanos(400));
        drop(_walk);
        let report = profiler.report().unwrap();
        assert!(report.is_conserved());
        assert_eq!(report.nanos_for("app;epoch_walk"), 30);
        assert_eq!(report.nanos_for("app;epoch_walk;pte_update"), 400);
    }

    #[test]
    fn charge_clamps_to_actual_clock_movement() {
        let clock = Clock::new();
        let profiler = Profiler::enabled(clock.clone());
        clock.advance(SimDuration::from_nanos(10));
        // Claimed charge exceeds what the clock actually moved.
        profiler.charge(CostClass::TlbMiss, SimDuration::from_nanos(1_000));
        let report = profiler.report().unwrap();
        assert!(report.is_conserved());
        assert_eq!(report.nanos_for("app;tlb_miss"), 10);
    }

    #[test]
    fn epochs_partition_attribution() {
        let clock = Clock::new();
        let profiler = Profiler::enabled(clock.clone());
        clock.advance(SimDuration::from_nanos(11));
        profiler.set_epoch(1);
        clock.advance(SimDuration::from_nanos(22));
        let report = profiler.report().unwrap();
        assert_eq!(report.by_epoch.len(), 2);
        assert_eq!(report.by_epoch[0], (0, vec![("app", 11)]));
        assert_eq!(report.by_epoch[1], (1, vec![("app", 22)]));
    }

    #[test]
    fn aux_charges_do_not_affect_conservation() {
        let clock = Clock::new();
        let profiler = Profiler::enabled(clock.clone());
        clock.advance(SimDuration::from_nanos(5));
        profiler.aux_charge(CostClass::SsdTransfer, SimDuration::from_micros(30));
        profiler.aux_charge(CostClass::SsdTransfer, SimDuration::from_micros(30));
        let report = profiler.report().unwrap();
        assert!(report.is_conserved());
        assert_eq!(report.elapsed.as_nanos(), 5);
        assert_eq!(report.aux, vec![("ssd_transfer", 2, 60_000)]);
    }

    #[test]
    fn folded_rendering_matches_flamegraph_format() {
        let clock = Clock::new();
        let profiler = Profiler::enabled(clock.clone());
        clock.advance(SimDuration::from_nanos(3));
        {
            let _s = profiler.span(CostClass::TlbFlush);
            clock.advance(SimDuration::from_nanos(9));
        }
        let folded = profiler.report().unwrap().render_folded();
        assert_eq!(folded, "app 3\napp;tlb_flush 9\n");
    }

    #[test]
    fn clones_share_one_span_stack() {
        let clock = Clock::new();
        let a = Profiler::enabled(clock.clone());
        let b = a.clone();
        let _span = a.span(CostClass::CopyOutIo);
        clock.advance(SimDuration::from_nanos(8));
        b.sync();
        let report = b.report().unwrap();
        assert_eq!(report.nanos_for("app;copy_out_io"), 8);
    }

    #[test]
    fn fnv_hash_is_stable() {
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"viyojit"), fnv1a_64(b"viyojit"));
        assert_ne!(fnv1a_64(b"seed=1"), fnv1a_64(b"seed=2"));
    }
}
