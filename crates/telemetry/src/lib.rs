//! Virtual-time telemetry for the Viyojit simulation stack.
//!
//! Three pieces, all driven by the shared virtual clock and free of
//! external dependencies (plain `std::fmt`, no serde):
//!
//! - **Trace events** ([`TraceEvent`]) — typed steps of the Fig. 6
//!   control flow (write faults, forced/proactive flush issue, flush
//!   completion, budget stalls, epoch walks, TLB flushes, SSD traffic,
//!   battery recalculations), stamped with [`sim_clock::SimTime`] and
//!   recorded into a bounded ring buffer ([`TraceRing`]).
//! - **Metrics** ([`MetricsRegistry`]) — named counters/gauges/histograms
//!   into which `ViyojitStats`, SSD wear/queue state, and battery state
//!   publish, with per-epoch snapshotting ([`EpochSnapshot`]) whose
//!   counter deltas sum back to the end-of-run totals.
//! - **Sinks** ([`Sink`]) — [`CsvSink`] (the historical figure layout,
//!   byte for byte), [`JsonlSink`], and [`NullSink`], plus the shared
//!   [`Report`] writer used by every bench binary.
//! - **Profiler** ([`Profiler`]) — causal span attribution of every
//!   virtual nanosecond to a [`CostClass`], with an exact conservation
//!   invariant and folded-stack (flamegraph) export.
//!
//! # Determinism
//!
//! Telemetry observes the clock; it never advances it. A disabled
//! [`Telemetry`] handle ([`Telemetry::disabled`], the default) skips even
//! event construction — the recording closure is not called — so runs
//! with telemetry off are bit-identical to uninstrumented runs, and runs
//! with it on differ only in what is *recorded*, never in virtual time.
//!
//! # Example
//!
//! ```
//! use sim_clock::{Clock, SimDuration};
//! use telemetry::{Telemetry, TraceEvent};
//!
//! let clock = Clock::new();
//! let telemetry = Telemetry::recording(clock.clone());
//! clock.advance(SimDuration::from_micros(3));
//! telemetry.emit(|| TraceEvent::WriteFault { page: 42 });
//! telemetry.metrics(|m| m.counter_add("faults", 1));
//!
//! let events = telemetry.events();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].at.as_micros(), 3);
//! ```

mod event;
mod export;
mod flight;
mod metrics;
mod profile;
mod report;
mod ring;
mod sink;
mod wall;

pub use event::{FaultKind, FlushReason, TraceEvent, TracedEvent};
pub use export::{render_prometheus, spawn_exporter, ExporterConfig, ExporterHandle};
pub use flight::FlightRecorder;
pub use metrics::{
    intern_metric_name, CounterKind, CounterSample, EpochSnapshot, MetricsRegistry,
    TenantMetricNames,
};
pub use profile::{fnv1a_64, CostClass, ProfileReport, Profiler, RunMeta, SpanGuard, ROOT_FRAME};
pub use report::Report;
pub use ring::{TraceRing, DEFAULT_RING_CAPACITY};
pub use sink::{csv_stdout, CsvSink, JsonlSink, NullSink, Sink};
pub use wall::{WallHistogram, WallKind};

use std::sync::{Arc, Mutex};
use std::time::Instant;

use sim_clock::{Clock, SimTime};

use wall::WallStats;

/// Tuning knobs for a recording [`Telemetry`] handle.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryConfig {
    /// Maximum trace events retained (oldest evicted beyond this).
    pub ring_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }
}

#[derive(Debug)]
struct Recorder {
    clock: Clock,
    ring: TraceRing,
    registry: MetricsRegistry,
    snapshots: Vec<EpochSnapshot>,
    /// Ring capacity this recorder was built with, inherited by shards.
    ring_capacity: usize,
    /// Wall-clock histograms — host time, never part of traces/snapshots.
    wall: WallStats,
    /// Telemetry shards forked off this recorder ([`Telemetry::fork_shard`]),
    /// in fork order. Read paths merge them on demand; the write path of a
    /// shard touches only its own (uncontended) mutex.
    shards: Vec<Arc<Mutex<Recorder>>>,
}

impl Recorder {
    fn new(clock: Clock, ring_capacity: usize) -> Recorder {
        Recorder {
            clock,
            ring: TraceRing::new(ring_capacity),
            registry: MetricsRegistry::new(),
            snapshots: Vec::new(),
            ring_capacity,
            wall: WallStats::default(),
            shards: Vec::new(),
        }
    }
}

/// Shared, cheaply clonable instrumentation handle.
///
/// Every instrumented component (`Viyojit`, the SSD, the battery
/// governor) holds a clone; all clones record into the same ring and
/// registry. The default handle is disabled and zero-cost: `emit` does
/// not even build the event.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    recorder: Option<Arc<Mutex<Recorder>>>,
}

impl Telemetry {
    /// A disabled handle: records nothing, costs one branch per hook.
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// A recording handle with default configuration.
    pub fn recording(clock: Clock) -> Self {
        Telemetry::with_config(clock, TelemetryConfig::default())
    }

    /// A recording handle with explicit configuration.
    pub fn with_config(clock: Clock, config: TelemetryConfig) -> Self {
        Telemetry {
            recorder: Some(Arc::new(Mutex::new(Recorder::new(
                clock,
                config.ring_capacity,
            )))),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// Forks a per-thread telemetry shard driven by `clock`.
    ///
    /// The shard is a full recording handle — its own trace ring,
    /// registry, and wall histograms — whose write path locks only its
    /// own mutex, so a worker thread recording into its shard never
    /// contends with other workers or with the parent. The parent keeps
    /// the shard registered (in fork order) and its read paths
    /// ([`Telemetry::events`], [`Telemetry::counter`],
    /// [`Telemetry::snapshots`], [`Telemetry::drain_into`], the exporter)
    /// merge all shards on demand. Forking from a disabled handle
    /// returns a disabled handle.
    pub fn fork_shard(&self, clock: Clock) -> Telemetry {
        let Some(recorder) = &self.recorder else {
            return Telemetry::disabled();
        };
        let mut rec = recorder.lock().expect("telemetry poisoned");
        let child = Arc::new(Mutex::new(Recorder::new(clock, rec.ring_capacity)));
        rec.shards.push(Arc::clone(&child));
        Telemetry {
            recorder: Some(child),
        }
    }

    /// The shard recorders registered on this handle, in fork order.
    fn shard_arcs(&self) -> Vec<Arc<Mutex<Recorder>>> {
        match &self.recorder {
            Some(recorder) => recorder.lock().expect("telemetry poisoned").shards.clone(),
            None => Vec::new(),
        }
    }

    /// Records an event stamped with the current virtual time.
    ///
    /// The closure runs only when recording, so payload construction is
    /// free on the disabled path.
    #[inline]
    pub fn emit(&self, event: impl FnOnce() -> TraceEvent) {
        if let Some(recorder) = &self.recorder {
            let mut rec = recorder.lock().expect("telemetry poisoned");
            let at = rec.clock.now();
            let seq = rec.ring.recorded();
            let event = event();
            rec.ring.push(TracedEvent { at, seq, event });
        }
    }

    /// Records an event stamped with an explicit instant (e.g. an SSD
    /// completion scheduled in the future of the submitting call).
    #[inline]
    pub fn emit_at(&self, at: SimTime, event: impl FnOnce() -> TraceEvent) {
        if let Some(recorder) = &self.recorder {
            let mut rec = recorder.lock().expect("telemetry poisoned");
            let seq = rec.ring.recorded();
            let event = event();
            rec.ring.push(TracedEvent { at, seq, event });
        }
    }

    /// Runs `f` against the metrics registry when recording.
    #[inline]
    pub fn metrics<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> Option<R> {
        self.recorder.as_ref().map(|recorder| {
            let mut rec = recorder.lock().expect("telemetry poisoned");
            f(&mut rec.registry)
        })
    }

    /// Closes an epoch: snapshots the registry at the current virtual
    /// time and appends it to the snapshot log.
    ///
    /// Ring overflow is surfaced here: once any event has been evicted,
    /// every subsequent snapshot carries a `telemetry.dropped_events`
    /// counter so the loss is visible in reports and traces.
    pub fn snapshot_epoch(&self, epoch: u64) {
        if let Some(recorder) = &self.recorder {
            let mut rec = recorder.lock().expect("telemetry poisoned");
            let at = rec.clock.now();
            let dropped = rec.ring.dropped();
            if dropped > 0 {
                rec.registry
                    .counter_set("telemetry.dropped_events", dropped);
            }
            let snap = rec.registry.snapshot(epoch, at);
            rec.snapshots.push(snap);
        }
    }

    /// Copies out the retained trace events, oldest first.
    ///
    /// With telemetry shards forked, the per-shard rings are merged into
    /// one stream ordered by `(virtual time, fork rank, shard seq)` and
    /// re-sequenced so the merged stream keeps the strictly-increasing
    /// `seq` invariant the trace checker enforces. Without shards this is
    /// exactly the handle's own ring, byte for byte.
    pub fn events(&self) -> Vec<TracedEvent> {
        let Some(recorder) = &self.recorder else {
            return Vec::new();
        };
        let shards = self.shard_arcs();
        if shards.is_empty() {
            return recorder.lock().expect("telemetry poisoned").ring.to_vec();
        }
        // (at, fork rank, local seq) is a unique total order, so the
        // merged stream is deterministic for a deterministic workload.
        let mut keyed: Vec<(SimTime, usize, u64, TracedEvent)> = Vec::new();
        {
            let rec = recorder.lock().expect("telemetry poisoned");
            keyed.extend(rec.ring.iter().map(|e| (e.at, 0usize, e.seq, *e)));
        }
        for (rank, shard) in shards.iter().enumerate() {
            let rec = shard.lock().expect("telemetry poisoned");
            keyed.extend(rec.ring.iter().map(|e| (e.at, rank + 1, e.seq, *e)));
        }
        keyed.sort_by_key(|&(at, rank, seq, _)| (at, rank, seq));
        keyed
            .into_iter()
            .enumerate()
            .map(|(i, (_, _, _, mut event))| {
                event.seq = i as u64;
                event
            })
            .collect()
    }

    /// This handle's own retained events, without merging shards.
    ///
    /// A worker's flight-recorder dump uses this: the per-thread ring is
    /// deterministic for a deterministic workload even when sibling
    /// threads are at nondeterministic points of their own timelines.
    pub fn local_events(&self) -> Vec<TracedEvent> {
        match &self.recorder {
            Some(recorder) => recorder.lock().expect("telemetry poisoned").ring.to_vec(),
            None => Vec::new(),
        }
    }

    /// Events evicted because a ring was full, summed across shards.
    pub fn dropped_events(&self) -> u64 {
        let Some(recorder) = &self.recorder else {
            return 0;
        };
        let own = recorder.lock().expect("telemetry poisoned").ring.dropped();
        own + self
            .shard_arcs()
            .iter()
            .map(|s| s.lock().expect("telemetry poisoned").ring.dropped())
            .sum::<u64>()
    }

    /// Total events ever recorded, retained or not, across shards.
    pub fn recorded_events(&self) -> u64 {
        let Some(recorder) = &self.recorder else {
            return 0;
        };
        let own = recorder.lock().expect("telemetry poisoned").ring.recorded();
        own + self
            .shard_arcs()
            .iter()
            .map(|s| s.lock().expect("telemetry poisoned").ring.recorded())
            .sum::<u64>()
    }

    /// Copies out all per-epoch snapshots taken so far: this handle's
    /// own, then each shard's, in fork order.
    pub fn snapshots(&self) -> Vec<EpochSnapshot> {
        let Some(recorder) = &self.recorder else {
            return Vec::new();
        };
        let mut snaps = recorder
            .lock()
            .expect("telemetry poisoned")
            .snapshots
            .clone();
        for shard in self.shard_arcs() {
            snaps.extend(
                shard
                    .lock()
                    .expect("telemetry poisoned")
                    .snapshots
                    .iter()
                    .cloned(),
            );
        }
        snaps
    }

    /// Current cumulative value of a counter (zero when disabled),
    /// merged across shards by the counter's [`CounterKind`].
    pub fn counter(&self, name: &str) -> u64 {
        let shards = self.shard_arcs();
        if shards.is_empty() {
            return self.metrics(|m| m.counter(name)).unwrap_or(0);
        }
        self.merged_registry().map(|m| m.counter(name)).unwrap_or(0)
    }

    /// A merged view of this registry plus every shard's, applying the
    /// per-kind merge rules ([`MetricsRegistry::merge_from`]).
    pub fn merged_registry(&self) -> Option<MetricsRegistry> {
        let recorder = self.recorder.as_ref()?;
        let mut merged = recorder
            .lock()
            .expect("telemetry poisoned")
            .registry
            .clone();
        for shard in self.shard_arcs() {
            let rec = shard.lock().expect("telemetry poisoned");
            merged.merge_from(&rec.registry);
        }
        Some(merged)
    }

    /// Starts a wall-clock measurement, or `None` when disabled (no
    /// syscall on the disabled path).
    pub fn wall_start(&self) -> Option<Instant> {
        self.recorder.as_ref().map(|_| Instant::now())
    }

    /// Records the host time elapsed since a [`Telemetry::wall_start`]
    /// into this handle's histogram for `kind`.
    ///
    /// Wall durations never enter the registry, the trace ring, or
    /// snapshots, so virtual-time output stays byte-identical whether or
    /// not the host is slow.
    pub fn record_wall(&self, kind: WallKind, start: Option<Instant>) {
        if let (Some(recorder), Some(start)) = (&self.recorder, start) {
            let elapsed = start.elapsed();
            recorder
                .lock()
                .expect("telemetry poisoned")
                .wall
                .record(kind, elapsed);
        }
    }

    /// Publishes a wall-plane counter: a named monotone host-side total
    /// (e.g. scan-dispatch counts). Set semantics — each call overwrites
    /// with the latest total, and merging keeps the maximum — so
    /// republishing the same process-global figure from several shards
    /// never inflates it.
    ///
    /// Like wall durations, these never enter the registry, the trace
    /// ring, or snapshots: virtual-time output stays byte-identical no
    /// matter which scan paths the host actually took.
    pub fn set_wall_counter(&self, name: &'static str, value: u64) {
        if let Some(recorder) = &self.recorder {
            recorder
                .lock()
                .expect("telemetry poisoned")
                .wall
                .set_counter(name, value);
        }
    }

    /// Wall-plane counters merged across shards, sorted by name.
    pub fn wall_counters(&self) -> Vec<(&'static str, u64)> {
        let Some(recorder) = &self.recorder else {
            return Vec::new();
        };
        let mut merged = recorder.lock().expect("telemetry poisoned").wall.clone();
        for shard in self.shard_arcs() {
            let rec = shard.lock().expect("telemetry poisoned");
            merged.merge_from(&rec.wall);
        }
        merged.counters().collect()
    }

    /// The wall-clock histogram for each kind, merged across shards.
    pub fn wall_histograms(&self) -> Vec<(WallKind, WallHistogram)> {
        let Some(recorder) = &self.recorder else {
            return Vec::new();
        };
        let mut merged = recorder.lock().expect("telemetry poisoned").wall.clone();
        for shard in self.shard_arcs() {
            let rec = shard.lock().expect("telemetry poisoned");
            merged.merge_from(&rec.wall);
        }
        WallKind::ALL
            .iter()
            .map(|&k| (k, merged.histogram(k).clone()))
            .collect()
    }

    /// The current virtual instant of this handle's clock, when enabled.
    pub fn now(&self) -> Option<SimTime> {
        self.recorder
            .as_ref()
            .map(|r| r.lock().expect("telemetry poisoned").clock.now())
    }

    /// Renders the snapshot a `snapshot_epoch(epoch)` would take right
    /// now — this handle's own registry only, at its own clock — without
    /// advancing the delta baseline or appending to the snapshot log.
    pub fn peek_snapshot(&self, epoch: u64) -> Option<EpochSnapshot> {
        self.recorder.as_ref().map(|recorder| {
            let rec = recorder.lock().expect("telemetry poisoned");
            let at = rec.clock.now();
            rec.registry.peek_snapshot(epoch, at)
        })
    }

    /// Streams every retained event, then every snapshot, into a sink.
    ///
    /// With shards, events are the merged re-sequenced stream of
    /// [`Telemetry::events`] and snapshots follow in
    /// parent-then-fork-order; without shards the output is byte-identical
    /// to the historical single-recorder drain. If any ring overflowed, a
    /// note reporting the total evicted-event count precedes the
    /// snapshots instead of the loss staying silent.
    pub fn drain_into(&self, sink: &mut dyn Sink) {
        if self.recorder.is_some() {
            for event in self.events() {
                sink.event(&event);
            }
            let dropped = self.dropped_events();
            if dropped > 0 {
                sink.note(&format!(
                    "telemetry: trace ring overflowed, {dropped} oldest events dropped"
                ));
            }
            for snap in self.snapshots() {
                sink.snapshot(&snap);
            }
        }
        sink.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_clock::SimDuration;

    #[test]
    fn disabled_handle_skips_event_construction() {
        let telemetry = Telemetry::disabled();
        let mut built = false;
        telemetry.emit(|| {
            built = true;
            TraceEvent::TlbFlush { epoch: 0 }
        });
        assert!(!built);
        assert!(!telemetry.is_enabled());
        assert!(telemetry.events().is_empty());
        assert_eq!(telemetry.metrics(|m| m.counter("x")), None);
    }

    #[test]
    fn clones_share_one_recorder() {
        let clock = Clock::new();
        let a = Telemetry::recording(clock.clone());
        let b = a.clone();
        clock.advance(SimDuration::from_nanos(5));
        a.emit(|| TraceEvent::WriteFault { page: 1 });
        b.emit(|| TraceEvent::FlushComplete { page: 1 });
        let events = a.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[1].at.as_nanos(), 5);
    }

    #[test]
    fn snapshot_epochs_accumulate_in_order() {
        let clock = Clock::new();
        let telemetry = Telemetry::recording(clock.clone());
        telemetry.metrics(|m| m.counter_add("faults", 2));
        telemetry.snapshot_epoch(0);
        telemetry.metrics(|m| m.counter_add("faults", 3));
        clock.advance(SimDuration::from_micros(1));
        telemetry.snapshot_epoch(1);
        let snaps = telemetry.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].counter("faults").unwrap().delta, 2);
        assert_eq!(snaps[1].counter("faults").unwrap().delta, 3);
        assert_eq!(snaps[1].counter("faults").unwrap().total, 5);
        assert_eq!(snaps[1].at.as_micros(), 1);
    }

    #[test]
    fn forked_shards_merge_on_demand() {
        let clock = Clock::new();
        let parent = Telemetry::recording(clock.clone());
        let shard_clock_a = Clock::new();
        let shard_clock_b = Clock::new();
        let a = parent.fork_shard(shard_clock_a.clone());
        let b = parent.fork_shard(shard_clock_b.clone());

        // Sum-kind counters add across shards; cumulative take the max.
        a.metrics(|m| m.counter_add("parallel.round_timeouts", 1));
        b.metrics(|m| m.counter_add("parallel.round_timeouts", 2));
        a.metrics(|m| m.counter_set("viyojit.epochs", 9));
        b.metrics(|m| m.counter_set("viyojit.epochs", 4));
        assert_eq!(parent.counter("parallel.round_timeouts"), 3);
        assert_eq!(parent.counter("viyojit.epochs"), 9);

        // Events merge by (at, fork rank, seq) and re-sequence.
        shard_clock_a.advance(SimDuration::from_nanos(20));
        shard_clock_b.advance(SimDuration::from_nanos(10));
        a.emit(|| TraceEvent::WriteFault { page: 1 });
        b.emit(|| TraceEvent::WriteFault { page: 2 });
        clock.advance(SimDuration::from_nanos(10));
        parent.emit(|| TraceEvent::TlbFlush { epoch: 0 });
        let events = parent.events();
        assert_eq!(events.len(), 3);
        // at=10: parent (rank 0) before shard b (rank 2); then at=20 shard a.
        assert_eq!(events[0].event, TraceEvent::TlbFlush { epoch: 0 });
        assert_eq!(events[1].event, TraceEvent::WriteFault { page: 2 });
        assert_eq!(events[2].event, TraceEvent::WriteFault { page: 1 });
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );

        // Shard handles stay plain recording handles for their owner.
        assert_eq!(a.local_events().len(), 1);
        assert_eq!(parent.recorded_events(), 3);
    }

    #[test]
    fn shardless_reads_are_the_plain_single_recorder_paths() {
        let clock = Clock::new();
        let telemetry = Telemetry::recording(clock.clone());
        telemetry.emit(|| TraceEvent::WriteFault { page: 3 });
        telemetry.metrics(|m| m.counter_add("faults", 1));
        assert_eq!(telemetry.events(), telemetry.local_events());
        assert_eq!(telemetry.counter("faults"), 1);
        let disabled = Telemetry::disabled();
        assert!(!disabled.fork_shard(clock).is_enabled());
        assert!(disabled.merged_registry().is_none());
        assert!(disabled.wall_histograms().is_empty());
    }

    #[test]
    fn shard_snapshots_follow_parent_in_fork_order() {
        let clock = Clock::new();
        let parent = Telemetry::recording(clock.clone());
        let shard = parent.fork_shard(Clock::new());
        shard.metrics(|m| m.counter_add("s", 1));
        shard.snapshot_epoch(7);
        parent.metrics(|m| m.counter_add("p", 1));
        parent.snapshot_epoch(1);
        let snaps = parent.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].epoch, 1);
        assert_eq!(snaps[1].epoch, 7);
    }

    #[test]
    fn wall_histograms_merge_and_stay_out_of_traces() {
        let clock = Clock::new();
        let parent = Telemetry::recording(clock.clone());
        let shard = parent.fork_shard(Clock::new());
        parent.record_wall(WallKind::Step, parent.wall_start());
        shard.record_wall(WallKind::Step, shard.wall_start());
        shard.record_wall(WallKind::Emergency, shard.wall_start());
        let merged = parent.wall_histograms();
        let step = merged
            .iter()
            .find(|(k, _)| *k == WallKind::Step)
            .map(|(_, h)| h.len());
        assert_eq!(step, Some(2));
        // Nothing wall-clock leaks into the virtual-time surfaces.
        assert!(parent.events().is_empty());
        assert!(parent.snapshots().is_empty());
        let mut sink = CsvSink::new(Vec::new());
        parent.drain_into(&mut sink);
        assert!(String::from_utf8(sink.into_inner()).unwrap().is_empty());
        assert_eq!(Telemetry::disabled().wall_start(), None);
    }

    #[test]
    fn drain_streams_events_then_snapshots() {
        let clock = Clock::new();
        let telemetry = Telemetry::recording(clock);
        telemetry.emit(|| TraceEvent::WriteFault { page: 3 });
        telemetry.metrics(|m| m.counter_add("faults", 1));
        telemetry.snapshot_epoch(0);
        let mut sink = CsvSink::new(Vec::new());
        telemetry.drain_into(&mut sink);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.starts_with("trace,0,0,write_fault,page=3\n"));
        assert!(text.contains("snapshot,0,0,"));
    }
}
