//! Virtual-time telemetry for the Viyojit simulation stack.
//!
//! Three pieces, all driven by the shared virtual clock and free of
//! external dependencies (plain `std::fmt`, no serde):
//!
//! - **Trace events** ([`TraceEvent`]) — typed steps of the Fig. 6
//!   control flow (write faults, forced/proactive flush issue, flush
//!   completion, budget stalls, epoch walks, TLB flushes, SSD traffic,
//!   battery recalculations), stamped with [`sim_clock::SimTime`] and
//!   recorded into a bounded ring buffer ([`TraceRing`]).
//! - **Metrics** ([`MetricsRegistry`]) — named counters/gauges/histograms
//!   into which `ViyojitStats`, SSD wear/queue state, and battery state
//!   publish, with per-epoch snapshotting ([`EpochSnapshot`]) whose
//!   counter deltas sum back to the end-of-run totals.
//! - **Sinks** ([`Sink`]) — [`CsvSink`] (the historical figure layout,
//!   byte for byte), [`JsonlSink`], and [`NullSink`], plus the shared
//!   [`Report`] writer used by every bench binary.
//! - **Profiler** ([`Profiler`]) — causal span attribution of every
//!   virtual nanosecond to a [`CostClass`], with an exact conservation
//!   invariant and folded-stack (flamegraph) export.
//!
//! # Determinism
//!
//! Telemetry observes the clock; it never advances it. A disabled
//! [`Telemetry`] handle ([`Telemetry::disabled`], the default) skips even
//! event construction — the recording closure is not called — so runs
//! with telemetry off are bit-identical to uninstrumented runs, and runs
//! with it on differ only in what is *recorded*, never in virtual time.
//!
//! # Example
//!
//! ```
//! use sim_clock::{Clock, SimDuration};
//! use telemetry::{Telemetry, TraceEvent};
//!
//! let clock = Clock::new();
//! let telemetry = Telemetry::recording(clock.clone());
//! clock.advance(SimDuration::from_micros(3));
//! telemetry.emit(|| TraceEvent::WriteFault { page: 42 });
//! telemetry.metrics(|m| m.counter_add("faults", 1));
//!
//! let events = telemetry.events();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].at.as_micros(), 3);
//! ```

mod event;
mod metrics;
mod profile;
mod report;
mod ring;
mod sink;

pub use event::{FaultKind, FlushReason, TraceEvent, TracedEvent};
pub use metrics::{
    intern_metric_name, CounterSample, EpochSnapshot, MetricsRegistry, TenantMetricNames,
};
pub use profile::{fnv1a_64, CostClass, ProfileReport, Profiler, RunMeta, SpanGuard, ROOT_FRAME};
pub use report::Report;
pub use ring::{TraceRing, DEFAULT_RING_CAPACITY};
pub use sink::{csv_stdout, CsvSink, JsonlSink, NullSink, Sink};

use std::sync::{Arc, Mutex};

use sim_clock::{Clock, SimTime};

/// Tuning knobs for a recording [`Telemetry`] handle.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryConfig {
    /// Maximum trace events retained (oldest evicted beyond this).
    pub ring_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }
}

#[derive(Debug)]
struct Recorder {
    clock: Clock,
    ring: TraceRing,
    registry: MetricsRegistry,
    snapshots: Vec<EpochSnapshot>,
}

/// Shared, cheaply clonable instrumentation handle.
///
/// Every instrumented component (`Viyojit`, the SSD, the battery
/// governor) holds a clone; all clones record into the same ring and
/// registry. The default handle is disabled and zero-cost: `emit` does
/// not even build the event.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    recorder: Option<Arc<Mutex<Recorder>>>,
}

impl Telemetry {
    /// A disabled handle: records nothing, costs one branch per hook.
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// A recording handle with default configuration.
    pub fn recording(clock: Clock) -> Self {
        Telemetry::with_config(clock, TelemetryConfig::default())
    }

    /// A recording handle with explicit configuration.
    pub fn with_config(clock: Clock, config: TelemetryConfig) -> Self {
        Telemetry {
            recorder: Some(Arc::new(Mutex::new(Recorder {
                clock,
                ring: TraceRing::new(config.ring_capacity),
                registry: MetricsRegistry::new(),
                snapshots: Vec::new(),
            }))),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// Records an event stamped with the current virtual time.
    ///
    /// The closure runs only when recording, so payload construction is
    /// free on the disabled path.
    #[inline]
    pub fn emit(&self, event: impl FnOnce() -> TraceEvent) {
        if let Some(recorder) = &self.recorder {
            let mut rec = recorder.lock().expect("telemetry poisoned");
            let at = rec.clock.now();
            let seq = rec.ring.recorded();
            let event = event();
            rec.ring.push(TracedEvent { at, seq, event });
        }
    }

    /// Records an event stamped with an explicit instant (e.g. an SSD
    /// completion scheduled in the future of the submitting call).
    #[inline]
    pub fn emit_at(&self, at: SimTime, event: impl FnOnce() -> TraceEvent) {
        if let Some(recorder) = &self.recorder {
            let mut rec = recorder.lock().expect("telemetry poisoned");
            let seq = rec.ring.recorded();
            let event = event();
            rec.ring.push(TracedEvent { at, seq, event });
        }
    }

    /// Runs `f` against the metrics registry when recording.
    #[inline]
    pub fn metrics<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> Option<R> {
        self.recorder.as_ref().map(|recorder| {
            let mut rec = recorder.lock().expect("telemetry poisoned");
            f(&mut rec.registry)
        })
    }

    /// Closes an epoch: snapshots the registry at the current virtual
    /// time and appends it to the snapshot log.
    ///
    /// Ring overflow is surfaced here: once any event has been evicted,
    /// every subsequent snapshot carries a `telemetry.dropped_events`
    /// counter so the loss is visible in reports and traces.
    pub fn snapshot_epoch(&self, epoch: u64) {
        if let Some(recorder) = &self.recorder {
            let mut rec = recorder.lock().expect("telemetry poisoned");
            let at = rec.clock.now();
            let dropped = rec.ring.dropped();
            if dropped > 0 {
                rec.registry
                    .counter_set("telemetry.dropped_events", dropped);
            }
            let snap = rec.registry.snapshot(epoch, at);
            rec.snapshots.push(snap);
        }
    }

    /// Copies out the retained trace events, oldest first.
    pub fn events(&self) -> Vec<TracedEvent> {
        match &self.recorder {
            Some(recorder) => recorder.lock().expect("telemetry poisoned").ring.to_vec(),
            None => Vec::new(),
        }
    }

    /// Events evicted from the ring because it was full.
    pub fn dropped_events(&self) -> u64 {
        match &self.recorder {
            Some(recorder) => recorder.lock().expect("telemetry poisoned").ring.dropped(),
            None => 0,
        }
    }

    /// Total events ever recorded, retained or not.
    pub fn recorded_events(&self) -> u64 {
        match &self.recorder {
            Some(recorder) => recorder.lock().expect("telemetry poisoned").ring.recorded(),
            None => 0,
        }
    }

    /// Copies out all per-epoch snapshots taken so far.
    pub fn snapshots(&self) -> Vec<EpochSnapshot> {
        match &self.recorder {
            Some(recorder) => recorder
                .lock()
                .expect("telemetry poisoned")
                .snapshots
                .clone(),
            None => Vec::new(),
        }
    }

    /// Current cumulative value of a counter (zero when disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics(|m| m.counter(name)).unwrap_or(0)
    }

    /// Streams every retained event, then every snapshot, into a sink.
    ///
    /// If the ring overflowed, a note reporting the evicted-event count
    /// precedes the snapshots instead of the loss staying silent.
    pub fn drain_into(&self, sink: &mut dyn Sink) {
        if let Some(recorder) = &self.recorder {
            let rec = recorder.lock().expect("telemetry poisoned");
            for event in rec.ring.iter() {
                sink.event(event);
            }
            let dropped = rec.ring.dropped();
            if dropped > 0 {
                sink.note(&format!(
                    "telemetry: trace ring overflowed, {dropped} oldest events dropped"
                ));
            }
            for snap in &rec.snapshots {
                sink.snapshot(snap);
            }
        }
        sink.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_clock::SimDuration;

    #[test]
    fn disabled_handle_skips_event_construction() {
        let telemetry = Telemetry::disabled();
        let mut built = false;
        telemetry.emit(|| {
            built = true;
            TraceEvent::TlbFlush { epoch: 0 }
        });
        assert!(!built);
        assert!(!telemetry.is_enabled());
        assert!(telemetry.events().is_empty());
        assert_eq!(telemetry.metrics(|m| m.counter("x")), None);
    }

    #[test]
    fn clones_share_one_recorder() {
        let clock = Clock::new();
        let a = Telemetry::recording(clock.clone());
        let b = a.clone();
        clock.advance(SimDuration::from_nanos(5));
        a.emit(|| TraceEvent::WriteFault { page: 1 });
        b.emit(|| TraceEvent::FlushComplete { page: 1 });
        let events = a.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[1].at.as_nanos(), 5);
    }

    #[test]
    fn snapshot_epochs_accumulate_in_order() {
        let clock = Clock::new();
        let telemetry = Telemetry::recording(clock.clone());
        telemetry.metrics(|m| m.counter_add("faults", 2));
        telemetry.snapshot_epoch(0);
        telemetry.metrics(|m| m.counter_add("faults", 3));
        clock.advance(SimDuration::from_micros(1));
        telemetry.snapshot_epoch(1);
        let snaps = telemetry.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].counter("faults").unwrap().delta, 2);
        assert_eq!(snaps[1].counter("faults").unwrap().delta, 3);
        assert_eq!(snaps[1].counter("faults").unwrap().total, 5);
        assert_eq!(snaps[1].at.as_micros(), 1);
    }

    #[test]
    fn drain_streams_events_then_snapshots() {
        let clock = Clock::new();
        let telemetry = Telemetry::recording(clock);
        telemetry.emit(|| TraceEvent::WriteFault { page: 3 });
        telemetry.metrics(|m| m.counter_add("faults", 1));
        telemetry.snapshot_epoch(0);
        let mut sink = CsvSink::new(Vec::new());
        telemetry.drain_into(&mut sink);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.starts_with("trace,0,0,write_fault,page=3\n"));
        assert!(text.contains("snapshot,0,0,"));
    }
}
