//! Shared report writer used by every figure/ablation binary.
//!
//! `Report` fans sections, headers, rows, and notes out to any number of
//! [`Sink`]s. Rows may be supplied pre-formatted through [`row!`] so the
//! figure binaries keep their exact historical float formatting (`{:.1}`,
//! `{:.4e}`, ...) while structured sinks still see individual cells.

use std::fmt;

use crate::event::TracedEvent;
use crate::metrics::EpochSnapshot;
use crate::profile::{ProfileReport, RunMeta};
use crate::sink::{csv_stdout, Sink};

/// Multi-sink report writer.
#[derive(Default)]
pub struct Report {
    sinks: Vec<Box<dyn Sink>>,
}

impl fmt::Debug for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Report")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl Report {
    /// A report with no sinks attached (drops everything).
    pub fn new() -> Self {
        Report::default()
    }

    /// The standard figure-binary report: CSV on stdout.
    pub fn stdout_csv() -> Self {
        Report::new().with_sink(csv_stdout())
    }

    /// Attaches another sink.
    pub fn with_sink(mut self, sink: impl Sink + 'static) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }

    /// Starts a titled section on every sink.
    pub fn section(&mut self, title: &str) {
        for sink in &mut self.sinks {
            sink.section(title);
        }
    }

    /// Declares the columns of the rows that follow.
    pub fn columns(&mut self, columns: &[&str]) {
        for sink in &mut self.sinks {
            sink.columns(columns);
        }
    }

    /// Emits one row from explicit cells.
    pub fn row(&mut self, cells: &[&str]) {
        for sink in &mut self.sinks {
            sink.row(cells);
        }
    }

    /// Emits one row from a pre-formatted comma-joined line.
    ///
    /// This is the bridge from the historical direct-print style:
    /// formatting stays with the caller, sinks get split cells.
    /// Cells therefore must not themselves contain commas.
    pub fn row_fmt(&mut self, args: fmt::Arguments<'_>) {
        let line = args.to_string();
        let cells: Vec<&str> = line.split(',').collect();
        self.row(&cells);
    }

    /// Emits a free-text note (rendered by `CsvSink` as a blank line
    /// followed by the text, matching the historical trailing notes).
    pub fn note_fmt(&mut self, args: fmt::Arguments<'_>) {
        let text = args.to_string();
        for sink in &mut self.sinks {
            sink.note(&text);
        }
    }

    /// Stamps the run-identity header on every sink.
    pub fn meta(&mut self, meta: &RunMeta) {
        for sink in &mut self.sinks {
            sink.meta(meta);
        }
    }

    /// Forwards a profiler attribution report to every sink.
    pub fn profile(&mut self, report: &ProfileReport) {
        for sink in &mut self.sinks {
            sink.profile(report);
        }
    }

    /// Forwards one trace event to every sink.
    pub fn event(&mut self, event: &TracedEvent) {
        for sink in &mut self.sinks {
            sink.event(event);
        }
    }

    /// Forwards one epoch snapshot to every sink.
    pub fn snapshot(&mut self, snapshot: &EpochSnapshot) {
        for sink in &mut self.sinks {
            sink.snapshot(snapshot);
        }
    }

    /// Flushes every sink.
    pub fn finish(&mut self) {
        for sink in &mut self.sinks {
            sink.finish();
        }
    }
}

impl Drop for Report {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Emits one formatted row: `row!(report, "{},{:.1}", name, value)`.
#[macro_export]
macro_rules! row {
    ($report:expr, $($arg:tt)*) => {
        $report.row_fmt(::std::format_args!($($arg)*))
    };
}

/// Emits one formatted note: `note!(report, "anchors: {}", text)`.
#[macro_export]
macro_rules! note {
    ($report:expr, $($arg:tt)*) => {
        $report.note_fmt(::std::format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CsvSink;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A Vec<u8> CsvSink whose buffer stays observable after the report
    /// takes ownership.
    #[derive(Clone, Default)]
    struct SharedBuf(Rc<RefCell<Vec<u8>>>);

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.borrow_mut().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn report_fans_out_formatted_rows() {
        let buf = SharedBuf::default();
        let mut report = Report::new().with_sink(CsvSink::new(buf.clone()));
        report.section("fig");
        report.columns(&["wl", "kops"]);
        row!(report, "{},{:.1}", "ycsb-a", 12.345);
        note!(report, "note {}", 7);
        drop(report);
        let text = String::from_utf8(buf.0.borrow().clone()).unwrap();
        assert_eq!(text, "\n# fig\nwl,kops\nycsb-a,12.3\n\nnote 7\n");
    }
}
