//! Output sinks: where reports, trace events, and snapshots go.
//!
//! A [`Sink`] receives already-formatted report content (sections,
//! column headers, rows, notes) plus structured telemetry (trace events
//! and epoch snapshots). [`CsvSink`] reproduces the repo's historical
//! figure CSV layout byte for byte; [`JsonlSink`] emits one JSON object
//! per line using only `std::fmt` (no serde, per DESIGN.md); and
//! [`NullSink`] discards everything, which is the zero-cost default.

use std::fmt::Write as _;
use std::io::{self, Write};

use crate::event::TracedEvent;
use crate::metrics::EpochSnapshot;
use crate::profile::{ProfileReport, RunMeta};

/// Receiver of report content and structured telemetry.
///
/// Every method has a no-op default so sinks implement only what they
/// care about.
pub trait Sink {
    /// Starts a titled section (a figure, a sweep, a summary block).
    fn section(&mut self, _title: &str) {}

    /// Stamps the run-identity header (written before any other record
    /// so `viyojit-trace diff` can refuse incomparable traces).
    fn meta(&mut self, _meta: &RunMeta) {}

    /// Emits a profiler attribution report (folded paths, aux table,
    /// and the conservation totals).
    fn profile(&mut self, _report: &ProfileReport) {}

    /// Declares the column names of the rows that follow.
    fn columns(&mut self, _columns: &[&str]) {}

    /// Emits one data row; `cells` align with the last `columns` call.
    fn row(&mut self, _cells: &[&str]) {}

    /// Emits a free-text annotation (calibration notes, anchors).
    fn note(&mut self, _text: &str) {}

    /// Emits one recorded trace event.
    fn event(&mut self, _event: &TracedEvent) {}

    /// Emits one per-epoch metrics snapshot.
    fn snapshot(&mut self, _snapshot: &EpochSnapshot) {}

    /// Flushes any buffered output.
    fn finish(&mut self) {}
}

/// Discards everything. The default; keeps instrumented runs bit-identical
/// to uninstrumented ones.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {}

/// Writes the historical figure CSV layout to any [`io::Write`].
///
/// Layout contract (matches the seed `results/*.csv` byte for byte):
/// a section is a blank line followed by `# title`; headers and rows are
/// comma-joined; a note is a blank line followed by the text.
#[derive(Debug)]
pub struct CsvSink<W: Write> {
    out: W,
}

impl<W: Write> CsvSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        CsvSink { out }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }

    fn line(&mut self, text: &str) {
        writeln!(self.out, "{text}").expect("csv sink write failed");
    }
}

/// A CSV sink writing to standard output.
pub fn csv_stdout() -> CsvSink<io::Stdout> {
    CsvSink::new(io::stdout())
}

impl<W: Write> Sink for CsvSink<W> {
    fn section(&mut self, title: &str) {
        self.line("");
        self.line(&format!("# {title}"));
    }

    fn meta(&mut self, meta: &RunMeta) {
        let seed = match meta.fault_seed {
            Some(seed) => seed.to_string(),
            None => "none".to_string(),
        };
        self.line(&format!(
            "meta,{},{},{},{:016x},{seed}",
            meta.version, meta.bench, meta.backend, meta.config_hash
        ));
    }

    fn profile(&mut self, report: &ProfileReport) {
        for (path, nanos) in &report.folded {
            self.line(&format!("profile,{path},{nanos}"));
        }
        for (class, count, nanos) in &report.aux {
            self.line(&format!("profile_aux,{class},{count},{nanos}"));
        }
        self.line(&format!(
            "profile_total,{},{}",
            report.elapsed.as_nanos(),
            report.attributed.as_nanos()
        ));
    }

    fn columns(&mut self, columns: &[&str]) {
        self.line(&columns.join(","));
    }

    fn row(&mut self, cells: &[&str]) {
        self.line(&cells.join(","));
    }

    fn note(&mut self, text: &str) {
        self.line("");
        self.line(text);
    }

    fn event(&mut self, event: &TracedEvent) {
        self.line(&format!(
            "trace,{},{},{},{}",
            event.at.as_nanos(),
            event.seq,
            event.event.kind(),
            event.event
        ));
    }

    fn snapshot(&mut self, snapshot: &EpochSnapshot) {
        for (name, sample) in &snapshot.counters {
            self.line(&format!(
                "snapshot,{},{},counter,{name},{},{}",
                snapshot.epoch,
                snapshot.at.as_nanos(),
                sample.delta,
                sample.total
            ));
        }
        for (name, value) in &snapshot.gauges {
            self.line(&format!(
                "snapshot,{},{},gauge,{name},{value},{value}",
                snapshot.epoch,
                snapshot.at.as_nanos()
            ));
        }
    }

    fn finish(&mut self) {
        self.out.flush().expect("csv sink flush failed");
    }
}

/// Escapes a string into a JSON string literal (without quotes).
pub(crate) fn push_json_escaped(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders a cell as a JSON value: bare if it parses as a finite number,
/// quoted otherwise.
fn push_json_cell(out: &mut String, cell: &str) {
    let numeric = !cell.is_empty() && cell.parse::<f64>().map(f64::is_finite).unwrap_or(false);
    if numeric {
        out.push_str(cell);
    } else {
        out.push('"');
        push_json_escaped(out, cell);
        out.push('"');
    }
}

/// One JSON object per line, hand-rendered with `std::fmt`.
///
/// Rows are keyed by the most recent `columns` declaration; surplus
/// cells fall back to positional `col<N>` keys.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    section: String,
    columns: Vec<String>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            section: String::new(),
            columns: Vec::new(),
        }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }

    fn line(&mut self, text: &str) {
        writeln!(self.out, "{text}").expect("jsonl sink write failed");
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn section(&mut self, title: &str) {
        self.section = title.to_string();
        let mut line = String::from("{\"type\":\"section\",\"title\":\"");
        push_json_escaped(&mut line, title);
        line.push_str("\"}");
        self.line(&line);
    }

    fn meta(&mut self, meta: &RunMeta) {
        let mut line = String::from("{\"type\":\"meta\",\"version\":\"");
        push_json_escaped(&mut line, &meta.version);
        line.push_str("\",\"bench\":\"");
        push_json_escaped(&mut line, &meta.bench);
        line.push_str("\",\"backend\":\"");
        push_json_escaped(&mut line, &meta.backend);
        let _ = write!(line, "\",\"config_hash\":\"{:016x}\"", meta.config_hash);
        match meta.fault_seed {
            Some(seed) => {
                let _ = write!(line, ",\"fault_seed\":{seed}");
            }
            None => line.push_str(",\"fault_seed\":null"),
        }
        line.push('}');
        self.line(&line);
    }

    fn profile(&mut self, report: &ProfileReport) {
        for (path, nanos) in &report.folded {
            let mut line = String::from("{\"type\":\"profile\",\"stack\":\"");
            push_json_escaped(&mut line, path);
            let _ = write!(line, "\",\"nanos\":{nanos}}}");
            self.line(&line);
        }
        for (class, count, nanos) in &report.aux {
            let line = format!(
                "{{\"type\":\"profile_aux\",\"class\":\"{class}\",\"count\":{count},\"nanos\":{nanos}}}"
            );
            self.line(&line);
        }
        let line = format!(
            "{{\"type\":\"profile_total\",\"elapsed_ns\":{},\"attributed_ns\":{}}}",
            report.elapsed.as_nanos(),
            report.attributed.as_nanos()
        );
        self.line(&line);
    }

    fn columns(&mut self, columns: &[&str]) {
        self.columns = columns.iter().map(|c| c.to_string()).collect();
    }

    fn row(&mut self, cells: &[&str]) {
        let mut line = String::from("{\"type\":\"row\",\"section\":\"");
        push_json_escaped(&mut line, &self.section);
        line.push('"');
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(",\"");
            match self.columns.get(i) {
                Some(name) => push_json_escaped(&mut line, name),
                None => {
                    let _ = write!(line, "col{i}");
                }
            }
            line.push_str("\":");
            push_json_cell(&mut line, cell);
        }
        line.push('}');
        self.line(&line);
    }

    fn note(&mut self, text: &str) {
        let mut line = String::from("{\"type\":\"note\",\"text\":\"");
        push_json_escaped(&mut line, text);
        line.push_str("\"}");
        self.line(&line);
    }

    fn event(&mut self, event: &TracedEvent) {
        let mut line = format!(
            "{{\"type\":\"event\",\"at_ns\":{},\"seq\":{},\"kind\":\"{}\",\"detail\":\"",
            event.at.as_nanos(),
            event.seq,
            event.event.kind()
        );
        push_json_escaped(&mut line, &event.event.to_string());
        line.push_str("\"}");
        self.line(&line);
    }

    fn snapshot(&mut self, snapshot: &EpochSnapshot) {
        let mut line = format!(
            "{{\"type\":\"snapshot\",\"epoch\":{},\"at_ns\":{},\"counters\":{{",
            snapshot.epoch,
            snapshot.at.as_nanos()
        );
        for (i, (name, sample)) in snapshot.counters.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(
                line,
                "\"{name}\":{{\"delta\":{},\"total\":{}}}",
                sample.delta, sample.total
            );
        }
        line.push_str("},\"gauges\":{");
        for (i, (name, value)) in snapshot.gauges.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            if value.is_finite() {
                let _ = write!(line, "\"{name}\":{value}");
            } else {
                let _ = write!(line, "\"{name}\":null");
            }
        }
        line.push_str("}}");
        self.line(&line);
    }

    fn finish(&mut self) {
        self.out.flush().expect("jsonl sink flush failed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use sim_clock::SimTime;

    fn render_csv(f: impl FnOnce(&mut CsvSink<Vec<u8>>)) -> String {
        let mut sink = CsvSink::new(Vec::new());
        f(&mut sink);
        String::from_utf8(sink.into_inner()).unwrap()
    }

    #[test]
    fn csv_layout_matches_historical_format() {
        let text = render_csv(|s| {
            s.section("fig-test");
            s.columns(&["a", "b"]);
            s.row(&["1", "2.5"]);
            s.note("done");
        });
        assert_eq!(text, "\n# fig-test\na,b\n1,2.5\n\ndone\n");
    }

    #[test]
    fn csv_events_are_prefixed_rows() {
        let text = render_csv(|s| {
            s.event(&TracedEvent {
                at: SimTime::from_nanos(42),
                seq: 0,
                event: TraceEvent::WriteFault { page: 9 },
            });
        });
        assert_eq!(text, "trace,42,0,write_fault,page=9\n");
    }

    #[test]
    fn jsonl_rows_key_by_columns_and_escape() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.section("fig \"x\"");
        sink.columns(&["name", "value"]);
        sink.row(&["zipf", "0.99"]);
        sink.row(&["a", "b", "extra"]);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "{\"type\":\"section\",\"title\":\"fig \\\"x\\\"\"}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"row\",\"section\":\"fig \\\"x\\\"\",\"name\":\"zipf\",\"value\":0.99}"
        );
        assert!(lines[2].contains("\"col2\":\"extra\""));
    }

    #[test]
    fn meta_and_profile_records_render_in_both_layouts() {
        use crate::profile::{ProfileReport, RunMeta};
        use sim_clock::SimDuration;

        let meta = RunMeta {
            version: "0.1.0".to_string(),
            bench: "fig7".to_string(),
            backend: "Viyojit".to_string(),
            config_hash: 0xabcd,
            fault_seed: Some(7),
        };
        let report = ProfileReport {
            elapsed: SimDuration::from_nanos(12),
            attributed: SimDuration::from_nanos(12),
            folded: vec![("app".to_string(), 5), ("app;wp_trap".to_string(), 7)],
            by_class: vec![("app", 5), ("wp_trap", 7)],
            by_epoch: Vec::new(),
            aux: vec![("ssd_transfer", 2, 60)],
        };

        let csv = render_csv(|s| {
            s.meta(&meta);
            s.profile(&report);
        });
        assert_eq!(
            csv,
            "meta,0.1.0,fig7,Viyojit,000000000000abcd,7\n\
             profile,app,5\n\
             profile,app;wp_trap,7\n\
             profile_aux,ssd_transfer,2,60\n\
             profile_total,12,12\n"
        );

        let mut sink = JsonlSink::new(Vec::new());
        sink.meta(&meta);
        sink.profile(&report);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "{\"type\":\"meta\",\"version\":\"0.1.0\",\"bench\":\"fig7\",\
             \"backend\":\"Viyojit\",\"config_hash\":\"000000000000abcd\",\"fault_seed\":7}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"profile\",\"stack\":\"app\",\"nanos\":5}"
        );
        assert_eq!(
            lines[3],
            "{\"type\":\"profile_aux\",\"class\":\"ssd_transfer\",\"count\":2,\"nanos\":60}"
        );
        assert_eq!(
            lines[4],
            "{\"type\":\"profile_total\",\"elapsed_ns\":12,\"attributed_ns\":12}"
        );
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut sink = NullSink;
        sink.section("s");
        sink.columns(&["c"]);
        sink.row(&["1"]);
        sink.note("n");
        sink.finish();
    }
}
