//! Bounded ring buffer for trace events.
//!
//! Recording is O(1) and never reallocates after the first wrap; when
//! the buffer is full the oldest event is overwritten and counted in
//! [`TraceRing::dropped`], so a long run keeps the most recent window.

use crate::event::TracedEvent;

/// Default event capacity when none is configured.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Fixed-capacity event ring.
#[derive(Debug)]
pub struct TraceRing {
    buf: Vec<TracedEvent>,
    capacity: usize,
    /// Index of the next write when the ring has wrapped.
    head: usize,
    /// Events overwritten after the ring filled.
    dropped: u64,
    /// Total events ever recorded (drives sequence numbers).
    recorded: u64,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            buf: Vec::new(),
            capacity,
            head: 0,
            dropped: 0,
            recorded: 0,
        }
    }

    /// Records one event, evicting the oldest if the ring is full.
    pub fn push(&mut self, event: TracedEvent) {
        self.recorded += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded, retained or not.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Iterates retained events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TracedEvent> {
        let (wrapped, linear) = self.buf.split_at(self.head);
        linear.iter().chain(wrapped.iter())
    }

    /// Copies the retained events out, oldest-first.
    pub fn to_vec(&self) -> Vec<TracedEvent> {
        self.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use sim_clock::SimTime;

    fn ev(seq: u64) -> TracedEvent {
        TracedEvent {
            at: SimTime::from_nanos(seq),
            seq,
            event: TraceEvent::WriteFault { page: seq },
        }
    }

    #[test]
    fn fills_then_evicts_oldest() {
        let mut ring = TraceRing::new(3);
        for s in 0..5 {
            ring.push(ev(s));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.recorded(), 5);
        let seqs: Vec<u64> = ring.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut ring = TraceRing::new(0);
        ring.push(ev(0));
        ring.push(ev(1));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.to_vec()[0].seq, 1);
    }
}
