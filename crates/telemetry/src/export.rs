//! Live metrics export: Prometheus text exposition of the merged registry.
//!
//! A background thread periodically renders the merged view of a
//! [`Telemetry`] handle (parent plus every forked shard) in Prometheus
//! text exposition format (version 0.0.4) and writes it atomically to a
//! file; optionally it also answers one HTTP connection at a time on a
//! TCP listener, so a scraper (or `curl`) can pull the same text live.
//!
//! The exporter is read-only: it merges on demand and never touches the
//! record path, so workers keep writing into their own uncontended
//! shards while an export is in progress.

use std::fmt::Write as _;
use std::io::{self, Read as _, Write as _};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::Telemetry;

/// Where and how often the exporter publishes.
#[derive(Debug, Clone)]
pub struct ExporterConfig {
    /// File the exposition text is (atomically) rewritten to.
    pub path: PathBuf,
    /// Render period.
    pub period: Duration,
    /// Optional `host:port` to answer single HTTP connections on.
    pub listen: Option<String>,
}

impl ExporterConfig {
    /// A file-only exporter with the given period.
    pub fn to_file(path: impl Into<PathBuf>, period: Duration) -> Self {
        ExporterConfig {
            path: path.into(),
            period,
            listen: None,
        }
    }
}

/// Sanitizes a metric name into the Prometheus name alphabet
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): dots and other separators become
/// underscores.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Renders a gauge value; Prometheus accepts `NaN`/`+Inf`/`-Inf` spelled
/// exactly so.
fn render_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Renders the merged registry and wall-clock histograms of `telemetry`
/// in Prometheus text exposition format. Disabled handles render empty.
pub fn render_prometheus(telemetry: &Telemetry) -> String {
    let mut out = String::new();
    let Some(registry) = telemetry.merged_registry() else {
        return out;
    };
    for (name, value) in registry.counters() {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in registry.gauges() {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", render_f64(value));
    }
    for (name, hist) in registry.histograms() {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in hist.bucket_counts() {
            cumulative += count;
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.len());
        let _ = writeln!(out, "{name}_sum {}", hist.sum_nanos());
        let _ = writeln!(out, "{name}_count {}", hist.len());
    }
    for (name, value) in telemetry.wall_counters() {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (kind, hist) in telemetry.wall_histograms() {
        if hist.is_empty() {
            continue;
        }
        let name = format!("viyojit_wall_{}_nanos", kind.name());
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in hist.bucket_counts() {
            cumulative += count;
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.len());
        let _ = writeln!(out, "{name}_sum {}", hist.sum_nanos());
        let _ = writeln!(out, "{name}_count {}", hist.len());
    }
    out
}

/// Writes `text` to `path` atomically (write a sibling temp file, rename
/// over), so a scraper of the file never reads a torn exposition.
fn write_atomically(path: &PathBuf, text: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// Answers one already-accepted HTTP connection with `text`.
fn serve_one(mut stream: std::net::TcpStream, text: &str) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut request = [0u8; 1024];
    let _ = stream.read(&mut request);
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{text}",
        text.len()
    );
    let _ = stream.write_all(response.as_bytes());
}

/// Stops the exporter thread on drop (or explicitly via
/// [`ExporterHandle::stop`]), after one final render.
#[derive(Debug)]
pub struct ExporterHandle {
    shutdown: mpsc::Sender<()>,
    join: Option<JoinHandle<()>>,
}

impl ExporterHandle {
    /// Stops the background thread, flushing one final render.
    pub fn stop(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        let _ = self.shutdown.send(());
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ExporterHandle {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

/// Spawns the exporter thread over (a clone of) `telemetry`.
///
/// The thread renders every `config.period` (and once more on shutdown),
/// writes the file atomically, and — when `config.listen` is set —
/// answers pending HTTP connections between renders with the latest
/// text. A bind failure disables the listener rather than killing the
/// exporter.
pub fn spawn_exporter(telemetry: Telemetry, config: ExporterConfig) -> ExporterHandle {
    let (shutdown, rx) = mpsc::channel::<()>();
    let join = thread::Builder::new()
        .name("viyojit-exporter".to_string())
        .spawn(move || {
            let listener = config.listen.as_ref().and_then(|addr| {
                let l = TcpListener::bind(addr).ok()?;
                l.set_nonblocking(true).ok()?;
                Some(l)
            });
            let poll = Duration::from_millis(50).min(config.period);
            let mut last_render = Instant::now();
            let mut text = render_prometheus(&telemetry);
            let _ = write_atomically(&config.path, &text);
            loop {
                let stop = !matches!(rx.recv_timeout(poll), Err(RecvTimeoutError::Timeout));
                if stop || last_render.elapsed() >= config.period {
                    text = render_prometheus(&telemetry);
                    let _ = write_atomically(&config.path, &text);
                    last_render = Instant::now();
                }
                if let Some(listener) = &listener {
                    while let Ok((stream, _)) = listener.accept() {
                        serve_one(stream, &text);
                    }
                }
                if stop {
                    break;
                }
            }
        })
        .expect("failed to spawn exporter thread");
    ExporterHandle {
        shutdown,
        join: Some(join),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WallKind;
    use sim_clock::{Clock, SimDuration};

    #[test]
    fn render_covers_counters_gauges_and_histograms() {
        let clock = Clock::new();
        let telemetry = Telemetry::recording(clock.clone());
        telemetry.metrics(|m| {
            m.counter_add("viyojit.write_faults", 3);
            m.counter_set("viyojit.epochs", 2);
            m.gauge_set("sharded.shard0.dirty_pages", 4.0);
            m.histogram_record("viyojit.stall", SimDuration::from_nanos(100));
            m.histogram_record("viyojit.stall", SimDuration::from_nanos(100));
        });
        let shard = telemetry.fork_shard(clock);
        shard.metrics(|m| m.counter_add("viyojit.write_faults", 2));
        let wall = telemetry.wall_start();
        telemetry.record_wall(WallKind::Step, wall);
        telemetry.set_wall_counter("bitmap.dispatch.skip", 11);

        let text = render_prometheus(&telemetry);
        assert!(text.contains("# TYPE viyojit_write_faults counter\nviyojit_write_faults 5\n"));
        assert!(text.contains("# TYPE viyojit_epochs counter\nviyojit_epochs 2\n"));
        assert!(text
            .contains("# TYPE sharded_shard0_dirty_pages gauge\nsharded_shard0_dirty_pages 4\n"));
        assert!(text.contains("# TYPE viyojit_stall histogram"));
        assert!(text.contains("viyojit_stall_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("viyojit_stall_count 2"));
        assert!(text.contains("# TYPE bitmap_dispatch_skip counter\nbitmap_dispatch_skip 11\n"));
        assert!(text.contains("# TYPE viyojit_wall_step_nanos histogram"));
        assert!(text.contains("viyojit_wall_step_nanos_count 1"));
        assert!(render_prometheus(&Telemetry::disabled()).is_empty());
    }

    #[test]
    fn exporter_thread_writes_and_stops() {
        let clock = Clock::new();
        let telemetry = Telemetry::recording(clock);
        telemetry.metrics(|m| m.counter_add("x.live", 1));
        let path =
            std::env::temp_dir().join(format!("viyojit-export-test-{}.prom", std::process::id()));
        let handle = spawn_exporter(
            telemetry.clone(),
            ExporterConfig::to_file(&path, Duration::from_millis(10)),
        );
        telemetry.metrics(|m| m.counter_add("x.live", 4));
        handle.stop();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("x_live 5"), "final render missing: {text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sanitize_maps_dots_to_underscores() {
        assert_eq!(sanitize("viyojit.dirty_pages"), "viyojit_dirty_pages");
        assert_eq!(sanitize("sharded.tenant0.stall"), "sharded_tenant0_stall");
        assert_eq!(sanitize("9bad"), "_bad");
    }
}
