//! Wall-clock (host-time) histograms, strictly separate from virtual time.
//!
//! The registry, trace ring, and snapshots all speak virtual nanoseconds
//! and must stay byte-identical between runs; host durations are
//! non-deterministic by nature, so they live here — recorded into
//! [`WallHistogram`]s held beside the registry, surfaced only through
//! the exporter and explicit accessors, and never written into traces,
//! snapshots, or golden CSVs.
//!
//! The histogram is the same log2-bucket shape as
//! `trace-tools/src/latency.rs` (one bucket per power of two, quantiles
//! floor to the bucket's lower bound), sized for host durations from
//! 1 ns to ~years.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// Which engine operation a wall-clock sample times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WallKind {
    /// One data-plane `step` call (virtual-time advance + tick fanout).
    Step,
    /// One flush drain (issue-to-retire service of the copier queue).
    Flush,
    /// One budget round (demand collection, grants, commit).
    BudgetRound,
    /// One emergency flush (power-failure drain).
    Emergency,
}

impl WallKind {
    /// Every kind, in display order.
    pub const ALL: [WallKind; 4] = [
        WallKind::Step,
        WallKind::Flush,
        WallKind::BudgetRound,
        WallKind::Emergency,
    ];

    /// Stable lowercase name used in exporter metric names.
    pub fn name(&self) -> &'static str {
        match self {
            WallKind::Step => "step",
            WallKind::Flush => "flush",
            WallKind::BudgetRound => "budget_round",
            WallKind::Emergency => "emergency",
        }
    }

    fn index(&self) -> usize {
        *self as usize
    }
}

impl fmt::Display for WallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

const BUCKETS: usize = 64;

/// A log2-bucketed histogram of host durations: bucket `i` covers
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 also holds zero).
#[derive(Debug, Clone)]
pub struct WallHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum_nanos: u128,
    max_nanos: u64,
    min_nanos: u64,
}

impl WallHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        WallHistogram {
            counts: [0; BUCKETS],
            total: 0,
            sum_nanos: 0,
            max_nanos: 0,
            min_nanos: u64::MAX,
        }
    }

    fn bucket(nanos: u64) -> usize {
        if nanos == 0 {
            0
        } else {
            63 - nanos.leading_zeros() as usize
        }
    }

    /// Records one host duration.
    pub fn record(&mut self, d: Duration) {
        let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.counts[Self::bucket(nanos)] += 1;
        self.total += 1;
        self.sum_nanos += nanos as u128;
        self.max_nanos = self.max_nanos.max(nanos);
        self.min_nanos = self.min_nanos.min(nanos);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Sum of all samples in nanoseconds.
    pub fn sum_nanos(&self) -> u128 {
        self.sum_nanos
    }

    /// Arithmetic mean in nanoseconds; zero if empty.
    pub fn mean_nanos(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            (self.sum_nanos / self.total as u128) as u64
        }
    }

    /// The largest recorded sample in nanoseconds; zero if empty.
    pub fn max_nanos(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max_nanos
        }
    }

    /// The smallest recorded sample in nanoseconds; zero if empty.
    pub fn min_nanos(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_nanos
        }
    }

    /// The value at quantile `q` (0–1), floored to its bucket's lower
    /// bound; zero if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max_nanos
    }

    /// Occupied buckets as `(bucket_lower_bound_nanos, count)` pairs,
    /// ascending — the exporter renders these as cumulative
    /// exposition-format buckets.
    pub fn bucket_counts(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &WallHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_nanos += other.sum_nanos;
        if other.total > 0 {
            self.max_nanos = self.max_nanos.max(other.max_nanos);
            self.min_nanos = self.min_nanos.min(other.min_nanos);
        }
    }
}

impl Default for WallHistogram {
    fn default() -> Self {
        WallHistogram::new()
    }
}

/// The per-recorder set of wall-clock histograms, one per [`WallKind`],
/// plus named wall-plane counters (monotone host-side totals such as
/// scan-dispatch counts). Counters have *set* semantics — each publish
/// overwrites with the latest total — and merge by maximum, since every
/// shard publishing a process-global monotone total should collapse to
/// the freshest value, not a multiple of it.
#[derive(Debug, Clone, Default)]
pub(crate) struct WallStats {
    hists: [WallHistogram; 4],
    counters: BTreeMap<&'static str, u64>,
}

impl WallStats {
    pub(crate) fn record(&mut self, kind: WallKind, d: Duration) {
        self.hists[kind.index()].record(d);
    }

    pub(crate) fn set_counter(&mut self, name: &'static str, value: u64) {
        let slot = self.counters.entry(name).or_insert(0);
        *slot = (*slot).max(value);
    }

    pub(crate) fn merge_from(&mut self, other: &WallStats) {
        for (a, b) in self.hists.iter_mut().zip(&other.hists) {
            a.merge(b);
        }
        for (&name, &value) in &other.counters {
            self.set_counter(name, value);
        }
    }

    pub(crate) fn histogram(&self, kind: WallKind) -> &WallHistogram {
        &self.hists[kind.index()]
    }

    pub(crate) fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&name, &value)| (name, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_buckets_by_log2() {
        let mut h = WallHistogram::new();
        h.record(Duration::from_nanos(0));
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_nanos(900)); // bucket 9 (512..1024)
        h.record(Duration::from_micros(70)); // bucket 16 (65536..)
        assert_eq!(h.len(), 4);
        assert_eq!(h.min_nanos(), 0);
        assert_eq!(h.max_nanos(), 70_000);
        let buckets: Vec<(u64, u64)> = h.bucket_counts().collect();
        assert_eq!(buckets, vec![(0, 2), (512, 1), (65_536, 1)]);
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), h.len());
    }

    #[test]
    fn quantiles_floor_to_bucket_bounds() {
        let mut h = WallHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_nanos(100)); // bucket 6 -> 64
        }
        h.record(Duration::from_micros(1)); // bucket 9 -> 512
        assert_eq!(h.quantile(0.5), 64);
        assert_eq!(h.quantile(1.0), 512);
        assert_eq!(WallHistogram::new().quantile(0.99), 0);
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let mut a = WallHistogram::new();
        let mut b = WallHistogram::new();
        a.record(Duration::from_nanos(10));
        b.record(Duration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.min_nanos(), 10);
        assert_eq!(a.max_nanos(), 3_000_000);
        let merged: u64 = a.bucket_counts().map(|(_, c)| c).sum();
        assert_eq!(merged, 2);
    }

    #[test]
    fn wall_stats_key_by_kind() {
        let mut stats = WallStats::default();
        stats.record(WallKind::Step, Duration::from_nanos(5));
        stats.record(WallKind::Emergency, Duration::from_nanos(7));
        assert_eq!(stats.histogram(WallKind::Step).len(), 1);
        assert_eq!(stats.histogram(WallKind::Flush).len(), 0);
        assert_eq!(stats.histogram(WallKind::Emergency).len(), 1);
        let mut other = WallStats::default();
        other.record(WallKind::Step, Duration::from_nanos(9));
        stats.merge_from(&other);
        assert_eq!(stats.histogram(WallKind::Step).len(), 2);
    }

    #[test]
    fn counters_keep_latest_total_and_merge_by_max() {
        let mut stats = WallStats::default();
        stats.set_counter("bitmap.dispatch.skip", 10);
        stats.set_counter("bitmap.dispatch.skip", 25);
        let mut shard = WallStats::default();
        // A shard republishing the same process-global total (possibly
        // staler) must not inflate the merged value.
        shard.set_counter("bitmap.dispatch.skip", 20);
        shard.set_counter("bitmap.dispatch.dense", 7);
        stats.merge_from(&shard);
        let merged: Vec<(&str, u64)> = stats.counters().collect();
        assert_eq!(
            merged,
            vec![("bitmap.dispatch.dense", 7), ("bitmap.dispatch.skip", 25)]
        );
    }

    #[test]
    fn kind_names_are_stable() {
        let names: Vec<&str> = WallKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["step", "flush", "budget_round", "emergency"]);
    }
}
