//! Model-based property test: the persistent file system must behave like
//! an in-memory map of byte vectors under random operation sequences,
//! including across power cycles.

use std::collections::HashMap;

use nvfs::{FsError, NvFileSystem};
use pheap::PHeap;
use proptest::prelude::*;
use sim_clock::{Clock, CostModel};
use ssd_sim::SsdConfig;
use viyojit::{Viyojit, ViyojitConfig};

#[derive(Debug, Clone)]
enum Op {
    Write {
        file: u8,
        offset: u32,
        len: u16,
        fill: u8,
    },
    Read {
        file: u8,
        offset: u32,
        len: u16,
    },
    Delete {
        file: u8,
    },
    PowerCycle,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0..6u8, 0..200_000u32, 1..4_096u16, any::<u8>())
            .prop_map(|(file, offset, len, fill)| Op::Write { file, offset, len, fill }),
        3 => (0..6u8, 0..200_000u32, 1..4_096u16)
            .prop_map(|(file, offset, len)| Op::Read { file, offset, len }),
        1 => (0..6u8).prop_map(|file| Op::Delete { file }),
        1 => Just(Op::PowerCycle),
    ]
}

fn path(file: u8) -> Vec<u8> {
    format!("/vol/file{file}").into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn file_system_matches_model_across_power_cycles(
        ops in prop::collection::vec(op_strategy(), 1..60),
        budget in 4..32u64,
    ) {
        let nv = Viyojit::new(
            1024,
            ViyojitConfig::with_budget_pages(budget),
            Clock::new(),
            CostModel::free(),
            SsdConfig::instant(),
        );
        let heap = PHeap::format(nv, 900 * 4096).unwrap();
        let region = heap.region();
        let mut fs = NvFileSystem::format(heap).unwrap();
        // Model: path -> file contents grown on demand.
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();

        for op in &ops {
            match *op {
                Op::Write { file, offset, len, fill } => {
                    let p = path(file);
                    let handle = fs.open_or_create(&p).unwrap();
                    let data = vec![fill; len as usize];
                    match fs.write(handle, offset as u64, &data) {
                        Ok(()) => {
                            let content = model.entry(p).or_default();
                            let end = offset as usize + len as usize;
                            if content.len() < end {
                                content.resize(end, 0);
                            }
                            content[offset as usize..end].fill(fill);
                        }
                        Err(FsError::NoSpace) => {
                            // Heap exhausted: the file may have been
                            // created; keep the model consistent with the
                            // possibly-partial write by re-reading.
                            let size = fs.len(handle).unwrap() as usize;
                            let mut content = vec![0u8; size];
                            if size > 0 {
                                fs.read(handle, 0, &mut content).unwrap();
                            }
                            model.insert(p, content);
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("write: {e}"))),
                    }
                }
                Op::Read { file, offset, len } => {
                    let p = path(file);
                    let Some(handle) = fs.lookup(&p).unwrap() else {
                        prop_assert!(!model.contains_key(&p));
                        continue;
                    };
                    let content = &model[&p];
                    let mut buf = vec![0u8; len as usize];
                    let end = offset as usize + len as usize;
                    if end > content.len() {
                        prop_assert_eq!(
                            fs.read(handle, offset as u64, &mut buf),
                            Err(FsError::PastEndOfFile)
                        );
                    } else {
                        fs.read(handle, offset as u64, &mut buf).unwrap();
                        prop_assert_eq!(&buf[..], &content[offset as usize..end]);
                    }
                }
                Op::Delete { file } => {
                    let p = path(file);
                    let existed = model.remove(&p).is_some();
                    match fs.delete(&p) {
                        Ok(()) => prop_assert!(existed),
                        Err(FsError::NotFound) => prop_assert!(!existed),
                        Err(e) => return Err(TestCaseError::fail(format!("delete: {e}"))),
                    }
                }
                Op::PowerCycle => {
                    let mut nv = fs.into_heap().into_inner();
                    let report = nv.power_failure();
                    prop_assert!(report.dirty_pages <= budget);
                    nv.recover();
                    fs = NvFileSystem::open(PHeap::open(nv, region).unwrap()).unwrap();
                }
            }
        }

        // Final audit: sizes and full contents.
        for (p, content) in &model {
            let handle = fs.lookup(p).unwrap().expect("modelled file exists");
            prop_assert_eq!(fs.len(handle).unwrap(), content.len() as u64);
            let mut buf = vec![0u8; content.len()];
            if !content.is_empty() {
                fs.read(handle, 0, &mut buf).unwrap();
            }
            prop_assert_eq!(&buf, content);
        }
    }
}
