//! The file layer: directory, inodes, and extent allocation.

use kvstore::KvStore;
use pheap::{PHeap, PPtr, MAX_ALLOC};
use viyojit::NvHeap;

use crate::FsError;

/// Bytes per extent: one maximal heap allocation (64 KiB = 16 pages).
pub const EXTENT_BYTES: u64 = MAX_ALLOC as u64;

/// Inode layout: size(8) extent_count(4) reserved(4) extents(8 x MAX).
const INODE_SIZE: u64 = 0;
const INODE_EXTENT_COUNT: u64 = 8;
const INODE_EXTENTS: u64 = 16;
/// Extents per inode; bounds files at ~7.9 MiB, plenty for trace replay.
const MAX_EXTENTS: u64 = 126;
const INODE_BYTES: usize = (INODE_EXTENTS + MAX_EXTENTS * 8) as usize;

/// The directory key holding the format marker.
const MAGIC_KEY: &[u8] = b"\0nvfs-superblock";
const MAGIC_VALUE: &[u8] = b"NVFS-VIYOJIT-1";

/// Handle to an open file: the persistent pointer of its inode. Stable
/// across power cycles; invalidated by `delete`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileId(PPtr);

/// File-system statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsStats {
    /// Live files (excluding the superblock marker).
    pub files: u64,
    /// Sum of file sizes in bytes.
    pub used_bytes: u64,
}

/// A persistent file system over an NV-DRAM heap. See the
/// [crate docs](crate).
#[derive(Debug)]
pub struct NvFileSystem<H> {
    // The directory doubles as the metadata store: path -> inode pointer.
    dir: KvStore<H>,
}

impl<H: NvHeap> NvFileSystem<H> {
    /// Formats a new file system on `heap`.
    ///
    /// # Errors
    ///
    /// Propagates heap exhaustion.
    pub fn format(heap: PHeap<H>) -> Result<Self, FsError> {
        let mut dir = KvStore::create(heap, 1024)?;
        dir.set(MAGIC_KEY, MAGIC_VALUE)?;
        Ok(NvFileSystem { dir })
    }

    /// Reopens a formatted file system (after recovery).
    ///
    /// # Errors
    ///
    /// [`FsError::NotAFileSystem`] if the heap holds no formatted FS.
    pub fn open(heap: PHeap<H>) -> Result<Self, FsError> {
        let mut dir = KvStore::open(heap)?;
        match dir.get(MAGIC_KEY)? {
            Some(v) if v == MAGIC_VALUE => Ok(NvFileSystem { dir }),
            _ => Err(FsError::NotAFileSystem),
        }
    }

    /// Shared access to the underlying NV-DRAM layer.
    pub fn nv(&self) -> &H {
        self.dir.heap().heap()
    }

    /// Exclusive access to the underlying NV-DRAM layer (power-failure
    /// injection).
    pub fn nv_mut(&mut self) -> &mut H {
        self.dir.heap_mut().heap_mut()
    }

    /// Consumes the file system, returning the persistent heap.
    pub fn into_heap(self) -> PHeap<H> {
        self.dir.into_heap()
    }

    fn heap(&mut self) -> &mut PHeap<H> {
        self.dir.heap_mut()
    }

    fn inode_u64(&mut self, inode: PPtr, field: u64) -> Result<u64, FsError> {
        let mut buf = [0u8; 8];
        self.heap().read(inode, field, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    fn put_inode_u64(&mut self, inode: PPtr, field: u64, v: u64) -> Result<(), FsError> {
        self.heap().write(inode, field, &v.to_le_bytes())?;
        Ok(())
    }

    fn extent_of(&mut self, inode: PPtr, index: u64) -> Result<Option<PPtr>, FsError> {
        let raw = self.inode_u64(inode, INODE_EXTENTS + index * 8)?;
        Ok((raw != 0).then(|| PPtr::from_offset(raw)))
    }

    /// Creates an empty file at `path`.
    ///
    /// # Errors
    ///
    /// [`FsError::AlreadyExists`] if the path is taken; heap exhaustion as
    /// [`FsError::NoSpace`].
    pub fn create(&mut self, path: &[u8]) -> Result<FileId, FsError> {
        if self.dir.get(path)?.is_some() {
            return Err(FsError::AlreadyExists);
        }
        let inode = self.heap().alloc(INODE_BYTES)?;
        self.heap().write(inode, 0, &vec![0u8; INODE_BYTES])?;
        let mut count = [0u8; 4];
        count.copy_from_slice(&0u32.to_le_bytes());
        self.heap().write(inode, INODE_EXTENT_COUNT, &count)?;
        self.dir.set(path, &inode.offset().to_le_bytes())?;
        Ok(FileId(inode))
    }

    /// Looks up `path`.
    ///
    /// # Errors
    ///
    /// Heap failures surface as [`FsError::Heap`].
    pub fn lookup(&mut self, path: &[u8]) -> Result<Option<FileId>, FsError> {
        match self.dir.get(path)? {
            Some(raw) if raw.len() == 8 => {
                let off = u64::from_le_bytes(raw.try_into().expect("checked length"));
                Ok(Some(FileId(PPtr::from_offset(off))))
            }
            _ => Ok(None),
        }
    }

    /// Opens `path`, creating it if absent.
    ///
    /// # Errors
    ///
    /// Heap failures surface as [`FsError::Heap`] / [`FsError::NoSpace`].
    pub fn open_or_create(&mut self, path: &[u8]) -> Result<FileId, FsError> {
        match self.lookup(path)? {
            Some(f) => Ok(f),
            None => self.create(path),
        }
    }

    /// Deletes `path`, freeing its inode and extents.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if absent.
    pub fn delete(&mut self, path: &[u8]) -> Result<(), FsError> {
        let Some(FileId(inode)) = self.lookup(path)? else {
            return Err(FsError::NotFound);
        };
        let extents = self.inode_u64(inode, INODE_EXTENT_COUNT)? & 0xFFFF_FFFF;
        for i in 0..extents {
            if let Some(extent) = self.extent_of(inode, i)? {
                self.heap().free(extent)?;
            }
        }
        self.heap().free(inode)?;
        self.dir.delete(path)?;
        Ok(())
    }

    /// The file's size in bytes.
    ///
    /// # Errors
    ///
    /// Heap failures surface as [`FsError::Heap`] (stale handles included).
    pub fn len(&mut self, file: FileId) -> Result<u64, FsError> {
        self.inode_u64(file.0, INODE_SIZE)
    }

    /// `true` if the file is empty.
    ///
    /// # Errors
    ///
    /// As [`NvFileSystem::len`].
    pub fn is_empty(&mut self, file: FileId) -> Result<bool, FsError> {
        Ok(self.len(file)? == 0)
    }

    /// Writes `data` at `offset`, allocating extents lazily and growing
    /// the file as needed. Holes left by sparse writes read as zeros.
    ///
    /// # Errors
    ///
    /// [`FsError::FileTooLarge`] past `MAX_EXTENTS x EXTENT_BYTES`;
    /// allocation failures as [`FsError::NoSpace`].
    pub fn write(&mut self, file: FileId, offset: u64, data: &[u8]) -> Result<(), FsError> {
        let inode = file.0;
        let end = offset
            .checked_add(data.len() as u64)
            .ok_or(FsError::FileTooLarge)?;
        if end > MAX_EXTENTS * EXTENT_BYTES {
            return Err(FsError::FileTooLarge);
        }
        let mut cursor = offset;
        let mut rest = data;
        while !rest.is_empty() {
            let index = cursor / EXTENT_BYTES;
            let within = cursor % EXTENT_BYTES;
            let chunk = ((EXTENT_BYTES - within) as usize).min(rest.len());
            let extent = match self.extent_of(inode, index)? {
                Some(e) => e,
                None => {
                    let fresh = self.heap().alloc(EXTENT_BYTES as usize)?;
                    // Zero the extent so holes and tails read as zeros.
                    self.heap()
                        .write(fresh, 0, &vec![0u8; EXTENT_BYTES as usize])?;
                    self.put_inode_u64(inode, INODE_EXTENTS + index * 8, fresh.offset())?;
                    let count = self.inode_u64(inode, INODE_EXTENT_COUNT)? & 0xFFFF_FFFF;
                    if index + 1 > count {
                        self.put_inode_u64(inode, INODE_EXTENT_COUNT, index + 1)?;
                    }
                    fresh
                }
            };
            let (now, later) = rest.split_at(chunk);
            self.heap().write(extent, within, now)?;
            rest = later;
            cursor += chunk as u64;
        }
        if end > self.inode_u64(inode, INODE_SIZE)? {
            self.put_inode_u64(inode, INODE_SIZE, end)?;
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes at `offset`. Holes read as zeros.
    ///
    /// # Errors
    ///
    /// [`FsError::PastEndOfFile`] if the range exceeds the file size.
    pub fn read(&mut self, file: FileId, offset: u64, buf: &mut [u8]) -> Result<(), FsError> {
        let inode = file.0;
        let size = self.inode_u64(inode, INODE_SIZE)?;
        let end = offset
            .checked_add(buf.len() as u64)
            .ok_or(FsError::PastEndOfFile)?;
        if end > size {
            return Err(FsError::PastEndOfFile);
        }
        let mut cursor = offset;
        let mut rest: &mut [u8] = buf;
        while !rest.is_empty() {
            let index = cursor / EXTENT_BYTES;
            let within = cursor % EXTENT_BYTES;
            let chunk = ((EXTENT_BYTES - within) as usize).min(rest.len());
            let (now, later) = rest.split_at_mut(chunk);
            match self.extent_of(inode, index)? {
                Some(extent) => self.heap().read(extent, within, now)?,
                None => now.fill(0), // hole
            }
            rest = later;
            cursor += chunk as u64;
        }
        Ok(())
    }

    /// File-system statistics (walks the directory index).
    ///
    /// # Errors
    ///
    /// Heap failures surface as [`FsError::Heap`].
    pub fn stats(&mut self) -> Result<FsStats, FsError> {
        // The directory's scan gives every path; subtract the marker.
        let entries = self.dir.scan(b"", usize::MAX)?;
        let mut files = 0;
        let mut used = 0;
        for (path, raw) in entries {
            if path == MAGIC_KEY || raw.len() != 8 {
                continue;
            }
            let inode =
                PPtr::from_offset(u64::from_le_bytes(raw.try_into().expect("checked length")));
            files += 1;
            used += self.inode_u64(inode, INODE_SIZE)?;
        }
        Ok(FsStats {
            files,
            used_bytes: used,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_clock::{Clock, CostModel};
    use ssd_sim::SsdConfig;
    use viyojit::{NvdramBaseline, Viyojit, ViyojitConfig};

    fn fs(pages: usize) -> NvFileSystem<NvdramBaseline> {
        let nv = NvdramBaseline::new(pages, Clock::new(), CostModel::free(), SsdConfig::instant());
        let heap = PHeap::format(nv, (pages as u64 - 2) * 4096).unwrap();
        NvFileSystem::format(heap).unwrap()
    }

    #[test]
    fn create_write_read_round_trip() {
        let mut f = fs(256);
        let file = f.create(b"/data/a").unwrap();
        f.write(file, 0, b"twelve bytes").unwrap();
        assert_eq!(f.len(file).unwrap(), 12);
        let mut buf = [0u8; 12];
        f.read(file, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"twelve bytes");
    }

    #[test]
    fn writes_cross_extents() {
        let mut f = fs(512);
        let file = f.create(b"big").unwrap();
        let data: Vec<u8> = (0..(EXTENT_BYTES + 1000) as usize)
            .map(|i| (i % 251) as u8)
            .collect();
        f.write(file, EXTENT_BYTES - 500, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        f.read(file, EXTENT_BYTES - 500, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn holes_read_as_zeros() {
        let mut f = fs(512);
        let file = f.create(b"sparse").unwrap();
        f.write(file, 3 * EXTENT_BYTES, b"tail").unwrap();
        assert_eq!(f.len(file).unwrap(), 3 * EXTENT_BYTES + 4);
        let mut buf = [7u8; 64];
        f.read(file, EXTENT_BYTES, &mut buf).unwrap(); // inside a hole
        assert_eq!(buf, [0u8; 64]);
    }

    #[test]
    fn overwrites_do_not_grow_the_file() {
        let mut f = fs(256);
        let file = f.create(b"x").unwrap();
        f.write(file, 0, &[1u8; 1000]).unwrap();
        f.write(file, 100, &[2u8; 50]).unwrap();
        assert_eq!(f.len(file).unwrap(), 1000);
        let mut buf = [0u8; 3];
        f.read(file, 99, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 2]);
    }

    #[test]
    fn directory_operations() {
        let mut f = fs(256);
        assert_eq!(f.lookup(b"nope").unwrap(), None);
        let a = f.create(b"a").unwrap();
        assert_eq!(f.lookup(b"a").unwrap(), Some(a));
        assert_eq!(f.create(b"a"), Err(FsError::AlreadyExists));
        assert_eq!(f.open_or_create(b"a").unwrap(), a);
        f.delete(b"a").unwrap();
        assert_eq!(f.lookup(b"a").unwrap(), None);
        assert_eq!(f.delete(b"a"), Err(FsError::NotFound));
    }

    #[test]
    fn delete_frees_space_for_reuse() {
        let mut f = fs(128);
        // Fill, delete, refill: the second fill must succeed via reuse.
        for round in 0..3 {
            let file = f.create(b"cycle").unwrap();
            f.write(file, 0, &vec![round as u8; EXTENT_BYTES as usize])
                .unwrap();
            f.delete(b"cycle").unwrap();
        }
    }

    #[test]
    fn reads_past_eof_are_rejected() {
        let mut f = fs(256);
        let file = f.create(b"short").unwrap();
        f.write(file, 0, b"abc").unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(f.read(file, 0, &mut buf), Err(FsError::PastEndOfFile));
    }

    #[test]
    fn oversized_files_are_rejected() {
        let mut f = fs(256);
        let file = f.create(b"huge").unwrap();
        assert_eq!(
            f.write(file, MAX_EXTENTS * EXTENT_BYTES, b"x"),
            Err(FsError::FileTooLarge)
        );
    }

    #[test]
    fn stats_count_files_and_bytes() {
        let mut f = fs(512);
        let a = f.create(b"a").unwrap();
        let b = f.create(b"b").unwrap();
        f.write(a, 0, &[0u8; 100]).unwrap();
        f.write(b, 0, &[0u8; 200]).unwrap();
        let stats = f.stats().unwrap();
        assert_eq!(stats.files, 2);
        assert_eq!(stats.used_bytes, 300);
    }

    #[test]
    fn files_survive_power_cycles() {
        let nv = Viyojit::new(
            512,
            ViyojitConfig::with_budget_pages(16),
            Clock::new(),
            CostModel::free(),
            SsdConfig::instant(),
        );
        let heap = PHeap::format(nv, 400 * 4096).unwrap();
        let region = heap.region();
        let mut f = NvFileSystem::format(heap).unwrap();
        let file = f.create(b"/etc/config").unwrap();
        f.write(file, 0, b"persistent configuration").unwrap();

        let mut nv = f.into_heap().into_inner();
        nv.power_failure();
        nv.recover();

        let mut f = NvFileSystem::open(PHeap::open(nv, region).unwrap()).unwrap();
        let file = f.lookup(b"/etc/config").unwrap().expect("file survives");
        let mut buf = vec![0u8; 24];
        f.read(file, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"persistent configuration");
    }

    #[test]
    fn open_rejects_unformatted_heaps() {
        let nv = NvdramBaseline::new(64, Clock::new(), CostModel::free(), SsdConfig::instant());
        let heap = PHeap::format(nv, 50 * 4096).unwrap();
        assert!(matches!(
            NvFileSystem::open(heap),
            Err(FsError::NotAFileSystem)
        ));
    }
}
