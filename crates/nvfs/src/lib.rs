//! A minimal persistent file layer on an NV-DRAM heap — the file-server
//! use case that motivates Viyojit.
//!
//! §2 opens with NVM "as a cache in storage, file and database servers",
//! and §3 analyses *file system volumes* hosted entirely in NV-DRAM. The
//! trace analysis deliberately assumes an adversarial file system where
//! every write lands on a unique NV-DRAM page (the log-structured worst
//! case); this crate provides an actual file layer — names, inodes, and
//! extent-based allocation on [`pheap`] — so the harness can measure how
//! a *real* (update-in-place) layout behaves against that conservative
//! bound (`fs_replay` in the bench crate).
//!
//! Crash consistency follows the battery-backed DRAM model used
//! throughout this workspace: a power failure flushes the whole dirty
//! image, so in-place metadata updates are safe, and
//! [`NvFileSystem::open`] resumes from the persistent superblock.
//!
//! # Examples
//!
//! ```
//! use nvfs::NvFileSystem;
//! use pheap::PHeap;
//! use sim_clock::{Clock, CostModel};
//! use ssd_sim::SsdConfig;
//! use viyojit::{Viyojit, ViyojitConfig};
//!
//! let nv = Viyojit::new(
//!     256,
//!     ViyojitConfig::with_budget_pages(16),
//!     Clock::new(),
//!     CostModel::free(),
//!     SsdConfig::instant(),
//! );
//! let heap = PHeap::format(nv, 200 * 4096)?;
//! let mut fs = NvFileSystem::format(heap)?;
//! let file = fs.create(b"/var/log/app.log")?;
//! fs.write(file, 0, b"hello, non-volatile world")?;
//! let mut buf = vec![0u8; 25];
//! fs.read(file, 0, &mut buf)?;
//! assert_eq!(&buf, b"hello, non-volatile world");
//! # Ok::<(), nvfs::FsError>(())
//! ```

mod error;
mod fs;

pub use error::FsError;
pub use fs::{FileId, FsStats, NvFileSystem, EXTENT_BYTES};
