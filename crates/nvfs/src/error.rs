//! Error type of the file layer.

use std::error::Error;
use std::fmt;

use kvstore::KvError;
use pheap::PHeapError;

/// Why a file operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsError {
    /// The path already names a file.
    AlreadyExists,
    /// The file handle (or path) does not name a live file.
    NotFound,
    /// The access exceeds the file's maximum representable size.
    FileTooLarge,
    /// The read extends past the end of the file.
    PastEndOfFile,
    /// The heap is out of space.
    NoSpace,
    /// The region does not hold a formatted file system.
    NotAFileSystem,
    /// The underlying persistent heap failed.
    Heap(PHeapError),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::AlreadyExists => write!(f, "path already exists"),
            FsError::NotFound => write!(f, "no such file"),
            FsError::FileTooLarge => write!(f, "file exceeds the maximum size"),
            FsError::PastEndOfFile => write!(f, "read past the end of the file"),
            FsError::NoSpace => write!(f, "file system out of space"),
            FsError::NotAFileSystem => write!(f, "heap does not contain a file system"),
            FsError::Heap(e) => write!(f, "persistent heap error: {e}"),
        }
    }
}

impl Error for FsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FsError::Heap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PHeapError> for FsError {
    fn from(e: PHeapError) -> Self {
        match e {
            PHeapError::OutOfMemory => FsError::NoSpace,
            other => FsError::Heap(other),
        }
    }
}

impl From<KvError> for FsError {
    fn from(e: KvError) -> Self {
        match e {
            KvError::Heap(PHeapError::OutOfMemory) => FsError::NoSpace,
            KvError::Heap(h) => FsError::Heap(h),
            KvError::NotAStore => FsError::NotAFileSystem,
            KvError::KeyTooLarge { .. } | KvError::ValueTooLarge { .. } => FsError::FileTooLarge,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_map_oom_to_no_space() {
        assert_eq!(FsError::from(PHeapError::OutOfMemory), FsError::NoSpace);
        assert_eq!(
            FsError::from(KvError::Heap(PHeapError::OutOfMemory)),
            FsError::NoSpace
        );
    }

    #[test]
    fn messages_are_nonempty() {
        for e in [
            FsError::AlreadyExists,
            FsError::NotFound,
            FsError::FileTooLarge,
            FsError::PastEndOfFile,
            FsError::NoSpace,
            FsError::NotAFileSystem,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
