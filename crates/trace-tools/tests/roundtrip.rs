//! Writer/reader lock-step: a trace produced by the real telemetry
//! `JsonlSink` must parse back into the same facts, pass `check`, and
//! diff cleanly against itself. If the sink's record shapes ever drift
//! from the CLI's parser, this test is the tripwire.

use sim_clock::{Clock, SimDuration};
use telemetry::{
    CostClass, FlushReason, JsonlSink, Profiler, RunMeta, Sink, Telemetry, TraceEvent,
};
use trace_tools::{check, diff, latencies, summarize, Trace};

/// One small synthetic run, recorded through the real writer stack.
fn record_run(fault_seed: Option<u64>) -> String {
    let clock = Clock::new();
    let telemetry = Telemetry::recording(clock.clone());
    let profiler = Profiler::enabled(clock.clone());

    // A fault, its flush, and the flush's device IO, with time charged
    // to the matching cost classes as the engine would.
    clock.advance(SimDuration::from_nanos(100));
    profiler.sync();
    telemetry.emit(|| TraceEvent::WriteFault { page: 3 });
    {
        let _span = profiler.span(CostClass::WpTrap);
        clock.advance(SimDuration::from_nanos(4_000));
    }
    telemetry.emit(|| TraceEvent::FlushIssued {
        page: 3,
        reason: FlushReason::Proactive,
        last_update_epoch: Some(1),
    });
    telemetry.emit(|| TraceEvent::SsdSubmit {
        page: 3,
        bytes: 4096,
    });
    let done = clock.now() + SimDuration::from_nanos(25_000);
    telemetry.emit_at(done, || TraceEvent::SsdComplete { page: 3 });
    {
        let _span = profiler.span(CostClass::CopyOutIo);
        clock.advance_to(done);
    }
    telemetry.emit(|| TraceEvent::FlushComplete { page: 3 });
    profiler.aux_charge(CostClass::SsdTransfer, SimDuration::from_nanos(25_000));
    telemetry.snapshot_epoch(1);

    let mut sink = JsonlSink::new(Vec::new());
    sink.meta(&RunMeta::new(
        "roundtrip",
        "Viyojit",
        "budget=32",
        fault_seed,
    ));
    telemetry.drain_into(&mut sink);
    sink.profile(&profiler.report().expect("enabled profiler reports"));
    String::from_utf8(sink.into_inner()).expect("sinks write UTF-8")
}

#[test]
fn sink_output_parses_checks_and_diffs() {
    let text = record_run(Some(7));
    let trace = Trace::parse(&text).expect("real sink output parses");

    let meta = trace.meta.as_ref().expect("meta header present");
    assert_eq!(meta.bench, "roundtrip");
    assert_eq!(meta.backend, "Viyojit");
    assert_eq!(meta.fault_seed, Some(7));
    assert_eq!(meta.config_hash.len(), 16);

    assert_eq!(trace.count_of("write_fault"), 1);
    assert_eq!(trace.count_of("flush_complete"), 1);
    assert_eq!(trace.snapshots.len(), 1);
    let (elapsed, attributed) = trace.profile_total.expect("profile totals present");
    assert_eq!(elapsed, attributed, "the writer's invariant survives IO");

    let report = check(&trace);
    assert!(report.passed(), "{report}");
    assert_eq!(
        (report.issued, report.completed, report.inflight),
        (1, 1, 0)
    );

    // Device service time is measurable because ssd_complete is stamped
    // at its completion instant.
    let all = latencies(&trace);
    let ssd = all.iter().find(|p| p.from == "ssd_submit").unwrap();
    assert_eq!(ssd.histogram.count, 1);
    assert_eq!(ssd.histogram.min, 25_000);

    let overview = summarize(&trace).to_string();
    assert!(overview.contains("bench roundtrip"), "{overview}");
    assert!(overview.contains("conserved"), "{overview}");
}

#[test]
fn same_config_different_seed_diffs_with_note() {
    let a = Trace::parse(&record_run(Some(1))).unwrap();
    let b = Trace::parse(&record_run(Some(2))).unwrap();
    let d = diff(&a, &b, false).expect("same config and backend compares");
    assert!(d.notes.iter().any(|n| n.contains("fault seeds differ")));

    // A corrupted header must be refused without --force.
    let mut bare = a.clone();
    bare.meta = None;
    assert!(diff(&bare, &b, false).is_err());
    assert!(diff(&bare, &b, true).is_ok());
}
