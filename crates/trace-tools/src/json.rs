//! A minimal JSON reader for the flat one-object-per-line records the
//! telemetry `JsonlSink` emits.
//!
//! The workspace is deliberately serde-free (see DESIGN.md), and the
//! sink side already hand-renders its JSON; this is the matching hand
//! parser. It accepts full JSON (nested objects, arrays, escapes,
//! numbers with exponents) so snapshot records with nested counter maps
//! parse too, but it keeps integers exact only up to `i64` — every
//! quantity the sinks write (nanoseconds, counts, sequence numbers)
//! fits comfortably.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order is not preserved (records never repeat keys).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// This value as a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The object entries, if this is an object.
    pub fn entries(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(map) => Some(map),
            _ => None,
        }
    }
}

/// Why a line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the parser had reached.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value from `text` (trailing whitespace
/// allowed, trailing garbage rejected).
///
/// # Errors
///
/// A [`ParseError`] naming the first offending byte offset.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // The sinks never emit surrogate pairs (they
                            // only \u-escape control characters), so a
                            // lone surrogate is replaced, not an error.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Re-borrow the full UTF-8 character starting here.
                    let start = self.pos - 1;
                    let text = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty by construction");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_event_records() {
        let v = parse(
            "{\"type\":\"event\",\"at_ns\":42,\"seq\":0,\"kind\":\"write_fault\",\"detail\":\"page=9\"}",
        )
        .unwrap();
        assert_eq!(v.get("type").and_then(Value::as_str), Some("event"));
        assert_eq!(v.get("at_ns").and_then(Value::as_u64), Some(42));
        assert_eq!(v.get("detail").and_then(Value::as_str), Some("page=9"));
    }

    #[test]
    fn parses_nested_snapshot_records() {
        let v = parse(
            "{\"type\":\"snapshot\",\"epoch\":3,\"at_ns\":100,\
             \"counters\":{\"viyojit.epochs\":{\"delta\":1,\"total\":3}},\
             \"gauges\":{\"viyojit.dirty_pages\":4.5,\"bad\":null}}",
        )
        .unwrap();
        let counters = v.get("counters").unwrap();
        let epochs = counters.get("viyojit.epochs").unwrap();
        assert_eq!(epochs.get("total").and_then(Value::as_u64), Some(3));
        let gauges = v.get("gauges").unwrap();
        assert_eq!(
            gauges.get("viyojit.dirty_pages").and_then(Value::as_f64),
            Some(4.5)
        );
        assert_eq!(gauges.get("bad"), Some(&Value::Null));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse("{\"text\":\"a\\\"b\\n\\u0041ç\"}").unwrap();
        assert_eq!(v.get("text").and_then(Value::as_str), Some("a\"b\nAç"));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("{\"a\":").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn distinguishes_ints_from_floats() {
        assert_eq!(parse("7").unwrap(), Value::Int(7));
        assert_eq!(parse("-3").unwrap(), Value::Int(-3));
        assert_eq!(parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
    }
}
