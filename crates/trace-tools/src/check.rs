//! Trace invariant checking: the `viyojit-trace check` subcommand.
//!
//! Two families of invariants:
//!
//! - **Flush accounting.** Every `flush_issued` is matched by a
//!   `flush_complete` or remains in flight at end of trace — per page,
//!   a completion can never outrun its issue. Pages the emergency flush
//!   abandons appear as `page_lost` events, and their count must agree
//!   with the `pages_lost` field of the aggregate `emergency_flush`
//!   event. SSD completions likewise never outrun submissions.
//! - **Span conservation.** When the trace carries profiler records,
//!   the folded leaf spans must sum to the attributed total and the
//!   attributed total must equal the elapsed virtual time — the profiler's
//!   every-nanosecond-attributed guarantee, re-verified offline.
//!
//! When the trace ring overflowed (`telemetry.dropped_events > 0`) the
//! event stream is incomplete, so event-counting violations are demoted
//! to warnings; profiler records are not ring-buffered, so conservation
//! violations always stay violations.

use std::collections::BTreeMap;
use std::fmt;

use crate::trace::Trace;

/// What `check` found in one trace.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Invariant violations; any entry makes the trace fail.
    pub violations: Vec<String>,
    /// Suspicious but non-fatal observations.
    pub warnings: Vec<String>,
    /// Total `flush_issued` events.
    pub issued: u64,
    /// Total `flush_complete` events.
    pub completed: u64,
    /// Flushes still in flight at end of trace (issued minus completed,
    /// summed per page).
    pub inflight: u64,
    /// Total `page_lost` events.
    pub lost: u64,
}

impl CheckReport {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "flush accounting: issued {} = completed {} + inflight {} (lost {})",
            self.issued, self.completed, self.inflight, self.lost
        )?;
        for w in &self.warnings {
            writeln!(f, "warning: {w}")?;
        }
        for v in &self.violations {
            writeln!(f, "VIOLATION: {v}")?;
        }
        if self.passed() {
            writeln!(f, "check passed")?;
        } else {
            writeln!(f, "check FAILED ({} violations)", self.violations.len())?;
        }
        Ok(())
    }
}

/// Runs every invariant check against a parsed trace.
pub fn check(trace: &Trace) -> CheckReport {
    let mut report = CheckReport::default();
    let dropped = trace.dropped_events();

    // Ring overflow makes event counts incomplete: downgrade the
    // event-derived checks to warnings rather than reporting phantom
    // violations against a truncated stream.
    let event_problem = |report: &mut CheckReport, message: String| {
        if dropped > 0 {
            report
                .warnings
                .push(format!("{message} (ring dropped {dropped} events)"));
        } else {
            report.violations.push(message);
        }
    };

    if trace.meta.is_none() {
        report
            .warnings
            .push("no run-metadata header; provenance unknown".to_string());
    }
    if dropped > 0 {
        report.warnings.push(format!(
            "trace ring overflowed: {dropped} oldest events dropped"
        ));
    }

    // Sequence numbers must be strictly increasing in file order.
    let mut last_seq = None;
    for e in &trace.events {
        if let Some(prev) = last_seq {
            if e.seq <= prev {
                event_problem(
                    &mut report,
                    format!("event seq not strictly increasing: {} after {prev}", e.seq),
                );
                break;
            }
        }
        last_seq = Some(e.seq);
    }

    // Per-page flush accounting, in event order: a page's completions
    // can never outrun its issues; lost pages were dirty, not issued.
    let mut balance: BTreeMap<u64, i64> = BTreeMap::new();
    for e in &trace.events {
        let Some(page) = e.field_u64("page") else {
            continue;
        };
        match e.kind.as_str() {
            "flush_issued" => {
                report.issued += 1;
                *balance.entry(page).or_insert(0) += 1;
            }
            "flush_complete" => {
                report.completed += 1;
                let b = balance.entry(page).or_insert(0);
                *b -= 1;
                if *b < 0 {
                    event_problem(
                        &mut report,
                        format!(
                            "page {page}: flush_complete at seq {} without a \
                             matching flush_issued",
                            e.seq
                        ),
                    );
                    *b = 0; // report each page's first imbalance once
                }
            }
            "page_lost" => report.lost += 1,
            _ => {}
        }
    }
    report.inflight = balance.values().map(|&b| b.max(0) as u64).sum();
    // With the per-page balances clamped non-negative, this identity is
    // exactly the FlushIssued == FlushCompleted + inflight conservation
    // law (pages_lost pages were never issued — they are the emergency
    // flush's separate ledger, cross-checked below).
    if report.issued != report.completed + report.inflight {
        let message = format!(
            "flush accounting broken: issued {} != completed {} + inflight {}",
            report.issued, report.completed, report.inflight
        );
        event_problem(&mut report, message);
    }

    // SSD completions never outrun submissions (completions are stamped
    // at their future instant but recorded at submit order, so the file
    // order check is sound).
    let mut ssd_balance: BTreeMap<u64, i64> = BTreeMap::new();
    for e in &trace.events {
        let Some(page) = e.field_u64("page") else {
            continue;
        };
        match e.kind.as_str() {
            "ssd_submit" => *ssd_balance.entry(page).or_insert(0) += 1,
            "ssd_complete" => {
                let b = ssd_balance.entry(page).or_insert(0);
                *b -= 1;
                if *b < 0 {
                    event_problem(
                        &mut report,
                        format!(
                            "page {page}: ssd_complete at seq {} without a \
                             matching ssd_submit",
                            e.seq
                        ),
                    );
                    *b = 0;
                }
            }
            _ => {}
        }
    }

    // The aggregate emergency_flush event must agree with the per-page
    // page_lost stream it summarises.
    let aggregate_lost: u64 = trace
        .events_of("emergency_flush")
        .filter_map(|e| e.field_u64("pages_lost"))
        .sum();
    if trace.events_of("emergency_flush").next().is_some() && aggregate_lost != report.lost {
        let message = format!(
            "emergency_flush reports {aggregate_lost} pages lost but the \
             trace carries {} page_lost events",
            report.lost
        );
        event_problem(&mut report, message);
    }

    // Span conservation. Profiler records bypass the ring, so these are
    // hard violations regardless of overflow.
    if let Some((elapsed, attributed)) = trace.profile_total {
        if attributed != elapsed {
            report.violations.push(format!(
                "span conservation broken: attributed {attributed} ns != \
                 elapsed {elapsed} ns"
            ));
        }
        let folded_sum: u64 = trace.folded.iter().map(|&(_, n)| n).sum();
        if folded_sum != attributed {
            report.violations.push(format!(
                "folded stacks sum to {folded_sum} ns but the profiler \
                 attributed {attributed} ns"
            ));
        }
    } else if !trace.folded.is_empty() {
        report.warnings.push(
            "folded stacks present but no profile_total record; \
             conservation unverifiable"
                .to_string(),
        );
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_of(lines: &[&str]) -> Trace {
        Trace::parse(&lines.join("\n")).unwrap()
    }

    fn event(seq: u64, kind: &str, detail: &str) -> String {
        format!(
            "{{\"type\":\"event\",\"at_ns\":{},\"seq\":{seq},\"kind\":\"{kind}\",\"detail\":\"{detail}\"}}",
            seq * 10
        )
    }

    #[test]
    fn balanced_flushes_pass() {
        let lines = [
            event(
                0,
                "flush_issued",
                "page=1 reason=proactive last_update_epoch=0",
            ),
            event(1, "flush_complete", "page=1"),
            event(
                2,
                "flush_issued",
                "page=2 reason=forced last_update_epoch=none",
            ),
        ];
        let lines: Vec<&str> = lines.iter().map(String::as_str).collect();
        let report = check(&trace_of(&lines));
        assert!(report.passed(), "{report}");
        assert_eq!(
            (report.issued, report.completed, report.inflight),
            (2, 1, 1)
        );
    }

    #[test]
    fn orphan_completion_is_a_violation() {
        let lines = [event(0, "flush_complete", "page=7")];
        let lines: Vec<&str> = lines.iter().map(String::as_str).collect();
        let report = check(&trace_of(&lines));
        assert!(!report.passed());
        assert!(report.violations[0].contains("page 7"));
    }

    #[test]
    fn overflow_demotes_event_violations_to_warnings() {
        let lines = [
            "{\"type\":\"snapshot\",\"epoch\":1,\"at_ns\":5,\"counters\":{\"telemetry.dropped_events\":{\"delta\":3,\"total\":3}},\"gauges\":{}}".to_string(),
            event(0, "flush_complete", "page=7"),
        ];
        let lines: Vec<&str> = lines.iter().map(String::as_str).collect();
        let report = check(&trace_of(&lines));
        assert!(report.passed(), "{report}");
        assert!(report.warnings.iter().any(|w| w.contains("page 7")));
    }

    #[test]
    fn emergency_aggregate_must_match_page_lost_events() {
        let lines = [
            event(0, "page_lost", "page=3"),
            event(
                1,
                "emergency_flush",
                "pages_flushed=5 pages_lost=2 retries=0",
            ),
        ];
        let lines: Vec<&str> = lines.iter().map(String::as_str).collect();
        let report = check(&trace_of(&lines));
        assert!(!report.passed());
        assert!(report.violations[0].contains("pages lost"));
    }

    #[test]
    fn conservation_is_checked_from_profile_records() {
        let good = trace_of(&[
            "{\"type\":\"profile\",\"stack\":\"app\",\"nanos\":30}",
            "{\"type\":\"profile_total\",\"elapsed_ns\":30,\"attributed_ns\":30}",
        ]);
        assert!(check(&good).passed());

        let bad = trace_of(&[
            "{\"type\":\"profile\",\"stack\":\"app\",\"nanos\":10}",
            "{\"type\":\"profile_total\",\"elapsed_ns\":30,\"attributed_ns\":30}",
        ]);
        let report = check(&bad);
        assert!(!report.passed());
        assert!(report.violations[0].contains("folded stacks"));
    }

    #[test]
    fn nonmonotonic_seq_is_a_violation() {
        let lines = [
            event(5, "write_fault", "page=0"),
            event(5, "write_fault", "page=1"),
        ];
        let lines: Vec<&str> = lines.iter().map(String::as_str).collect();
        let report = check(&trace_of(&lines));
        assert!(!report.passed());
        assert!(report.violations[0].contains("seq"));
    }
}
