//! Latency histograms between causally linked events: the
//! `viyojit-trace latency` subcommand.
//!
//! Three causal pairs, each matched per page in FIFO order:
//!
//! - `write_fault → flush_issued`: how long a page stays dirty before
//!   the control loop schedules its copy-out (budget pressure).
//! - `flush_issued → flush_complete`: copy-out latency as the engine
//!   sees it (queueing behind other inflight IOs included).
//! - `ssd_submit → ssd_complete`: device-level service time
//!   (`ssd_complete` is stamped at its completion instant, so the
//!   difference is queue wait plus transfer).
//!
//! Unmatched starts (still pending at end of trace) are reported, not
//! silently dropped.

use std::collections::BTreeMap;
use std::fmt;

use crate::trace::Trace;

/// The causal pairs `latency` measures.
const PAIRS: &[(&str, &str, &str)] = &[
    ("dirty residency", "write_fault", "flush_issued"),
    ("copy-out", "flush_issued", "flush_complete"),
    ("ssd service", "ssd_submit", "ssd_complete"),
];

/// A power-of-two-bucketed latency histogram in virtual nanoseconds.
#[derive(Debug, Default)]
pub struct Histogram {
    /// `buckets[i]` counts samples in `[2^i, 2^(i+1))` ns (`buckets[0]`
    /// also holds zero-latency samples).
    pub buckets: Vec<u64>,
    /// Sample count.
    pub count: u64,
    /// Sum of samples, for the mean.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl Histogram {
    fn record(&mut self, nanos: u64) {
        let bucket = if nanos == 0 {
            0
        } else {
            63 - nanos.leading_zeros() as usize
        };
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        if self.count == 0 {
            self.min = nanos;
            self.max = nanos;
        } else {
            self.min = self.min.min(nanos);
            self.max = self.max.max(nanos);
        }
        self.count += 1;
        self.sum += nanos;
    }

    /// The sample at quantile `q` (0.0..=1.0), resolved to its bucket's
    /// lower bound.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 - 1.0) * q).round() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen > rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return writeln!(f, "  (no samples)");
        }
        writeln!(
            f,
            "  samples {}  min {} ns  mean {} ns  p50 {} ns  p99 {} ns  max {} ns",
            self.count,
            self.min,
            self.sum / self.count,
            self.quantile(0.5),
            self.quantile(0.99),
            self.max
        )?;
        let peak = self.buckets.iter().copied().max().unwrap_or(1).max(1);
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let lo = if i == 0 { 0 } else { 1u64 << i };
            let bar = "#".repeat((n * 40).div_ceil(peak) as usize);
            writeln!(f, "  {lo:>12} ns | {bar} {n}")?;
        }
        Ok(())
    }
}

/// One causal pair's measurements.
#[derive(Debug)]
pub struct PairLatency {
    /// Human name of the pair.
    pub name: &'static str,
    /// Start event kind.
    pub from: &'static str,
    /// End event kind.
    pub to: &'static str,
    /// The samples.
    pub histogram: Histogram,
    /// Start events never matched by an end event.
    pub unmatched: u64,
}

/// Measures every causal pair in the trace.
pub fn latencies(trace: &Trace) -> Vec<PairLatency> {
    PAIRS
        .iter()
        .map(|&(name, from, to)| {
            let mut pending: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
            let mut histogram = Histogram::default();
            for e in &trace.events {
                let Some(page) = e.field_u64("page") else {
                    continue;
                };
                if e.kind == from {
                    pending.entry(page).or_default().push(e.at_ns);
                } else if e.kind == to {
                    // FIFO per page: the oldest outstanding start is the
                    // cause of this end event.
                    if let Some(starts) = pending.get_mut(&page) {
                        if !starts.is_empty() {
                            let start = starts.remove(0);
                            histogram.record(e.at_ns.saturating_sub(start));
                        }
                    }
                }
            }
            let unmatched = pending.values().map(|v| v.len() as u64).sum();
            PairLatency {
                name,
                from,
                to,
                histogram,
                unmatched,
            }
        })
        .collect()
}

impl fmt::Display for PairLatency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ({} -> {})", self.name, self.from, self.to)?;
        write!(f, "{}", self.histogram)?;
        if self.unmatched > 0 {
            writeln!(f, "  {} unmatched {} events", self.unmatched, self.from)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    fn event(at: u64, seq: u64, kind: &str, page: u64) -> String {
        format!(
            "{{\"type\":\"event\",\"at_ns\":{at},\"seq\":{seq},\"kind\":\"{kind}\",\"detail\":\"page={page}\"}}"
        )
    }

    #[test]
    fn pairs_fifo_per_page() {
        let lines = [
            event(100, 0, "ssd_submit", 1),
            event(200, 1, "ssd_submit", 1),
            event(350, 2, "ssd_complete", 1), // pairs with at=100 -> 250
            event(400, 3, "ssd_complete", 1), // pairs with at=200 -> 200
            event(500, 4, "ssd_submit", 2),   // unmatched
        ];
        let text = lines.join("\n");
        let trace = Trace::parse(&text).unwrap();
        let all = latencies(&trace);
        let ssd = all.iter().find(|p| p.from == "ssd_submit").unwrap();
        assert_eq!(ssd.histogram.count, 2);
        assert_eq!(ssd.histogram.min, 200);
        assert_eq!(ssd.histogram.max, 250);
        assert_eq!(ssd.unmatched, 1);
    }

    #[test]
    fn quantiles_resolve_to_bucket_bounds() {
        let mut h = Histogram::default();
        for n in [1u64, 2, 4, 1024] {
            h.record(n);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.quantile(0.0), 0); // bucket 0 resolves to its lower bound
        assert_eq!(h.quantile(1.0), 1024);
        assert!(h.quantile(0.5) <= 4);
    }

    #[test]
    fn zero_latency_lands_in_the_first_bucket() {
        let mut h = Histogram::default();
        h.record(0);
        assert_eq!(h.buckets, vec![1]);
        assert_eq!(h.min, 0);
    }
}
