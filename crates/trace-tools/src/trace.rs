//! The in-memory model of one JSONL trace: the run-identity header, the
//! event stream, the per-epoch snapshots, and the profiler attribution
//! records, exactly as the telemetry `JsonlSink` wrote them.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::Path;

use crate::json::{self, Value};

/// The run-identity header (`{"type":"meta",...}`), written before any
/// other record so tools can refuse incomparable traces up front.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Meta {
    /// Workspace crate version that produced the trace.
    pub version: String,
    /// Bench binary name (`fig7`, `fault_storm`, ...).
    pub bench: String,
    /// Backend display name (`Viyojit`, `Viyojit-MMU`, `NV-DRAM`, ...).
    pub backend: String,
    /// fnv1a-64 of the rendered configuration, as 16 lowercase hex digits.
    pub config_hash: String,
    /// Fault-injection seed, when the run injected faults.
    pub fault_seed: Option<u64>,
}

/// One trace event: a virtual instant, a recording sequence number, the
/// event kind, and its `key=value` payload fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Virtual instant the event describes.
    pub at_ns: u64,
    /// Recording order (counts dropped events too).
    pub seq: u64,
    /// Stable lowercase kind (`write_fault`, `flush_issued`, ...).
    pub kind: String,
    /// Parsed payload fields.
    pub fields: BTreeMap<String, String>,
}

impl Event {
    /// A payload field as a string.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields.get(key).map(String::as_str)
    }

    /// A payload field parsed as `u64`.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        self.field(key)?.parse().ok()
    }
}

/// The flight-recorder header of a black-box dump
/// (`{"type":"postmortem",...}`): which thread dumped, why, and the last
/// budget round it saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Postmortem {
    /// Dumping thread's label (`worker0`, `control`, ...).
    pub label: String,
    /// Stable lowercase cause: `panic`, `crash_signal:<seam>`,
    /// `round_timeout`, or `degraded_mode`.
    pub trigger: String,
    /// Last budget round the thread participated in before the dump.
    pub last_round: u64,
}

/// One per-epoch metrics snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Epoch number the snapshot closed.
    pub epoch: u64,
    /// Virtual instant of the snapshot.
    pub at_ns: u64,
    /// Counter samples as `(delta, total)`.
    pub counters: BTreeMap<String, (u64, u64)>,
    /// Gauge values (`None` renders for non-finite values).
    pub gauges: BTreeMap<String, Option<f64>>,
}

/// A fully parsed trace file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// The run-identity header, when the trace carries one.
    pub meta: Option<Meta>,
    /// The flight-recorder header, when the trace is a black-box dump.
    pub postmortem: Option<Postmortem>,
    /// Every event record, in file order.
    pub events: Vec<Event>,
    /// Every snapshot record, in file order.
    pub snapshots: Vec<Snapshot>,
    /// Profiler folded stacks (`stack`, self nanoseconds).
    pub folded: Vec<(String, u64)>,
    /// Profiler aux (off-clock) samples (`class`, count, nanoseconds).
    pub aux: Vec<(String, u64, u64)>,
    /// Profiler conservation totals `(elapsed_ns, attributed_ns)`.
    pub profile_total: Option<(u64, u64)>,
    /// Free-text notes, in file order.
    pub notes: Vec<String>,
}

/// Why a trace failed to load.
#[derive(Debug)]
pub enum TraceError {
    /// The file could not be read.
    Io(std::io::Error),
    /// A line was not valid JSON or lacked a required field.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "cannot read trace: {e}"),
            TraceError::Malformed { line, message } => {
                write!(f, "line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

fn malformed(line: usize, message: impl Into<String>) -> TraceError {
    TraceError::Malformed {
        line,
        message: message.into(),
    }
}

fn need_u64(v: &Value, key: &str, line: usize) -> Result<u64, TraceError> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| malformed(line, format!("missing numeric field '{key}'")))
}

fn need_str(v: &Value, key: &str, line: usize) -> Result<String, TraceError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| malformed(line, format!("missing string field '{key}'")))
}

/// Splits a `key=value key=value` payload into fields.
fn parse_detail(detail: &str) -> BTreeMap<String, String> {
    detail
        .split_whitespace()
        .filter_map(|pair| {
            pair.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
        })
        .collect()
}

impl Trace {
    /// Loads and parses a JSONL trace file.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] if the file cannot be read,
    /// [`TraceError::Malformed`] naming the first bad line otherwise.
    pub fn load(path: impl AsRef<Path>) -> Result<Trace, TraceError> {
        Trace::parse(&fs::read_to_string(path)?)
    }

    /// Parses a JSONL trace from text. Unknown record types are ignored
    /// so newer traces stay readable by older tools.
    ///
    /// # Errors
    ///
    /// [`TraceError::Malformed`] naming the first bad line.
    pub fn parse(text: &str) -> Result<Trace, TraceError> {
        let mut trace = Trace::default();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            if raw.trim().is_empty() {
                continue;
            }
            let v = json::parse(raw).map_err(|e| malformed(line, e.to_string()))?;
            let kind = v
                .get("type")
                .and_then(Value::as_str)
                .ok_or_else(|| malformed(line, "record has no 'type'"))?;
            match kind {
                "meta" => {
                    trace.meta = Some(Meta {
                        version: need_str(&v, "version", line)?,
                        bench: need_str(&v, "bench", line)?,
                        backend: need_str(&v, "backend", line)?,
                        config_hash: need_str(&v, "config_hash", line)?,
                        fault_seed: v.get("fault_seed").and_then(Value::as_u64),
                    });
                }
                "postmortem" => {
                    trace.postmortem = Some(Postmortem {
                        label: need_str(&v, "label", line)?,
                        trigger: need_str(&v, "trigger", line)?,
                        last_round: need_u64(&v, "last_round", line)?,
                    });
                }
                "event" => trace.events.push(Event {
                    at_ns: need_u64(&v, "at_ns", line)?,
                    seq: need_u64(&v, "seq", line)?,
                    kind: need_str(&v, "kind", line)?,
                    fields: parse_detail(&need_str(&v, "detail", line)?),
                }),
                "snapshot" => {
                    let mut counters = BTreeMap::new();
                    if let Some(map) = v.get("counters").and_then(Value::entries) {
                        for (name, sample) in map {
                            counters.insert(
                                name.clone(),
                                (
                                    need_u64(sample, "delta", line)?,
                                    need_u64(sample, "total", line)?,
                                ),
                            );
                        }
                    }
                    let mut gauges = BTreeMap::new();
                    if let Some(map) = v.get("gauges").and_then(Value::entries) {
                        for (name, value) in map {
                            gauges.insert(name.clone(), value.as_f64());
                        }
                    }
                    trace.snapshots.push(Snapshot {
                        epoch: need_u64(&v, "epoch", line)?,
                        at_ns: need_u64(&v, "at_ns", line)?,
                        counters,
                        gauges,
                    });
                }
                "profile" => trace
                    .folded
                    .push((need_str(&v, "stack", line)?, need_u64(&v, "nanos", line)?)),
                "profile_aux" => trace.aux.push((
                    need_str(&v, "class", line)?,
                    need_u64(&v, "count", line)?,
                    need_u64(&v, "nanos", line)?,
                )),
                "profile_total" => {
                    trace.profile_total = Some((
                        need_u64(&v, "elapsed_ns", line)?,
                        need_u64(&v, "attributed_ns", line)?,
                    ));
                }
                "note" => trace.notes.push(need_str(&v, "text", line)?),
                _ => {} // sections, rows, future record types
            }
        }
        Ok(trace)
    }

    /// Events of one kind, in file order.
    pub fn events_of<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Event> + 'a {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Count of events of one kind.
    pub fn count_of(&self, kind: &str) -> u64 {
        self.events_of(kind).count() as u64
    }

    /// Trace-ring overflow total: the final `telemetry.dropped_events`
    /// counter, zero when the ring never overflowed.
    pub fn dropped_events(&self) -> u64 {
        self.snapshots
            .iter()
            .filter_map(|s| s.counters.get("telemetry.dropped_events"))
            .map(|&(_, total)| total)
            .max()
            .unwrap_or(0)
    }

    /// Leaf self-time per cost class: folded self-times grouped by the
    /// last stack segment (plus the root's own self-time under `app`).
    pub fn class_nanos(&self) -> BTreeMap<String, u64> {
        let mut by_class = BTreeMap::new();
        for (stack, nanos) in &self.folded {
            let class = stack.rsplit(';').next().unwrap_or(stack);
            *by_class.entry(class.to_string()).or_insert(0) += nanos;
        }
        by_class
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"type\":\"meta\",\"version\":\"0.1.0\",\"bench\":\"fig7\",\"backend\":\"Viyojit\",\"config_hash\":\"00000000deadbeef\",\"fault_seed\":7}\n",
        "{\"type\":\"event\",\"at_ns\":10,\"seq\":0,\"kind\":\"write_fault\",\"detail\":\"page=3\"}\n",
        "{\"type\":\"event\",\"at_ns\":20,\"seq\":1,\"kind\":\"flush_issued\",\"detail\":\"page=3 reason=forced last_update_epoch=none\"}\n",
        "{\"type\":\"snapshot\",\"epoch\":1,\"at_ns\":30,\"counters\":{\"viyojit.epochs\":{\"delta\":1,\"total\":1}},\"gauges\":{\"viyojit.dirty_pages\":2}}\n",
        "{\"type\":\"profile\",\"stack\":\"app\",\"nanos\":5}\n",
        "{\"type\":\"profile\",\"stack\":\"app;wp_trap\",\"nanos\":25}\n",
        "{\"type\":\"profile_aux\",\"class\":\"ssd_transfer\",\"count\":1,\"nanos\":40}\n",
        "{\"type\":\"profile_total\",\"elapsed_ns\":30,\"attributed_ns\":30}\n",
        "{\"type\":\"note\",\"text\":\"done\"}\n",
    );

    #[test]
    fn parses_every_record_type() {
        let t = Trace::parse(SAMPLE).unwrap();
        let meta = t.meta.as_ref().unwrap();
        assert_eq!(meta.bench, "fig7");
        assert_eq!(meta.config_hash, "00000000deadbeef");
        assert_eq!(meta.fault_seed, Some(7));
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events[1].field("reason"), Some("forced"));
        assert_eq!(t.events[1].field_u64("page"), Some(3));
        assert_eq!(t.snapshots.len(), 1);
        assert_eq!(t.snapshots[0].counters.get("viyojit.epochs"), Some(&(1, 1)));
        assert_eq!(t.folded.len(), 2);
        assert_eq!(t.aux, vec![("ssd_transfer".to_string(), 1, 40)]);
        assert_eq!(t.profile_total, Some((30, 30)));
        assert_eq!(t.notes, vec!["done".to_string()]);
        assert_eq!(t.count_of("write_fault"), 1);
        assert_eq!(t.dropped_events(), 0);
    }

    #[test]
    fn class_nanos_groups_by_leaf_segment() {
        let t = Trace::parse(SAMPLE).unwrap();
        let by_class = t.class_nanos();
        assert_eq!(by_class.get("app"), Some(&5));
        assert_eq!(by_class.get("wp_trap"), Some(&25));
    }

    #[test]
    fn bad_lines_are_reported_with_their_number() {
        let err = Trace::parse("{\"type\":\"meta\"}\n").unwrap_err();
        match err {
            TraceError::Malformed { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error: {other}"),
        }
        let err = Trace::parse("{\"ok\":1}\nnot json\n").unwrap_err();
        match err {
            TraceError::Malformed { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn unknown_record_types_are_ignored() {
        let t = Trace::parse("{\"type\":\"future_thing\",\"x\":1}\n").unwrap();
        assert_eq!(t, Trace::default());
    }

    #[test]
    fn postmortem_headers_parse() {
        let t = Trace::parse(
            "{\"type\":\"postmortem\",\"label\":\"worker1\",\
             \"trigger\":\"crash_signal:budget_round\",\"last_round\":5}\n",
        )
        .unwrap();
        assert_eq!(
            t.postmortem,
            Some(Postmortem {
                label: "worker1".to_string(),
                trigger: "crash_signal:budget_round".to_string(),
                last_round: 5,
            })
        );
    }
}
