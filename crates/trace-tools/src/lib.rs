//! # trace-tools: offline inspection of Viyojit telemetry traces
//!
//! The engine's JSONL traces (written by the telemetry `JsonlSink`) are
//! the durable record of a run: a run-metadata header, the event stream,
//! per-epoch snapshots, and the virtual-time profiler's attribution
//! records. This crate is the reader side — a library plus the
//! `viyojit-trace` binary with five subcommands:
//!
//! - `summary` — one-screen overview: identity, event counts, self time
//!   by cost class, off-clock totals;
//! - `check` — invariant verification: flush accounting
//!   (issued = completed + inflight, lost pages cross-checked against
//!   the emergency flush's own ledger) and span conservation (folded
//!   leaf spans sum exactly to elapsed virtual time);
//! - `latency` — histograms between causally linked events
//!   (`write_fault → flush_issued`, `flush_issued → flush_complete`,
//!   `ssd_submit → ssd_complete`);
//! - `diff` — per-cost-class regression table between two runs,
//!   refusing incomparable traces (different config hash or backend)
//!   unless forced;
//! - `postmortem` — renders a flight-recorder black-box dump
//!   (`postmortem-<thread>.jsonl`) as a human-readable timeline with the
//!   crash seam, the last budget round, and the dirty/budget state at
//!   the moment of the dump.
//!
//! The workspace is deliberately dependency-free, so the JSON reader in
//! [`json`] is hand-rolled to match the hand-rendered writer.

pub mod check;
pub mod diff;
pub mod json;
pub mod latency;
pub mod postmortem;
pub mod summary;
pub mod trace;

pub use check::{check, CheckReport};
pub use diff::{diff, Diff, DiffRow, Incomparable};
pub use latency::{latencies, Histogram, PairLatency};
pub use postmortem::{postmortem_report, PostmortemReport};
pub use summary::summarize;
pub use trace::{Event, Meta, Postmortem, Snapshot, Trace, TraceError};
