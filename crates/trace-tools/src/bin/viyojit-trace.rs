//! `viyojit-trace`: inspect JSONL traces written by the bench harness.
//!
//! ```text
//! viyojit-trace summary    <trace.jsonl>
//! viyojit-trace check      <trace.jsonl>
//! viyojit-trace latency    <trace.jsonl>
//! viyojit-trace postmortem <postmortem-thread.jsonl>
//! viyojit-trace diff       <a.jsonl> <b.jsonl> [--force]
//! ```
//!
//! Exit codes: 0 on success, 1 when `check` finds a violation, 2 on
//! usage errors, unreadable traces, a non-dump given to `postmortem`,
//! or a refused `diff`.

use std::process::ExitCode;

use trace_tools::{check, diff, latencies, postmortem_report, summarize, Trace};

const USAGE: &str = "usage: viyojit-trace <summary|check|latency|postmortem> <trace.jsonl>
       viyojit-trace diff <a.jsonl> <b.jsonl> [--force]";

fn load(path: &str) -> Result<Trace, ExitCode> {
    Trace::load(path).map_err(|e| {
        eprintln!("viyojit-trace: {path}: {e}");
        ExitCode::from(2)
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(code) => code,
    }
}

fn run(args: &[String]) -> Result<ExitCode, ExitCode> {
    let usage = || {
        eprintln!("{USAGE}");
        ExitCode::from(2)
    };
    let (command, rest) = args.split_first().ok_or_else(usage)?;
    match command.as_str() {
        "summary" | "check" | "latency" | "postmortem" => {
            let [path] = rest else { return Err(usage()) };
            let trace = load(path)?;
            match command.as_str() {
                "summary" => print!("{}", summarize(&trace)),
                "check" => {
                    let report = check(&trace);
                    print!("{report}");
                    if !report.passed() {
                        return Ok(ExitCode::from(1));
                    }
                }
                "postmortem" => match postmortem_report(&trace) {
                    Some(report) => print!("{report}"),
                    None => {
                        eprintln!(
                            "viyojit-trace: {path}: not a black-box dump \
                             (no postmortem record)"
                        );
                        return Ok(ExitCode::from(2));
                    }
                },
                _ => {
                    for pair in latencies(&trace) {
                        print!("{pair}");
                    }
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let force = rest.iter().any(|a| a == "--force");
            let paths: Vec<&String> = rest.iter().filter(|a| *a != "--force").collect();
            let [a, b] = paths.as_slice() else {
                return Err(usage());
            };
            let (ta, tb) = (load(a)?, load(b)?);
            match diff(&ta, &tb, force) {
                Ok(d) => {
                    print!("{d}");
                    Ok(ExitCode::SUCCESS)
                }
                Err(reason) => {
                    eprintln!(
                        "viyojit-trace: refusing to diff: {reason} (use --force to override)"
                    );
                    Ok(ExitCode::from(2))
                }
            }
        }
        _ => Err(usage()),
    }
}
