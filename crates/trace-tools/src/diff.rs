//! Per-cost-class regression comparison of two traces: the
//! `viyojit-trace diff` subcommand.
//!
//! The run-metadata header makes comparisons honest: `diff` refuses to
//! compare traces whose configuration hashes or backends differ (the
//! numbers would answer a different question than "did this change make
//! the same run slower?"). `--force` overrides, for deliberate
//! cross-configuration comparisons. Differing fault seeds are allowed —
//! comparing two seeds of the same configuration is the point — but are
//! called out in the output.

use std::collections::BTreeMap;
use std::fmt;

use crate::trace::Trace;

/// Why two traces cannot honestly be compared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Incomparable {
    /// One or both traces have no run-metadata header.
    MissingMeta,
    /// The configuration hashes differ.
    ConfigMismatch {
        /// Hash of the first trace.
        a: String,
        /// Hash of the second trace.
        b: String,
    },
    /// The backends differ.
    BackendMismatch {
        /// Backend of the first trace.
        a: String,
        /// Backend of the second trace.
        b: String,
    },
}

impl fmt::Display for Incomparable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Incomparable::MissingMeta => {
                write!(f, "a trace lacks its run-metadata header")
            }
            Incomparable::ConfigMismatch { a, b } => {
                write!(f, "configuration hashes differ: {a} vs {b}")
            }
            Incomparable::BackendMismatch { a, b } => {
                write!(f, "backends differ: {a} vs {b}")
            }
        }
    }
}

/// One row of the regression table.
#[derive(Debug)]
pub struct DiffRow {
    /// Cost class (leaf stack segment) or aux class name.
    pub class: String,
    /// Nanoseconds in the first trace.
    pub a: u64,
    /// Nanoseconds in the second trace.
    pub b: u64,
}

impl DiffRow {
    /// Signed change from `a` to `b`.
    pub fn delta(&self) -> i64 {
        self.b as i64 - self.a as i64
    }
}

/// The full comparison of two traces.
#[derive(Debug)]
pub struct Diff {
    /// Elapsed virtual time of each run, when profiled.
    pub elapsed: Option<(u64, u64)>,
    /// Per-cost-class self time (on-clock, from the folded stacks).
    pub classes: Vec<DiffRow>,
    /// Off-clock aux classes (device time, emergency timeline).
    pub aux: Vec<DiffRow>,
    /// Notes about allowed-but-relevant differences (seeds, versions).
    pub notes: Vec<String>,
}

/// Compares two traces, refusing incomparable pairs unless `force`.
///
/// # Errors
///
/// An [`Incomparable`] explaining the refusal.
pub fn diff(a: &Trace, b: &Trace, force: bool) -> Result<Diff, Incomparable> {
    let mut notes = Vec::new();
    match (&a.meta, &b.meta) {
        (Some(ma), Some(mb)) => {
            if ma.config_hash != mb.config_hash && !force {
                return Err(Incomparable::ConfigMismatch {
                    a: ma.config_hash.clone(),
                    b: mb.config_hash.clone(),
                });
            }
            if ma.backend != mb.backend && !force {
                return Err(Incomparable::BackendMismatch {
                    a: ma.backend.clone(),
                    b: mb.backend.clone(),
                });
            }
            if ma.fault_seed != mb.fault_seed {
                notes.push(format!(
                    "fault seeds differ: {} vs {}",
                    seed_text(ma.fault_seed),
                    seed_text(mb.fault_seed)
                ));
            }
            if ma.version != mb.version {
                notes.push(format!(
                    "producer versions differ: {} vs {}",
                    ma.version, mb.version
                ));
            }
        }
        _ if !force => return Err(Incomparable::MissingMeta),
        _ => notes.push("comparing without run metadata (--force)".to_string()),
    }

    let elapsed = match (a.profile_total, b.profile_total) {
        (Some((ea, _)), Some((eb, _))) => Some((ea, eb)),
        _ => None,
    };

    Ok(Diff {
        elapsed,
        classes: table(&a.class_nanos(), &b.class_nanos()),
        aux: table(&aux_nanos(a), &aux_nanos(b)),
        notes,
    })
}

fn seed_text(seed: Option<u64>) -> String {
    seed.map_or_else(|| "none".to_string(), |s| s.to_string())
}

fn aux_nanos(t: &Trace) -> BTreeMap<String, u64> {
    let mut map = BTreeMap::new();
    for (class, _, nanos) in &t.aux {
        *map.entry(class.clone()).or_insert(0) += nanos;
    }
    map
}

/// Merges two class→nanos maps into rows sorted by largest absolute
/// change first, so regressions lead the table.
fn table(a: &BTreeMap<String, u64>, b: &BTreeMap<String, u64>) -> Vec<DiffRow> {
    let mut rows: Vec<DiffRow> = a
        .keys()
        .chain(b.keys())
        .map(|class| DiffRow {
            class: class.clone(),
            a: a.get(class).copied().unwrap_or(0),
            b: b.get(class).copied().unwrap_or(0),
        })
        .collect();
    rows.dedup_by(|x, y| x.class == y.class);
    rows.sort_by_key(|r| std::cmp::Reverse(r.delta().unsigned_abs()));
    rows
}

impl fmt::Display for Diff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        if let Some((a, b)) = self.elapsed {
            writeln!(
                f,
                "elapsed: {a} ns -> {b} ns ({})",
                percent_text(a, b as i64 - a as i64)
            )?;
        }
        writeln!(
            f,
            "{:<20} {:>16} {:>16} {:>16} {:>9}",
            "cost class", "a (ns)", "b (ns)", "delta (ns)", "change"
        )?;
        for row in &self.classes {
            write_row(f, row)?;
        }
        if !self.aux.is_empty() {
            writeln!(f, "off-clock (aux):")?;
            for row in &self.aux {
                write_row(f, row)?;
            }
        }
        Ok(())
    }
}

fn write_row(f: &mut fmt::Formatter<'_>, row: &DiffRow) -> fmt::Result {
    writeln!(
        f,
        "{:<20} {:>16} {:>16} {:>+16} {:>9}",
        row.class,
        row.a,
        row.b,
        row.delta(),
        percent_text(row.a, row.delta())
    )
}

fn percent_text(base: u64, delta: i64) -> String {
    if base == 0 {
        if delta == 0 {
            "0.0%".to_string()
        } else {
            "new".to_string()
        }
    } else {
        format!("{:+.1}%", delta as f64 * 100.0 / base as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    fn meta(hash: &str, backend: &str, seed: &str) -> String {
        format!(
            "{{\"type\":\"meta\",\"version\":\"0.1.0\",\"bench\":\"fig7\",\
             \"backend\":\"{backend}\",\"config_hash\":\"{hash}\",\"fault_seed\":{seed}}}"
        )
    }

    fn trace(lines: &[String]) -> Trace {
        Trace::parse(&lines.join("\n")).unwrap()
    }

    #[test]
    fn refuses_mismatched_configs_unless_forced() {
        let a = trace(&[meta("00000000000000aa", "Viyojit", "1")]);
        let b = trace(&[meta("00000000000000bb", "Viyojit", "1")]);
        assert!(matches!(
            diff(&a, &b, false),
            Err(Incomparable::ConfigMismatch { .. })
        ));
        assert!(diff(&a, &b, true).is_ok());
    }

    #[test]
    fn refuses_missing_meta_and_mismatched_backends() {
        let bare = trace(&["{\"type\":\"note\",\"text\":\"x\"}".to_string()]);
        assert!(matches!(
            diff(&bare, &bare, false),
            Err(Incomparable::MissingMeta)
        ));
        let a = trace(&[meta("00000000000000aa", "Viyojit", "1")]);
        let b = trace(&[meta("00000000000000aa", "NV-DRAM", "1")]);
        assert!(matches!(
            diff(&a, &b, false),
            Err(Incomparable::BackendMismatch { .. })
        ));
    }

    #[test]
    fn differing_seeds_compare_with_a_note() {
        let a = trace(&[
            meta("00000000000000aa", "Viyojit", "1"),
            "{\"type\":\"profile\",\"stack\":\"app;wp_trap\",\"nanos\":100}".to_string(),
            "{\"type\":\"profile_total\",\"elapsed_ns\":100,\"attributed_ns\":100}".to_string(),
        ]);
        let b = trace(&[
            meta("00000000000000aa", "Viyojit", "2"),
            "{\"type\":\"profile\",\"stack\":\"app;wp_trap\",\"nanos\":150}".to_string(),
            "{\"type\":\"profile_total\",\"elapsed_ns\":150,\"attributed_ns\":150}".to_string(),
        ]);
        let d = diff(&a, &b, false).unwrap();
        assert!(d.notes[0].contains("fault seeds differ"));
        assert_eq!(d.elapsed, Some((100, 150)));
        let row = d.classes.iter().find(|r| r.class == "wp_trap").unwrap();
        assert_eq!((row.a, row.b, row.delta()), (100, 150, 50));
    }

    #[test]
    fn rows_sort_by_absolute_delta() {
        let a = trace(&[
            meta("00000000000000aa", "Viyojit", "null"),
            "{\"type\":\"profile\",\"stack\":\"app;small\",\"nanos\":10}".to_string(),
            "{\"type\":\"profile\",\"stack\":\"app;big\",\"nanos\":10}".to_string(),
        ]);
        let b = trace(&[
            meta("00000000000000aa", "Viyojit", "null"),
            "{\"type\":\"profile\",\"stack\":\"app;small\",\"nanos\":11}".to_string(),
            "{\"type\":\"profile\",\"stack\":\"app;big\",\"nanos\":500}".to_string(),
        ]);
        let d = diff(&a, &b, false).unwrap();
        assert_eq!(d.classes[0].class, "big");
    }
}
