//! Human-readable rendering of a flight-recorder black box: the
//! `viyojit-trace postmortem` subcommand.
//!
//! A black-box dump (written by the engine's `FlightRecorder` at a
//! supervised crash seam) is a normal JSONL trace plus a `postmortem`
//! header. The report renders the run identity, the trigger, the last
//! budget round the thread saw, the retained event timeline up to the
//! crash seam, and the dirty/budget state captured at the instant of the
//! dump — per shard when the dump carries the control plane's
//! `sharded.shardN.*` gauges.

use std::collections::BTreeMap;
use std::fmt;

use crate::trace::{Snapshot, Trace};

/// A rendered postmortem report over a parsed black-box dump.
#[derive(Debug)]
pub struct PostmortemReport<'a> {
    trace: &'a Trace,
}

/// Builds the postmortem view; `None` when the trace carries no
/// `postmortem` header (it is not a black-box dump).
pub fn postmortem_report(trace: &Trace) -> Option<PostmortemReport<'_>> {
    trace.postmortem.as_ref()?;
    Some(PostmortemReport { trace })
}

/// Per-shard `(dirty, budget)` gauges pulled out of a snapshot, keyed by
/// shard index. Empty for worker dumps (their engines publish the flat
/// `viyojit.*` gauges instead).
fn shard_state(snap: &Snapshot) -> BTreeMap<u64, (Option<f64>, Option<f64>)> {
    let mut shards: BTreeMap<u64, (Option<f64>, Option<f64>)> = BTreeMap::new();
    for (name, value) in &snap.gauges {
        let Some(rest) = name.strip_prefix("sharded.shard") else {
            continue;
        };
        let Some((idx, field)) = rest.split_once('.') else {
            continue;
        };
        let Ok(idx) = idx.parse::<u64>() else {
            continue;
        };
        let entry = shards.entry(idx).or_default();
        match field {
            "dirty_pages" => entry.0 = *value,
            "budget_pages" => entry.1 = *value,
            _ => {}
        }
    }
    shards
}

fn render_gauge(value: &Option<f64>) -> String {
    match value {
        Some(v) => format!("{v}"),
        None => "?".to_string(),
    }
}

impl fmt::Display for PostmortemReport<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.trace;
        let p = t.postmortem.as_ref().expect("checked at construction");
        writeln!(
            f,
            "black box {}: trigger {}, last budget round {}",
            p.label, p.trigger, p.last_round
        )?;
        match &t.meta {
            Some(m) => {
                let seed = m
                    .fault_seed
                    .map_or_else(|| "none".to_string(), |s| s.to_string());
                writeln!(
                    f,
                    "bench {}  backend {}  config {}  fault seed {}  (v{})",
                    m.bench, m.backend, m.config_hash, seed, m.version
                )?;
            }
            None => writeln!(f, "(no run-metadata header)")?,
        }

        if t.events.is_empty() {
            writeln!(f, "timeline: no events retained")?;
        } else {
            writeln!(f, "timeline ({} retained events):", t.events.len())?;
            for e in &t.events {
                let detail: Vec<String> =
                    e.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
                writeln!(
                    f,
                    "  {:>12} ns  {:<24} {}",
                    e.at_ns,
                    e.kind,
                    detail.join(" ")
                )?;
            }
        }
        writeln!(f, "  >>> crash seam: {} fired here <<<", p.trigger)?;

        if let Some(snap) = t.snapshots.last() {
            writeln!(
                f,
                "state at dump (round {}, at {} ns):",
                snap.epoch, snap.at_ns
            )?;
            let shards = shard_state(snap);
            if !shards.is_empty() {
                writeln!(f, "  per-shard dirty/budget:")?;
                for (idx, (dirty, budget)) in &shards {
                    writeln!(
                        f,
                        "    shard{idx:<4} dirty {:>8}  budget {:>8}",
                        render_gauge(dirty),
                        render_gauge(budget)
                    )?;
                }
            }
            for (name, value) in &snap.gauges {
                if name.starts_with("sharded.shard") {
                    continue;
                }
                writeln!(f, "  gauge   {name:<32} {}", render_gauge(value))?;
            }
            for (name, &(delta, total)) in &snap.counters {
                writeln!(f, "  counter {name:<32} total {total} (delta {delta})")?;
            }
        } else {
            writeln!(f, "state at dump: no snapshot captured")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    const DUMP: &str = concat!(
        "{\"type\":\"meta\",\"version\":\"0.1.0\",\"bench\":\"crash_torture\",\"backend\":\"Viyojit\",\"config_hash\":\"00000000000000aa\",\"fault_seed\":7}\n",
        "{\"type\":\"postmortem\",\"label\":\"worker0\",\"trigger\":\"crash_signal:budget_round\",\"last_round\":5}\n",
        "{\"type\":\"event\",\"at_ns\":10,\"seq\":0,\"kind\":\"write_fault\",\"detail\":\"page=3\"}\n",
        "{\"type\":\"event\",\"at_ns\":20,\"seq\":1,\"kind\":\"budget_granted\",\"detail\":\"pages=8\"}\n",
        "{\"type\":\"snapshot\",\"epoch\":5,\"at_ns\":30,\"counters\":{\"viyojit.write_faults\":{\"delta\":1,\"total\":4}},\"gauges\":{\"sharded.shard0.dirty_pages\":12,\"sharded.shard0.budget_pages\":32,\"viyojit.dirty_pages\":12}}\n",
    );

    #[test]
    fn report_renders_seam_round_and_shard_state() {
        let trace = Trace::parse(DUMP).unwrap();
        let out = postmortem_report(&trace).unwrap().to_string();
        assert!(
            out.contains(
                "black box worker0: trigger crash_signal:budget_round, last budget round 5"
            ),
            "{out}"
        );
        assert!(out.contains("bench crash_torture"), "{out}");
        assert!(out.contains("fault seed 7"), "{out}");
        assert!(out.contains("write_fault"), "{out}");
        assert!(
            out.contains(">>> crash seam: crash_signal:budget_round fired here <<<"),
            "{out}"
        );
        assert!(out.contains("shard0"), "{out}");
        assert!(out.contains("dirty       12  budget       32"), "{out}");
        assert!(
            out.contains("counter viyojit.write_faults             total 4 (delta 1)"),
            "{out}"
        );
        assert!(out.contains("gauge   viyojit.dirty_pages"), "{out}");
    }

    #[test]
    fn non_dumps_are_refused() {
        let trace = Trace::parse(
            "{\"type\":\"event\",\"at_ns\":1,\"seq\":0,\"kind\":\"write_fault\",\"detail\":\"page=0\"}\n",
        )
        .unwrap();
        assert!(postmortem_report(&trace).is_none());
    }

    #[test]
    fn empty_timeline_and_missing_snapshot_render_placeholders() {
        let trace = Trace::parse(
            "{\"type\":\"postmortem\",\"label\":\"control\",\"trigger\":\"degraded_mode\",\"last_round\":0}\n",
        )
        .unwrap();
        let out = postmortem_report(&trace).unwrap().to_string();
        assert!(out.contains("timeline: no events retained"), "{out}");
        assert!(out.contains("state at dump: no snapshot captured"), "{out}");
    }
}
