//! One-screen overview of a trace: the `viyojit-trace summary`
//! subcommand.

use std::collections::BTreeMap;
use std::fmt;

use crate::trace::Trace;

/// A rendered summary of one trace.
#[derive(Debug)]
pub struct Summary<'a> {
    trace: &'a Trace,
}

/// Builds the summary view over a parsed trace.
pub fn summarize(trace: &Trace) -> Summary<'_> {
    Summary { trace }
}

impl fmt::Display for Summary<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.trace;
        match &t.meta {
            Some(m) => {
                let seed = m
                    .fault_seed
                    .map_or_else(|| "none".to_string(), |s| s.to_string());
                writeln!(
                    f,
                    "bench {}  backend {}  config {}  fault seed {}  (v{})",
                    m.bench, m.backend, m.config_hash, seed, m.version
                )?;
            }
            None => writeln!(f, "(no run-metadata header)")?,
        }

        if let Some((elapsed, attributed)) = t.profile_total {
            let status = if elapsed == attributed {
                "conserved"
            } else {
                "NOT CONSERVED"
            };
            writeln!(
                f,
                "virtual time: {elapsed} ns elapsed, {attributed} ns attributed ({status})"
            )?;
        }
        let dropped = t.dropped_events();
        writeln!(
            f,
            "{} events, {} snapshots, {} dropped",
            t.events.len(),
            t.snapshots.len(),
            dropped
        )?;

        if !t.events.is_empty() {
            let mut by_kind: BTreeMap<&str, u64> = BTreeMap::new();
            for e in &t.events {
                *by_kind.entry(e.kind.as_str()).or_insert(0) += 1;
            }
            writeln!(f, "events by kind:")?;
            for (kind, n) in by_kind {
                writeln!(f, "  {kind:<24} {n}")?;
            }
        }

        if !t.folded.is_empty() {
            let mut by_class: Vec<(String, u64)> = t.class_nanos().into_iter().collect();
            by_class.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
            let total: u64 = by_class.iter().map(|&(_, n)| n).sum::<u64>().max(1);
            writeln!(f, "self time by cost class:")?;
            for (class, nanos) in by_class {
                writeln!(
                    f,
                    "  {class:<24} {nanos:>14} ns  {:>5.1}%",
                    nanos as f64 * 100.0 / total as f64
                )?;
            }
        }

        if !t.aux.is_empty() {
            writeln!(f, "off-clock (aux):")?;
            for (class, count, nanos) in &t.aux {
                writeln!(f, "  {class:<24} {nanos:>14} ns  ({count} samples)")?;
            }
        }

        for note in &t.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    #[test]
    fn summary_renders_the_load_bearing_lines() {
        let text = concat!(
            "{\"type\":\"meta\",\"version\":\"0.1.0\",\"bench\":\"fig7\",\"backend\":\"Viyojit\",\"config_hash\":\"00000000000000aa\",\"fault_seed\":null}\n",
            "{\"type\":\"event\",\"at_ns\":1,\"seq\":0,\"kind\":\"write_fault\",\"detail\":\"page=0\"}\n",
            "{\"type\":\"profile\",\"stack\":\"app;wp_trap\",\"nanos\":75}\n",
            "{\"type\":\"profile\",\"stack\":\"app\",\"nanos\":25}\n",
            "{\"type\":\"profile_total\",\"elapsed_ns\":100,\"attributed_ns\":100}\n",
        );
        let trace = Trace::parse(text).unwrap();
        let out = summarize(&trace).to_string();
        assert!(out.contains("bench fig7"), "{out}");
        assert!(out.contains("fault seed none"), "{out}");
        assert!(out.contains("conserved"), "{out}");
        assert!(out.contains("write_fault"), "{out}");
        assert!(out.contains("wp_trap"), "{out}");
        assert!(out.contains("75.0%"), "{out}");
    }
}
