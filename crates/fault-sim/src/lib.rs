//! Deterministic, seeded fault injection for the Viyojit simulation stack.
//!
//! Viyojit's durability argument (§5.1 of the paper) assumes the emergency
//! flush races a draining battery against an SSD that may misbehave at the
//! worst moment. This crate supplies the misbehaviour: a [`FaultPlan`] is a
//! reproducible schedule, derived from a single `u64` seed via splitmix64,
//! of transient SSD write errors, latency spikes, and whole-device stalls,
//! plus battery-side state-of-charge misreports, abrupt capacity drops, and
//! hold-up shortfalls.
//!
//! Design rules, mirrored from the telemetry crate:
//!
//! - **Observers, not actors.** The plan never touches the virtual clock; it
//!   only answers hooks the simulators call at decision points.
//! - **Inactive is free.** [`FaultPlan::none`] draws no RNG state and
//!   answers every hook with the identity, so components built without a
//!   plan behave bit-for-bit as before the crate existed.
//! - **Every injection is traced.** When a telemetry handle is attached,
//!   each fired injection emits a `fault_injected` trace event.
//!
//! # Example
//!
//! ```
//! use fault_sim::{FaultConfig, FaultPlan};
//!
//! let plan = FaultPlan::seeded(0xC0FFEE, FaultConfig::storm(0.1));
//! let replay = FaultPlan::seeded(0xC0FFEE, FaultConfig::storm(0.1));
//! for page in 0..100 {
//!     assert_eq!(plan.ssd_write_fault(page), replay.ssd_write_fault(page));
//! }
//! ```

mod crash;
mod plan;
mod rng;

pub use crash::{CrashSchedule, CrashSignal, Crashpoint};
pub use plan::{FaultConfig, FaultPlan, FaultStats, SsdWriteFault};
pub use rng::FaultRng;
