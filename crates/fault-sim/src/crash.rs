//! Named, seeded crashpoints: power-cut injection at state-mutation seams.
//!
//! A [`CrashSchedule`] is a shared handle (same shape as [`FaultPlan`]
//! (crate::FaultPlan)): clones point at one schedule, so the schedule a
//! harness arms is the one every engine layer consults. The engine control
//! loop is instrumented with [`crashpoint!`](crate::crashpoint) checks at
//! every seam where a real power cut could interrupt a multi-step state
//! mutation — mid-epoch-walk, mid-discovery-scan, between budget shrink and
//! grow, mid-rebalance, mid-emergency-retry, mid-flush with in-flight IO,
//! and inside a parallel budget round between the stats upload and the
//! grant download.
//!
//! Firing is modelled as a panic carrying a [`CrashSignal`] payload: the
//! unwind abandons the mutation exactly where the check sits, leaving the
//! engine in the same intermediate state an instantaneous power cut would.
//! The harness catches the signal with `catch_unwind`, runs the *real*
//! stepped emergency executor from that state, recovers, and oracle-checks
//! that durable contents diverge from a shadow reference by at most the
//! budget-bounded loss. A schedule fires **at most once** — the emergency
//! executor and recovery path walk straight back through the same
//! instrumented seams, and must not crash again mid-crash.
//!
//! Design rules, mirrored from [`FaultPlan`](crate::FaultPlan):
//!
//! - **Inactive is free.** [`CrashSchedule::none`] holds no state; a check
//!   is a null test, charges zero virtual time, and draws no RNG.
//! - **Replayable.** [`CrashSchedule::seeded`] derives the firing point and
//!   ordinal from a single `u64` (the same `FAULT_SEED` contract the fault
//!   plan uses); [`CrashSchedule::armed`] pins them exactly.
//! - **Every firing is traced.** With telemetry attached, a firing emits a
//!   `crash_injected` event before the unwind starts.

use std::sync::{Arc, Mutex};

use telemetry::{Telemetry, TraceEvent};

use crate::rng::FaultRng;

/// The named state-mutation seams the engine is instrumented at.
///
/// Each variant marks a point where an instantaneous power cut leaves a
/// multi-step mutation half-applied; the bounded-loss contract must hold
/// from every one of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Crashpoint {
    /// Mid-epoch-walk: recency refreshed for some pages but not others,
    /// before the threshold / proactive-copy decisions run.
    EpochWalk,
    /// Mid-discovery-scan (hardware mode): some silently-dirtied pages
    /// absorbed into the known-dirty set, the rest still undiscovered.
    DiscoveryScan,
    /// Between the shrink pass and the grow pass of a budget reassignment:
    /// donors already shrunk, receivers not yet grown.
    BudgetShrinkGrow,
    /// Mid-rebalance: the tree has planned new targets but no engine has
    /// been touched yet.
    Rebalance,
    /// Inside the emergency executor's retry loop, after a failed flush
    /// attempt with the backoff not yet charged.
    EmergencyRetry,
    /// Immediately after a flush IO joins the in-flight set, before any
    /// completion can retire it.
    FlushInFlight,
    /// Inside a parallel budget round, between the `ShardStats` upload and
    /// the `BudgetGrant` download: the arbiter owns this worker's stats but
    /// the worker never learns its grant.
    BudgetRound,
}

impl Crashpoint {
    /// Every crashpoint, in catalog order (the order `seeded` draws from).
    pub const ALL: [Crashpoint; 7] = [
        Crashpoint::EpochWalk,
        Crashpoint::DiscoveryScan,
        Crashpoint::BudgetShrinkGrow,
        Crashpoint::Rebalance,
        Crashpoint::EmergencyRetry,
        Crashpoint::FlushInFlight,
        Crashpoint::BudgetRound,
    ];

    /// Stable machine-readable name (used in trace events, bench tables,
    /// and CLI arguments).
    pub fn name(self) -> &'static str {
        match self {
            Crashpoint::EpochWalk => "epoch_walk",
            Crashpoint::DiscoveryScan => "discovery_scan",
            Crashpoint::BudgetShrinkGrow => "budget_shrink_grow",
            Crashpoint::Rebalance => "rebalance",
            Crashpoint::EmergencyRetry => "emergency_retry",
            Crashpoint::FlushInFlight => "flush_in_flight",
            Crashpoint::BudgetRound => "budget_round",
        }
    }

    /// Parses a stable name back into a crashpoint.
    pub fn from_name(name: &str) -> Option<Crashpoint> {
        Crashpoint::ALL.into_iter().find(|p| p.name() == name)
    }

    fn index(self) -> usize {
        Crashpoint::ALL
            .iter()
            .position(|&p| p == self)
            .expect("every crashpoint is in ALL")
    }
}

/// The panic payload a firing crashpoint unwinds with.
///
/// Harnesses catch the unwind and downcast to this to distinguish an
/// injected crash from a genuine bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSignal {
    /// The seam that fired.
    pub point: Crashpoint,
    /// Which hit of that seam fired (1 = the first time it was reached).
    pub hit: u64,
}

#[derive(Debug)]
struct ScheduleState {
    /// Fire at the `hit`-th check of `point` (1-based).
    armed: (Crashpoint, u64),
    /// Checks seen so far, per catalog slot.
    hits: [u64; 7],
    /// Latched after the one allowed firing.
    fired: Option<CrashSignal>,
    telemetry: Telemetry,
}

/// Shared, cheaply clonable crash-schedule handle.
///
/// Deterministic: two schedules built with [`CrashSchedule::seeded`] from
/// the same seed arm the same `(point, hit)` pair, so runs that check the
/// seams in the same order crash at the same instruction.
#[derive(Debug, Clone, Default)]
pub struct CrashSchedule {
    seed: Option<u64>,
    state: Option<Arc<Mutex<ScheduleState>>>,
}

impl CrashSchedule {
    /// The inactive schedule: no state, never fires, checks are free.
    pub fn none() -> Self {
        CrashSchedule::default()
    }

    /// A schedule that fires at exactly the `hit`-th check of `point`
    /// (1-based). Panics if `hit` is zero.
    pub fn armed(point: Crashpoint, hit: u64) -> Self {
        assert!(hit >= 1, "crashpoint ordinals are 1-based");
        CrashSchedule {
            seed: None,
            state: Some(Arc::new(Mutex::new(ScheduleState {
                armed: (point, hit),
                hits: [0; 7],
                fired: None,
                telemetry: Telemetry::disabled(),
            }))),
        }
    }

    /// A schedule whose firing point and ordinal are drawn from `seed`:
    /// a uniform crashpoint and a hit ordinal in `1..=4`. The same seed
    /// always arms the same pair.
    pub fn seeded(seed: u64) -> Self {
        let mut rng = FaultRng::new(seed);
        let point = Crashpoint::ALL[(rng.next_u64() % 7) as usize];
        let hit = 1 + rng.next_u64() % 4;
        CrashSchedule {
            seed: Some(seed),
            ..CrashSchedule::armed(point, hit)
        }
    }

    /// Whether this schedule can fire at all.
    pub fn is_active(&self) -> bool {
        self.state.is_some()
    }

    /// The seed this schedule was drawn from, if any.
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// The `(point, hit)` pair this schedule fires at, if active.
    pub fn armed_at(&self) -> Option<(Crashpoint, u64)> {
        self.state
            .as_ref()
            .map(|s| s.lock().expect("crash schedule poisoned").armed)
    }

    /// How many times `point` has been checked so far.
    pub fn hits(&self, point: Crashpoint) -> u64 {
        match &self.state {
            Some(state) => state.lock().expect("crash schedule poisoned").hits[point.index()],
            None => 0,
        }
    }

    /// The signal this schedule fired with, if it has fired.
    pub fn fired(&self) -> Option<CrashSignal> {
        self.state
            .as_ref()
            .and_then(|s| s.lock().expect("crash schedule poisoned").fired)
    }

    /// Routes `crash_injected` trace events into `telemetry`. All clones
    /// share the destination.
    pub fn attach_telemetry(&self, telemetry: Telemetry) {
        if let Some(state) = &self.state {
            state.lock().expect("crash schedule poisoned").telemetry = telemetry;
        }
    }

    /// One seam check. Counts the hit and, if this is the armed `(point,
    /// hit)` and the schedule has not fired yet, unwinds with a
    /// [`CrashSignal`] panic. Inactive schedules return immediately.
    #[inline]
    pub fn check(&self, point: Crashpoint) {
        let Some(state) = &self.state else {
            return;
        };
        let signal = {
            let mut s = state.lock().expect("crash schedule poisoned");
            if s.fired.is_some() {
                return;
            }
            s.hits[point.index()] += 1;
            let (armed_point, armed_hit) = s.armed;
            if point != armed_point || s.hits[point.index()] != armed_hit {
                return;
            }
            let signal = CrashSignal {
                point,
                hit: armed_hit,
            };
            s.fired = Some(signal);
            s.telemetry.emit(|| TraceEvent::CrashInjected {
                point: point.name(),
                hit: armed_hit,
            });
            signal
            // The guard drops here: the unwind must not poison the mutex,
            // because recovery re-enters the instrumented seams.
        };
        std::panic::panic_any(signal);
    }
}

/// `crashpoint!(schedule, Seam)`: check the named [`Crashpoint`] against a
/// [`CrashSchedule`]. Expands to a null test when the schedule is inactive
/// and charges zero virtual time either way.
#[macro_export]
macro_rules! crashpoint {
    ($schedule:expr, $point:ident) => {
        $schedule.check($crate::Crashpoint::$point)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn inactive_schedule_never_fires() {
        let s = CrashSchedule::none();
        assert!(!s.is_active());
        for point in Crashpoint::ALL {
            for _ in 0..100 {
                s.check(point);
            }
        }
        assert_eq!(s.fired(), None);
        assert_eq!(s.hits(Crashpoint::EpochWalk), 0, "inactive counts nothing");
    }

    #[test]
    fn armed_schedule_fires_at_exact_ordinal() {
        let s = CrashSchedule::armed(Crashpoint::FlushInFlight, 3);
        s.check(Crashpoint::FlushInFlight);
        s.check(Crashpoint::EpochWalk);
        s.check(Crashpoint::FlushInFlight);
        assert_eq!(s.fired(), None, "not yet at hit 3");
        let err = catch_unwind(AssertUnwindSafe(|| s.check(Crashpoint::FlushInFlight)))
            .expect_err("hit 3 must fire");
        let signal = err
            .downcast_ref::<CrashSignal>()
            .expect("payload is a CrashSignal");
        assert_eq!(signal.point, Crashpoint::FlushInFlight);
        assert_eq!(signal.hit, 3);
        assert_eq!(s.fired(), Some(*signal));
    }

    #[test]
    fn fires_at_most_once() {
        let s = CrashSchedule::armed(Crashpoint::EpochWalk, 1);
        catch_unwind(AssertUnwindSafe(|| s.check(Crashpoint::EpochWalk)))
            .expect_err("first hit fires");
        // Recovery walks back through the same seam: must not fire again,
        // and the mutex must not be poisoned by the unwind.
        for _ in 0..10 {
            s.check(Crashpoint::EpochWalk);
        }
        assert_eq!(s.fired().map(|f| f.hit), Some(1));
    }

    #[test]
    fn same_seed_arms_same_point() {
        for seed in 0..64 {
            let a = CrashSchedule::seeded(seed);
            let b = CrashSchedule::seeded(seed);
            assert_eq!(a.armed_at(), b.armed_at());
            assert_eq!(a.seed(), Some(seed));
            let (_, hit) = a.armed_at().expect("seeded schedules are armed");
            assert!((1..=4).contains(&hit));
        }
    }

    #[test]
    fn seeds_cover_every_crashpoint() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64 {
            seen.insert(CrashSchedule::seeded(seed).armed_at().unwrap().0);
        }
        assert_eq!(seen.len(), Crashpoint::ALL.len());
    }

    #[test]
    fn clones_share_one_schedule() {
        let a = CrashSchedule::armed(Crashpoint::Rebalance, 2);
        let b = a.clone();
        a.check(Crashpoint::Rebalance);
        catch_unwind(AssertUnwindSafe(|| b.check(Crashpoint::Rebalance)))
            .expect_err("the clone sees the first hit and fires at 2");
        assert_eq!(a.fired().map(|f| f.point), Some(Crashpoint::Rebalance));
    }

    #[test]
    fn firing_emits_trace_event() {
        let clock = sim_clock::Clock::new();
        let telemetry = Telemetry::recording(clock);
        let s = CrashSchedule::armed(Crashpoint::EmergencyRetry, 1);
        s.attach_telemetry(telemetry.clone());
        catch_unwind(AssertUnwindSafe(|| s.check(Crashpoint::EmergencyRetry))).expect_err("fires");
        let events = telemetry.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].event.kind(), "crash_injected");
    }

    #[test]
    fn names_round_trip() {
        for point in Crashpoint::ALL {
            assert_eq!(Crashpoint::from_name(point.name()), Some(point));
        }
        assert_eq!(Crashpoint::from_name("nonsense"), None);
    }

    #[test]
    fn crashpoint_macro_expands_to_check() {
        let s = CrashSchedule::armed(Crashpoint::BudgetRound, 1);
        let err = catch_unwind(AssertUnwindSafe(|| crate::crashpoint!(s, BudgetRound)))
            .expect_err("macro checks the named point");
        assert!(err.downcast_ref::<CrashSignal>().is_some());
    }
}
