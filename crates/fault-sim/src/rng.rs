//! Minimal seeded PRNG for deterministic fault injection.
//!
//! We deliberately avoid the `rand` crate here: fault schedules must be
//! reproducible from a bare `u64` across platforms and toolchains, and the
//! simulator crates keep their dependency closure to path-only workspace
//! members. splitmix64 is small, well-studied, and passes BigCrush when used
//! as a one-stream generator, which is all a fault schedule needs.

/// splitmix64 generator (Steele, Lea & Flood; public domain reference
/// implementation translated to Rust).
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    pub fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw. `p <= 0` short-circuits without consuming a draw so
    /// that a plan with a given fault disabled produces the same schedule for
    /// the remaining faults regardless of how often the disabled hook runs.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First three outputs for seed 1234567 from the reference C code.
        let mut rng = FaultRng::new(1234567);
        let a = rng.next_u64();
        let b = rng.next_u64();
        let mut rng2 = FaultRng::new(1234567);
        assert_eq!(a, rng2.next_u64());
        assert_eq!(b, rng2.next_u64());
        assert_ne!(a, b);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = FaultRng::new(42);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "out of range: {x}");
        }
    }

    #[test]
    fn zero_probability_consumes_no_state() {
        let mut a = FaultRng::new(7);
        let mut b = FaultRng::new(7);
        assert!(!a.chance(0.0));
        assert!(!a.chance(-1.0));
        // `a` drew nothing, so both streams stay in lockstep.
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
