//! Seeded fault schedules for the SSD and battery simulators.
//!
//! A [`FaultPlan`] is a shared handle (same shape as [`telemetry::Telemetry`]):
//! clones point at one seeded RNG stream, so a plan attached to an SSD, a
//! battery, and an engine perturbs them from a single reproducible schedule.
//! The inactive plan ([`FaultPlan::none`], the default) consumes no RNG state
//! and answers every hook with the identity, so components that carry a plan
//! but were never given one behave bit-for-bit like unfaulted components.

use std::sync::{Arc, Mutex};

use sim_clock::SimDuration;
use telemetry::{FaultKind, Telemetry, TraceEvent};

use crate::rng::FaultRng;

/// Injection rates and magnitudes for one fault schedule.
///
/// All `*_rate` fields are per-opportunity Bernoulli probabilities in
/// `[0, 1]`: SSD rates are drawn once per submitted write, battery rates once
/// per report/query. Magnitudes describe the perturbation applied when the
/// draw fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability a submitted SSD write fails transiently.
    pub ssd_write_error_rate: f64,
    /// Probability a submitted SSD write is serviced at spiked latency.
    pub ssd_latency_spike_rate: f64,
    /// Multiplier applied to nominal write latency during a spike.
    pub ssd_latency_spike_factor: u32,
    /// Probability a submitted SSD write triggers a whole-device stall.
    pub ssd_stall_rate: f64,
    /// Duration every channel is pushed back by during a stall.
    pub ssd_stall: SimDuration,
    /// Probability a state-of-charge query is misreported.
    pub soc_misreport_rate: f64,
    /// Maximum relative misreport amplitude (reported = real × (1 ± a·u)).
    pub soc_misreport_amplitude: f64,
    /// Probability a capacity-drop check fires (checked once per query).
    pub capacity_drop_rate: f64,
    /// Fraction of health retained after an abrupt capacity drop.
    pub capacity_drop_factor: f64,
    /// Probability the battery under-delivers hold-up energy.
    pub holdup_shortfall_rate: f64,
    /// Fraction of deliverable energy lost during a shortfall.
    pub holdup_shortfall_fraction: f64,
}

impl FaultConfig {
    /// No faults: every rate zero. [`FaultPlan::seeded`] with this config is
    /// active (it owns an RNG) but never fires.
    pub fn none() -> Self {
        FaultConfig {
            ssd_write_error_rate: 0.0,
            ssd_latency_spike_rate: 0.0,
            ssd_latency_spike_factor: 8,
            ssd_stall_rate: 0.0,
            ssd_stall: SimDuration::from_millis(2),
            soc_misreport_rate: 0.0,
            soc_misreport_amplitude: 0.2,
            capacity_drop_rate: 0.0,
            capacity_drop_factor: 0.5,
            holdup_shortfall_rate: 0.0,
            holdup_shortfall_fraction: 0.25,
        }
    }

    /// A uniform storm: every fault class fires at `rate` with the default
    /// magnitudes from [`FaultConfig::none`], except capacity drops, which
    /// stay off (they are monotone and would dominate long sweeps; enable
    /// them explicitly when testing the governor's emergency shrink).
    pub fn storm(rate: f64) -> Self {
        FaultConfig {
            ssd_write_error_rate: rate,
            ssd_latency_spike_rate: rate,
            ssd_stall_rate: rate,
            soc_misreport_rate: rate,
            holdup_shortfall_rate: rate,
            ..FaultConfig::none()
        }
    }

    /// Panics unless every rate is a probability and every magnitude is in
    /// its meaningful range.
    pub fn validate(&self) {
        let rates = [
            ("ssd_write_error_rate", self.ssd_write_error_rate),
            ("ssd_latency_spike_rate", self.ssd_latency_spike_rate),
            ("ssd_stall_rate", self.ssd_stall_rate),
            ("soc_misreport_rate", self.soc_misreport_rate),
            ("capacity_drop_rate", self.capacity_drop_rate),
            ("holdup_shortfall_rate", self.holdup_shortfall_rate),
        ];
        for (name, rate) in rates {
            assert!(
                (0.0..=1.0).contains(&rate),
                "{name} must be in [0, 1], got {rate}"
            );
        }
        assert!(
            self.ssd_latency_spike_factor >= 1,
            "spike factor must be >= 1"
        );
        assert!(
            (0.0..=1.0).contains(&self.soc_misreport_amplitude),
            "soc_misreport_amplitude must be in [0, 1]"
        );
        assert!(
            (0.0..1.0).contains(&self.capacity_drop_factor) || self.capacity_drop_factor == 1.0,
            "capacity_drop_factor must be in (0, 1]",
        );
        assert!(
            self.capacity_drop_factor > 0.0,
            "capacity_drop_factor must be > 0"
        );
        assert!(
            (0.0..=1.0).contains(&self.holdup_shortfall_fraction),
            "holdup_shortfall_fraction must be in [0, 1]"
        );
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// Counts of injections actually fired, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient SSD write errors injected.
    pub ssd_write_errors: u64,
    /// SSD latency spikes injected.
    pub ssd_latency_spikes: u64,
    /// Whole-device SSD stalls injected.
    pub ssd_stalls: u64,
    /// State-of-charge misreports injected.
    pub soc_misreports: u64,
    /// Abrupt capacity drops injected.
    pub capacity_drops: u64,
    /// Hold-up shortfalls injected.
    pub holdup_shortfalls: u64,
}

impl FaultStats {
    /// Total injections across every kind.
    pub fn total(&self) -> u64 {
        self.ssd_write_errors
            + self.ssd_latency_spikes
            + self.ssd_stalls
            + self.soc_misreports
            + self.capacity_drops
            + self.holdup_shortfalls
    }
}

#[derive(Debug)]
struct PlanState {
    rng: FaultRng,
    config: FaultConfig,
    telemetry: Telemetry,
    stats: FaultStats,
}

impl PlanState {
    fn record(&mut self, kind: FaultKind, page: u64, magnitude_permille: u64) {
        match kind {
            FaultKind::SsdWriteError => self.stats.ssd_write_errors += 1,
            FaultKind::SsdLatencySpike => self.stats.ssd_latency_spikes += 1,
            FaultKind::SsdStall => self.stats.ssd_stalls += 1,
            FaultKind::SocMisreport => self.stats.soc_misreports += 1,
            FaultKind::CapacityDrop => self.stats.capacity_drops += 1,
            FaultKind::HoldupShortfall => self.stats.holdup_shortfalls += 1,
        }
        self.telemetry.emit(|| TraceEvent::FaultInjected {
            kind,
            page,
            magnitude_permille,
        });
    }
}

/// The outcome of consulting the plan for one SSD write submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsdWriteFault {
    /// The write fails transiently after occupying its channel.
    pub error: bool,
    /// Latency multiplier for this write (1 = nominal).
    pub latency_factor: u32,
    /// Whole-device stall charged to every channel before servicing.
    pub stall: SimDuration,
}

impl SsdWriteFault {
    /// The unfaulted submission: no error, nominal latency, no stall.
    pub const NONE: SsdWriteFault = SsdWriteFault {
        error: false,
        latency_factor: 1,
        stall: SimDuration::ZERO,
    };
}

/// Shared, cheaply clonable fault-schedule handle.
///
/// Deterministic: two plans built with [`FaultPlan::seeded`] from the same
/// seed and config answer every hook identically when the hooks are called
/// in the same order.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: Option<u64>,
    state: Option<Arc<Mutex<PlanState>>>,
}

impl FaultPlan {
    /// The inactive plan: no RNG, no injections, every hook is the identity.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// An active plan replaying the schedule determined by `seed` under
    /// `config`. Panics if `config` fails [`FaultConfig::validate`].
    pub fn seeded(seed: u64, config: FaultConfig) -> Self {
        config.validate();
        FaultPlan {
            seed: Some(seed),
            state: Some(Arc::new(Mutex::new(PlanState {
                rng: FaultRng::new(seed),
                config,
                telemetry: Telemetry::disabled(),
                stats: FaultStats::default(),
            }))),
        }
    }

    /// Whether this plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.state.is_some()
    }

    /// The seed this plan replays, if active.
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// The active plan's configuration.
    pub fn config(&self) -> Option<FaultConfig> {
        self.state
            .as_ref()
            .map(|s| s.lock().expect("fault plan poisoned").config)
    }

    /// Routes injection trace events into `telemetry`. All clones share the
    /// destination.
    pub fn attach_telemetry(&self, telemetry: Telemetry) {
        if let Some(state) = &self.state {
            state.lock().expect("fault plan poisoned").telemetry = telemetry;
        }
    }

    /// Injections fired so far, by kind.
    pub fn stats(&self) -> FaultStats {
        match &self.state {
            Some(state) => state.lock().expect("fault plan poisoned").stats,
            None => FaultStats::default(),
        }
    }

    /// Consulted by the SSD once per submitted write. Draws (in order)
    /// stall, latency spike, and write error for this submission.
    pub fn ssd_write_fault(&self, page: u64) -> SsdWriteFault {
        let Some(state) = &self.state else {
            return SsdWriteFault::NONE;
        };
        let mut s = state.lock().expect("fault plan poisoned");
        let config = s.config;
        let mut fault = SsdWriteFault::NONE;
        if s.rng.chance(config.ssd_stall_rate) {
            fault.stall = config.ssd_stall;
            let permille = fault.stall.as_nanos() / 1_000_000;
            s.record(FaultKind::SsdStall, u64::MAX, permille);
        }
        if s.rng.chance(config.ssd_latency_spike_rate) {
            fault.latency_factor = config.ssd_latency_spike_factor.max(1);
            s.record(
                FaultKind::SsdLatencySpike,
                page,
                fault.latency_factor as u64 * 1000,
            );
        }
        if s.rng.chance(config.ssd_write_error_rate) {
            fault.error = true;
            s.record(FaultKind::SsdWriteError, page, 0);
        }
        fault
    }

    /// Consulted by the battery once per state-of-charge report. Returns the
    /// multiplicative factor applied to the true reading (1.0 = truthful).
    pub fn soc_report_factor(&self) -> f64 {
        let Some(state) = &self.state else {
            return 1.0;
        };
        let mut s = state.lock().expect("fault plan poisoned");
        let config = s.config;
        if !s.rng.chance(config.soc_misreport_rate) {
            return 1.0;
        }
        // Symmetric around truthful: u in [-1, 1) scaled by the amplitude.
        let u = s.rng.next_f64() * 2.0 - 1.0;
        let factor = (1.0 + config.soc_misreport_amplitude * u).max(0.0);
        s.record(FaultKind::SocMisreport, u64::MAX, (factor * 1000.0) as u64);
        factor
    }

    /// Consulted once per battery health check. When it fires, returns the
    /// fraction of health retained (the caller multiplies health by it).
    pub fn capacity_drop(&self) -> Option<f64> {
        let state = self.state.as_ref()?;
        let mut s = state.lock().expect("fault plan poisoned");
        let config = s.config;
        if !s.rng.chance(config.capacity_drop_rate) {
            return None;
        }
        let factor = config.capacity_drop_factor;
        s.record(FaultKind::CapacityDrop, u64::MAX, (factor * 1000.0) as u64);
        Some(factor)
    }

    /// Consulted once per hold-up discharge. Returns the fraction of
    /// deliverable energy *lost* (0.0 = full delivery).
    pub fn holdup_shortfall(&self) -> f64 {
        let Some(state) = &self.state else {
            return 0.0;
        };
        let mut s = state.lock().expect("fault plan poisoned");
        let config = s.config;
        if !s.rng.chance(config.holdup_shortfall_rate) {
            return 0.0;
        }
        let fraction = config.holdup_shortfall_fraction;
        s.record(
            FaultKind::HoldupShortfall,
            u64::MAX,
            (fraction * 1000.0) as u64,
        );
        fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_plan_is_identity() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        assert_eq!(plan.seed(), None);
        assert_eq!(plan.ssd_write_fault(3), SsdWriteFault::NONE);
        assert_eq!(plan.soc_report_factor(), 1.0);
        assert_eq!(plan.capacity_drop(), None);
        assert_eq!(plan.holdup_shortfall(), 0.0);
        assert_eq!(plan.stats(), FaultStats::default());
    }

    #[test]
    fn zero_rate_active_plan_never_fires() {
        let plan = FaultPlan::seeded(99, FaultConfig::none());
        for page in 0..1000 {
            assert_eq!(plan.ssd_write_fault(page), SsdWriteFault::NONE);
        }
        assert_eq!(plan.soc_report_factor(), 1.0);
        assert_eq!(plan.stats().total(), 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let config = FaultConfig::storm(0.3);
        let a = FaultPlan::seeded(7, config);
        let b = FaultPlan::seeded(7, config);
        for page in 0..500 {
            assert_eq!(a.ssd_write_fault(page), b.ssd_write_fault(page));
            assert_eq!(a.soc_report_factor(), b.soc_report_factor());
            assert_eq!(a.holdup_shortfall(), b.holdup_shortfall());
        }
        assert_eq!(a.stats(), b.stats());
        assert!(
            a.stats().total() > 0,
            "storm at 0.3 should fire in 500 rounds"
        );
    }

    #[test]
    fn clones_share_one_stream() {
        let a = FaultPlan::seeded(11, FaultConfig::storm(1.0));
        let b = a.clone();
        // Both clones fire (rate 1.0) and account into the same stats.
        assert!(a.ssd_write_fault(0).error);
        assert!(b.ssd_write_fault(1).error);
        assert_eq!(a.stats().ssd_write_errors, 2);
    }

    #[test]
    fn injections_emit_trace_events() {
        let clock = sim_clock::Clock::new();
        let telemetry = Telemetry::recording(clock);
        let plan = FaultPlan::seeded(5, FaultConfig::storm(1.0));
        plan.attach_telemetry(telemetry.clone());
        plan.ssd_write_fault(42);
        let events = telemetry.events();
        assert_eq!(events.len(), 3, "stall + spike + error at rate 1.0");
        assert!(events.iter().all(|e| e.event.kind() == "fault_injected"));
    }

    #[test]
    fn capacity_drop_returns_configured_factor() {
        let mut config = FaultConfig::none();
        config.capacity_drop_rate = 1.0;
        config.capacity_drop_factor = 0.5;
        let plan = FaultPlan::seeded(1, config);
        assert_eq!(plan.capacity_drop(), Some(0.5));
        assert_eq!(plan.stats().capacity_drops, 1);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn validate_rejects_rate_above_one() {
        FaultPlan::seeded(0, FaultConfig::storm(1.5));
    }
}
