//! Criterion micro-benchmarks of the mechanisms on Viyojit's critical
//! paths: MMU access, fault handling, victim selection, workload
//! generation, and the persistent-store hot path. These measure *host*
//! performance of the simulator (how fast experiments run), complementing
//! the virtual-time figures.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kvstore::KvStore;
use mem_sim::{Mmu, PageId, WalkOptions};
use pheap::PHeap;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_clock::{Clock, CostModel, Histogram, SimDuration};
use ssd_sim::SsdConfig;
use viyojit::{
    DirtySet, NvHeap, NvdramBaseline, TargetPolicy, UpdateHistory, VictimSelector, Viyojit,
    ViyojitConfig,
};
use workloads::{YcsbGenerator, YcsbWorkload, ZipfGenerator};

fn bench_mmu(c: &mut Criterion) {
    let mut g = c.benchmark_group("mmu");
    g.bench_function("write_hit_64B", |b| {
        let mut mmu = Mmu::new(64, Clock::new(), CostModel::calibrated());
        let data = [7u8; 64];
        b.iter(|| mmu.write(black_box(128), &data).unwrap());
    });
    g.bench_function("read_hit_64B", |b| {
        let mut mmu = Mmu::new(64, Clock::new(), CostModel::calibrated());
        let mut buf = [0u8; 64];
        b.iter(|| mmu.read(black_box(128), &mut buf).unwrap());
    });
    g.bench_function("walk_and_clear_1k_pages", |b| {
        let mut mmu = Mmu::new(1024, Clock::new(), CostModel::calibrated());
        let pages: Vec<PageId> = (0..1024).map(PageId).collect();
        b.iter(|| black_box(mmu.walk_and_clear_dirty(&pages, WalkOptions::exact())));
    });
    g.finish();
}

fn bench_fault_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("viyojit");
    g.bench_function("first_write_fault_cycle", |b| {
        // Each iteration: write a clean page (fault + admit), with a large
        // enough budget that no stall occurs.
        let mut nv = Viyojit::new(
            8192,
            ViyojitConfig::with_budget_pages(8000),
            Clock::new(),
            CostModel::calibrated(),
            SsdConfig::datacenter(),
        );
        let r = nv.map(8000 * 4096).unwrap();
        let mut page = 0u64;
        b.iter(|| {
            nv.write(r, (page % 8000) * 4096, &[1u8; 8]).unwrap();
            page += 1;
        });
    });
    g.bench_function("dirty_write_no_fault", |b| {
        let mut nv = Viyojit::new(
            64,
            ViyojitConfig::with_budget_pages(32),
            Clock::new(),
            CostModel::calibrated(),
            SsdConfig::datacenter(),
        );
        let r = nv.map(16 * 4096).unwrap();
        nv.write(r, 0, &[1u8; 8]).unwrap();
        b.iter(|| nv.write(r, black_box(64), &[2u8; 8]).unwrap());
    });
    g.finish();
}

fn bench_tracking_structures(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracking");
    g.bench_function("dirty_set_cycle", |b| {
        let mut set = DirtySet::new(4096);
        b.iter(|| {
            set.mark_dirty(PageId(77));
            set.mark_in_flight(PageId(77));
            set.mark_clean(PageId(77));
        });
    });
    g.bench_function("selector_dirty_touch_remove", |b| {
        let mut history = UpdateHistory::new(4096, 64);
        let mut sel = VictimSelector::new(4096, TargetPolicy::LeastRecentlyUpdated, 1);
        // Pre-fill with candidates so the BTree has realistic depth.
        for i in 0..2048u64 {
            history.touch(PageId(i));
            sel.on_dirty(PageId(i), &history);
        }
        b.iter(|| {
            history.touch(PageId(3000));
            sel.on_dirty(PageId(3000), &history);
            history.touch(PageId(3000));
            sel.on_touch(PageId(3000), &history);
            black_box(sel.peek());
            sel.on_removed(PageId(3000));
        });
    });
    g.bench_function("history_touch", |b| {
        let mut history = UpdateHistory::new(4096, 64);
        b.iter(|| history.touch(black_box(PageId(123))));
    });
    g.finish();
}

fn bench_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads");
    g.bench_function("zipf_sample", |b| {
        let zipf = ZipfGenerator::new(1_000_000, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(zipf.sample_scrambled(&mut rng)));
    });
    g.bench_function("ycsb_a_next_op", |b| {
        let mut gen = YcsbGenerator::new(YcsbWorkload::A, 100_000, 1);
        b.iter(|| black_box(gen.next_op()));
    });
    g.finish();
}

fn bench_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("kvstore");
    let make = || {
        let nv = NvdramBaseline::new(
            4096,
            Clock::new(),
            CostModel::calibrated(),
            SsdConfig::datacenter(),
        );
        let heap = PHeap::format(nv, 3500 * 4096).unwrap();
        let mut kv = KvStore::create(heap, 2048).unwrap();
        for i in 0..1000u64 {
            kv.set(format!("key{i:06}").as_bytes(), &[1u8; 256])
                .unwrap();
        }
        kv
    };
    g.bench_function("get_hit", |b| {
        let mut kv = make();
        b.iter(|| black_box(kv.get(b"key000500").unwrap()));
    });
    g.bench_function("set_in_place", |b| {
        let mut kv = make();
        b.iter(|| kv.set(b"key000500", &[9u8; 256]).unwrap());
    });
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_clock");
    g.bench_function("histogram_record", |b| {
        let mut h = Histogram::new();
        b.iter(|| h.record(black_box(SimDuration::from_nanos(123_456))));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_mmu,
    bench_fault_path,
    bench_tracking_structures,
    bench_workloads,
    bench_store,
    bench_histogram
);
criterion_main!(benches);
