//! The Viyojit evaluation harness: drives YCSB workloads against the
//! Redis-like store on either Viyojit or the full-battery baseline, and
//! provides the shared scaling constants and reporting helpers used by the
//! per-figure binaries (`fig1` ... `fig10`, plus the ablations).
//!
//! # Scaling
//!
//! The paper's experiments use a 60 GB NV-DRAM, a 17.5 GB (or 52.5 GB)
//! Redis heap, and 10 M operations. This reproduction scales by
//! [`PAGES_PER_GB_UNIT`]: **1 paper-GB = 1 MiB = 256 pages**, and 10 M ops
//! become [`DEFAULT_OPS`]. Every reported quantity that the paper plots is
//! a ratio (throughput overhead %, budget as % of dataset, pages as % of
//! volume), so the scaling cancels out of the figures.
//!
//! # Examples
//!
//! ```
//! use viyojit_bench::{ExperimentConfig, run_viyojit, run_baseline, gb_units_to_pages};
//! use workloads::YcsbWorkload;
//!
//! let cfg = ExperimentConfig {
//!     operations: 2_000,
//!     initial_records: 512,
//!     ..ExperimentConfig::for_workload(YcsbWorkload::B)
//! };
//! let base = run_baseline(&cfg);
//! let viy = run_viyojit(&cfg, gb_units_to_pages(2.0));
//! assert!(viy.throughput_kops <= base.throughput_kops * 1.01);
//! ```

mod driver;
pub mod profile;
mod report;

pub use driver::{
    gb_units_to_pages, run_baseline, run_mmu_assisted, run_on, run_prepared, run_viyojit,
    ExperimentConfig, ExperimentResult, OpLatencies, BUDGET_SWEEP_GB, DEFAULT_OPS,
    DEFAULT_RECORDS_PER_GB_UNIT, PAGES_PER_GB_UNIT, VALUE_BYTES,
};
pub use profile::{ProfileCapture, PROFILE_ENV};
pub use report::{csv_stdout, meta_json, CsvSink, JsonlSink, NullSink, Report, Sink};
pub use telemetry::{note, row};
