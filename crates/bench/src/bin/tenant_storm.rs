//! Per-tenant QoS isolation under a seeded fault storm: three tenants
//! with Zipf-skewed write intensities share one battery's dirty budget
//! through the machine → tenant → shard hierarchy, while the hottest
//! tenant's shards also suffer injected SSD faults. Its per-tenant
//! degradation governor must throttle *only* that tenant — siblings keep
//! their guarantees, lose no pages at the final power failure, and stall
//! within a stated bound.
//!
//! Every run is reproducible from its seed (the final section proves it
//! in-run). With `--check` the bench additionally asserts the isolation
//! contract and exits non-zero on violation, which is how CI consumes it.
//!
//! Usage: `tenant_storm [seed] [--check]` (default seed 42).

use battery_sim::{Battery, BatteryConfig, PowerModel};
use mem_sim::PAGE_SIZE;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_clock::{Clock, CostModel, SimDuration};
use ssd_sim::SsdConfig;
use viyojit::{
    DegradationConfig, DegradationGovernor, FaultConfig, FaultPlan, NvHeap, PowerFailureReport,
    RegionId, ShardedViyojit, ShardedViyojitBuilder, TenantId, TenantQos, TenantStats,
    ViyojitConfig,
};
use viyojit_bench::{note, row, ProfileCapture, Report};
use workloads::ZipfGenerator;

const PAGE: u64 = PAGE_SIZE as u64;
/// Tenant layout: name, shard count, guaranteed pages, burst pages. The
/// shard counts are Zipf-ish on purpose — the hottest tenant is also the
/// biggest, as consolidation studies keep finding.
const TENANTS: [(&str, usize, u64, u64); 3] = [
    ("alpha", 4, 144, 112),
    ("beta", 2, 96, u64::MAX),
    ("gamma", 2, 80, u64::MAX),
];
const SHARDS: usize = 8;
const PAGES_PER_SHARD: usize = 2_048;
const GLOBAL_BUDGET: u64 = 384;
const MIN_PER_SHARD: u64 = 8;
const REGIONS: usize = 64;
const REGION_PAGES: u64 = 64;
const OPS: u64 = 30_000;
/// Writes between 1 ms clock advances (the rebalance heartbeat).
const OPS_PER_TICK: u64 = 200;
/// Writes between governor observations.
const OPS_PER_OBSERVATION: u64 = 1_000;
/// Per-write SSD fault probability on the faulty tenant's shards — above
/// the governor's 5% error-rate entry threshold, so the storm must trip
/// the per-tenant throttle.
const FAULT_RATE: f64 = 0.08;
/// Battery sized at this multiple of a full-budget flush (§5.1 rule).
const MARGIN: f64 = 2.0;
/// How skewed the per-tenant write intensity is (Zipf over tenant ranks).
const TENANT_THETA: f64 = 0.9;
/// How skewed pages are within a region (Viyojit's write-skew premise).
const PAGE_THETA: f64 = 0.8;
/// Stated isolation bound: a sibling tenant's stall time *per page it
/// dirtied* must stay below the storm tenant's by at least this factor —
/// the throttle's pain lands on the tenant that caused it.
const SIBLING_STALL_RATIO: f64 = 2.0;

struct StormOutcome {
    tenants: Vec<TenantStats>,
    transitions: Vec<u64>,
    rebalances: u64,
    failure: PowerFailureReport,
}

fn build(seed: u64) -> (ShardedViyojit, Clock, Option<ProfileCapture>) {
    let clock = Clock::new();
    let capture = ProfileCapture::from_env(
        "tenant_storm",
        &format!("s{seed}"),
        "Sharded-Viyojit",
        &format!(
            "tenants={} shards={SHARDS} budget={GLOBAL_BUDGET} min_per_shard={MIN_PER_SHARD} \
             rate={FAULT_RATE} ops={OPS}",
            TENANTS.len()
        ),
        Some(seed),
        &clock,
    );
    let mut builder = ShardedViyojitBuilder::new(
        SHARDS,
        PAGES_PER_SHARD,
        ViyojitConfig::builder(GLOBAL_BUDGET)
            .total_pages(PAGES_PER_SHARD as u64)
            .build()
            .expect("valid shard configuration"),
    )
    .min_per_shard(MIN_PER_SHARD)
    .rebalance_period(SimDuration::from_millis(5))
    .clock(clock.clone())
    .cost_model(CostModel::calibrated())
    .ssd(SsdConfig::datacenter());
    for (i, &(name, shards, guaranteed, burst)) in TENANTS.iter().enumerate() {
        let qos = if burst == u64::MAX {
            TenantQos::guaranteed(guaranteed)
        } else {
            TenantQos::guaranteed(guaranteed).burst(burst)
        };
        builder = builder.tenant(name, shards, qos);
        if i == 0 {
            // Only the hot tenant's shards see the storm.
            builder =
                builder.tenant_faults(FaultPlan::seeded(seed, FaultConfig::storm(FAULT_RATE)));
        }
    }
    let mut nv = builder.build_sequential().expect("valid tenant layout");
    if let Some(capture) = &capture {
        capture.attach(&mut nv);
    }
    (nv, clock, capture)
}

/// Buckets mapped regions by owning tenant (mapping hashes regions across
/// shards, so tenancy falls out of `shard_of`), topping up until every
/// tenant has at least one region to write into.
fn map_regions(nv: &mut ShardedViyojit) -> Vec<Vec<RegionId>> {
    let mut by_tenant: Vec<Vec<RegionId>> = vec![Vec::new(); TENANTS.len()];
    let mut mapped = 0;
    while mapped < REGIONS || by_tenant.iter().any(|r| r.is_empty()) {
        assert!(mapped < 4 * REGIONS, "region hashing starved a tenant");
        let region = nv.map(REGION_PAGES * PAGE).expect("map region");
        let shard = nv.shard_of(region).expect("region is mapped");
        by_tenant[nv.tenant_of_shard(shard).0].push(region);
        mapped += 1;
    }
    by_tenant
}

/// One storm run: drive the skewed multi-tenant workload with per-tenant
/// governors watching, then pull the plug against the margin battery.
fn run_once(seed: u64) -> StormOutcome {
    let ssd_config = SsdConfig::datacenter();
    let power = PowerModel::datacenter_server(0.064);
    let budget_bytes = GLOBAL_BUDGET * PAGE;
    let needed = ssd_config.drain_time(budget_bytes).as_secs_f64() * power.total_watts();
    let battery = Battery::new(
        BatteryConfig::with_capacity_joules(needed * MARGIN).with_depth_of_discharge(1.0),
    );

    let (mut nv, clock, capture) = build(seed);
    let regions = map_regions(&mut nv);

    let mut governors: Vec<DegradationGovernor> = TENANTS
        .iter()
        .map(|&(_, _, guaranteed, _)| {
            DegradationGovernor::new(guaranteed, DegradationConfig::default())
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(seed);
    let tenant_zipf = ZipfGenerator::new(TENANTS.len() as u64, TENANT_THETA);
    let page_zipf = ZipfGenerator::new(REGION_PAGES, PAGE_THETA);
    for op in 0..OPS {
        // Zipf rank 0 (the hottest) is tenant 0 — the faulty one.
        let tenant = tenant_zipf.sample(&mut rng) as usize;
        let bucket = &regions[tenant];
        let region = bucket[rng.gen_range(0..bucket.len())];
        let page = page_zipf.sample(&mut rng);
        nv.write(region, page * PAGE, &[(op % 251) as u8; 64])
            .expect("write");
        if (op + 1).is_multiple_of(OPS_PER_TICK) {
            clock.advance(SimDuration::from_millis(1));
        }
        if (op + 1).is_multiple_of(OPS_PER_OBSERVATION) {
            // The battery gauge reads healthy throughout: only the
            // per-tenant SSD error signal can trip a governor, and only
            // the storm tenant's shards produce errors.
            for (t, governor) in governors.iter_mut().enumerate() {
                nv.govern_tenant_degradation(TenantId(t), governor, 1.0);
            }
        }
    }

    let rebalances = nv.rebalances();
    let failure = nv.power_failure_powered(&battery, &power);
    assert!(
        failure.all_pages_accounted(),
        "every dirty page must be flushed or reported lost (seed={seed}: {failure:?})"
    );
    let tenants = nv.tenant_stats();
    nv.check_invariants().expect("sharded invariants hold");
    if let Some(capture) = capture {
        capture.finish();
    }
    StormOutcome {
        tenants,
        transitions: governors.iter().map(|g| g.transitions()).collect(),
        rebalances,
        failure,
    }
}

fn check_isolation(outcome: &StormOutcome) {
    assert!(
        outcome.transitions[0] >= 1,
        "the storm tenant's governor must trip at least once \
         (error rate {FAULT_RATE} is above the entry threshold)"
    );
    let storm = &outcome.tenants[0];
    let storm_stall_per_page =
        storm.stats.stall_time.as_nanos() as f64 / storm.stats.pages_dirtied.max(1) as f64;
    for t in 1..TENANTS.len() {
        let s = &outcome.tenants[t];
        assert_eq!(
            s.pages_lost, 0,
            "sibling tenant {} must lose no pages to the storm tenant's faults",
            s.name
        );
        assert_eq!(
            outcome.transitions[t], 0,
            "sibling tenant {}'s governor must never trip",
            s.name
        );
        let stall_per_page =
            s.stats.stall_time.as_nanos() as f64 / s.stats.pages_dirtied.max(1) as f64;
        assert!(
            stall_per_page * SIBLING_STALL_RATIO <= storm_stall_per_page,
            "sibling tenant {} stalled {stall_per_page:.0} ns/page, not {SIBLING_STALL_RATIO}x \
             below the storm tenant's {storm_stall_per_page:.0} ns/page",
            s.name
        );
        assert!(
            !s.throttled,
            "sibling tenant {} must not end the run throttled",
            s.name
        );
    }
}

fn tenant_rows(report: &mut Report, outcome: &StormOutcome) {
    for (t, s) in outcome.tenants.iter().enumerate() {
        let (_, shards, guaranteed, burst) = TENANTS[t];
        let burst = if burst == u64::MAX {
            "unbounded".to_string()
        } else {
            burst.to_string()
        };
        row!(
            report,
            "{t},{},{shards},{guaranteed},{burst},{},{},{},{},{},{},{},{}",
            s.name,
            s.budget_pages,
            s.dirty_pages,
            s.stats.budget_stalls,
            s.stats.stall_time.as_millis(),
            s.stats.pages_dirtied,
            s.throttled,
            outcome.transitions[t],
            s.pages_lost,
        );
    }
}

fn main() {
    let mut seed: u64 = 42;
    let mut check = false;
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else {
            seed = arg.parse().expect("seed must be a number");
        }
    }

    let mut report = Report::stdout_csv();
    report.section("per-tenant QoS isolation under a seeded fault storm");
    report.columns(&[
        "tenant",
        "name",
        "shards",
        "guaranteed",
        "burst",
        "budget_pages",
        "dirty_pages",
        "stalls",
        "stall_ms",
        "pages_dirtied",
        "throttled",
        "governor_transitions",
        "pages_lost",
    ]);
    let outcome = run_once(seed);
    tenant_rows(&mut report, &outcome);

    report.section("global power failure against the margin battery");
    report.columns(&[
        "seed",
        "outcome",
        "dirty_pages",
        "pages_flushed",
        "pages_lost",
        "retries",
        "flush_ms",
        "rebalances",
    ]);
    let f = &outcome.failure;
    row!(
        report,
        "{seed},{:?},{},{},{},{},{:.3},{}",
        f.outcome,
        f.dirty_pages,
        f.pages_flushed,
        f.pages_lost,
        f.retries,
        f.flush_time.as_secs_f64() * 1e3,
        outcome.rebalances,
    );

    report.section("seeded reproducibility: the same storm, twice");
    report.columns(&["seed", "identical"]);
    let again = run_once(seed);
    assert_eq!(
        outcome.tenants, again.tenants,
        "the same seed must reproduce the same per-tenant accounting"
    );
    assert_eq!(
        outcome.failure, again.failure,
        "the same seed must reproduce the same power-failure report"
    );
    row!(report, "{seed},true");

    if check {
        check_isolation(&outcome);
        note!(
            report,
            "isolation checks passed: siblings lost 0 pages, never tripped their governors, \
             and stalled {SIBLING_STALL_RATIO}x less per dirtied page than the throttled \
             storm tenant"
        );
    } else {
        note!(
            report,
            "rerun with --check to assert the isolation contract; replay any run with \
             tenant_storm <seed>"
        );
    }
}
