//! Crash-point torture sweep: arms every instrumented state-mutation
//! seam in turn, crashes a seeded storm workload there, runs the real
//! emergency executor from the abandoned intermediate state, and reports
//! survival and loss per seam.
//!
//! Where `fault_storm` asks whether the emergency flush finishes under
//! device faults, this torture asks whether the *durability contract*
//! holds when execution is cut mid-mutation: every dirty page flushed or
//! reported lost, loss never above the dirty budget, and (for the
//! parallel seam) a panicked worker respawned from durable state without
//! touching its siblings. Every row is an assertion as well as a
//! measurement — a violated bound aborts the sweep with the seed in the
//! panic message.
//!
//! Usage: `crash_torture [seeds-per-cell]` (default 10).

use std::panic::{catch_unwind, AssertUnwindSafe};

use battery_sim::{Battery, BatteryConfig, PowerModel};
use mem_sim::PAGE_SIZE;
use sim_clock::{Clock, CostModel, SimDuration};
use ssd_sim::SsdConfig;
use telemetry::{note, row, Report, Sink, TraceEvent, TracedEvent};
use viyojit::{
    CrashSchedule, CrashSignal, Crashpoint, DirtyTracker, Engine, FaultConfig, FaultPlan,
    FlushOutcome, MmuAssisted, NvHeap, PowerFailureReport, ShardControlPlane, ShardDataPlane,
    ShardedViyojitBuilder, SoftwareWalk, Telemetry, ViyojitConfig,
};

const PAGE: u64 = PAGE_SIZE as u64;
const TOTAL_PAGES: usize = 256;
const REGION_PAGES: u64 = 128;
const BUDGET: u64 = 32;
const WRITES: u64 = 1_024;
const STORM_RATE: f64 = 0.02;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn storm_battery(seed: u64, ssd: &SsdConfig, power: &PowerModel) -> Battery {
    let needed = ssd.drain_time(BUDGET * PAGE).as_secs_f64() * power.total_watts();
    Battery::new(
        BatteryConfig::with_capacity_joules(needed * (1.0 + (seed % 4) as f64))
            .with_depth_of_discharge(1.0),
    )
}

/// What one crash-armed life produced, reduced to the sweep's columns.
struct Outcome {
    fired: Option<CrashSignal>,
    report: PowerFailureReport,
}

/// One crash-armed storm life on a single engine (the per-engine seams:
/// epoch walk, discovery scan, in-flight flush, emergency retry).
fn engine_torture<B: DirtyTracker>(seed: u64, point: Crashpoint, hit: u64) -> Outcome {
    let ssd_config = SsdConfig::datacenter();
    let crashes = CrashSchedule::armed(point, hit);
    let mut nv = Engine::<B>::new(
        TOTAL_PAGES,
        ViyojitConfig::with_budget_pages(BUDGET),
        Clock::new(),
        CostModel::calibrated(),
        ssd_config.clone(),
    );
    nv.attach_faults(FaultPlan::seeded(seed, FaultConfig::storm(STORM_RATE)));
    nv.attach_crashes(crashes.clone());
    let region = nv.map(REGION_PAGES * PAGE).expect("map");

    let mut rng = seed;
    let workload = catch_unwind(AssertUnwindSafe(|| {
        for _ in 0..WRITES {
            let page = splitmix64(&mut rng) % REGION_PAGES;
            let offset = splitmix64(&mut rng) % (PAGE - 8);
            let fill = splitmix64(&mut rng) as u8;
            nv.write(region, page * PAGE + offset, &[fill; 8])
                .expect("write");
        }
    }));
    if let Err(payload) = workload {
        payload
            .downcast::<CrashSignal>()
            .expect("only injected crashes unwind the workload");
    }

    let power = PowerModel::datacenter_server(0.064);
    let battery = storm_battery(seed, &ssd_config, &power);
    // The armed seam may sit inside the flush itself; the schedule is
    // latched, so the re-run completes the remaining obligation.
    let report = catch_unwind(AssertUnwindSafe(|| {
        nv.power_failure_powered(&battery, &power)
    }))
    .unwrap_or_else(|_| nv.power_failure_powered(&battery, &power));
    nv.recover();

    assert!(
        report.all_pages_accounted(),
        "[{} seed {seed}] unaccounted pages: {report:?}",
        point.name()
    );
    assert!(
        report.pages_lost <= BUDGET,
        "[{} seed {seed}] loss above the budget bound: {report:?}",
        point.name()
    );
    if let Err(violation) = nv.check_invariants() {
        panic!(
            "[{} seed {seed}] invariant violated: {violation}",
            point.name()
        );
    }
    Outcome {
        fired: crashes.fired(),
        report,
    }
}

/// One crash-armed storm life on the sequential sharded frontend (the
/// rebalance seams: mid-rebalance and between shrink and grow).
fn sharded_torture(seed: u64, point: Crashpoint, hit: u64) -> Outcome {
    let ssd_config = SsdConfig::datacenter();
    let crashes = CrashSchedule::armed(point, hit);
    let mut nv = ShardedViyojitBuilder::new(4, 64, ViyojitConfig::with_budget_pages(BUDGET))
        .backend::<SoftwareWalk>()
        .min_per_shard(4)
        .rebalance_period(SimDuration::from_micros(200))
        .clock(Clock::new())
        .cost_model(CostModel::calibrated())
        .ssd(ssd_config.clone())
        .faults(FaultPlan::seeded(seed, FaultConfig::storm(STORM_RATE)))
        .crashes(crashes.clone())
        .build_sequential()
        .expect("a valid sharded configuration");
    let regions: Vec<_> = (0..4).map(|_| nv.map(32 * PAGE).expect("map")).collect();

    let mut rng = seed;
    let workload = catch_unwind(AssertUnwindSafe(|| {
        for _ in 0..WRITES {
            let region = regions[(splitmix64(&mut rng) % 4) as usize];
            let page = splitmix64(&mut rng) % 32;
            nv.write(region, page * PAGE, &[splitmix64(&mut rng) as u8; 8])
                .expect("write");
        }
    }));
    if let Err(payload) = workload {
        payload
            .downcast::<CrashSignal>()
            .expect("only injected crashes unwind the workload");
    }

    let power = PowerModel::datacenter_server(0.064);
    let battery = storm_battery(seed, &ssd_config, &power);
    let report = catch_unwind(AssertUnwindSafe(|| {
        nv.power_failure_powered(&battery, &power)
    }))
    .unwrap_or_else(|_| nv.power_failure_powered(&battery, &power));
    nv.recover();

    assert!(
        report.all_pages_accounted(),
        "[{} seed {seed}] unaccounted pages: {report:?}",
        point.name()
    );
    assert!(
        report.pages_lost <= BUDGET,
        "[{} seed {seed}] loss above the budget bound: {report:?}",
        point.name()
    );
    if let Err(violation) = nv.check_invariants() {
        panic!(
            "[{} seed {seed}] invariant violated: {violation}",
            point.name()
        );
    }
    Outcome {
        fired: crashes.fired(),
        report,
    }
}

#[derive(Default)]
struct EventLog(Vec<TraceEvent>);

impl Sink for EventLog {
    fn event(&mut self, event: &TracedEvent) {
        self.0.push(event.event);
    }
}

/// One supervised-parallel life: a worker panics between its stats upload
/// and its grant download, is respawned from durable state, and the next
/// round hands the quarantined budget back. Loss is the respawn flush's.
fn parallel_torture(seed: u64, threads: usize) -> Outcome {
    let crashes = CrashSchedule::armed(Crashpoint::BudgetRound, 1);
    let telemetry = Telemetry::recording(Clock::new());
    let (mut data, mut ctrl) =
        ShardedViyojitBuilder::new(4, 64, ViyojitConfig::with_budget_pages(BUDGET))
            .backend::<SoftwareWalk>()
            .min_per_shard(2)
            .rebalance_period(SimDuration::from_secs(3_600))
            .clock(Clock::new())
            .cost_model(CostModel::free())
            .ssd(SsdConfig::instant())
            .telemetry(telemetry.clone())
            .crashes(crashes.clone())
            .restart_budget(1)
            .threads(threads)
            .build_parallel()
            .expect("a valid supervised configuration");
    let regions: Vec<_> = (0..4).map(|_| data.map(64 * PAGE).expect("map")).collect();
    let mut rng = seed;
    for &region in &regions {
        for page in 0..4u64 {
            data.write(region, page * PAGE, &[splitmix64(&mut rng) as u8; 64])
                .expect("write");
        }
    }
    data.sync().expect("drain staged writes");

    ctrl.rebalance()
        .unwrap_or_else(|e| panic!("[budget_round seed {seed}] crashed round failed: {e}"));
    let fired = crashes.fired();
    assert!(
        fired.is_some(),
        "[budget_round seed {seed}] the armed seam never fired"
    );
    ctrl.rebalance()
        .unwrap_or_else(|e| panic!("[budget_round seed {seed}] post-respawn round failed: {e}"));
    let stats = ctrl.shard_stats().expect("post-respawn stats");
    let assigned: u64 = stats.iter().map(|s| s.budget_pages).sum();
    assert_eq!(
        assigned, BUDGET,
        "[budget_round seed {seed}] quarantined budget never returned"
    );

    let mut log = EventLog::default();
    telemetry.drain_into(&mut log);
    let pages_lost: u64 = log
        .0
        .iter()
        .filter_map(|e| match e {
            TraceEvent::ShardRespawned { pages_lost, .. } => Some(*pages_lost),
            _ => None,
        })
        .sum();
    Outcome {
        fired,
        report: PowerFailureReport {
            dirty_pages: pages_lost,
            pages_flushed: 0,
            pages_lost,
            retries: 0,
            bytes_flushed: 0,
            flush_time: SimDuration::ZERO,
            energy_margin_joules: f64::INFINITY,
            outcome: FlushOutcome::Complete,
        },
    }
}

/// The sweep cells: every instrumented seam, in the execution context
/// where it is reachable.
const CELLS: [(Crashpoint, &str); 7] = [
    (Crashpoint::EpochWalk, "engine/software-walk"),
    (Crashpoint::FlushInFlight, "engine/software-walk"),
    (Crashpoint::EmergencyRetry, "engine/software-walk"),
    (Crashpoint::DiscoveryScan, "engine/mmu-assisted"),
    (Crashpoint::Rebalance, "sharded/sequential"),
    (Crashpoint::BudgetShrinkGrow, "sharded/sequential"),
    (Crashpoint::BudgetRound, "sharded/parallel-2t"),
];

fn run_cell(point: Crashpoint, seed: u64) -> Outcome {
    match point {
        Crashpoint::EmergencyRetry => engine_torture::<SoftwareWalk>(seed, point, 1),
        Crashpoint::EpochWalk | Crashpoint::FlushInFlight => {
            engine_torture::<SoftwareWalk>(seed, point, 1 + seed % 4)
        }
        Crashpoint::DiscoveryScan => engine_torture::<MmuAssisted>(seed, point, 1 + seed % 4),
        Crashpoint::Rebalance | Crashpoint::BudgetShrinkGrow => {
            sharded_torture(seed, point, 1 + seed % 3)
        }
        Crashpoint::BudgetRound => parallel_torture(seed, 2),
    }
}

fn main() {
    // Injected crashes unwind with a CrashSignal payload and are always
    // caught at the harness; keep the default hook (and its backtrace
    // spew) for genuine failures only.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<CrashSignal>().is_none() {
            default_hook(info);
        }
    }));

    let seeds: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seeds-per-cell must be a number"))
        .unwrap_or(10);
    let mut report = Report::stdout_csv();
    report.meta(&telemetry::RunMeta::new(
        "crash_torture",
        "Viyojit",
        &format!("seeds_per_cell={seeds} storm_rate={STORM_RATE}"),
        Some(42),
    ));

    report.section("crash-point torture: survival and loss per seam");
    report.columns(&[
        "crashpoint",
        "context",
        "runs",
        "fired",
        "survival",
        "avg_pages_lost",
        "max_pages_lost",
    ]);
    for (point, context) in CELLS {
        let mut fired = 0u64;
        let mut lost = 0u64;
        let mut worst = 0u64;
        for seed in 0..seeds {
            let outcome = run_cell(point, seed);
            if outcome.fired.is_some() {
                fired += 1;
            }
            lost += outcome.report.pages_lost;
            worst = worst.max(outcome.report.pages_lost);
        }
        // Every run that reaches this line passed the recovery oracle.
        row!(
            report,
            "{},{context},{seeds},{fired},1.00,{:.1},{worst}",
            point.name(),
            lost as f64 / seeds as f64,
        );
    }

    report.section("seeded reproducibility: one crashed life, twice");
    report.columns(&["crashpoint", "seed", "fired_hit", "pages_lost", "outcome"]);
    let seed = 42;
    let a = engine_torture::<SoftwareWalk>(seed, Crashpoint::FlushInFlight, 1);
    let b = engine_torture::<SoftwareWalk>(seed, Crashpoint::FlushInFlight, 1);
    assert_eq!(a.fired, b.fired, "the same seed must fire the same hit");
    assert_eq!(a.report, b.report, "the same seed must lose the same pages");
    row!(
        report,
        "flush_in_flight,{seed},{:?},{},{:?}",
        a.fired.map(|f| f.hit),
        a.report.pages_lost,
        a.report.outcome,
    );
    note!(
        report,
        "identical reports across reruns of seed {seed}; every row above also \
         asserted the bounded-loss oracle in-run"
    );
}
