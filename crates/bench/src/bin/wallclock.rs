//! Wall-clock microbenchmark of the simulator's page-state hot paths.
//!
//! Unlike every other bench binary, this one measures *host* time, not
//! virtual time: the point of the two-level bitmaps is that the simulator
//! itself stays fast at paper scale (140 GB ≈ 36.7M pages) even when the
//! dirty population is tiny. Each cell of the sweep times the epoch-walk,
//! discovery-scan, dirty-count, invariant-check, and fault/flush paths on
//! the live bitmap-backed `PageTable`/`DirtySet`, and — in the same run,
//! on the same page population — on an embedded scalar reference model
//! that reproduces the pre-bitmap byte-per-page implementation. The
//! scalar figures are the `baseline_*` numbers in `BENCH_wallclock.json`;
//! both are recorded so the speedup is auditable from the artifact alone.
//!
//! Usage:
//!   wallclock [--quick] [--out FILE] [--check COMMITTED_JSON]
//!
//! `--quick` runs the small CI configuration: 1M pages at the 0.1%
//! legacy gate density, at 10% (the fault/flush density gate), and a
//! uniform-runs layout cell (whole 512-page runs dirty, exercising the
//! huge-tier run fast paths).
//! `--check FILE` additionally enforces three gates and exits non-zero
//! on any failure: the fresh optimized epoch-walk ns/page at 0.1%
//! density must be within [`REGRESSION_FACTOR`]× of the committed
//! artifact; the fresh epoch walk must be at least 1.0× the in-run
//! scalar baseline at *every* cell (density-adaptive dispatch must never
//! lose to the byte-per-page model); and the fresh fault/flush lifecycle
//! must stay within [`FAULT_FLUSH_FACTOR`]× of the scalar baseline at
//! 10% density (the per-page mark path must not drown in bitmap-tier
//! maintenance).

use std::hint::black_box;
use std::sync::Mutex;
use std::time::Instant;

use mem_sim::{AtomicBitmap2L, PageId, PageTable, RUN_PAGES};
use viyojit::DirtySet;

/// CI gate: fail if epoch-walk ns/page regresses past this factor over
/// the committed artifact (absorbs runner-to-runner noise).
const REGRESSION_FACTOR: f64 = 3.0;
/// CI gate: the per-page fault/flush lifecycle (three bitmap marks) may
/// cost at most this factor over the scalar byte-per-page marks, at
/// [`FAULT_GATE_DENSITY`]. In-run comparison, so runner speed cancels.
const FAULT_FLUSH_FACTOR: f64 = 2.0;

/// The committed artifact's headline cell: ≥8M pages at 0.1% density.
const HEADLINE_PAGES: usize = 8_388_608;
/// The CI quick cell (small config, same density).
const QUICK_PAGES: usize = 1_048_576;
const GATE_DENSITY: f64 = 0.001;
/// Density of the fault/flush lifecycle gate cell.
const FAULT_GATE_DENSITY: f64 = 0.1;
/// Density of the uniform-runs layout cell.
const UNIFORM_DENSITY: f64 = 0.25;

/// How the dirty population is laid out in the address space.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Layout {
    /// Uniformly random distinct pages (the historical sweep).
    Random,
    /// Whole 512-page runs dirtied wholesale: the huge tier classifies
    /// every touched run `Full` and every other run `Empty`, so run
    /// fast paths (wholesale collection, O(1) clean-run skips) carry
    /// the entire scan.
    UniformRuns,
}

impl Layout {
    fn name(self) -> &'static str {
        match self {
            Layout::Random => "random",
            Layout::UniformRuns => "uniform_runs",
        }
    }
}

/// Deterministic xorshift64*; the harness must not depend on ambient
/// randomness.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

// ----------------------------------------------------------------------
// Scalar reference model: the pre-bitmap byte-per-page implementation
// ----------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum ScalarState {
    Clean,
    Dirty,
    InFlight,
}

/// `DirtySet` as it was before the bitmaps: a `Vec` of per-page states,
/// every query a full scan.
struct ScalarDirtySet {
    states: Vec<ScalarState>,
    dirty_count: u64,
    in_flight_count: u64,
}

impl ScalarDirtySet {
    fn new(pages: usize) -> Self {
        ScalarDirtySet {
            states: vec![ScalarState::Clean; pages],
            dirty_count: 0,
            in_flight_count: 0,
        }
    }

    // The marks assert the lifecycle exactly as the seed implementation
    // did — the scalar model must reproduce the code it benchmarks
    // against, not an idealized store-only version of it.
    fn mark_dirty(&mut self, page: usize) {
        let s = &mut self.states[page];
        assert!(*s == ScalarState::Clean, "page {page} dirtied twice");
        *s = ScalarState::Dirty;
        self.dirty_count += 1;
    }

    fn mark_in_flight(&mut self, page: usize) {
        let s = &mut self.states[page];
        assert!(*s == ScalarState::Dirty, "only dirty pages can be flushed");
        *s = ScalarState::InFlight;
        self.in_flight_count += 1;
    }

    fn mark_clean(&mut self, page: usize) {
        let s = &mut self.states[page];
        assert!(*s == ScalarState::InFlight, "only in-flight pages complete");
        *s = ScalarState::Clean;
        self.dirty_count -= 1;
        self.in_flight_count -= 1;
    }

    fn collect_dirty(&self) -> Vec<u64> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == ScalarState::Dirty)
            .map(|(i, _)| i as u64)
            .collect()
    }

    /// The seed's `check_invariants`: two independent full scans.
    fn check_invariants(&self) -> bool {
        let dirty = self
            .states
            .iter()
            .filter(|s| **s != ScalarState::Clean)
            .count() as u64;
        let in_flight = self
            .states
            .iter()
            .filter(|s| **s == ScalarState::InFlight)
            .count() as u64;
        dirty == self.dirty_count && in_flight == self.in_flight_count
    }
}

/// `PageTable` as it was: a `Vec<u8>` of flag bytes (bit 2 = dirty).
struct ScalarPageTable {
    ptes: Vec<u8>,
}

const SCALAR_DIRTY: u8 = 1 << 2;

impl ScalarPageTable {
    fn new(pages: usize) -> Self {
        ScalarPageTable {
            ptes: vec![0u8; pages],
        }
    }

    fn set_dirty(&mut self, page: usize) {
        self.ptes[page] |= SCALAR_DIRTY;
    }

    fn take_dirty(&mut self, page: usize) -> bool {
        let was = self.ptes[page] & SCALAR_DIRTY != 0;
        self.ptes[page] &= !SCALAR_DIRTY;
        was
    }

    fn dirty_count(&self) -> usize {
        self.ptes.iter().filter(|f| **f & SCALAR_DIRTY != 0).count()
    }

    fn collect_dirty(&self) -> Vec<u64> {
        self.ptes
            .iter()
            .enumerate()
            .filter(|(_, f)| **f & SCALAR_DIRTY != 0)
            .map(|(i, _)| i as u64)
            .collect()
    }
}

// ----------------------------------------------------------------------
// Measurement
// ----------------------------------------------------------------------

/// Average ns per repetition of `f`; the returned checksum keeps the
/// optimizer from deleting the measured work.
fn time_ns(reps: u32, mut f: impl FnMut() -> u64) -> (f64, u64) {
    let mut checksum = 0u64;
    let start = Instant::now();
    for _ in 0..reps {
        checksum = checksum.wrapping_add(black_box(f()));
    }
    let total = start.elapsed().as_nanos() as f64;
    (total / f64::from(reps), checksum)
}

struct Cell {
    pages: usize,
    density: f64,
    layout: Layout,
    dirty_pages: usize,
    /// (optimized ns, baseline ns) per metric.
    epoch_walk: (f64, f64),
    discovery: (f64, f64),
    dirty_count: (f64, f64),
    invariants: (f64, f64),
    fault_flush: (f64, f64),
    atomic_publish: (f64, f64),
}

fn measure_cell(pages: usize, density: f64, layout: Layout, reps: u32) -> Cell {
    // Deterministic dirty population, identical for both models.
    let target = ((pages as f64 * density) as usize).max(1);
    let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ (pages as u64) ^ (target as u64);
    let mut dirty = DirtySet::new(pages);
    let mut pt = PageTable::new(pages);
    let mut scalar_dirty = ScalarDirtySet::new(pages);
    let mut scalar_pt = ScalarPageTable::new(pages);
    let mut picked: Vec<usize> = Vec::with_capacity(target);
    let mark = |p: usize,
                    dirty: &mut DirtySet,
                    pt: &mut PageTable,
                    sd: &mut ScalarDirtySet,
                    sp: &mut ScalarPageTable| {
        dirty.mark_dirty(PageId(p as u64));
        pt.set_dirty(PageId(p as u64), true);
        sd.mark_dirty(p);
        sp.set_dirty(p);
    };
    match layout {
        Layout::Random => {
            while picked.len() < target {
                let p = (xorshift(&mut rng) % pages as u64) as usize;
                if dirty.dirty_bits().test(p) {
                    continue;
                }
                mark(p, &mut dirty, &mut pt, &mut scalar_dirty, &mut scalar_pt);
                picked.push(p);
            }
        }
        Layout::UniformRuns => {
            let runs = pages / RUN_PAGES;
            let want = (target / RUN_PAGES).max(1);
            let mut chosen = 0;
            while chosen < want {
                let r = (xorshift(&mut rng) % runs as u64) as usize;
                if dirty.dirty_bits().test(r * RUN_PAGES) {
                    continue;
                }
                for p in r * RUN_PAGES..(r + 1) * RUN_PAGES {
                    mark(p, &mut dirty, &mut pt, &mut scalar_dirty, &mut scalar_pt);
                    picked.push(p);
                }
                chosen += 1;
            }
        }
    }
    let target = picked.len();

    // Epoch walk (§5.2 software mode): enumerate the dirty set through
    // the density-dispatched production collection (what SoftwareWalk
    // actually runs), then read-and-clear each page's PTE dirty bit;
    // restore untimed. The buffer is reused across reps, as the engine
    // reuses its walk set.
    // The PTE re-dirty between reps is bench plumbing (production never
    // undoes a walk), so it runs outside the timed window on both sides.
    let mut walk_buf: Vec<PageId> = Vec::new();
    let epoch_opt = {
        let mut checksum = 0u64;
        let mut total = 0u128;
        for _ in 0..reps {
            walk_buf.clear();
            let start = Instant::now();
            dirty.collect_dirty_into(&mut walk_buf);
            let mut touched = 0u64;
            for &p in &walk_buf {
                if pt.take_dirty(p) {
                    touched += 1;
                }
            }
            total += start.elapsed().as_nanos();
            checksum = checksum.wrapping_add(black_box(touched));
            for &p in &walk_buf {
                pt.set_dirty(p, true);
            }
        }
        (total as f64 / f64::from(reps), checksum)
    };
    let epoch_base = {
        let mut checksum = 0u64;
        let mut total = 0u128;
        for _ in 0..reps {
            let start = Instant::now();
            let walk = scalar_dirty.collect_dirty();
            let mut touched = 0u64;
            for &p in &walk {
                if scalar_pt.take_dirty(p as usize) {
                    touched += 1;
                }
            }
            total += start.elapsed().as_nanos();
            checksum = checksum.wrapping_add(black_box(touched));
            for &p in &walk {
                scalar_pt.set_dirty(p as usize);
            }
        }
        (total as f64 / f64::from(reps), checksum)
    };

    // Discovery scan (§5.4 hardware mode): find every PTE-dirty page.
    let discovery_opt = time_ns(reps, || pt.iter_dirty_pages().map(|p| p.0).sum());
    let discovery_base = time_ns(reps, || scalar_pt.collect_dirty().iter().sum());

    // Budget check: how many pages are dirty right now.
    let count_opt = time_ns(reps, || pt.dirty_count() as u64);
    let count_base = time_ns(reps, || scalar_pt.dirty_count() as u64);

    // DirtySet invariant recount.
    let inv_opt = time_ns(reps, || u64::from(dirty.check_invariants().is_ok()));
    let inv_base = time_ns(reps, || u64::from(scalar_dirty.check_invariants()));

    // Fault + flush lifecycle over every dirty page: in-flight, complete,
    // re-dirty (the per-page budget bookkeeping on the write/flush path).
    // `black_box(&mut ...)` between transitions on BOTH models: the
    // round-trip leaves state unchanged, so without the barrier LLVM
    // folds either side into a load-and-check — timing an optimizer
    // artifact, not the mark path.
    let fault_opt = time_ns(reps, || {
        for &p in &picked {
            let page = PageId(p as u64);
            black_box(&mut dirty).mark_in_flight(page);
            black_box(&mut dirty).mark_clean(page);
            black_box(&mut dirty).mark_dirty(page);
        }
        dirty.dirty_count()
    });
    let fault_base = time_ns(reps, || {
        for &p in &picked {
            black_box(&mut scalar_dirty).mark_in_flight(p);
            black_box(&mut scalar_dirty).mark_clean(p);
            black_box(&mut scalar_dirty).mark_dirty(p);
        }
        scalar_dirty.dirty_count
    });

    // Cross-thread dirty publication (the parallel runtime's per-epoch
    // sweep): push every dirty leaf word into a shared bitmap, read the
    // global count, retract. The optimized path is what the parallel
    // engine runs — `AtomicBitmap2L::publish_words`, a shadow-diffed
    // batch store over the full word range (unchanged chunks skipped,
    // dense fallback past the diff threshold, summary/run/count updates
    // batched); the baseline is what you'd do without it — a mutex
    // around a flat word vector, with every count a full popcount scan.
    let stride = pages.div_ceil(64);
    let mut word_bits = vec![0u64; stride];
    for &p in &picked {
        word_bits[p / 64] |= 1u64 << (p % 64);
    }
    let words: Vec<(usize, u64)> = word_bits
        .iter()
        .enumerate()
        .filter(|(_, &bits)| bits != 0)
        .map(|(w, &bits)| (w, bits))
        .collect();
    let shared = AtomicBitmap2L::new(pages);
    let zero_bits = vec![0u64; stride];
    let mut shadow = vec![0u64; stride];
    let publish_opt = time_ns(reps, || {
        shared.publish_words(0, &word_bits, &mut shadow);
        let count = shared.count();
        shared.publish_words(0, &zero_bits, &mut shadow);
        count
    });
    let mutex_words = Mutex::new(vec![0u64; pages.div_ceil(64)]);
    let publish_base = time_ns(reps, || {
        {
            let mut guard = mutex_words.lock().unwrap();
            for &(w, bits) in &words {
                guard[w] = bits;
            }
        }
        let count = {
            let guard = mutex_words.lock().unwrap();
            guard.iter().map(|w| u64::from(w.count_ones())).sum()
        };
        let mut guard = mutex_words.lock().unwrap();
        for &(w, _) in &words {
            guard[w] = 0;
        }
        drop(guard);
        count
    });
    assert_eq!(publish_opt.1, publish_base.1, "published counts diverged");

    // Cross-check: both models must agree on the population they timed.
    assert_eq!(epoch_opt.1, epoch_base.1, "walk touch counts diverged");
    assert_eq!(
        discovery_opt.1, discovery_base.1,
        "discovery scans diverged"
    );
    assert_eq!(dirty.dirty_count() as usize, target);

    Cell {
        pages,
        density,
        layout,
        dirty_pages: target,
        epoch_walk: (epoch_opt.0, epoch_base.0),
        discovery: (discovery_opt.0, discovery_base.0),
        dirty_count: (count_opt.0, count_base.0),
        invariants: (inv_opt.0, inv_base.0),
        fault_flush: (fault_opt.0, fault_base.0),
        atomic_publish: (publish_opt.0, publish_base.0),
    }
}

fn speedup(pair: (f64, f64)) -> f64 {
    if pair.0 > 0.0 {
        pair.1 / pair.0
    } else {
        f64::INFINITY
    }
}

fn cell_json(c: &Cell) -> String {
    format!(
        "    {{\"pages\": {}, \"density\": {}, \"layout\": \"{}\", \"dirty_pages\": {}, \
         \"epoch_walk_ns_optimized\": {:.1}, \"epoch_walk_ns_baseline\": {:.1}, \"epoch_walk_speedup\": {:.2}, \
         \"discovery_ns_optimized\": {:.1}, \"discovery_ns_baseline\": {:.1}, \"discovery_speedup\": {:.2}, \
         \"dirty_count_ns_optimized\": {:.1}, \"dirty_count_ns_baseline\": {:.1}, \"dirty_count_speedup\": {:.2}, \
         \"invariants_ns_optimized\": {:.1}, \"invariants_ns_baseline\": {:.1}, \"invariants_speedup\": {:.2}, \
         \"fault_flush_ns_optimized\": {:.1}, \"fault_flush_ns_baseline\": {:.1}, \
         \"atomic_publish_ns_optimized\": {:.1}, \"atomic_publish_ns_baseline\": {:.1}, \"atomic_publish_speedup\": {:.2}}}",
        c.pages,
        c.density,
        c.layout.name(),
        c.dirty_pages,
        c.epoch_walk.0,
        c.epoch_walk.1,
        speedup(c.epoch_walk),
        c.discovery.0,
        c.discovery.1,
        speedup(c.discovery),
        c.dirty_count.0,
        c.dirty_count.1,
        speedup(c.dirty_count),
        c.invariants.0,
        c.invariants.1,
        speedup(c.invariants),
        c.fault_flush.0,
        c.fault_flush.1,
        c.atomic_publish.0,
        c.atomic_publish.1,
        speedup(c.atomic_publish),
    )
}

fn report_json(mode: &str, cells: &[Cell]) -> String {
    let headline_pages = if mode == "quick" {
        QUICK_PAGES
    } else {
        HEADLINE_PAGES
    };
    let headline = cells
        .iter()
        .find(|c| {
            c.pages == headline_pages && c.density == GATE_DENSITY && c.layout == Layout::Random
        })
        .expect("the sweep always contains the headline cell");
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"wallclock\",\n");
    out.push_str("  \"schema_version\": 2,\n");
    let meta = telemetry::RunMeta::new("wallclock", "host", &format!("mode={mode}"), None);
    out.push_str(&format!(
        "  \"meta\": {},\n",
        viyojit_bench::meta_json(&meta)
    ));
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(
        "  \"note\": \"ns figures are host wall-clock per operation; baseline_* times an \
         embedded scalar reference reproducing the pre-bitmap byte-per-page implementation \
         on the same page population in the same run\",\n",
    );
    out.push_str(&format!(
        "  \"headline\": {{\"pages\": {}, \"density\": {}, \"epoch_walk_ns_baseline\": {:.1}, \
         \"epoch_walk_ns_optimized\": {:.1}, \"epoch_walk_speedup\": {:.2}}},\n",
        headline.pages,
        headline.density,
        headline.epoch_walk.1,
        headline.epoch_walk.0,
        speedup(headline.epoch_walk),
    ));
    out.push_str("  \"cells\": [\n");
    let rows: Vec<String> = cells.iter().map(cell_json).collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Pulls `key` out of the committed artifact's cell for (`pages`,
/// `density`). The artifact is our own line-per-cell format, so a line
/// scan is sufficient — no JSON parser needed.
fn extract_cell_value(text: &str, pages: usize, key: &str) -> Option<f64> {
    let pages_tag = format!("\"pages\": {pages},");
    let density_tag = format!("\"density\": {GATE_DENSITY},");
    for line in text.lines() {
        if line.contains(&pages_tag) && line.contains(&density_tag) {
            let rest = &line[line.find(&format!("\"{key}\":"))? + key.len() + 3..];
            let end = rest
                .find(|c: char| c != ' ' && c != '-' && c != '.' && !c.is_ascii_digit())
                .unwrap_or(rest.len());
            return rest[..end].trim().parse().ok();
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out_path = Some(args.get(i).expect("--out needs a path").clone());
            }
            "--check" => {
                i += 1;
                check_path = Some(args.get(i).expect("--check needs a path").clone());
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: wallclock [--quick] [--out FILE] [--check COMMITTED_JSON]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // The gate always runs on the small configuration.
    if check_path.is_some() {
        quick = true;
    }

    let (configs, reps): (Vec<(usize, f64, Layout)>, u32) = if quick {
        (
            vec![
                (QUICK_PAGES, GATE_DENSITY, Layout::Random),
                (QUICK_PAGES, FAULT_GATE_DENSITY, Layout::Random),
                (QUICK_PAGES, UNIFORM_DENSITY, Layout::UniformRuns),
            ],
            5,
        )
    } else {
        let mut configs = Vec::new();
        for &pages in &[QUICK_PAGES, HEADLINE_PAGES, 33_554_432] {
            for &density in &[0.0001, 0.001, 0.01, 0.1, 0.25, 0.5] {
                configs.push((pages, density, Layout::Random));
            }
            configs.push((pages, UNIFORM_DENSITY, Layout::UniformRuns));
        }
        (configs, 3)
    };

    let mut cells = Vec::new();
    for &(pages, density, layout) in &configs {
        eprintln!(
            "measuring {pages} pages at density {density} ({}) ...",
            layout.name()
        );
        cells.push(measure_cell(pages, density, layout, reps));
    }

    let mode = if quick { "quick" } else { "full" };
    let json = report_json(mode, &cells);
    print!("{json}");
    if let Some(path) = &out_path {
        std::fs::write(path, &json).expect("write artifact");
        eprintln!("wrote {path}");
    }

    if let Some(path) = &check_path {
        let mut failed = false;
        let committed = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read committed artifact {path}: {e}"));
        let committed_ns = extract_cell_value(&committed, QUICK_PAGES, "epoch_walk_ns_optimized")
            .expect("committed artifact lacks the quick gate cell");
        let fresh = cells
            .iter()
            .find(|c| c.pages == QUICK_PAGES && c.density == GATE_DENSITY)
            .expect("quick sweep contains the gate cell");
        let fresh_per_page = fresh.epoch_walk.0 / fresh.pages as f64;
        let committed_per_page = committed_ns / QUICK_PAGES as f64;
        eprintln!(
            "gate: fresh epoch-walk {:.4} ns/page vs committed {:.4} ns/page (limit {REGRESSION_FACTOR}x)",
            fresh_per_page, committed_per_page
        );
        if fresh_per_page > committed_per_page * REGRESSION_FACTOR {
            eprintln!("FAIL: epoch-walk hot path regressed more than {REGRESSION_FACTOR}x");
            failed = true;
        }
        // Density-adaptive dispatch must never lose to the scalar model:
        // every cell's epoch walk, against its own in-run baseline (so
        // runner speed cancels), must be at least break-even.
        for c in &cells {
            let s = speedup(c.epoch_walk);
            eprintln!(
                "gate: epoch-walk speedup {s:.2}x at density {} ({}) (limit >= 1.0x)",
                c.density,
                c.layout.name()
            );
            if s < 1.0 {
                eprintln!(
                    "FAIL: epoch walk slower than the scalar baseline at density {} ({})",
                    c.density,
                    c.layout.name()
                );
                failed = true;
            }
        }
        // The per-page mark path must not drown in bitmap-tier
        // maintenance at high density.
        let fault = cells
            .iter()
            .find(|c| c.density == FAULT_GATE_DENSITY && c.layout == Layout::Random)
            .expect("quick sweep contains the fault/flush gate cell");
        let ratio = fault.fault_flush.0 / fault.fault_flush.1.max(f64::MIN_POSITIVE);
        eprintln!(
            "gate: fault/flush {ratio:.2}x of scalar baseline at density {FAULT_GATE_DENSITY} \
             (limit <= {FAULT_FLUSH_FACTOR}x)"
        );
        if ratio > FAULT_FLUSH_FACTOR {
            eprintln!(
                "FAIL: fault/flush lifecycle more than {FAULT_FLUSH_FACTOR}x the scalar baseline"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("gate: OK");
    }
}
