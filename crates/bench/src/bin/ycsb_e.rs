//! YCSB-E — the paper's future work, implemented.
//!
//! §6.1: "We could not run YCSB-E because it requires cross key
//! transactions which we do not support for now. We wish to add this to
//! our NV-DRAM based Redis in the future." This reproduction's store
//! carries a persistent skip-list index, so the scan workload (95% short
//! range scans, 5% inserts) runs like the other five.
//!
//! Expected shape: scans are read-dominated, but every scan stamps the
//! LRU field of each visited entry header, so E dirties metadata pages
//! faster than C — overhead lands between C and the write-heavy
//! workloads and decays with budget like the rest of Fig. 7.

use viyojit_bench::{
    gb_units_to_pages, row, run_baseline, run_viyojit, ExperimentConfig, Report, BUDGET_SWEEP_GB,
};
use workloads::YcsbWorkload;

fn main() {
    let mut report = Report::stdout_csv();
    report.section("YCSB-E (future work) — scan throughput vs dirty budget");
    report.columns(&[
        "system",
        "budget_gb",
        "budget_pct_of_heap",
        "throughput_kops",
        "overhead_pct",
        "scan_p99_us",
    ]);

    let cfg = ExperimentConfig {
        // Scans visit up to 100 records per op; scale the op count down to
        // keep record-touches comparable to the other workloads.
        operations: 40_000,
        ..ExperimentConfig::for_workload(YcsbWorkload::E)
    };
    let heap_units = cfg.initial_heap_gb_units();
    let baseline = run_baseline(&cfg);
    row!(
        report,
        "NV-DRAM,,,{:.1},0.0,{:.1}",
        baseline.throughput_kops,
        baseline.latencies.scan.percentile(99.0).as_nanos() as f64 / 1e3,
    );

    for &gb in &BUDGET_SWEEP_GB {
        let result = run_viyojit(&cfg, gb_units_to_pages(gb));
        row!(
            report,
            "Viyojit,{:.0},{:.0},{:.1},{:.1},{:.1}",
            gb,
            100.0 * gb / heap_units,
            result.throughput_kops,
            result.overhead_vs(&baseline),
            result.latencies.scan.percentile(99.0).as_nanos() as f64 / 1e3,
        );
    }
}
