//! Fig. 2: data written per interval as a fraction of total volume size,
//! for 1-minute, 10-minute, and 1-hour intervals, across the four
//! datacenter applications' volumes (synthetic stand-ins for the Microsoft
//! traces; see DESIGN.md's substitution table).
//!
//! Expected shape: for a majority of volumes, even the worst 1-hour
//! interval writes less than 15% of the volume.

use sim_clock::SimDuration;
use trace_analysis::worst_interval_write_fraction;
use viyojit_bench::{note, row, Report};
use workloads::{paper_trace_suite, TraceGenerator};

fn main() {
    let mut report = Report::stdout_csv();
    report.section("Fig. 2 — worst-interval data written (% of volume size)");
    report.columns(&[
        "app",
        "volume",
        "one_minute_pct",
        "ten_minutes_pct",
        "one_hour_pct",
    ]);

    let intervals = [
        SimDuration::from_secs(60),
        SimDuration::from_secs(600),
        SimDuration::from_secs(3600),
    ];

    let mut volumes_total = 0;
    let mut volumes_under_15pct = 0;
    for app in paper_trace_suite() {
        for (vi, vol) in app.volumes.iter().enumerate() {
            let fractions: Vec<f64> = intervals
                .iter()
                .map(|&ivl| {
                    let events = TraceGenerator::new(vol, app.duration, 0xF162 + vi as u64);
                    100.0 * worst_interval_write_fraction(events, ivl, vol.pages)
                })
                .collect();
            row!(
                report,
                "{},{},{:.2},{:.2},{:.2}",
                app.app.name(),
                vol.name,
                fractions[0],
                fractions[1],
                fractions[2]
            );
            volumes_total += 1;
            if fractions[2] < 15.0 {
                volumes_under_15pct += 1;
            }
        }
    }

    note!(
        report,
        "volumes with worst one-hour write fraction < 15%: {volumes_under_15pct}/{volumes_total} \
         (paper: \"for a majority of the scenarios, the fraction of data written is less than 15%\")"
    );
}
