//! §6.3 extension: battery as a first-class, ballooned resource.
//!
//! Two co-located tenants with anti-correlated write phases share one
//! battery. A static 50/50 split wastes the idle tenant's share exactly
//! when the busy tenant needs it; the ballooning broker reallocates the
//! dirty budget each rebalance period and harvests the statistical
//! multiplexing the paper predicts.

use mem_sim::PAGE_SIZE;
use sim_clock::{Clock, CostModel, SimDuration};
use ssd_sim::SsdConfig;
use viyojit::{BalloonedCluster, NvHeap, TenantId, Viyojit, ViyojitConfig};
use viyojit_bench::{note, row, Report};

const PAGE: u64 = PAGE_SIZE as u64;
const TOTAL_BUDGET: u64 = 512;
/// The busy tenant rewrites this working set every epoch. It fits the
/// ballooned share (~480 pages) but not a static half (256 pages) — the
/// regime where lending the idle tenant's budget pays off.
const HOT_SET: u64 = 400;
const PHASES: u64 = 40;
const EPOCHS_PER_PHASE: u64 = 25;
/// Rebalance period in epochs.
const REBALANCE_EVERY: u64 = 5;

fn make_tenant(clock: &Clock) -> Viyojit {
    Viyojit::new(
        4096,
        // The broker assigns the real share after construction.
        ViyojitConfig::builder(1)
            .total_pages(4096)
            .build()
            .expect("valid tenant configuration"),
        clock.clone(),
        CostModel::calibrated(),
        SsdConfig::datacenter(),
    )
}

/// Runs the anti-correlated two-tenant workload; returns per-tenant
/// (stalls, stall time) and the virtual duration.
fn run(rebalance: bool) -> ([u64; 2], [SimDuration; 2], SimDuration) {
    let clock = Clock::new();
    let mut cluster = BalloonedCluster::new(
        vec![make_tenant(&clock), make_tenant(&clock)],
        TOTAL_BUDGET,
        16,
    );
    let regions = [
        cluster
            .tenant_mut(TenantId(0))
            .map(PAGE * 3000)
            .expect("map 0"),
        cluster
            .tenant_mut(TenantId(1))
            .map(PAGE * 3000)
            .expect("map 1"),
    ];

    let t0 = clock.now();
    let mut trickle = [0u64; 2];
    let mut epoch_count = 0u64;
    for phase in 0..PHASES {
        let busy = (phase % 2) as usize;
        for _ in 0..EPOCHS_PER_PHASE {
            // The busy tenant rewrites its hot set; it stays performant
            // only if the whole set can remain dirty.
            for page in 0..HOT_SET {
                cluster
                    .tenant_mut(TenantId(busy))
                    .write(regions[busy], page * PAGE, &[phase as u8; 64])
                    .expect("busy write");
            }
            // The idle tenant trickles over cold pages.
            let idle = 1 - busy;
            let page = HOT_SET + trickle[idle] % 2000;
            trickle[idle] += 1;
            cluster
                .tenant_mut(TenantId(idle))
                .write(regions[idle], page * PAGE, &[phase as u8; 64])
                .expect("idle write");
            clock.advance(SimDuration::from_millis(1));
            epoch_count += 1;
            if rebalance && epoch_count.is_multiple_of(REBALANCE_EVERY) {
                cluster.rebalance();
                cluster.validate();
            }
        }
    }
    let duration = clock.now() - t0;
    let stalls = [
        cluster.tenant(TenantId(0)).stats().budget_stalls,
        cluster.tenant(TenantId(1)).stats().budget_stalls,
    ];
    let stall_time = [
        cluster.tenant(TenantId(0)).stats().stall_time,
        cluster.tenant(TenantId(1)).stats().stall_time,
    ];
    (stalls, stall_time, duration)
}

fn main() {
    let mut report = Report::stdout_csv();
    report.section("§6.3 extension — static battery split vs ballooning (anti-correlated tenants)");
    report.columns(&[
        "scheme",
        "stalls_t0",
        "stalls_t1",
        "stall_ms_total",
        "virtual_duration_s",
    ]);

    let (static_stalls, static_time, static_dur) = run(false);
    row!(
        report,
        "static 50/50,{},{},{},{:.2}",
        static_stalls[0],
        static_stalls[1],
        (static_time[0] + static_time[1]).as_millis(),
        static_dur.as_secs_f64()
    );
    let (balloon_stalls, balloon_time, balloon_dur) = run(true);
    row!(
        report,
        "ballooned,{},{},{},{:.2}",
        balloon_stalls[0],
        balloon_stalls[1],
        (balloon_time[0] + balloon_time[1]).as_millis(),
        balloon_dur.as_secs_f64()
    );

    let static_ms = (static_time[0] + static_time[1]).as_millis();
    let balloon_ms = (balloon_time[0] + balloon_time[1]).as_millis();
    if balloon_ms < static_ms {
        note!(
            report,
            "ballooning removed {:.0}% of stall time by lending the idle tenant's budget \
             to the busy one",
            100.0 * (static_ms - balloon_ms) as f64 / static_ms.max(1) as f64
        );
    } else {
        note!(
            report,
            "no multiplexing benefit observed at these parameters"
        );
    }
}
