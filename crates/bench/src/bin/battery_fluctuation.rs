//! §8 "Handling battery cell failures" end-to-end: a Viyojit instance
//! rides a battery through three years of aging, discharge cycles, and
//! daily temperature swings. The budget governor re-derives the dirty
//! budget at every sample, the manager flushes down when capacity drops,
//! and durability is proven by a simulated power failure at every step.
//!
//! The scenario is backend-generic: by default it runs the software
//! write-protection tracker (the paper's §8 setting); pass `mmu` as the
//! first argument to drive the same battery life through the §5.4
//! hardware-assisted backend instead. Pass `capacity-drop` to run the
//! abrupt cell-failure scenario instead: an injected 50% capacity drop
//! trips the degradation governor, whose emergency budget shrink stalls
//! writers until the dirty population fits the halved budget.

use battery_sim::{Battery, BatteryConfig, BudgetGovernor, HealthModel, PowerModel};
use mem_sim::PAGE_SIZE;
use sim_clock::{Clock, CostModel, SimDuration};
use ssd_sim::SsdConfig;
use viyojit::{
    DegradationConfig, DegradationGovernor, DegradedMode, DirtyTracker, Engine, FaultConfig,
    FaultPlan, MmuAssisted, NvHeap, SoftwareWalk, Viyojit, ViyojitConfig,
};
use viyojit_bench::{note, row, Report};

const FLUSH_BW: u64 = 2_000_000_000;

fn run_backend<B: DirtyTracker>(report: &mut Report) {
    let power = PowerModel::datacenter_server(0.064);
    let mut governor = BudgetGovernor::new(
        Battery::new(BatteryConfig::with_capacity_joules(12.0)),
        power,
        FLUSH_BW,
        HealthModel::datacenter_default(),
    );
    let initial = governor.current_budget().pages().max(1);

    let mut nv = Engine::<B>::new(
        16_384,
        ViyojitConfig::builder(initial)
            .total_pages(16_384)
            .build()
            .expect("valid governor-derived configuration"),
        Clock::new(),
        CostModel::calibrated(),
        SsdConfig::datacenter(),
    );
    let region = nv.map(12_000 * 4096).expect("map");

    let mut all_survived = true;
    let mut cursor = 0u64;
    // Sample every 90 days, plus day zero at the coolest (06:00) and
    // hottest (noon) hours to show the diurnal swing.
    for &(day, label_hours) in &[
        (0u64, 6u64),
        (0, 12),
        (90, 12),
        (180, 12),
        (365, 12),
        (548, 12),
        (730, 12),
        (913, 12),
        (1095, 12),
    ] {
        let elapsed = SimDuration::from_secs(day * 24 * 3600 + label_hours * 3600)
            .saturating_sub(governor.age());
        let budget = governor.advance(elapsed).pages().max(1);
        nv.set_dirty_budget(budget);

        // Ongoing workload between samples.
        for _ in 0..2_000u64 {
            nv.write(region, (cursor % 12_000) * 4096, &[day as u8; 64])
                .expect("write");
            cursor += 7;
        }
        governor.record_discharge();

        let failure = nv.power_failure();
        let survives = failure.survives(governor.battery(), &PowerModel::datacenter_server(0.064));
        all_survived &= survives;
        nv.recover();
        row!(
            report,
            "{}.{:02},{:.3},{},{},{}",
            day,
            label_hours,
            governor.battery().health(),
            budget,
            nv.dirty_count(),
            survives
        );
    }

    note!(
        report,
        "every simulated failure across the battery's life was covered: {all_survived} \
         (the §8 alternative to over-provisioning for worst-case aging)"
    );
}

/// The abrupt cell-failure scenario: a seeded fault plan halves the
/// battery's capacity mid-run; the degradation governor sees the reported
/// health collapse and shrinks the dirty budget through the
/// stall-until-safe path, restoring `dirty_count <= budget` before any
/// further write is admitted. A powered power failure then proves the
/// halved battery still covers the shrunk obligation, and a full recovery
/// of the gauge restores the nominal budget.
fn run_capacity_drop(report: &mut Report) {
    const BUDGET: u64 = 128;
    let power = PowerModel::datacenter_server(0.064);
    let ssd_config = SsdConfig::datacenter();
    // Provision the battery 4x the §5.1 need so it survives the flush
    // even at half capacity (the governor halves the budget in step).
    let needed = ssd_config
        .drain_time(BUDGET * PAGE_SIZE as u64)
        .as_secs_f64()
        * power.total_watts();
    let mut battery = Battery::new(
        BatteryConfig::with_capacity_joules(needed * 4.0).with_depth_of_discharge(1.0),
    );

    let mut nv = Viyojit::new(
        4_096,
        ViyojitConfig::with_budget_pages(BUDGET),
        Clock::new(),
        CostModel::calibrated(),
        ssd_config,
    );
    let mut governor = DegradationGovernor::new(BUDGET, DegradationConfig::default());
    let region = nv.map(1_024 * PAGE_SIZE as u64).expect("map");

    // A fault plan that fires a 50% capacity drop the first time the
    // battery is polled; everything else stays off.
    let mut fault_config = FaultConfig::none();
    fault_config.capacity_drop_rate = 1.0;
    fault_config.capacity_drop_factor = 0.5;
    let plan = FaultPlan::seeded(7, fault_config);

    fn emit(
        report: &mut Report,
        phase: &str,
        nv: &Viyojit,
        battery: &Battery,
        governor: &DegradationGovernor,
    ) {
        row!(
            report,
            "{phase},{:.2},{},{},{},{},{}",
            battery.health(),
            governor.current_budget(),
            nv.dirty_count(),
            nv.stats().budget_stalls,
            matches!(governor.mode(), DegradedMode::Degraded(_)),
            nv.check_invariants().is_ok(),
        );
    }

    // Dirty the heap up to the nominal budget.
    for i in 0..BUDGET {
        nv.write(region, (i * 5 % 1_024) * PAGE_SIZE as u64, &[1u8; 64])
            .expect("write");
    }
    emit(report, "nominal", &nv, &battery, &governor);

    // The cell fails: capacity halves, the governor degrades, and the
    // budget shrink stalls writers until the dirty population fits.
    let new_health = battery
        .apply_capacity_drop(&plan)
        .expect("the plan fires a capacity drop");
    let shrunk = nv.govern_degradation(&mut governor, battery.reported_health(&plan));
    assert_eq!(shrunk, Some(BUDGET / 2), "50% health -> 50% budget");
    assert!(new_health < 0.55, "below the governor's entry threshold");
    assert!(
        nv.dirty_count() <= BUDGET / 2,
        "the shrink stalls until the dirty population fits the new budget"
    );
    nv.check_invariants().expect("degraded-mode invariants");
    emit(report, "after_drop", &nv, &battery, &governor);

    // The halved battery must still cover the halved obligation.
    let failure = nv.power_failure_powered(&battery, &power);
    assert!(failure.all_pages_accounted());
    nv.recover();
    row!(
        report,
        "powered_failure,{:.2},{},{},{},{},{:?}",
        battery.health(),
        governor.current_budget(),
        failure.dirty_pages,
        failure.pages_lost,
        failure.all_pages_accounted(),
        failure.outcome,
    );

    // The pack is replaced: reported health recovers, the governor exits
    // degraded mode and restores the nominal budget.
    battery.set_health(1.0);
    let restored = nv.govern_degradation(&mut governor, battery.reported_health(&plan));
    assert_eq!(restored, Some(BUDGET));
    emit(report, "recovered", &nv, &battery, &governor);

    note!(
        report,
        "an injected 50% capacity drop halves the budget through the \
         stall-until-safe path and full recovery restores it — the §8 \
         re-derivation, executed under fault injection"
    );
}

fn main() {
    let mut report = Report::stdout_csv();
    let arg = std::env::args().nth(1);
    if arg.as_deref() == Some("capacity-drop") {
        report.section("§8 — abrupt battery capacity drop and the degradation governor");
        report.columns(&[
            "phase",
            "health",
            "budget_pages",
            "dirty_pages",
            "budget_stalls",
            "degraded",
            "invariants_ok",
        ]);
        run_capacity_drop(&mut report);
        return;
    }
    let mmu = arg.as_deref() == Some("mmu");
    if mmu {
        report.section(
            "§8 — dirty budget tracking battery health over 3 years (MMU-assisted backend)",
        );
    } else {
        report.section("§8 — dirty budget tracking battery health over 3 years");
    }
    report.columns(&[
        "day",
        "health",
        "budget_pages",
        "dirty_after_adjust",
        "failure_survives",
    ]);
    if mmu {
        run_backend::<MmuAssisted>(&mut report);
    } else {
        run_backend::<SoftwareWalk>(&mut report);
    }
}
