//! §8 "Handling battery cell failures" end-to-end: a Viyojit instance
//! rides a battery through three years of aging, discharge cycles, and
//! daily temperature swings. The budget governor re-derives the dirty
//! budget at every sample, the manager flushes down when capacity drops,
//! and durability is proven by a simulated power failure at every step.
//!
//! The scenario is backend-generic: by default it runs the software
//! write-protection tracker (the paper's §8 setting); pass `mmu` as the
//! first argument to drive the same battery life through the §5.4
//! hardware-assisted backend instead.

use battery_sim::{Battery, BatteryConfig, BudgetGovernor, HealthModel, PowerModel};
use sim_clock::{Clock, CostModel, SimDuration};
use ssd_sim::SsdConfig;
use viyojit::{DirtyTracker, Engine, MmuAssisted, NvHeap, SoftwareWalk, ViyojitConfig};
use viyojit_bench::{note, row, Report};

const FLUSH_BW: u64 = 2_000_000_000;

fn run_backend<B: DirtyTracker>(report: &mut Report) {
    let power = PowerModel::datacenter_server(0.064);
    let mut governor = BudgetGovernor::new(
        Battery::new(BatteryConfig::with_capacity_joules(12.0)),
        power,
        FLUSH_BW,
        HealthModel::datacenter_default(),
    );
    let initial = governor.current_budget().pages().max(1);

    let mut nv = Engine::<B>::new(
        16_384,
        ViyojitConfig::builder(initial)
            .total_pages(16_384)
            .build()
            .expect("valid governor-derived configuration"),
        Clock::new(),
        CostModel::calibrated(),
        SsdConfig::datacenter(),
    );
    let region = nv.map(12_000 * 4096).expect("map");

    let mut all_survived = true;
    let mut cursor = 0u64;
    // Sample every 90 days, plus day zero at the coolest (06:00) and
    // hottest (noon) hours to show the diurnal swing.
    for &(day, label_hours) in &[
        (0u64, 6u64),
        (0, 12),
        (90, 12),
        (180, 12),
        (365, 12),
        (548, 12),
        (730, 12),
        (913, 12),
        (1095, 12),
    ] {
        let elapsed = SimDuration::from_secs(day * 24 * 3600 + label_hours * 3600)
            .saturating_sub(governor.age());
        let budget = governor.advance(elapsed).pages().max(1);
        nv.set_dirty_budget(budget);

        // Ongoing workload between samples.
        for _ in 0..2_000u64 {
            nv.write(region, (cursor % 12_000) * 4096, &[day as u8; 64])
                .expect("write");
            cursor += 7;
        }
        governor.record_discharge();

        let failure = nv.power_failure();
        let survives = failure.survives(governor.battery(), &PowerModel::datacenter_server(0.064));
        all_survived &= survives;
        nv.recover();
        row!(
            report,
            "{}.{:02},{:.3},{},{},{}",
            day,
            label_hours,
            governor.battery().health(),
            budget,
            nv.dirty_count(),
            survives
        );
    }

    note!(
        report,
        "every simulated failure across the battery's life was covered: {all_survived} \
         (the §8 alternative to over-provisioning for worst-case aging)"
    );
}

fn main() {
    let mut report = Report::stdout_csv();
    let mmu = std::env::args().nth(1).as_deref() == Some("mmu");
    if mmu {
        report.section(
            "§8 — dirty budget tracking battery health over 3 years (MMU-assisted backend)",
        );
    } else {
        report.section("§8 — dirty budget tracking battery health over 3 years");
    }
    report.columns(&[
        "day",
        "health",
        "budget_pages",
        "dirty_after_adjust",
        "failure_survives",
    ]);
    if mmu {
        run_backend::<MmuAssisted>(&mut report);
    } else {
        run_backend::<SoftwareWalk>(&mut report);
    }
}
