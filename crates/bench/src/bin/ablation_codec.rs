//! §7 extension: compression, deduplication, and Mondrian-style
//! sub-page flushing of copy-out traffic.
//!
//! "Viyojit can also perform dirty tracking and limiting at a finer
//! byte-level granularity using Mondrian Memory Protection ... The write
//! bandwidth to secondary storage could be further reduced by using
//! compression and de-duplication [50, 68]." This harness runs YCSB-A at
//! a tight budget under each reduction and reports the SSD traffic, wear,
//! and failure-flush energy each produces.
//!
//! Note: the YCSB driver writes constant-fill values, which compress far
//! better than production data; treat the RLE column as an upper bound
//! and the mechanism (and its zero throughput cost) as the result.

use battery_sim::PowerModel;
use sim_clock::{Clock, CostModel};
use ssd_sim::SsdConfig;
use viyojit::{FlushCodec, ViyojitConfig};
use viyojit_bench::{gb_units_to_pages, note, row, ExperimentConfig, Report};
use workloads::YcsbWorkload;

fn main() {
    let mut report = Report::stdout_csv();
    report.section("§7 extension — copy-out codecs (YCSB-A, 2 GB budget)");
    report.columns(&[
        "codec",
        "throughput_kops",
        "logical_mb",
        "physical_mb",
        "reduction_pct",
        "ssd_erases",
        "failure_flush_joules",
    ]);

    let budget = gb_units_to_pages(2.0);
    let power = PowerModel::datacenter_server(0.064);
    for (label, codec, sector) in [
        ("raw (paper)", FlushCodec::Raw, false),
        ("rle", FlushCodec::Rle, false),
        ("rle+dedup", FlushCodec::RleDedup, false),
        ("sector (mondrian)", FlushCodec::Raw, true),
        ("sector+rle+dedup", FlushCodec::RleDedup, true),
    ] {
        let cfg = ExperimentConfig::for_workload(YcsbWorkload::A);
        // Rebuild the run with the codec plumbed through a custom config.
        let config = ViyojitConfig::builder(budget)
            .epoch(cfg.epoch)
            .flush_codec(codec)
            .sector_flush(sector)
            .total_pages(cfg.total_nv_pages as u64)
            .build()
            .expect("valid codec-ablation configuration");
        let nv = viyojit::Viyojit::new(
            cfg.total_nv_pages,
            config,
            Clock::new(),
            CostModel::calibrated(),
            SsdConfig::datacenter(),
        );
        let result = viyojit_bench::run_prepared(&cfg, nv, Some(budget));
        let stats = result.stats.expect("viyojit run");
        let reduction =
            100.0 * (1.0 - stats.physical_bytes_flushed as f64 / stats.bytes_flushed.max(1) as f64);
        row!(
            report,
            "{label},{:.1},{:.1},{:.1},{:.1},{},{:.3}",
            result.throughput_kops,
            stats.bytes_flushed as f64 / 1e6,
            stats.physical_bytes_flushed as f64 / 1e6,
            reduction,
            result.ssd_erases,
            result.failure_flush_time.as_secs_f64() * power.total_watts(),
        );
    }

    note!(
        report,
        "expected: compression/dedup shrink SSD traffic, wear, and the battery energy a \
         failure flush draws, at no throughput cost — §7's 'better utilization of \
         provisioned battery capacity'"
    );
}
