//! Fig. 1: DRAM capacity growth out-paces lithium energy-density growth.
//!
//! Regenerates the two relative-growth curves (1990 baseline) with the
//! post-2015 region flagged as projected, plus the divergence ratio the
//! paper's argument rests on.

use battery_sim::density_series;
use viyojit_bench::{note, row, Report};

fn main() {
    let mut report = Report::stdout_csv();
    report.section("Fig. 1 — DRAM vs lithium density growth (relative to 1990)");
    report.columns(&[
        "year",
        "dram_relative",
        "lithium_relative",
        "divergence",
        "projected",
    ]);
    for p in density_series(1990, 2020, 2015) {
        row!(
            report,
            "{},{:.4e},{:.4},{:.4e},{}",
            p.year,
            p.dram_relative,
            p.lithium_relative,
            p.divergence(),
            p.projected
        );
    }

    let at_2015 = density_series(1990, 2015, 2015)
        .pop()
        .expect("non-empty series");
    note!(
        report,
        "paper anchors: 25-year DRAM growth {:.0}x (paper: >50,000x), lithium {:.1}x (paper: 3.3x)",
        at_2015.dram_relative,
        at_2015.lithium_relative
    );
}
