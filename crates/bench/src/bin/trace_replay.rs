//! Closing the loop on §3: replay the datacenter traces through a live
//! Viyojit instance, with the dirty budget sized from the §3 analysis
//! itself.
//!
//! The paper uses the trace analysis (Figs. 2-4) to argue that "battery
//! capacity corresponding to merely 15% of the total NV-DRAM file system
//! volume capacity would be more than sufficient for a majority of the
//! applications". This harness tests that end-to-end: for each volume, a
//! budget of 15% of the volume is provisioned and the trace's writes are
//! replayed against the pages themselves. The claim holds if replay
//! proceeds with negligible stalling for the majority of volumes — and
//! visibly fails for the §3 category-4 volumes (write-heavy, unique
//! pages) the paper itself flags as poor fits.

use mem_sim::PAGE_SIZE;
use sim_clock::{Clock, CostModel};
use ssd_sim::SsdConfig;
use viyojit::{NvHeap, Viyojit, ViyojitConfig};
use viyojit_bench::{note, row, Report};
use workloads::{paper_trace_suite, TraceGenerator};

const PAGE: u64 = PAGE_SIZE as u64;
/// Replay at 1/20 of the trace's op count (the full traces are hours of
/// virtual time); write fractions and skew are preserved.
const OPS_DIVISOR: u64 = 20;

fn main() {
    let mut report = Report::stdout_csv();
    report.section("§3 end-to-end — trace replay under a 15%-of-volume dirty budget");
    report.columns(&[
        "app",
        "volume",
        "writes",
        "budget_pages",
        "stall_ms",
        "stall_per_write_us",
        "verdict",
    ]);

    let mut fine = 0u32;
    let mut total = 0u32;
    for app in paper_trace_suite() {
        for (vi, vol) in app.volumes.iter().enumerate() {
            // Scale the volume to keep host time reasonable; ratios are
            // preserved.
            let pages = vol.pages / 8;
            let budget = (pages * 15 / 100).max(1);
            let clock = Clock::new();
            let mut nv = Viyojit::new(
                (pages + 64) as usize,
                ViyojitConfig::builder(budget)
                    .total_pages(pages + 64)
                    .build()
                    .expect("valid replay configuration"),
                clock.clone(),
                CostModel::calibrated(),
                SsdConfig::datacenter(),
            );
            let region = nv.map(pages * PAGE).expect("volume fits");

            let spec = workloads::VolumeSpec {
                pages,
                total_ops: vol.total_ops / OPS_DIVISOR,
                ..vol.clone()
            };
            let mut writes = 0u64;
            for event in TraceGenerator::new(&spec, app.duration, 0x3e9 + vi as u64) {
                clock.advance_to(event.at);
                if event.is_write {
                    nv.write(region, event.page * PAGE, &[0x5A; 64])
                        .expect("replayed write");
                    writes += 1;
                } else {
                    let mut buf = [0u8; 64];
                    nv.read(region, event.page * PAGE, &mut buf)
                        .expect("replayed read");
                }
            }
            let stall_ms = nv.stats().stall_time.as_millis();
            let per_write_us = nv.stats().stall_time.as_micros() as f64 / writes.max(1) as f64;
            // "Fine" = the budget absorbed the workload: the average write
            // stalled for less than one SSD program (30 us) — i.e. dirty
            // budgeting cost writers less than writing through would have.
            let ok = per_write_us < 20.0;
            total += 1;
            fine += ok as u32;
            row!(
                report,
                "{},{},{},{},{},{:.2},{}",
                app.app.name(),
                vol.name,
                writes,
                budget,
                stall_ms,
                per_write_us,
                if ok { "fine" } else { "strained" }
            );
        }
    }

    note!(
        report,
        "{fine}/{total} volumes replay cleanly under a 15% budget \
         (paper §3: sufficient \"for a majority of the applications\"; the strained \
         volumes are the write-heavy unique-page category the paper itself excludes)"
    );
}
