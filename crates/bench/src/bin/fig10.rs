//! Fig. 10: throughput overhead at equal battery *fractions* (11/23/46%)
//! for two initial heap sizes, 17.5 and 52.5 GB-units, on YCSB A/B/C/F.
//! (YCSB-D is excluded, as in the paper: its inserts outgrow the NV-DRAM
//! at the larger heap.)
//!
//! Expected shape: at the same budget fraction, the larger heap shows
//! *lower* overhead — write skew deepens as datasets grow (the Fig. 5
//! effect), which is the paper's argument that Viyojit gets better with
//! scale.

use viyojit_bench::{
    gb_units_to_pages, note, row, run_baseline, run_viyojit, ExperimentConfig, Report,
};
use workloads::YcsbWorkload;

fn main() {
    let mut report = Report::stdout_csv();
    report.section("Fig. 10 — overhead at equal budget fractions, 17.5 vs 52.5 GB heaps (%)");
    report.columns(&[
        "workload",
        "heap_gb",
        "budget_pct",
        "budget_gb",
        "overhead_pct",
    ]);

    // The paper's footnote 6 / legend: 11% -> 2 GB of 17.5 and 6 GB of
    // 52.5; 23% -> 4 / 12; 46% -> 8 / 24.
    let heap_budgets: [(f64, [f64; 3]); 2] = [(17.5, [2.0, 4.0, 8.0]), (52.5, [6.0, 12.0, 24.0])];
    let fractions = [11.0, 23.0, 46.0];

    let workloads = [
        YcsbWorkload::A,
        YcsbWorkload::B,
        YcsbWorkload::C,
        YcsbWorkload::F,
    ];
    let mut regressions = 0;
    let mut comparisons = 0;
    for workload in workloads {
        let mut per_fraction: Vec<Vec<f64>> = vec![Vec::new(); fractions.len()];
        for &(heap_gb, budgets) in &heap_budgets {
            let cfg = ExperimentConfig::for_heap_gb_units(workload, heap_gb);
            let baseline = run_baseline(&cfg);
            for (fi, &budget_gb) in budgets.iter().enumerate() {
                let result = run_viyojit(&cfg, gb_units_to_pages(budget_gb));
                let overhead = result.overhead_vs(&baseline);
                row!(
                    report,
                    "{},{},{:.0},{:.0},{:.1}",
                    workload.name(),
                    heap_gb,
                    fractions[fi],
                    budget_gb,
                    overhead
                );
                per_fraction[fi].push(overhead);
            }
        }
        for pair in &per_fraction {
            if let [small_heap, large_heap] = pair[..] {
                comparisons += 1;
                if large_heap > small_heap + 1.0 {
                    regressions += 1;
                }
            }
        }
    }

    note!(
        report,
        "larger heap at least as fast in {}/{comparisons} comparisons \
         (paper: overheads decrease with heap size)",
        comparisons - regressions
    );
}
