//! Fig. 3: pages required to account for 90/95/99% of all writes, as a
//! percentage of the pages *touched* (read or written) during the trace.
//!
//! Expected shape: volumes with skewed writes (Cosmos B/C/F) need a small
//! page fraction even at the 99th percentile; unique-write volumes
//! (category 1/4) approach 100%.

use trace_analysis::WriteSkewAnalysis;
use viyojit_bench::{row, Report};
use workloads::{paper_trace_suite, TraceGenerator};

fn main() {
    let mut report = Report::stdout_csv();
    report.section("Fig. 3 — pages for write percentiles (% of pages touched)");
    report.columns(&["app", "volume", "p90_pct", "p95_pct", "p99_pct"]);

    for app in paper_trace_suite() {
        for (vi, vol) in app.volumes.iter().enumerate() {
            let events = TraceGenerator::new(vol, app.duration, 0xF163 + vi as u64);
            let skew = WriteSkewAnalysis::from_events(events);
            row!(
                report,
                "{},{},{:.1},{:.1},{:.1}",
                app.app.name(),
                vol.name,
                skew.percent_of_touched(90.0),
                skew.percent_of_touched(95.0),
                skew.percent_of_touched(99.0),
            );
        }
    }
}
