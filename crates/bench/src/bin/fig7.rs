//! Fig. 7: throughput of YCSB A/B/C/D/F under Viyojit as the dirty budget
//! sweeps from 2 GB-units (11% of the initial heap) to 18 GB-units (103%),
//! against the full-battery NV-DRAM baseline, plus the Fig. 7(f) summary
//! at 11/23/46%.
//!
//! Expected shape: Viyojit always at or below baseline; at the 11% budget
//! read-heavy workloads lose single-digit percent and write-heavy ones
//! ~20-30%; overhead decays monotonically and is near zero by the largest
//! budgets.

use viyojit_bench::{
    gb_units_to_pages, row, run_baseline, run_viyojit, ExperimentConfig, Report, BUDGET_SWEEP_GB,
};
use workloads::YcsbWorkload;

fn main() {
    let mut report = Report::stdout_csv();
    report.section("Fig. 7 — YCSB throughput vs dirty budget");
    report.columns(&[
        "workload",
        "system",
        "budget_gb",
        "budget_pct_of_heap",
        "throughput_kops",
        "overhead_pct",
    ]);

    let mut summary: Vec<(YcsbWorkload, Vec<f64>)> = Vec::new();
    for workload in YcsbWorkload::ALL {
        let cfg = ExperimentConfig::for_workload(workload);
        let heap_units = cfg.initial_heap_gb_units();
        let baseline = run_baseline(&cfg);
        row!(
            report,
            "{},NV-DRAM,,,{:.1},0.0",
            workload.name(),
            baseline.throughput_kops
        );

        let mut per_workload = Vec::new();
        for &gb in &BUDGET_SWEEP_GB {
            let result = run_viyojit(&cfg, gb_units_to_pages(gb));
            let overhead = result.overhead_vs(&baseline);
            row!(
                report,
                "{},Viyojit,{:.0},{:.0},{:.1},{:.1}",
                workload.name(),
                gb,
                100.0 * gb / heap_units,
                result.throughput_kops,
                overhead
            );
            per_workload.push(overhead);
        }
        summary.push((workload, per_workload));
    }

    report.section("Fig. 7(f) — throughput overhead summary (%)");
    report.columns(&["workload", "at_11pct_2GB", "at_23pct_4GB", "at_46pct_8GB"]);
    for (workload, overheads) in &summary {
        // Sweep indices: 2 GB = 0, 4 GB = 1, 8 GB = 3.
        row!(
            report,
            "{},{:.1},{:.1},{:.1}",
            workload.name(),
            overheads[0],
            overheads[1],
            overheads[3]
        );
    }
}
