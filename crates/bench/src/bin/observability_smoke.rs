//! Observability-plane smoke test: a supervised parallel run with the
//! live exporter and the flight recorder armed, self-validating every
//! artifact the plane produces.
//!
//! The run spawns a 4-shard / 2-thread deployment with per-thread
//! telemetry shards, arms one `BudgetRound` crashpoint (absorbed by the
//! restart budget), and drives writes, steps, budget rounds, and an
//! emergency flush. It then asserts:
//!
//! - the Prometheus exposition file parses line-by-line and carries the
//!   engine counters, the per-shard gauges, and the wall-clock
//!   histograms;
//! - counters rendered from the merged registry are monotonic across
//!   two consecutive renders;
//! - the injected worker panic left a `postmortem-worker*.jsonl` black
//!   box whose header records the firing seam
//!   (`crash_signal:budget_round`).
//!
//! Usage: `observability_smoke [--dir DIR]` (default
//! `target/observability_smoke`). The exposition file and the black-box
//! dumps are left in DIR for `viyojit-trace postmortem` and for CI
//! artifact upload. Exits non-zero on any failed check.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

use mem_sim::PAGE_SIZE;
use sim_clock::{Clock, CostModel, SimDuration};
use ssd_sim::SsdConfig;
use telemetry::{render_prometheus, ExporterConfig, FlightRecorder, Report, RunMeta};
use viyojit::{
    CrashSchedule, CrashSignal, Crashpoint, FaultConfig, FaultPlan, NvHeap, ShardControlPlane,
    ShardDataPlane, ShardedViyojitBuilder, SoftwareWalk, Telemetry, ViyojitConfig,
};

const PAGE: u64 = PAGE_SIZE as u64;
const SHARDS: usize = 4;
const THREADS: usize = 2;
const PAGES_PER_SHARD: usize = 64;
const BUDGET: u64 = 32;
const SEED: u64 = 42;
const FAULT_RATE: f64 = 0.02;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One parsed exposition render: bare-name sample values plus each
/// declared metric's kind.
struct Exposition {
    values: BTreeMap<String, f64>,
    kinds: BTreeMap<String, String>,
}

/// Parses one exposition render: `# TYPE <name> <kind>` declarations and
/// `<name>[{labels}] <value>` samples. Returns the first grammar
/// violation as an error.
fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut values = BTreeMap::new();
    let mut kinds = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!("line {n}: malformed TYPE declaration: {line}"));
            };
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {n}: unknown metric kind '{kind}'"));
            }
            if !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            {
                return Err(format!("line {n}: name outside the alphabet: {name}"));
            }
            kinds.insert(name.to_string(), kind.to_string());
            continue;
        }
        let Some((name, value)) = line.rsplit_once(' ') else {
            return Err(format!("line {n}: sample without a value: {line}"));
        };
        if value.parse::<f64>().is_err() && !matches!(value, "NaN" | "+Inf" | "-Inf") {
            return Err(format!("line {n}: unparseable sample value: {line}"));
        }
        if !name.contains('{') {
            if let Ok(v) = value.parse::<f64>() {
                values.insert(name.to_string(), v);
            }
        }
    }
    Ok(Exposition { values, kinds })
}

fn check(report: &mut Report, what: &str, ok: bool, detail: &str) -> bool {
    report.row(&[what, if ok { "ok" } else { "FAIL" }, detail]);
    if !ok {
        eprintln!("FAIL: {what}: {detail}");
    }
    ok
}

fn find_worker_dump(dir: &Path) -> Option<PathBuf> {
    let entries = std::fs::read_dir(dir).ok()?;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("postmortem-worker") && name.ends_with(".jsonl") {
            return Some(entry.path());
        }
    }
    None
}

fn main() {
    // Injected crashes unwind with a CrashSignal payload and are caught
    // by the worker supervisor; keep backtraces for genuine failures.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<CrashSignal>().is_none() {
            default_hook(info);
        }
    }));

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir = PathBuf::from("target/observability_smoke");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dir" => {
                i += 1;
                dir = PathBuf::from(args.get(i).expect("--dir needs a path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: observability_smoke [--dir DIR]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    let exposition_path = dir.join("metrics.prom");

    let config_text = format!(
        "shards={SHARDS} threads={THREADS} pages_per_shard={PAGES_PER_SHARD} \
         budget={BUDGET} fault_rate={FAULT_RATE}"
    );
    let meta = RunMeta::new("observability_smoke", "Viyojit", &config_text, Some(SEED));
    let flight = FlightRecorder::new(&dir, meta).expect("create flight recorder");
    let crashes = CrashSchedule::armed(Crashpoint::BudgetRound, 1);
    let telemetry = Telemetry::recording(Clock::new());

    let (mut data, mut ctrl) = ShardedViyojitBuilder::new(
        SHARDS,
        PAGES_PER_SHARD,
        ViyojitConfig::with_budget_pages(BUDGET),
    )
    .backend::<SoftwareWalk>()
    .min_per_shard(2)
    .rebalance_period(SimDuration::from_millis(10))
    .clock(Clock::new())
    .cost_model(CostModel::free())
    .ssd(SsdConfig::instant())
    .telemetry(telemetry.clone())
    .faults(FaultPlan::seeded(SEED, FaultConfig::storm(FAULT_RATE)))
    .crashes(crashes.clone())
    .restart_budget(1)
    .threads(THREADS)
    .flight_recorder(flight)
    .exporter(ExporterConfig::to_file(
        &exposition_path,
        Duration::from_millis(10),
    ))
    .build_parallel()
    .expect("a valid observed configuration");

    // Phase 1: dirty every shard, then force the crash-armed budget
    // round. The worker absorbs the panic (restart budget 1), dumping
    // its black box on the way down.
    let regions: Vec<_> = (0..SHARDS)
        .map(|_| data.map(8 * PAGE).expect("map"))
        .collect();
    let mut rng = SEED;
    for &region in &regions {
        for page in 0..8u64 {
            data.write(region, page * PAGE, &[splitmix64(&mut rng) as u8; 64])
                .expect("write");
        }
    }
    data.sync().expect("drain staged writes");
    ctrl.rebalance()
        .expect("crash-armed round must be absorbed");
    assert!(
        crashes.fired().is_some(),
        "the armed budget_round seam never fired"
    );

    // Phase 2: post-respawn traffic, virtual steps (wall-clock step
    // samples), another round, and an emergency flush.
    for &region in &regions {
        for page in 0..8u64 {
            data.write(region, page * PAGE, &[splitmix64(&mut rng) as u8; 64])
                .expect("post-respawn write");
        }
        data.step(SimDuration::from_millis(5)).expect("step");
    }
    data.sync().expect("drain staged writes");
    ctrl.rebalance().expect("post-respawn round");
    let first_render = render_prometheus(&telemetry);
    let failure = ctrl.power_failure().expect("emergency flush");
    let second_render = render_prometheus(&telemetry);

    // Dropping the handles stops the exporter after one final render.
    drop(data);
    drop(ctrl);

    let mut report = Report::stdout_csv();
    report.section("observability smoke: exposition, monotonicity, black box");
    report.columns(&["check", "status", "detail"]);
    let mut ok = true;

    let text = std::fs::read_to_string(&exposition_path)
        .unwrap_or_else(|e| panic!("exposition file missing: {e}"));
    let parsed = parse_exposition(&text);
    ok &= check(
        &mut report,
        "exposition_parses",
        parsed.is_ok(),
        parsed.as_ref().err().map_or("", |e| e.as_str()),
    );
    if let Ok(exposition) = &parsed {
        for name in [
            "viyojit_faults_handled",
            "sharded_rebalances",
            "sharded_shard0_dirty_pages",
            "sharded_shard0_budget_pages",
            "viyojit_wall_budget_round_nanos_count",
            "viyojit_wall_step_nanos_count",
            "viyojit_wall_emergency_nanos_count",
        ] {
            ok &= check(
                &mut report,
                name,
                exposition.values.contains_key(name),
                "present in final exposition",
            );
        }
    }

    let before = parse_exposition(&first_render).expect("in-run render parses");
    let after = parse_exposition(&second_render).expect("post-failure render parses");
    let monotonic = before.values.iter().all(|(name, &v)| {
        before.kinds.get(name).map(String::as_str) != Some("counter")
            || after.values.get(name).is_some_and(|&w| w >= v)
    });
    ok &= check(
        &mut report,
        "counters_monotonic",
        monotonic,
        "merged counters never regress across renders",
    );
    ok &= check(
        &mut report,
        "emergency_flushed",
        failure.pages_flushed + failure.pages_lost >= failure.dirty_pages,
        "every dirty page flushed or accounted lost",
    );

    let dump = find_worker_dump(&dir);
    ok &= check(
        &mut report,
        "black_box_written",
        dump.is_some(),
        "postmortem-worker*.jsonl exists",
    );
    if let Some(dump) = &dump {
        let dump_text = std::fs::read_to_string(dump).expect("read black box");
        let mut lines = dump_text.lines();
        let header_ok = lines
            .next()
            .is_some_and(|l| l.starts_with("{\"type\":\"meta\""));
        let seam_ok = lines.next().is_some_and(|l| {
            l.starts_with("{\"type\":\"postmortem\"")
                && l.contains("\"trigger\":\"crash_signal:budget_round\"")
        });
        ok &= check(
            &mut report,
            "black_box_header",
            header_ok,
            "dump opens with the run-identity meta record",
        );
        ok &= check(
            &mut report,
            "black_box_seam",
            seam_ok,
            "dump names the firing crash seam",
        );
        println!("postmortem_dump,{}", dump.display());
    }
    println!("exposition_file,{}", exposition_path.display());

    if !ok {
        std::process::exit(1);
    }
}
