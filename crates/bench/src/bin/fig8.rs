//! Fig. 8: average and 99th-percentile latency of each workload's focus
//! operation (update / update / read / insert / read-modify-write) versus
//! the dirty budget, against the NV-DRAM baseline.
//!
//! Expected shape: Viyojit's p99 sits above the baseline at *every*
//! budget (write-protection faults never fully disappear), while the
//! average converges to the baseline once the budget covers the write
//! working set.

use viyojit_bench::{
    gb_units_to_pages, row, run_baseline, run_viyojit, ExperimentConfig, Report, BUDGET_SWEEP_GB,
};
use workloads::YcsbWorkload;

fn main() {
    let mut report = Report::stdout_csv();
    report.section("Fig. 8 — focus-op latency vs dirty budget (us)");
    report.columns(&[
        "workload",
        "focus_op",
        "system",
        "budget_gb",
        "avg_us",
        "p99_us",
    ]);

    let mut summary = Vec::new();
    for workload in YcsbWorkload::ALL {
        let cfg = ExperimentConfig::for_workload(workload);
        let baseline = run_baseline(&cfg);
        let base_focus = baseline.latencies.focus(workload);
        let base_avg = base_focus.mean();
        row!(
            report,
            "{},{},NV-DRAM,,{:.1},{:.1}",
            workload.name(),
            workload.focus_op(),
            base_avg.as_nanos() as f64 / 1e3,
            base_focus.percentile(99.0).as_nanos() as f64 / 1e3,
        );

        let mut overheads = Vec::new();
        for &gb in &BUDGET_SWEEP_GB {
            let result = run_viyojit(&cfg, gb_units_to_pages(gb));
            let focus = result.latencies.focus(workload);
            row!(
                report,
                "{},{},Viyojit,{:.0},{:.1},{:.1}",
                workload.name(),
                workload.focus_op(),
                gb,
                focus.mean().as_nanos() as f64 / 1e3,
                focus.percentile(99.0).as_nanos() as f64 / 1e3,
            );
            overheads
                .push(100.0 * (focus.mean().as_nanos() as f64 / base_avg.as_nanos() as f64 - 1.0));
        }
        summary.push((workload, overheads));
    }

    report.section("Fig. 8(f) — average focus-op latency overhead summary (%)");
    report.columns(&[
        "workload",
        "focus_op",
        "at_11pct_2GB",
        "at_23pct_4GB",
        "at_46pct_8GB",
    ]);
    for (workload, overheads) in &summary {
        row!(
            report,
            "{},{},{:.1},{:.1},{:.1}",
            workload.name(),
            workload.focus_op(),
            overheads[0],
            overheads[1],
            overheads[3]
        );
    }
}
