//! Fig. 4: pages required to account for 90/95/99% of all writes, as a
//! percentage of the *total* pages in the volume.
//!
//! Expected shape: the same trends as Fig. 3, but uniformly lower, since
//! the total volume is larger than the touched set.

use trace_analysis::WriteSkewAnalysis;
use viyojit_bench::{row, Report};
use workloads::{paper_trace_suite, TraceGenerator};

fn main() {
    let mut report = Report::stdout_csv();
    report.section("Fig. 4 — pages for write percentiles (% of total volume pages)");
    report.columns(&["app", "volume", "p90_pct", "p95_pct", "p99_pct"]);

    for app in paper_trace_suite() {
        for (vi, vol) in app.volumes.iter().enumerate() {
            // Same seed as fig3 so the two figures describe one trace.
            let events = TraceGenerator::new(vol, app.duration, 0xF163 + vi as u64);
            let skew = WriteSkewAnalysis::from_events(events);
            row!(
                report,
                "{},{},{:.1},{:.1},{:.1}",
                app.app.name(),
                vol.name,
                skew.percent_of_total(90.0, vol.pages),
                skew.percent_of_total(95.0, vol.pages),
                skew.percent_of_total(99.0, vol.pages),
            );
        }
    }
}
