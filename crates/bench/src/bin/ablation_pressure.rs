//! §5.3 ablation: fixed vs adaptive proactive-copy thresholds under a
//! bursty writer.
//!
//! §5.3's argument: "If the threshold is very close to the dirty budget, a
//! burst of new dirty pages would cause high write latencies. On the other
//! hand, if the threshold is too low, Viyojit would unnecessarily copy
//! data to secondary storage" (IO contention + SSD wear). Steady YCSB
//! arrivals cannot distinguish these regimes — the failure modes appear
//! under *bursts*, so this harness drives an explicit burst pattern: every
//! millisecond, a hot set is rewritten and a batch of fresh cold pages is
//! dirtied.
//!
//! Expected shape: tiny fixed slack stalls writers on every burst; huge
//! fixed slack evicts the hot set each epoch (extra faults and SSD
//! copy-out, i.e. wear); the paper's adaptive EWMA threshold tracks the
//! burst size and avoids both.

use mem_sim::PAGE_SIZE;
use sim_clock::{Clock, CostModel, SimDuration};
use ssd_sim::SsdConfig;
use viyojit::{NvHeap, ThresholdPolicy, Viyojit, ViyojitConfig};
use viyojit_bench::{note, row, Report};

const PAGE: u64 = PAGE_SIZE as u64;
const BUDGET: u64 = 512;
/// Hot pages, rewritten every epoch — must stay dirty for good performance.
const HOT_PAGES: u64 = 200;
/// Steady trickle of fresh cold pages per epoch.
const COLD_TRICKLE: u64 = 4;
/// Burst of fresh cold pages arriving every `BURST_PERIOD` epochs.
const COLD_BURST: u64 = 100;
const BURST_PERIOD: u64 = 10;
const EPOCHS: u64 = 4_000;

fn run(policy: ThresholdPolicy) -> (f64, u64, u64, u64, u64) {
    let clock = Clock::new();
    let mut nv = Viyojit::new(
        4096,
        ViyojitConfig::builder(BUDGET)
            .threshold_policy(policy)
            .total_pages(4096)
            .build()
            .expect("valid burst-harness configuration"),
        clock.clone(),
        CostModel::calibrated(),
        SsdConfig::datacenter(),
    );
    let region = nv.map(PAGE * 3000).expect("region fits");
    let t0 = clock.now();
    let mut ops = 0u64;
    let mut next_cold = 0u64;
    for epoch in 0..EPOCHS {
        for h in 0..HOT_PAGES {
            nv.write(region, (2000 + h) * PAGE, &[epoch as u8; 64])
                .expect("hot write");
            ops += 1;
        }
        let cold_count = if epoch % BURST_PERIOD == 0 {
            COLD_TRICKLE + COLD_BURST
        } else {
            COLD_TRICKLE
        };
        for _ in 0..cold_count {
            nv.write(region, (next_cold % 1900) * PAGE, &[epoch as u8; 64])
                .expect("cold write");
            next_cold += 1;
            ops += 1;
        }
        clock.advance(SimDuration::from_millis(1));
    }
    let secs = (clock.now() - t0).as_secs_f64();
    let stats = nv.stats();
    (
        ops as f64 / secs / 1e3,
        stats.budget_stalls,
        stats.stall_time.as_millis(),
        nv.ssd_stats().bytes_written / 1_000_000,
        stats.faults_handled,
    )
}

fn main() {
    let mut report = Report::stdout_csv();
    report.section("§5.3 ablation — fixed vs adaptive copy thresholds under bursts");
    report.columns(&[
        "threshold",
        "throughput_kops",
        "budget_stalls",
        "stall_ms",
        "ssd_mb_written",
        "faults",
    ]);

    let configs: [(&str, ThresholdPolicy); 5] = [
        ("fixed slack 1", ThresholdPolicy::FixedSlack(1)),
        ("fixed slack 16", ThresholdPolicy::FixedSlack(16)),
        ("fixed slack 128", ThresholdPolicy::FixedSlack(128)),
        ("fixed slack 400", ThresholdPolicy::FixedSlack(400)),
        ("adaptive (paper)", ThresholdPolicy::Adaptive),
    ];
    for (label, policy) in configs {
        let (kops, stalls, stall_ms, ssd_mb, faults) = run(policy);
        row!(
            report,
            "{label},{kops:.1},{stalls},{stall_ms},{ssd_mb},{faults}"
        );
    }

    note!(
        report,
        "expected: slack below the burst size ({COLD_BURST} new pages every {BURST_PERIOD} \
         epochs) stalls writers; slack far above it cannot keep the {HOT_PAGES}-page hot \
         set dirty (extra faults + SSD bytes = wear); the paper's adaptive threshold \
         avoids both"
    );
}
