//! Shard-count sweep for the sharded multi-tenant frontend: one battery's
//! dirty budget, split across 1/2/4/8 shards by the budget arbiter.
//!
//! A skewed multi-region workload (a few hot regions, many cold ones)
//! drives each configuration for the same number of operations. With one
//! shard the engine sees the global budget directly; with more shards the
//! arbiter must keep re-dividing the same budget toward whichever shards'
//! regions are hot. The interesting outputs are the stall counts (how
//! much of the budget each configuration actually gets to use where it is
//! needed) and the rebalance count, with the power-failure flush proving
//! the global bound held regardless of shard count.

use mem_sim::PAGE_SIZE;
use sim_clock::{Clock, CostModel, SimDuration};
use ssd_sim::SsdConfig;
use viyojit::{NvHeap, ShardedViyojit, ShardedViyojitBuilder, ViyojitConfig};
use viyojit_bench::{note, row, ProfileCapture, Report};

const PAGE: u64 = PAGE_SIZE as u64;
const GLOBAL_BUDGET: u64 = 512;
const MIN_PER_SHARD: u64 = 16;
const PAGES_PER_SHARD: usize = 4096;
const REGIONS: u64 = 16;
const REGION_PAGES: u64 = 256;
const OPS: u64 = 60_000;
/// Writes between 1 ms clock advances (the epoch/rebalance heartbeat).
const OPS_PER_TICK: u64 = 200;

/// Deterministic xorshift64*; the bench must not depend on ambient
/// randomness.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

fn run(shards: usize) -> (u64, u64, u64, u64, u64, bool) {
    let clock = Clock::new();
    let capture = ProfileCapture::from_env(
        "shard_scaling",
        &format!("s{shards}"),
        "Sharded-Viyojit",
        &format!(
            "shards={shards} pages_per_shard={PAGES_PER_SHARD} budget={GLOBAL_BUDGET} \
             min_per_shard={MIN_PER_SHARD} ops={OPS}"
        ),
        None,
        &clock,
    );
    let mut nv: ShardedViyojit = ShardedViyojitBuilder::new(
        shards,
        PAGES_PER_SHARD,
        ViyojitConfig::builder(GLOBAL_BUDGET)
            .total_pages(PAGES_PER_SHARD as u64)
            .build()
            .expect("valid shard configuration"),
    )
    .min_per_shard(MIN_PER_SHARD)
    .rebalance_period(SimDuration::from_millis(5))
    .clock(clock.clone())
    .cost_model(CostModel::calibrated())
    .ssd(SsdConfig::datacenter())
    .build_sequential()
    .expect("valid shard configuration");
    if let Some(capture) = &capture {
        capture.attach(&mut nv);
    }

    let regions: Vec<_> = (0..REGIONS)
        .map(|_| nv.map(REGION_PAGES * PAGE).expect("map region"))
        .collect();

    let mut rng = 0x9E37_79B9_7F4A_7C15u64;
    for op in 0..OPS {
        let r = xorshift(&mut rng);
        // 80% of writes land on the 3 hot regions, the rest spread cold.
        let region_idx = if r % 10 < 8 {
            (r >> 8) % 3
        } else {
            3 + (r >> 8) % (REGIONS - 3)
        };
        // Hot regions rewrite a compact working set; cold ones wander.
        let page = if region_idx < 3 {
            (r >> 24) % 160
        } else {
            (r >> 24) % REGION_PAGES
        };
        nv.write(
            regions[region_idx as usize],
            page * PAGE,
            &[(op % 251) as u8; 64],
        )
        .expect("write");
        if (op + 1).is_multiple_of(OPS_PER_TICK) {
            clock.advance(SimDuration::from_millis(1));
        }
    }

    let stats = nv.stats();
    let rebalances = nv.rebalances();
    let dirty = nv.dirty_count();
    let report = nv.power_failure();
    nv.check_invariants().expect("sharded invariants hold");
    if let Some(capture) = capture {
        capture.finish();
    }
    (
        stats.budget_stalls,
        stats.pages_dirtied,
        stats.stall_time.as_millis(),
        rebalances,
        dirty,
        report.dirty_pages <= GLOBAL_BUDGET,
    )
}

fn main() {
    let mut report = Report::stdout_csv();
    report.section("sharded frontend — shard-count sweep under one battery budget");
    report.columns(&[
        "shards",
        "budget_pages",
        "stalls",
        "stall_ms",
        "pages_dirtied",
        "rebalances",
        "dirty_at_failure",
        "budget_held",
    ]);

    let mut all_held = true;
    for &shards in &[1usize, 2, 4, 8] {
        let (stalls, dirtied, stall_ms, rebalances, dirty, held) = run(shards);
        all_held &= held;
        row!(
            report,
            "{shards},{GLOBAL_BUDGET},{stalls},{stall_ms},{dirtied},{rebalances},{dirty},{held}"
        );
    }

    note!(
        report,
        "the arbiter kept every configuration inside the single battery's {GLOBAL_BUDGET}-page \
         budget: {all_held}"
    );
}
