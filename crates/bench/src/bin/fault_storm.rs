//! Emergency-flush survival under fault injection: sweeps SSD/battery
//! fault rate x battery safety margin and reports the probability that
//! the executed emergency flush completes (no pages lost).
//!
//! Where `shutdown_time` measures how *long* a clean emergency flush
//! takes, this storm asks whether it *finishes at all* when the SSD
//! throws transient write errors, latency spikes, and device stalls while
//! the battery under-delivers its gauge. Every run is reproducible from
//! its seed: rerun with the same seed and the report is bit-identical
//! (the final section proves it in-run).
//!
//! Usage: `fault_storm [seeds-per-cell]` (default 10).

use battery_sim::{Battery, BatteryConfig, PowerModel};
use mem_sim::PAGE_SIZE;
use sim_clock::{Clock, CostModel};
use ssd_sim::SsdConfig;
use telemetry::{note, row, Report};
use viyojit::{
    FaultConfig, FaultPlan, FlushOutcome, NvHeap, PowerFailureReport, Viyojit, ViyojitConfig,
};
use viyojit_bench::ProfileCapture;

const TOTAL_PAGES: usize = 4_096;
const BUDGET_PAGES: u64 = 256;
/// Per-write fault probabilities. A 2 ms device stall costs ~235x one
/// page's conservative drain time, so even low-looking rates demand large
/// margins — the sweep is tuned to straddle that survival frontier.
const FAULT_RATES: [f64; 5] = [0.0, 0.002, 0.005, 0.01, 0.02];
const MARGINS: [f64; 4] = [1.0, 2.0, 4.0, 8.0];

/// A battery whose deliverable energy is `margin` x the energy the §5.1
/// provisioning rule says a full-budget flush needs.
fn battery_with_margin(margin: f64, power: &PowerModel, ssd: &SsdConfig) -> Battery {
    let budget_bytes = BUDGET_PAGES * PAGE_SIZE as u64;
    let needed = ssd.drain_time(budget_bytes).as_secs_f64() * power.total_watts();
    Battery::new(BatteryConfig::with_capacity_joules(needed * margin).with_depth_of_discharge(1.0))
}

/// One storm run: dirty up to the budget, pull the plug, race the flush.
fn run_once(fault_rate: f64, margin: f64, seed: u64) -> PowerFailureReport {
    let ssd_config = SsdConfig::datacenter();
    let power = PowerModel::datacenter_server(0.064);
    let battery = battery_with_margin(margin, &power, &ssd_config);

    let clock = Clock::new();
    let capture = ProfileCapture::from_env(
        "fault_storm",
        &format!("r{fault_rate}-m{margin}-s{seed}"),
        "Viyojit",
        &format!("rate={fault_rate} margin={margin} pages={TOTAL_PAGES} budget={BUDGET_PAGES}"),
        Some(seed),
        &clock,
    );
    let mut nv = Viyojit::new(
        TOTAL_PAGES,
        ViyojitConfig::with_budget_pages(BUDGET_PAGES),
        clock,
        CostModel::calibrated(),
        ssd_config,
    );
    if let Some(capture) = &capture {
        capture.attach(&mut nv);
    }
    nv.attach_faults(FaultPlan::seeded(seed, FaultConfig::storm(fault_rate)));
    let region = nv.map(2_048 * PAGE_SIZE as u64).expect("map");
    for i in 0..BUDGET_PAGES {
        nv.write(
            region,
            (i * 3 % 2_048) * PAGE_SIZE as u64,
            &[seed as u8; 64],
        )
        .expect("write");
    }
    let report = nv.power_failure_powered(&battery, &power);
    assert!(
        report.all_pages_accounted(),
        "every dirty page must be flushed or reported lost \
         (rate={fault_rate} margin={margin} seed={seed}: {report:?})"
    );
    if let Some(capture) = capture {
        capture.finish();
    }
    report
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seeds-per-cell must be a number"))
        .unwrap_or(10);
    let mut report = Report::stdout_csv();

    report.section("emergency-flush survival: fault rate x battery margin");
    report.columns(&[
        "fault_rate",
        "margin",
        "runs",
        "survival",
        "avg_pages_lost",
        "avg_retries",
        "worst_outcome",
    ]);
    for &rate in &FAULT_RATES {
        for &margin in &MARGINS {
            let mut survived = 0u64;
            let mut lost = 0u64;
            let mut retries = 0u64;
            let mut worst = FlushOutcome::Complete;
            for seed in 0..seeds {
                let r = run_once(rate, margin, seed);
                if r.outcome == FlushOutcome::Complete {
                    survived += 1;
                }
                lost += r.pages_lost;
                retries += r.retries;
                worst = worst.max(r.outcome);
            }
            row!(
                report,
                "{rate},{margin},{seeds},{:.2},{:.1},{:.1},{worst:?}",
                survived as f64 / seeds as f64,
                lost as f64 / seeds as f64,
                retries as f64 / seeds as f64,
            );
        }
    }

    report.section("seeded reproducibility: one storm run, twice");
    report.columns(&[
        "seed",
        "outcome",
        "dirty_pages",
        "pages_flushed",
        "pages_lost",
        "retries",
        "flush_ms",
        "energy_margin_j",
    ]);
    let seed = 42;
    let a = run_once(0.01, 2.0, seed);
    let b = run_once(0.01, 2.0, seed);
    assert_eq!(a, b, "the same seed must reproduce the same partial flush");
    row!(
        report,
        "{seed},{:?},{},{},{},{},{:.3},{:.3}",
        a.outcome,
        a.dirty_pages,
        a.pages_flushed,
        a.pages_lost,
        a.retries,
        a.flush_time.as_secs_f64() * 1e3,
        a.energy_margin_joules,
    );
    note!(
        report,
        "identical reports across reruns of seed {seed}; replay any cell with \
         FaultPlan::seeded(seed, FaultConfig::storm(rate))"
    );
}
