//! Wall-clock throughput of the sharded engine vs. thread count.
//!
//! Unlike `shard_scaling` (virtual-time, byte-identical golden), this
//! binary measures *host* time: the same skewed multi-region workload is
//! driven through the [`ShardDataPlane`] surface of the sequential
//! frontend (8 shards, one thread) and of the thread-parallel runtime at
//! 1/2/4/8 worker threads, and each configuration's operations-per-second
//! figure is recorded in `BENCH_shard_wallclock.json`. `host_cores` is
//! recorded alongside, because parallel speedup is only observable when
//! the host actually has cores to run the workers on — a 1-CPU container
//! honestly shows the messaging overhead instead, and the `--check` gate
//! therefore compares like-for-like throughput against the committed
//! artifact rather than asserting a speedup.
//!
//! Usage:
//!   shard_wallclock [--quick] [--out FILE] [--check COMMITTED_JSON]
//!
//! `--quick` runs the small CI configuration. `--check FILE` compares the
//! fresh sequential and 4-thread throughput against the committed
//! artifact and exits non-zero if either regressed more than
//! [`REGRESSION_FACTOR`]×.

use std::time::Instant;

use mem_sim::PAGE_SIZE;
use sim_clock::SimDuration;
use viyojit::{
    NvHeap, ShardControlPlane, ShardDataPlane, ShardedViyojitBuilder, ViyojitConfig, ViyojitError,
};

/// CI gate: fail if ops/s regresses past this factor under the committed
/// artifact (absorbs runner-to-runner noise).
const REGRESSION_FACTOR: f64 = 3.0;

const PAGE: u64 = PAGE_SIZE as u64;
const SHARDS: usize = 8;
const GLOBAL_BUDGET: u64 = 512;
const MIN_PER_SHARD: u64 = 16;
const PAGES_PER_SHARD: usize = 4096;
const REGIONS: u64 = 16;
const REGION_PAGES: u64 = 256;
/// Writes between 1 ms [`ShardDataPlane::step`]s (the rebalance
/// heartbeat, as in `shard_scaling`).
const OPS_PER_TICK: u64 = 200;

const FULL_OPS: u64 = 400_000;
const QUICK_OPS: u64 = 60_000;

/// Deterministic xorshift64*; the bench must not depend on ambient
/// randomness.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

fn builder() -> ShardedViyojitBuilder {
    ShardedViyojitBuilder::new(
        SHARDS,
        PAGES_PER_SHARD,
        ViyojitConfig::builder(GLOBAL_BUDGET)
            .total_pages(PAGES_PER_SHARD as u64)
            .build()
            .expect("valid shard configuration"),
    )
    .min_per_shard(MIN_PER_SHARD)
    .rebalance_period(SimDuration::from_millis(5))
}

/// Drives the skewed workload (80% of writes on 3 hot regions) through
/// any data plane, returning host-elapsed seconds for the timed section
/// (writes, steps, and the final drain).
fn drive<D: NvHeap + ShardDataPlane>(nv: &mut D, ops: u64) -> Result<f64, ViyojitError> {
    let regions: Vec<_> = (0..REGIONS)
        .map(|_| nv.map(REGION_PAGES * PAGE))
        .collect::<Result<_, _>>()?;
    let mut rng = 0x9E37_79B9_7F4A_7C15u64;
    let start = Instant::now();
    for op in 0..ops {
        let r = xorshift(&mut rng);
        let region_idx = if r % 10 < 8 {
            (r >> 8) % 3
        } else {
            3 + (r >> 8) % (REGIONS - 3)
        };
        let page = if region_idx < 3 {
            (r >> 24) % 160
        } else {
            (r >> 24) % REGION_PAGES
        };
        nv.write(
            regions[region_idx as usize],
            page * PAGE,
            &[(op % 251) as u8; 64],
        )?;
        if (op + 1).is_multiple_of(OPS_PER_TICK) {
            nv.step(SimDuration::from_millis(1))?;
        }
    }
    nv.sync()?;
    Ok(start.elapsed().as_secs_f64())
}

struct Cell {
    config: &'static str,
    threads: usize,
    ops: u64,
    elapsed_secs: f64,
    budget_held: bool,
}

impl Cell {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed_secs.max(f64::MIN_POSITIVE)
    }
}

fn run_sequential(ops: u64) -> Cell {
    let mut nv = builder()
        .build_sequential()
        .expect("valid shard configuration");
    let elapsed_secs = drive(&mut nv, ops).expect("the sequential run must not fail");
    let report = ShardControlPlane::power_failure(&mut nv).expect("sequential never fails");
    Cell {
        config: "sequential",
        threads: 0,
        ops,
        elapsed_secs,
        budget_held: report.dirty_pages <= GLOBAL_BUDGET,
    }
}

fn run_parallel(ops: u64, threads: usize) -> Cell {
    let (mut data, mut ctrl) = builder()
        .threads(threads)
        .build_parallel()
        .expect("valid shard configuration");
    let elapsed_secs = drive(&mut data, ops).expect("the parallel run must not fail");
    let report = ctrl.power_failure().expect("no shard thread died");
    Cell {
        config: "parallel",
        threads,
        ops,
        elapsed_secs,
        budget_held: report.dirty_pages <= GLOBAL_BUDGET,
    }
}

fn report_json(mode: &str, host_cores: usize, cells: &[Cell]) -> String {
    let sequential = cells
        .iter()
        .find(|c| c.config == "sequential")
        .expect("the sweep always runs the sequential reference");
    let headline = cells
        .iter()
        .find(|c| c.config == "parallel" && c.threads == 4)
        .expect("the sweep always runs the 4-thread cell");
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"shard_wallclock\",\n");
    out.push_str("  \"schema_version\": 1,\n");
    let meta = telemetry::RunMeta::new(
        "shard_wallclock",
        "Viyojit",
        &format!("mode={mode} shards={SHARDS}"),
        None,
    );
    out.push_str(&format!(
        "  \"meta\": {},\n",
        viyojit_bench::meta_json(&meta)
    ));
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    out.push_str(&format!("  \"shards\": {SHARDS},\n"));
    out.push_str(
        "  \"note\": \"ops/s are host wall-clock; speedup_vs_sequential is only meaningful \
         when host_cores covers the worker threads — on fewer cores the parallel cells \
         honestly show the channel/staging overhead, so the --check gate compares \
         like-for-like throughput against this artifact instead of asserting a speedup\",\n",
    );
    out.push_str(&format!(
        "  \"headline\": {{\"threads\": 4, \"ops_per_sec\": {:.1}, \
         \"speedup_vs_sequential\": {:.2}}},\n",
        headline.ops_per_sec(),
        headline.ops_per_sec() / sequential.ops_per_sec(),
    ));
    out.push_str("  \"cells\": [\n");
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"config\": \"{}\", \"threads\": {}, \"ops\": {}, \
                 \"elapsed_ms\": {:.1}, \"ops_per_sec\": {:.1}, \
                 \"speedup_vs_sequential\": {:.2}, \"budget_held\": {}}}",
                c.config,
                c.threads,
                c.ops,
                c.elapsed_secs * 1e3,
                c.ops_per_sec(),
                c.ops_per_sec() / sequential.ops_per_sec(),
                c.budget_held,
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Pulls `ops_per_sec` out of the committed artifact's cell for
/// (`config`, `threads`). The artifact is our own line-per-cell format,
/// so a line scan is sufficient — no JSON parser needed.
fn extract_ops_per_sec(text: &str, config: &str, threads: usize) -> Option<f64> {
    let config_tag = format!("\"config\": \"{config}\",");
    let threads_tag = format!("\"threads\": {threads},");
    for line in text.lines() {
        if line.contains(&config_tag) && line.contains(&threads_tag) {
            let rest = &line[line.find("\"ops_per_sec\":")? + "\"ops_per_sec\":".len()..];
            let end = rest
                .find(|c: char| c != ' ' && c != '-' && c != '.' && !c.is_ascii_digit())
                .unwrap_or(rest.len());
            return rest[..end].trim().parse().ok();
        }
    }
    None
}

fn gate(fresh: &Cell, committed: &str) -> bool {
    let Some(committed_ops) = extract_ops_per_sec(committed, fresh.config, fresh.threads) else {
        eprintln!(
            "FAIL: committed artifact lacks the {} ({} threads) cell",
            fresh.config, fresh.threads
        );
        return false;
    };
    let fresh_ops = fresh.ops_per_sec();
    eprintln!(
        "gate: {} ({} threads) fresh {:.1} ops/s vs committed {:.1} ops/s (limit {REGRESSION_FACTOR}x)",
        fresh.config, fresh.threads, fresh_ops, committed_ops
    );
    if fresh_ops * REGRESSION_FACTOR < committed_ops {
        eprintln!("FAIL: throughput regressed more than {REGRESSION_FACTOR}x");
        return false;
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out_path = Some(args.get(i).expect("--out needs a path").clone());
            }
            "--check" => {
                i += 1;
                check_path = Some(args.get(i).expect("--check needs a path").clone());
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: shard_wallclock [--quick] [--out FILE] [--check COMMITTED_JSON]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // The gate always runs on the small configuration.
    if check_path.is_some() {
        quick = true;
    }

    let ops = if quick { QUICK_OPS } else { FULL_OPS };
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut cells = Vec::new();
    eprintln!("measuring sequential ({SHARDS} shards, {ops} ops) ...");
    cells.push(run_sequential(ops));
    for &threads in &[1usize, 2, 4, 8] {
        eprintln!("measuring parallel ({threads} threads, {ops} ops) ...");
        cells.push(run_parallel(ops, threads));
    }
    assert!(
        cells.iter().all(|c| c.budget_held),
        "a configuration exceeded the global dirty budget at power failure"
    );

    let mode = if quick { "quick" } else { "full" };
    let json = report_json(mode, host_cores, &cells);
    print!("{json}");
    if let Some(path) = &out_path {
        std::fs::write(path, &json).expect("write artifact");
        eprintln!("wrote {path}");
    }

    if let Some(path) = &check_path {
        let committed = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read committed artifact {path}: {e}"));
        let seq_ok = gate(&cells[0], &committed);
        let par4 = cells
            .iter()
            .find(|c| c.config == "parallel" && c.threads == 4)
            .expect("the sweep always runs the 4-thread cell");
        let par_ok = gate(par4, &committed);
        if !(seq_ok && par_ok) {
            std::process::exit(1);
        }
        eprintln!("gate: OK");
    }
}
