//! §8 "Increased availability": bounding the dirty pages bounds the flush
//! time on shutdown.
//!
//! The paper's example: writing out 4 TB of DRAM at 4 GB/s takes ~17
//! minutes; a Viyojit dirty budget caps that at `budget / bandwidth`
//! regardless of DRAM size. This harness prints shutdown flush time vs
//! dirty budget at the paper's full (unscaled) capacities, plus the
//! battery energy each obligation demands.

use battery_sim::{DirtyBudget, PowerModel};
use viyojit_bench::{note, row, Report};

const GB: u64 = 1024 * 1024 * 1024;
const FLUSH_BANDWIDTH: u64 = 4_000_000_000; // 4 GB/s, the paper's figure

fn main() {
    let mut report = Report::stdout_csv();
    report.section("§8 — shutdown flush time and battery energy vs dirty budget (4 TB server)");
    report.columns(&[
        "dirty_budget_gb",
        "flush_time_s",
        "battery_joules_at_terminals",
        "vs_full_backup_pct",
    ]);

    let power = PowerModel::datacenter_server(4096.0);
    let full = DirtyBudget::from_bytes(4096 * GB);
    let full_time = full.flush_time(FLUSH_BANDWIDTH);

    for &budget_gb in &[16u64, 64, 128, 256, 512, 1024, 4096] {
        let budget = DirtyBudget::from_bytes(budget_gb * GB);
        let t = budget.flush_time(FLUSH_BANDWIDTH);
        let joules = t.as_secs_f64() * power.total_watts();
        row!(
            report,
            "{},{:.1},{:.0},{:.1}",
            budget_gb,
            t.as_secs_f64(),
            joules,
            100.0 * t.as_secs_f64() / full_time.as_secs_f64()
        );
    }

    note!(
        report,
        "full 4 TB backup: {:.1} minutes of flush ({:.0} kJ at the terminals) — the paper's \
         ~17-minute / ~300 kJ example; a 64 GB budget cuts shutdown to {:.0} s",
        full_time.as_secs_f64() / 60.0,
        full_time.as_secs_f64() * power.total_watts() / 1e3,
        DirtyBudget::from_bytes(64 * GB)
            .flush_time(FLUSH_BANDWIDTH)
            .as_secs_f64()
    );
}
