//! §5.4 ablation: the software write-protection implementation vs the
//! MMU-offloaded alternative.
//!
//! The paper attributes Viyojit's consistently elevated tail latency to
//! the traps its software tracking requires, and predicts a hardware
//! implementation "could eradicate such tail latency overheads". This
//! harness runs YCSB-A on both implementations across budgets and
//! compares throughput and the focus-op tail against the NV-DRAM
//! baseline.

use viyojit_bench::{
    gb_units_to_pages, note, row, run_baseline, run_mmu_assisted, run_viyojit, ExperimentConfig,
    Report,
};
use workloads::YcsbWorkload;

fn main() {
    let mut report = Report::stdout_csv();
    report.section("§5.4 ablation — software traps vs MMU offload (YCSB-A)");
    report.columns(&[
        "budget_gb",
        "system",
        "throughput_kops",
        "overhead_pct",
        "update_p99_us",
        "traps",
    ]);

    let cfg = ExperimentConfig::for_workload(YcsbWorkload::A);
    let baseline = run_baseline(&cfg);
    row!(
        report,
        ",NV-DRAM,{:.1},0.0,{:.1},0",
        baseline.throughput_kops,
        baseline.latencies.update.percentile(99.0).as_nanos() as f64 / 1e3,
    );

    for &gb in &[2.0, 4.0, 8.0, 18.0] {
        let budget = gb_units_to_pages(gb);
        for (run, label) in [
            (run_viyojit(&cfg, budget), "Viyojit-SW"),
            (run_mmu_assisted(&cfg, budget), "Viyojit-MMU"),
        ] {
            row!(
                report,
                "{:.0},{},{:.1},{:.1},{:.1},{}",
                gb,
                label,
                run.throughput_kops,
                run.overhead_vs(&baseline),
                run.latencies.update.percentile(99.0).as_nanos() as f64 / 1e3,
                run.stats.expect("tracked run").faults_handled,
            );
        }
    }

    note!(
        report,
        "expected: the MMU variant's trap count collapses (interrupts only at the \
         budget boundary), pulling its p99 toward the baseline, as §5.4 predicts"
    );
}
