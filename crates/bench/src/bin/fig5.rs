//! Fig. 5: under a Zipf write distribution, the fraction of pages needed
//! to cover a given write percentile shrinks as the total page population
//! grows — so bigger NV-DRAMs make the battery/DRAM decoupling *more*
//! attractive.

use trace_analysis::zipf_scaling_series;
use viyojit_bench::{note, row, Report};

fn main() {
    let mut report = Report::stdout_csv();
    report.section("Fig. 5 — Zipf page fraction per write percentile vs population size");
    report.columns(&[
        "total_pages",
        "p90_fraction",
        "p95_fraction",
        "p99_fraction",
    ]);

    let sizes = [10_000u64, 100_000, 1_000_000, 10_000_000];
    let pcts = [90.0, 95.0, 99.0];
    let series = zipf_scaling_series(&sizes, &pcts, 0.99);
    for chunk in series.chunks(pcts.len()) {
        row!(
            report,
            "{},{:.4},{:.4},{:.4}",
            chunk[0].total_pages,
            chunk[0].page_fraction,
            chunk[1].page_fraction,
            chunk[2].page_fraction
        );
    }

    let first = series.first().expect("non-empty series");
    let last = &series[series.len() - pcts.len()];
    note!(
        report,
        "p90 fraction shrinks {:.1}x as the population grows {}x",
        first.page_fraction / last.page_fraction,
        sizes[sizes.len() - 1] / sizes[0]
    );
}
