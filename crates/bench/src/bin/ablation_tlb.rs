//! §6.3 ablation: disable the TLB flush on epoch walks.
//!
//! Without the flush, dirty bits cached in the TLB hide re-writes from the
//! walker, the least-recently-updated history goes stale, and the copier
//! evicts *hot* pages. The paper measures throughput dropping "by more
//! than half in cases with low battery provisioning such as with 2 or 3 GB
//! dirty budget"; the cheap TLB flush is well worth it.

use viyojit_bench::{gb_units_to_pages, note, row, run_viyojit, ExperimentConfig, Report};
use workloads::YcsbWorkload;

fn main() {
    let mut report = Report::stdout_csv();
    report.section("§6.3 ablation — epoch walks with vs without TLB flushes (YCSB-A)");
    report.columns(&[
        "budget_gb",
        "flush_kops",
        "stale_kops",
        "slowdown_pct",
        "flush_faults",
        "stale_faults",
    ]);

    for &gb in &[2.0, 3.0, 4.0, 8.0] {
        let exact_cfg = ExperimentConfig::for_workload(YcsbWorkload::A);
        let stale_cfg = ExperimentConfig {
            tlb_flush_on_walk: false,
            ..ExperimentConfig::for_workload(YcsbWorkload::A)
        };
        let budget = gb_units_to_pages(gb);
        let exact = run_viyojit(&exact_cfg, budget);
        let stale = run_viyojit(&stale_cfg, budget);
        row!(
            report,
            "{:.0},{:.1},{:.1},{:.1},{},{}",
            gb,
            exact.throughput_kops,
            stale.throughput_kops,
            100.0 * (1.0 - stale.throughput_kops / exact.throughput_kops),
            exact.stats.expect("viyojit run").faults_handled,
            stale.stats.expect("viyojit run").faults_handled,
        );
    }

    note!(
        report,
        "expected: stale dirty bits degrade victim selection, multiplying faults and \
         cutting throughput hardest at the smallest budgets"
    );
}
