//! §3's conservative assumption, tested against a real file system.
//!
//! The paper's trace analysis cannot see which NV-DRAM pages the file
//! system actually touches, so it assumes the adversarial log-structured
//! worst case: *every* write dirties a unique page (Fig. 2 is computed
//! under that assumption). This harness replays each application's
//! busiest volume through `nvfs` — a real, update-in-place extent file
//! system on Viyojit — and compares the worst-hour dirty volume the
//! conservative bound predicts against what the file system actually
//! produces.
//!
//! Expected shape: the conservative bound always dominates; for skewed
//! volumes the real layout dirties far less (updates land on already-
//! dirty pages), so the paper's "<15% per hour" sizing is, as claimed,
//! conservative.

use mem_sim::PAGE_SIZE;
use nvfs::NvFileSystem;
use pheap::PHeap;
use sim_clock::{Clock, CostModel, SimDuration};
use ssd_sim::SsdConfig;
use viyojit::{Viyojit, ViyojitConfig};
use viyojit_bench::{note, row, Report};
use workloads::{paper_trace_suite, TraceGenerator};

/// Pages per file in the synthetic volume layout.
const PAGES_PER_FILE: u64 = 16;
/// Bytes written per trace write event.
const WRITE_BYTES: usize = 512;
const OPS_DIVISOR: u64 = 20;

fn main() {
    let mut report = Report::stdout_csv();
    report.section("§3 check — conservative unique-page bound vs a real file system (worst hour)");
    report.columns(&[
        "app",
        "volume",
        "conservative_pct_of_volume",
        "actual_pct_of_volume",
        "tightening",
    ]);

    for app in paper_trace_suite() {
        // The busiest volume of each application.
        let vol = app
            .volumes
            .iter()
            .max_by_key(|v| (v.total_ops as f64 * v.write_fraction) as u64)
            .expect("apps have volumes");
        let pages = vol.pages / 8;
        let clock = Clock::new();
        // Full budget: no copy-out churn, so dirty transitions count each
        // unique page once per measurement window.
        let nv = Viyojit::new(
            (pages + pages / 4 + 128) as usize,
            ViyojitConfig::builder(pages + pages / 4 + 128)
                .total_pages(pages + pages / 4 + 128)
                .build()
                .expect("valid full-budget configuration"),
            clock.clone(),
            CostModel::calibrated(),
            SsdConfig::datacenter(),
        );
        let heap =
            PHeap::format(nv, (pages + pages / 8 + 64) * PAGE_SIZE as u64).expect("volume fits");
        let mut fs = NvFileSystem::format(heap).expect("format");

        let spec = workloads::VolumeSpec {
            pages,
            total_ops: vol.total_ops / OPS_DIVISOR,
            ..vol.clone()
        };
        // Warm-up: production volumes pre-exist. Materialize every file
        // and extent (a one-time cost hour 0 should not be charged for),
        // then power-cycle so measurement starts from an all-clean image.
        let mut handles: std::collections::HashMap<u64, nvfs::FileId> =
            std::collections::HashMap::new();
        for file_no in 0..pages.div_ceil(PAGES_PER_FILE) {
            let file = fs
                .open_or_create(format!("f{file_no:06}").as_bytes())
                .expect("file");
            handles.insert(file_no, file);
            for p in 0..PAGES_PER_FILE.min(pages - file_no * PAGES_PER_FILE) {
                fs.write(file, p * PAGE_SIZE as u64, &[0xAA])
                    .expect("warmup");
            }
        }
        fs.nv_mut().power_failure();
        fs.nv_mut().recover();

        let hour = SimDuration::from_secs(3600).as_nanos();
        let mut hour_writes: Vec<u64> = vec![0];
        let mut hour_dirtied: Vec<u64> = Vec::new();
        let mut dirtied_at_hour_start = fs.nv().stats().pages_dirtied;
        let mut current_slot = 0usize;
        for event in TraceGenerator::new(&spec, app.duration, 0xF5 + vol.pages) {
            clock.advance_to(event.at);
            if !event.is_write {
                continue;
            }
            let slot = (event.at.as_nanos() / hour) as usize;
            if slot != current_slot {
                // Close the hour: unique pages dirtied = transition delta,
                // then power-cycle so the next hour counts fresh.
                hour_dirtied.push(fs.nv().stats().pages_dirtied - dirtied_at_hour_start);
                fs.nv_mut().power_failure();
                fs.nv_mut().recover();
                dirtied_at_hour_start = fs.nv().stats().pages_dirtied;
                hour_writes.resize(slot + 1, 0);
                current_slot = slot;
            }
            let file_no = event.page / PAGES_PER_FILE;
            let file = *handles.entry(file_no).or_insert_with(|| {
                fs.open_or_create(format!("f{file_no:06}").as_bytes())
                    .expect("file")
            });
            let offset = (event.page % PAGES_PER_FILE) * PAGE_SIZE as u64;
            fs.write(file, offset, &[0x11; WRITE_BYTES]).expect("write");
            hour_writes[current_slot] += 1;
        }
        hour_dirtied.push(fs.nv().stats().pages_dirtied - dirtied_at_hour_start);

        let conservative = hour_writes.iter().copied().max().unwrap_or(0).min(pages);
        let actual = hour_dirtied.iter().copied().max().unwrap_or(0).min(pages);
        row!(
            report,
            "{},{},{:.2},{:.2},{:.1}x",
            app.app.name(),
            vol.name,
            100.0 * conservative as f64 / pages as f64,
            100.0 * actual as f64 / pages as f64,
            conservative as f64 / actual.max(1) as f64,
        );
    }

    note!(
        report,
        "the conservative bound (every write = a fresh page) always dominates what the \
         update-in-place file system actually dirties, so §3's battery sizing holds with margin"
    );
}
