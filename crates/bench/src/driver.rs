//! The YCSB-on-KvStore experiment driver (paper §6.1's setup, scaled).

use crate::profile::ProfileCapture;
use kvstore::KvStore;
use pheap::PHeap;
use sim_clock::{Clock, CostModel, Histogram, SimDuration};
use ssd_sim::SsdConfig;
use viyojit::{
    MmuAssistedViyojit, NvStore, NvdramBaseline, TargetPolicy, Viyojit, ViyojitConfig, ViyojitStats,
};
use workloads::{YcsbGenerator, YcsbOp, YcsbWorkload};

/// Scale factor: 1 paper-GB of capacity = 1 MiB simulated = 256 pages.
pub const PAGES_PER_GB_UNIT: u64 = 256;
/// Scaled operation count (the paper runs 10 M).
pub const DEFAULT_OPS: u64 = 200_000;
/// Records per GB-unit of *heap*: each record occupies ~1.37 KiB of heap
/// (1 KiB value class in 16 KiB slab runs + 256 B metadata-header class +
/// table share), so a 1 MiB heap unit holds ~766 records.
pub const DEFAULT_RECORDS_PER_GB_UNIT: u64 = 766;
/// Value payload: with the 32 B node header and a 16 B key this lands an
/// entry exactly in the 1 KiB allocation class, like YCSB's 1 KB records.
pub const VALUE_BYTES: usize = 976;

/// The Fig. 7/8/9 dirty-budget sweep in paper-GB units (11% to 103% of
/// the 17.5 GB-unit initial heap).
pub const BUDGET_SWEEP_GB: [f64; 9] = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0];

/// Converts a paper-GB quantity (heap size, dirty budget) to pages.
pub fn gb_units_to_pages(gb_units: f64) -> u64 {
    (gb_units * PAGES_PER_GB_UNIT as f64).round() as u64
}

/// Full description of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The YCSB workload to drive.
    pub workload: YcsbWorkload,
    /// Records loaded before the measured phase (the "initial dataset").
    pub initial_records: u64,
    /// Measured operations.
    pub operations: u64,
    /// Total NV-DRAM pages (the paper's 60 GB -> 15,360 pages).
    pub total_nv_pages: usize,
    /// Workload generator seed.
    pub seed: u64,
    /// Virtual-time cost model.
    pub costs: CostModel,
    /// Backing SSD model.
    pub ssd: SsdConfig,
    /// Epoch length (§6.1: 1 ms).
    pub epoch: SimDuration,
    /// TLB flush on epoch walks (disable for the §6.3 ablation).
    pub tlb_flush_on_walk: bool,
    /// Victim-selection policy (LRU in the paper; others for ablations).
    pub policy: TargetPolicy,
    /// EWMA weight of the dirty-page-pressure predictor (§5.3: 0.75).
    pub pressure_alpha: f64,
}

impl ExperimentConfig {
    /// The paper's Fig. 7 setup for one workload: a 17.5 GB-unit initial
    /// heap inside a 60 GB-unit NV-DRAM, 200 K ops.
    pub fn for_workload(workload: YcsbWorkload) -> Self {
        Self::for_heap_gb_units(workload, 17.5)
    }

    /// The same setup with a different initial heap size (Fig. 10 runs
    /// 52.5 GB-units).
    pub fn for_heap_gb_units(workload: YcsbWorkload, heap_gb_units: f64) -> Self {
        ExperimentConfig {
            workload,
            initial_records: (heap_gb_units * DEFAULT_RECORDS_PER_GB_UNIT as f64) as u64,
            operations: DEFAULT_OPS,
            total_nv_pages: (60 * PAGES_PER_GB_UNIT) as usize,
            seed: 0x5c1_e4ce,
            costs: CostModel::calibrated(),
            ssd: SsdConfig::datacenter(),
            epoch: SimDuration::from_millis(1),
            tlb_flush_on_walk: true,
            policy: TargetPolicy::LeastRecentlyUpdated,
            pressure_alpha: 0.75,
        }
    }

    /// The initial dataset expressed in paper-GB units (what Fig. 7's
    /// upper x-axis normalizes budgets by).
    pub fn initial_heap_gb_units(&self) -> f64 {
        self.initial_records as f64 / DEFAULT_RECORDS_PER_GB_UNIT as f64
    }

    /// Bytes to map for the store's region: hash table + records (at their
    /// 1 KiB allocation class) + headroom for inserts and metadata.
    fn heap_bytes(&self) -> u64 {
        let buckets = self.initial_records.max(1).next_power_of_two();
        let table = buckets * 8 + 4096 * 4; // segments + dir + meta + superblock
        let expected_inserts = if matches!(self.workload, YcsbWorkload::D | YcsbWorkload::E) {
            self.operations * 6 / 100
        } else {
            0
        };
        // Per record: a 1 KiB value-class block (1032 B with its header,
        // 15 per 16 KiB slab run -> ~1.1 KiB effective), a 256 B
        // metadata-header block (~270 B effective), and a skip-list index
        // node (~100 B effective), with slab tail waste.
        let nodes = (self.initial_records + expected_inserts) * (1100 + 270 + 100);
        table + nodes + nodes / 20 + 64 * 1024
    }

    fn buckets(&self) -> u64 {
        self.initial_records.max(1).next_power_of_two()
    }
}

/// Latency histograms per operation type.
#[derive(Debug, Clone, Default)]
pub struct OpLatencies {
    /// GET operations.
    pub read: Histogram,
    /// Full-record overwrites.
    pub update: Histogram,
    /// New-record inserts (YCSB-D/E).
    pub insert: Histogram,
    /// Read-modify-writes (YCSB-F).
    pub rmw: Histogram,
    /// Range scans (YCSB-E).
    pub scan: Histogram,
}

impl OpLatencies {
    /// The operation type the paper's Fig. 8 plots for this workload.
    pub fn focus(&self, workload: YcsbWorkload) -> &Histogram {
        match workload {
            YcsbWorkload::A | YcsbWorkload::B => &self.update,
            YcsbWorkload::C => &self.read,
            YcsbWorkload::D => &self.insert,
            YcsbWorkload::E => &self.scan,
            YcsbWorkload::F => &self.rmw,
        }
    }
}

/// Measured outcome of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// "Viyojit" or "NV-DRAM" (the baseline).
    pub system: &'static str,
    /// The dirty budget, if the run used Viyojit.
    pub dirty_budget_pages: Option<u64>,
    /// Measured throughput in K-ops/sec of virtual time.
    pub throughput_kops: f64,
    /// Virtual duration of the measured phase.
    pub duration: SimDuration,
    /// Per-op-type latency histograms.
    pub latencies: OpLatencies,
    /// Bytes the copier wrote to the SSD during the measured phase.
    pub run_ssd_bytes: u64,
    /// Fig. 9's metric: (copy-out bytes + final whole-heap write-out) over
    /// the measured duration, in MB/s.
    pub avg_write_rate_mbps: f64,
    /// Viyojit runtime counters (None for the baseline).
    pub stats: Option<ViyojitStats>,
    /// Total erase-block cycles the run cost the SSD (wear).
    pub ssd_erases: u64,
    /// Hold-up time the end-of-run failure flush required (shrinks under
    /// the §7 codecs).
    pub failure_flush_time: SimDuration,
}

impl ExperimentResult {
    /// Throughput overhead of this run versus `baseline`, in percent
    /// (positive = slower than baseline).
    pub fn overhead_vs(&self, baseline: &ExperimentResult) -> f64 {
        100.0 * (1.0 - self.throughput_kops / baseline.throughput_kops)
    }
}

fn key_bytes(id: u64) -> Vec<u8> {
    format!("k{id:012}").into_bytes()
}

fn value_bytes(id: u64, generation: u8) -> Vec<u8> {
    vec![(id % 251) as u8 ^ generation; VALUE_BYTES]
}

/// Runs the measured YCSB phase against an already-constructed NV layer.
///
/// Generic over the public [`NvStore`] abstraction, so new store variants
/// (and telemetry-attached instances) need no driver changes.
pub fn run_on<H: NvStore>(cfg: &ExperimentConfig, nv: H, budget: Option<u64>) -> ExperimentResult {
    let mut nv = nv;
    let system = nv.system();
    let clock = nv.shared_clock();
    // Opt-in profiling capture (VIYOJIT_PROFILE=<dir>); constructs
    // nothing and attaches nothing when the variable is unset.
    let capture = ProfileCapture::from_env(
        &crate::profile::bench_name(),
        &format!(
            "{system}-{}-b{}",
            cfg.workload.name(),
            budget.map_or_else(|| "none".to_string(), |b| b.to_string())
        ),
        system,
        &format!("{cfg:?} budget={budget:?}"),
        None,
        &clock,
    );
    if let Some(capture) = &capture {
        capture.attach(&mut nv);
    }
    let heap = PHeap::format(nv, cfg.heap_bytes()).expect("heap fits the NV space");
    let mut kv = KvStore::create(heap, cfg.buckets()).expect("store creation");

    // Load phase (untimed, like YCSB's load stage).
    for id in 0..cfg.initial_records {
        kv.set(&key_bytes(id), &value_bytes(id, 0))
            .expect("load-phase set");
    }

    let mut gen = YcsbGenerator::new(cfg.workload, cfg.initial_records, cfg.seed);
    let mut latencies = OpLatencies::default();
    let t0 = clock.now();
    let ssd0 = kv.heap().heap().ssd_bytes_written();

    for _ in 0..cfg.operations {
        let start = clock.now();
        clock.advance(cfg.costs.app_op_base);
        match gen.next_op() {
            YcsbOp::Read(id) => {
                let _ = kv.get(&key_bytes(id)).expect("get");
                latencies.read.record(clock.now() - start);
            }
            YcsbOp::Update(id) => {
                kv.set(&key_bytes(id), &value_bytes(id, 1)).expect("update");
                latencies.update.record(clock.now() - start);
            }
            YcsbOp::Insert(id) => {
                kv.set(&key_bytes(id), &value_bytes(id, 2)).expect("insert");
                latencies.insert.record(clock.now() - start);
            }
            YcsbOp::ReadModifyWrite(id) => {
                let key = key_bytes(id);
                let mut v = kv
                    .get(&key)
                    .expect("rmw read")
                    .unwrap_or_else(|| value_bytes(id, 0));
                v[0] = v[0].wrapping_add(1);
                kv.set(&key, &v).expect("rmw write");
                latencies.rmw.record(clock.now() - start);
            }
            YcsbOp::Scan(id, len) => {
                let _ = kv.scan(&key_bytes(id), len as usize).expect("scan");
                latencies.scan.record(clock.now() - start);
            }
        }
    }

    let duration = clock.now() - t0;
    let run_ssd_bytes = kv.heap().heap().ssd_bytes_written() - ssd0;
    let heap_footprint = kv
        .heap_mut()
        .stats()
        .map(|s| s.bump)
        .unwrap_or(cfg.heap_bytes());
    let stats = kv.heap().heap().runtime_stats();
    let mut nv = kv.into_heap().into_inner();
    // Fig. 9 counts the end-of-experiment whole-heap write-out too, which
    // the baseline would also perform.
    let failure_flush_time = nv.final_flush();
    let ssd_erases = nv.ssd_erases();
    if let Some(capture) = capture {
        capture.finish();
    }
    let total_bytes = run_ssd_bytes + heap_footprint;
    let secs = duration.as_secs_f64();

    ExperimentResult {
        system,
        dirty_budget_pages: budget,
        throughput_kops: cfg.operations as f64 / secs / 1e3,
        duration,
        latencies,
        run_ssd_bytes,
        avg_write_rate_mbps: total_bytes as f64 / secs / 1e6,
        stats,
        ssd_erases,
        failure_flush_time,
    }
}

/// Runs the measured YCSB phase against a caller-constructed store
/// (for non-default configurations: codecs, policies, epochs, sharded
/// frontends). Any [`NvStore`] works.
pub fn run_prepared<H: NvStore>(
    cfg: &ExperimentConfig,
    nv: H,
    dirty_budget_pages: Option<u64>,
) -> ExperimentResult {
    run_on(cfg, nv, dirty_budget_pages)
}

/// Builds the validated store configuration for one experiment run.
fn store_config(cfg: &ExperimentConfig, dirty_budget_pages: u64) -> ViyojitConfig {
    ViyojitConfig::builder(dirty_budget_pages)
        .epoch(cfg.epoch)
        .tlb_flush_on_walk(cfg.tlb_flush_on_walk)
        .target_policy(cfg.policy)
        .pressure_alpha(cfg.pressure_alpha)
        .total_pages(cfg.total_nv_pages as u64)
        .build()
        .expect("valid experiment configuration")
}

/// Runs the experiment on Viyojit with the given dirty budget.
pub fn run_viyojit(cfg: &ExperimentConfig, dirty_budget_pages: u64) -> ExperimentResult {
    let config = store_config(cfg, dirty_budget_pages);
    let nv = Viyojit::new(
        cfg.total_nv_pages,
        config,
        Clock::new(),
        cfg.costs.clone(),
        cfg.ssd.clone(),
    );
    run_on(cfg, nv, Some(dirty_budget_pages))
}

/// Runs the experiment on the §5.4 MMU-assisted Viyojit variant.
pub fn run_mmu_assisted(cfg: &ExperimentConfig, dirty_budget_pages: u64) -> ExperimentResult {
    let config = store_config(cfg, dirty_budget_pages);
    let nv = MmuAssistedViyojit::new(
        cfg.total_nv_pages,
        config,
        Clock::new(),
        cfg.costs.clone(),
        cfg.ssd.clone(),
    );
    run_on(cfg, nv, Some(dirty_budget_pages))
}

/// Runs the experiment on the full-battery NV-DRAM baseline.
pub fn run_baseline(cfg: &ExperimentConfig) -> ExperimentResult {
    let nv = NvdramBaseline::new(
        cfg.total_nv_pages,
        Clock::new(),
        cfg.costs.clone(),
        cfg.ssd.clone(),
    );
    run_on(cfg, nv, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(workload: YcsbWorkload) -> ExperimentConfig {
        ExperimentConfig {
            initial_records: 2_048, // 2 GB-units of data
            operations: 6_000,
            total_nv_pages: 2_048,
            ..ExperimentConfig::for_workload(workload)
        }
    }

    #[test]
    fn baseline_beats_or_matches_viyojit() {
        let cfg = small(YcsbWorkload::A);
        let base = run_baseline(&cfg);
        let tight = run_viyojit(&cfg, 64);
        assert!(tight.throughput_kops <= base.throughput_kops * 1.001);
        assert!(tight.overhead_vs(&base) >= -0.1);
    }

    #[test]
    fn bigger_budgets_never_hurt_much() {
        let cfg = small(YcsbWorkload::A);
        let tight = run_viyojit(&cfg, 32);
        let loose = run_viyojit(&cfg, 1_024);
        assert!(
            loose.throughput_kops >= tight.throughput_kops * 0.98,
            "loose {} vs tight {}",
            loose.throughput_kops,
            tight.throughput_kops
        );
    }

    #[test]
    fn read_only_workload_has_low_overhead() {
        let cfg = small(YcsbWorkload::C);
        let base = run_baseline(&cfg);
        let viy = run_viyojit(&cfg, 128);
        let overhead = viy.overhead_vs(&base);
        assert!(
            overhead < 40.0,
            "C overhead should be modest: {overhead:.1}%"
        );
    }

    #[test]
    fn latency_focus_matches_the_papers_figure8() {
        let cfg = small(YcsbWorkload::F);
        let viy = run_viyojit(&cfg, 128);
        assert!(
            !viy.latencies.focus(YcsbWorkload::F).is_empty(),
            "RMW latencies recorded"
        );
        assert_eq!(viy.latencies.insert.len(), 0, "F never inserts");
    }

    #[test]
    fn write_rate_is_positive_and_finite() {
        let cfg = small(YcsbWorkload::B);
        let viy = run_viyojit(&cfg, 64);
        assert!(viy.avg_write_rate_mbps.is_finite());
        assert!(viy.avg_write_rate_mbps > 0.0);
    }

    #[test]
    fn results_are_deterministic() {
        let cfg = small(YcsbWorkload::A);
        let a = run_viyojit(&cfg, 64);
        let b = run_viyojit(&cfg, 64);
        assert_eq!(a.throughput_kops, b.throughput_kops);
        assert_eq!(a.run_ssd_bytes, b.run_ssd_bytes);
    }

    #[test]
    fn gb_unit_conversion_matches_scale() {
        assert_eq!(gb_units_to_pages(1.0), 256);
        assert_eq!(gb_units_to_pages(17.5), 4_480);
        assert_eq!(gb_units_to_pages(0.0), 0);
    }
}
