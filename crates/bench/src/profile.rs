//! Env-gated profiling capture for the bench binaries.
//!
//! Setting `VIYOJIT_PROFILE=<dir>` makes an instrumented run write, per
//! experiment, a JSONL trace (`<dir>/<bench>-<n>-<label>.jsonl`: the
//! run-metadata header, the event stream and epoch snapshots, then the
//! profiler's attribution records) and a matching `.folded` flamegraph
//! input (`inferno` / `flamegraph.pl` compatible). With the variable
//! unset, [`ProfileCapture::from_env`] returns `None` before constructing
//! anything — no telemetry handle, no profiler, no files — so default
//! bench output stays byte-identical.

use std::fs::{self, File};
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use sim_clock::Clock;
use telemetry::{JsonlSink, Profiler, RunMeta, Sink, Telemetry};
use viyojit::NvStore;

/// The environment variable naming the capture output directory.
pub const PROFILE_ENV: &str = "VIYOJIT_PROFILE";

/// Per-process run counter, so sweeps that repeat a configuration still
/// get distinct trace files.
static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The bench name for trace headers: the binary's file stem.
pub fn bench_name() -> String {
    std::env::args()
        .next()
        .as_deref()
        .and_then(|argv0| Path::new(argv0).file_stem()?.to_str().map(str::to_string))
        .unwrap_or_else(|| "bench".to_string())
}

/// One experiment's worth of capture state: a recording telemetry handle
/// and an enabled profiler over the experiment's clock, plus the output
/// paths and identity header for [`ProfileCapture::finish`].
#[derive(Debug)]
pub struct ProfileCapture {
    stem: PathBuf,
    meta: RunMeta,
    telemetry: Telemetry,
    profiler: Profiler,
}

impl ProfileCapture {
    /// Builds a capture when `VIYOJIT_PROFILE` is set, creating the
    /// output directory if needed; `None` (and no construction at all)
    /// otherwise.
    ///
    /// `label` distinguishes runs within one binary's sweep;
    /// `config_text` is any stable rendering of the run's configuration
    /// (hashed into the header so `viyojit-trace diff` can refuse
    /// incomparable traces); `fault_seed` is the fault-injection seed,
    /// when the run injects faults.
    pub fn from_env(
        bench: &str,
        label: &str,
        backend: &str,
        config_text: &str,
        fault_seed: Option<u64>,
        clock: &Clock,
    ) -> Option<ProfileCapture> {
        let dir = PathBuf::from(std::env::var_os(PROFILE_ENV)?);
        fs::create_dir_all(&dir).expect("VIYOJIT_PROFILE directory must be creatable");
        let n = RUN_COUNTER.fetch_add(1, Ordering::Relaxed);
        Some(ProfileCapture {
            stem: dir.join(format!("{bench}-{n:03}-{label}")),
            meta: RunMeta::new(bench, backend, config_text, fault_seed),
            telemetry: Telemetry::recording(clock.clone()),
            profiler: Profiler::enabled(clock.clone()),
        })
    }

    /// Attaches the recording telemetry and the profiler to a store.
    pub fn attach<H: NvStore>(&self, nv: &mut H) {
        nv.attach_telemetry(self.telemetry.clone());
        nv.attach_profiler(self.profiler.clone());
    }

    /// The capture's profiler handle, for instrumenting non-store code.
    pub fn profiler(&self) -> Profiler {
        self.profiler.clone()
    }

    /// The capture's recording telemetry handle, for builders that
    /// consume attachments up front (the sharded builder's
    /// `telemetry(..)`/`profiler(..)` setters) instead of exposing the
    /// mutable [`NvStore`] attachment surface.
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    /// Writes the JSONL trace and the `.folded` flamegraph input,
    /// returning the trace path.
    pub fn finish(self) -> PathBuf {
        let report = self
            .profiler
            .report()
            .expect("capture profilers are always enabled");
        // Labels may contain dots (fault rates), so append the suffix
        // rather than letting `with_extension` truncate at the first one.
        let jsonl = path_with_suffix(&self.stem, "jsonl");
        let file = File::create(&jsonl).expect("profile trace must be writable");
        let mut sink = JsonlSink::new(BufWriter::new(file));
        sink.meta(&self.meta);
        self.telemetry.drain_into(&mut sink);
        // Host-side scan-dispatch totals ride along as a note (wall
        // plane, not the event stream) so `viyojit-trace summary` shows
        // which bitmap path production scans actually took.
        let dispatch = mem_sim::dispatch::snapshot();
        sink.note(&format!(
            "bitmap dispatch: skip={} dense={} unrolled={}",
            dispatch.skip, dispatch.dense, dispatch.unrolled
        ));
        sink.profile(&report);
        use std::io::Write;
        sink.into_inner()
            .flush()
            .expect("profile trace must be flushable");
        report
            .write_folded(
                File::create(path_with_suffix(&self.stem, "folded")).expect("folded output"),
            )
            .expect("folded output must be writable");
        jsonl
    }
}

fn path_with_suffix(stem: &Path, suffix: &str) -> PathBuf {
    let mut name = stem.as_os_str().to_os_string();
    name.push(".");
    name.push(suffix);
    PathBuf::from(name)
}
