//! Reporting for the figure binaries, backed by the shared telemetry
//! sink layer.
//!
//! Historically each binary hand-rolled its CSV output; they now build a
//! [`Report`] (usually [`Report::stdout_csv`]) and emit sections, column
//! headers, and rows through it, so the same run can also stream to a
//! [`JsonlSink`] or any custom [`Sink`] without touching the binaries.
//! The CSV byte format is unchanged from the hand-rolled era.

pub use telemetry::{csv_stdout, CsvSink, JsonlSink, NullSink, Report, Sink};

/// Renders a [`RunMeta`](telemetry::RunMeta) as an inline JSON object
/// for the crate's hand-rolled JSON artifacts (`BENCH_*.json`), carrying
/// the same run identity the JSONL trace path writes as its `meta`
/// record: writer version, bench name, backend label, config hash, and
/// the fault seed (or `null`).
pub fn meta_json(meta: &telemetry::RunMeta) -> String {
    let seed = meta
        .fault_seed
        .map_or_else(|| "null".to_string(), |s| s.to_string());
    format!(
        "{{\"version\": \"{}\", \"bench\": \"{}\", \"backend\": \"{}\", \
         \"config_hash\": \"{:016x}\", \"fault_seed\": {seed}}}",
        meta.version, meta.bench, meta.backend, meta.config_hash
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stdout_report_builds() {
        // Smoke test: the stdout constructor wires a CSV sink.
        let report = Report::stdout_csv();
        drop(report);
    }

    #[test]
    fn rows_join_with_commas() {
        use std::cell::RefCell;
        use std::io;
        use std::rc::Rc;

        #[derive(Clone, Default)]
        struct Buf(Rc<RefCell<Vec<u8>>>);
        impl io::Write for Buf {
            fn write(&mut self, b: &[u8]) -> io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let buf = Buf::default();
        let mut report = Report::new().with_sink(CsvSink::new(buf.clone()));
        report.row(&["a", "1.5", "x"]);
        report.finish();
        assert_eq!(
            String::from_utf8(buf.0.borrow().clone()).unwrap(),
            "a,1.5,x\n"
        );
    }
}
