//! Plain-CSV reporting helpers shared by the figure binaries.

/// Prints a figure/section banner.
pub fn print_section(title: &str) {
    println!();
    println!("# {title}");
}

/// Prints a CSV header row.
pub fn print_csv_header(columns: &[&str]) {
    println!("{}", columns.join(","));
}

/// Formats one CSV row from already-formatted cells.
pub fn csv_row(cells: &[String]) -> String {
    cells.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_join_with_commas() {
        assert_eq!(csv_row(&["a".into(), "1.5".into(), "x".into()]), "a,1.5,x");
    }
}
