//! The trace analyses of Viyojit §3 (Figs. 2-5): how much data is written
//! per interval, how skewed the writes are, and how the hot fraction
//! shrinks as populations grow.
//!
//! # Examples
//!
//! ```
//! use sim_clock::{SimDuration, SimTime};
//! use trace_analysis::WriteSkewAnalysis;
//! use workloads::TraceEvent;
//!
//! let events = vec![
//!     TraceEvent { at: SimTime::ZERO, page: 0, is_write: true },
//!     TraceEvent { at: SimTime::ZERO, page: 0, is_write: true },
//!     TraceEvent { at: SimTime::ZERO, page: 1, is_write: true },
//!     TraceEvent { at: SimTime::ZERO, page: 2, is_write: false },
//! ];
//! let skew = WriteSkewAnalysis::from_events(events.iter().copied());
//! // Page 0 alone covers 2/3 of writes; covering 90% needs both writers.
//! assert_eq!(skew.pages_for_write_percentile(60.0), 1);
//! assert_eq!(skew.pages_for_write_percentile(90.0), 2);
//! ```

mod interval;
mod skew;
mod zipf_scaling;

pub use interval::{worst_interval_write_fraction, IntervalWriteStats};
pub use skew::WriteSkewAnalysis;
pub use zipf_scaling::{zipf_scaling_series, ZipfScalingPoint};
