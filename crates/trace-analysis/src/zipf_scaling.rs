//! The Fig. 5 series: under a Zipf write distribution, the fraction of
//! pages needed to cover a write percentile *shrinks* as the total page
//! population grows — the scaling argument that makes battery/DRAM
//! decoupling more attractive on bigger machines.

use workloads::zipf_coverage_fraction;

/// One point on the Fig. 5 curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfScalingPoint {
    /// Total pages in the population.
    pub total_pages: u64,
    /// Write percentile covered.
    pub percentile: f64,
    /// Fraction of pages needed (0-1).
    pub page_fraction: f64,
}

/// Computes the Fig. 5 grid: for every population size and percentile, the
/// page fraction needed under Zipf(θ) writes.
///
/// # Examples
///
/// ```
/// use trace_analysis::zipf_scaling_series;
///
/// let series = zipf_scaling_series(&[10_000, 1_000_000], &[90.0], 0.99);
/// assert!(series[1].page_fraction < series[0].page_fraction);
/// ```
pub fn zipf_scaling_series(
    sizes: &[u64],
    percentiles: &[f64],
    theta: f64,
) -> Vec<ZipfScalingPoint> {
    let mut out = Vec::with_capacity(sizes.len() * percentiles.len());
    for &total_pages in sizes {
        for &percentile in percentiles {
            out.push(ZipfScalingPoint {
                total_pages,
                percentile,
                page_fraction: zipf_coverage_fraction(total_pages, theta, percentile),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_shrinks_with_population_at_every_percentile() {
        let sizes = [10_000u64, 100_000, 1_000_000];
        for &p in &[90.0, 95.0, 99.0] {
            let series = zipf_scaling_series(&sizes, &[p], 0.99);
            for pair in series.windows(2) {
                assert!(
                    pair[1].page_fraction < pair[0].page_fraction,
                    "p={p}: {:?}",
                    series
                );
            }
        }
    }

    #[test]
    fn higher_percentiles_need_more_pages() {
        let series = zipf_scaling_series(&[100_000], &[90.0, 95.0, 99.0], 0.99);
        assert!(series[0].page_fraction < series[1].page_fraction);
        assert!(series[1].page_fraction < series[2].page_fraction);
    }

    #[test]
    fn grid_is_complete() {
        let series = zipf_scaling_series(&[10, 100], &[50.0, 90.0, 99.0], 0.9);
        assert_eq!(series.len(), 6);
    }
}
