//! Write-skew percentile analysis (Figs. 3 and 4).
//!
//! §3 counts writes per logical page, then asks: how many pages are needed
//! to account for 90/95/99% of all writes — expressed both as a fraction
//! of pages *touched* (read or written, Fig. 3) and of the *total* volume
//! (Fig. 4).

use std::collections::HashMap;

use workloads::TraceEvent;

/// Per-page write-count analysis of one volume trace.
#[derive(Debug, Clone)]
pub struct WriteSkewAnalysis {
    /// Write counts per page, sorted descending.
    sorted_counts: Vec<u64>,
    total_writes: u64,
    pages_touched: u64,
}

impl WriteSkewAnalysis {
    /// Tallies a trace's events.
    pub fn from_events<I>(events: I) -> Self
    where
        I: IntoIterator<Item = TraceEvent>,
    {
        let mut write_counts: HashMap<u64, u64> = HashMap::new();
        let mut touched: HashMap<u64, ()> = HashMap::new();
        let mut total_writes = 0u64;
        for e in events {
            touched.insert(e.page, ());
            if e.is_write {
                *write_counts.entry(e.page).or_insert(0) += 1;
                total_writes += 1;
            }
        }
        let mut sorted_counts: Vec<u64> = write_counts.into_values().collect();
        sorted_counts.sort_unstable_by(|a, b| b.cmp(a));
        WriteSkewAnalysis {
            sorted_counts,
            total_writes,
            pages_touched: touched.len() as u64,
        }
    }

    /// Total writes observed.
    pub fn total_writes(&self) -> u64 {
        self.total_writes
    }

    /// Distinct pages read or written.
    pub fn pages_touched(&self) -> u64 {
        self.pages_touched
    }

    /// Distinct pages written at least once.
    pub fn pages_written(&self) -> u64 {
        self.sorted_counts.len() as u64
    }

    /// Minimum number of pages accounting for `percentile` percent of all
    /// writes (taking the most-written pages first).
    ///
    /// # Panics
    ///
    /// Panics if `percentile` is outside `(0, 100]`.
    pub fn pages_for_write_percentile(&self, percentile: f64) -> u64 {
        assert!(
            percentile > 0.0 && percentile <= 100.0,
            "percentile must be in (0,100], got {percentile}"
        );
        if self.total_writes == 0 {
            return 0;
        }
        let target = (percentile / 100.0 * self.total_writes as f64).ceil() as u64;
        let mut covered = 0u64;
        for (i, &c) in self.sorted_counts.iter().enumerate() {
            covered += c;
            if covered >= target {
                return (i + 1) as u64;
            }
        }
        self.sorted_counts.len() as u64
    }

    /// Fig. 3's quantity: the percentile page count as a percentage of
    /// pages *touched*.
    pub fn percent_of_touched(&self, percentile: f64) -> f64 {
        if self.pages_touched == 0 {
            return 0.0;
        }
        100.0 * self.pages_for_write_percentile(percentile) as f64 / self.pages_touched as f64
    }

    /// Fig. 4's quantity: the percentile page count as a percentage of the
    /// *total* volume.
    ///
    /// # Panics
    ///
    /// Panics if `volume_pages` is zero.
    pub fn percent_of_total(&self, percentile: f64, volume_pages: u64) -> f64 {
        assert!(volume_pages > 0, "volume must contain pages");
        100.0 * self.pages_for_write_percentile(percentile) as f64 / volume_pages as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_clock::SimTime;

    fn writes(pages: &[u64]) -> Vec<TraceEvent> {
        pages
            .iter()
            .map(|&page| TraceEvent {
                at: SimTime::ZERO,
                page,
                is_write: true,
            })
            .collect()
    }

    #[test]
    fn concentrated_writes_need_few_pages() {
        // Page 77 takes 90 writes, pages 0..10 one each.
        let mut evs = writes(&vec![77; 90]);
        evs.extend(writes(&(0..10).collect::<Vec<_>>()));
        let a = WriteSkewAnalysis::from_events(evs);
        assert_eq!(a.total_writes(), 100);
        assert_eq!(a.pages_for_write_percentile(90.0), 1);
        assert_eq!(a.pages_for_write_percentile(99.0), 10);
    }

    #[test]
    fn uniform_writes_need_proportional_pages() {
        let evs = writes(&(0..100).collect::<Vec<_>>());
        let a = WriteSkewAnalysis::from_events(evs);
        assert_eq!(a.pages_for_write_percentile(90.0), 90);
        assert_eq!(a.pages_for_write_percentile(100.0), 100);
    }

    #[test]
    fn touched_includes_read_only_pages() {
        let mut evs = writes(&[1, 2]);
        evs.push(TraceEvent {
            at: SimTime::ZERO,
            page: 99,
            is_write: false,
        });
        let a = WriteSkewAnalysis::from_events(evs);
        assert_eq!(a.pages_touched(), 3);
        assert_eq!(a.pages_written(), 2);
        // 100% of writes need 2 pages = 66.7% of touched.
        assert!((a.percent_of_touched(100.0) - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn percent_of_total_uses_volume_size() {
        let a = WriteSkewAnalysis::from_events(writes(&[0, 1, 2, 3]));
        assert_eq!(a.percent_of_total(100.0, 400), 1.0);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut evs = writes(&vec![0; 50]);
        evs.extend(writes(&[1; 25]));
        evs.extend(writes(&(2..27).collect::<Vec<_>>()));
        let a = WriteSkewAnalysis::from_events(evs);
        let p90 = a.pages_for_write_percentile(90.0);
        let p95 = a.pages_for_write_percentile(95.0);
        let p99 = a.pages_for_write_percentile(99.0);
        assert!(p90 <= p95 && p95 <= p99);
    }

    #[test]
    fn empty_trace_is_harmless() {
        let a = WriteSkewAnalysis::from_events(std::iter::empty());
        assert_eq!(a.pages_for_write_percentile(99.0), 0);
        assert_eq!(a.percent_of_touched(99.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn zero_percentile_panics() {
        WriteSkewAnalysis::from_events(std::iter::empty()).pages_for_write_percentile(0.0);
    }
}
