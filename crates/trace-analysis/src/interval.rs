//! Worst-interval write volume (Fig. 2).
//!
//! §3 slices each trace into fixed intervals and asks: in the worst
//! interval, how much data was written as a fraction of the volume size?
//! To be conservative it assumes an adversarial (log-structured) file
//! system where *every* write lands on a unique NV-DRAM page, so the
//! interval's written data is simply its write count (capped at the
//! volume size).

use sim_clock::SimDuration;
use workloads::TraceEvent;

/// Per-interval write statistics of one volume trace.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalWriteStats {
    /// Write count per interval, in time order.
    pub writes_per_interval: Vec<u64>,
    /// The interval length analysed.
    pub interval: SimDuration,
    /// Volume size in pages.
    pub volume_pages: u64,
}

impl IntervalWriteStats {
    /// Builds the per-interval tally from a time-ordered event stream.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or `volume_pages` is zero.
    pub fn from_events<I>(events: I, interval: SimDuration, volume_pages: u64) -> Self
    where
        I: IntoIterator<Item = TraceEvent>,
    {
        assert!(!interval.is_zero(), "interval must be positive");
        assert!(volume_pages > 0, "volume must contain pages");
        let mut writes_per_interval: Vec<u64> = Vec::new();
        for e in events {
            if !e.is_write {
                continue;
            }
            let slot = (e.at.as_nanos() / interval.as_nanos()) as usize;
            if slot >= writes_per_interval.len() {
                writes_per_interval.resize(slot + 1, 0);
            }
            writes_per_interval[slot] += 1;
        }
        IntervalWriteStats {
            writes_per_interval,
            interval,
            volume_pages,
        }
    }

    /// The worst interval's written data as a fraction of the volume size
    /// (unique-page assumption; capped at 1).
    pub fn worst_fraction(&self) -> f64 {
        let worst = self.writes_per_interval.iter().copied().max().unwrap_or(0);
        (worst.min(self.volume_pages)) as f64 / self.volume_pages as f64
    }

    /// Mean per-interval written fraction.
    pub fn mean_fraction(&self) -> f64 {
        if self.writes_per_interval.is_empty() {
            return 0.0;
        }
        let total: u64 = self.writes_per_interval.iter().sum();
        total as f64 / self.writes_per_interval.len() as f64 / self.volume_pages as f64
    }
}

/// Convenience wrapper: the Fig. 2 number for one trace and interval
/// length.
///
/// # Examples
///
/// ```
/// use sim_clock::{SimDuration, SimTime};
/// use trace_analysis::worst_interval_write_fraction;
/// use workloads::TraceEvent;
///
/// let burst: Vec<TraceEvent> = (0..50)
///     .map(|i| TraceEvent { at: SimTime::from_nanos(i), page: i, is_write: true })
///     .collect();
/// let f = worst_interval_write_fraction(burst, SimDuration::from_secs(1), 1_000);
/// assert_eq!(f, 0.05);
/// ```
pub fn worst_interval_write_fraction<I>(events: I, interval: SimDuration, volume_pages: u64) -> f64
where
    I: IntoIterator<Item = TraceEvent>,
{
    IntervalWriteStats::from_events(events, interval, volume_pages).worst_fraction()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_clock::SimTime;

    fn ev(nanos: u64, is_write: bool) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_nanos(nanos),
            page: nanos,
            is_write,
        }
    }

    #[test]
    fn writes_land_in_their_intervals() {
        let events = vec![ev(0, true), ev(5, true), ev(10, true), ev(25, true)];
        let stats = IntervalWriteStats::from_events(events, SimDuration::from_nanos(10), 100);
        assert_eq!(stats.writes_per_interval, vec![2, 1, 1]);
    }

    #[test]
    fn reads_are_ignored() {
        let events = vec![ev(0, false), ev(1, true), ev(2, false)];
        let stats = IntervalWriteStats::from_events(events, SimDuration::from_nanos(100), 10);
        assert_eq!(stats.writes_per_interval, vec![1]);
        assert_eq!(stats.worst_fraction(), 0.1);
    }

    #[test]
    fn worst_fraction_caps_at_one() {
        let events: Vec<TraceEvent> = (0..50).map(|i| ev(i, true)).collect();
        let f = worst_interval_write_fraction(events, SimDuration::from_secs(1), 10);
        assert_eq!(f, 1.0);
    }

    #[test]
    fn empty_trace_writes_nothing() {
        let stats =
            IntervalWriteStats::from_events(std::iter::empty(), SimDuration::from_secs(1), 10);
        assert_eq!(stats.worst_fraction(), 0.0);
        assert_eq!(stats.mean_fraction(), 0.0);
    }

    #[test]
    fn longer_intervals_never_reduce_the_worst_fraction() {
        let events: Vec<TraceEvent> = (0..1_000u64).map(|i| ev(i * 7, i % 3 != 0)).collect();
        let short =
            worst_interval_write_fraction(events.clone(), SimDuration::from_nanos(100), 100_000);
        let long = worst_interval_write_fraction(events, SimDuration::from_nanos(1_000), 100_000);
        assert!(long >= short, "a longer window contains its sub-windows");
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_panics() {
        let _ = IntervalWriteStats::from_events(std::iter::empty(), SimDuration::ZERO, 1);
    }
}
