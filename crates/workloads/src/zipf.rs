//! Zipfian and "latest" request distributions, implemented from scratch
//! after Gray et al.'s quickly-generating-billion-record algorithm — the
//! same generator family YCSB uses.

use rand::Rng;

/// A Zipfian item generator over `0..n` with exponent `theta`.
///
/// Item 0 is the most popular rank. YCSB-style *scrambling* (spreading the
/// popular ranks across the keyspace) is available via
/// [`ZipfGenerator::sample_scrambled`].
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use workloads::ZipfGenerator;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let zipf = ZipfGenerator::new(1_000, 0.99);
/// let hits = (0..10_000).filter(|_| zipf.sample(&mut rng) == 0).count();
/// assert!(hits > 500, "rank 0 must dominate: {hits}");
/// ```
#[derive(Debug, Clone)]
pub struct ZipfGenerator {
    n: u64,
    theta: f64,
    zeta_n: f64,
    zeta_2: f64,
    alpha: f64,
}

impl ZipfGenerator {
    /// Creates a generator over `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf domain must be non-empty");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0,1), got {theta}"
        );
        let zeta_n = Self::zeta(0, n, theta, 0.0);
        ZipfGenerator {
            n,
            theta,
            zeta_n,
            zeta_2: Self::zeta(0, 2, theta, 0.0),
            alpha: 1.0 / (1.0 - theta),
        }
    }

    /// Incremental generalized harmonic number:
    /// `base + sum_{i=from+1..=to} i^-theta`.
    fn zeta(from: u64, to: u64, theta: f64, base: f64) -> f64 {
        let mut sum = base;
        for i in from + 1..=to {
            sum += 1.0 / (i as f64).powf(theta);
        }
        sum
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Grows the domain to `new_n` (for insert workloads), extending the
    /// harmonic sum incrementally.
    ///
    /// # Panics
    ///
    /// Panics if `new_n < n`.
    pub fn grow(&mut self, new_n: u64) {
        assert!(new_n >= self.n, "zipf domains only grow");
        self.zeta_n = Self::zeta(self.n, new_n, self.theta, self.zeta_n);
        self.n = new_n;
    }

    /// Draws a rank (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let eta = (1.0 - (2.0 / self.n as f64).powf(1.0 - self.theta))
            / (1.0 - self.zeta_2 / self.zeta_n);
        let item = (self.n as f64 * (eta * u - eta + 1.0).powf(self.alpha)) as u64;
        item.min(self.n - 1)
    }

    /// Draws a rank and scrambles it across the keyspace with an FNV-1a
    /// hash, as YCSB's `ScrambledZipfianGenerator` does, so popular keys
    /// are not clustered at low ids.
    pub fn sample_scrambled<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let rank = self.sample(rng);
        // FNV-1a over the rank's bytes.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in rank.to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash % self.n
    }

    /// Fraction of total request mass received by the `k` most popular
    /// ranks.
    pub fn coverage_of_top(&self, k: u64) -> f64 {
        Self::zeta(0, k.min(self.n), self.theta, 0.0) / self.zeta_n
    }
}

/// The smallest fraction of an `n`-item Zipf(θ) population needed to cover
/// `percentile` percent of all requests — the Fig. 5 quantity. Computed
/// analytically from the harmonic sums.
///
/// # Examples
///
/// ```
/// use workloads::zipf_coverage_fraction;
///
/// let small = zipf_coverage_fraction(10_000, 0.99, 90.0);
/// let large = zipf_coverage_fraction(10_000_000, 0.99, 90.0);
/// assert!(large < small, "the hot fraction shrinks as the population grows");
/// ```
///
/// # Panics
///
/// Panics if `percentile` is outside `(0, 100]` or `n == 0`.
pub fn zipf_coverage_fraction(n: u64, theta: f64, percentile: f64) -> f64 {
    assert!(n > 0, "population must be non-empty");
    assert!(
        percentile > 0.0 && percentile <= 100.0,
        "percentile must be in (0,100], got {percentile}"
    );
    let target = percentile / 100.0;
    let zeta_n = ZipfGenerator::zeta(0, n, theta, 0.0);
    let mut cum = 0.0;
    for k in 1..=n {
        cum += 1.0 / (k as f64).powf(theta);
        if cum >= target * zeta_n {
            return k as f64 / n as f64;
        }
    }
    1.0
}

/// YCSB's "latest" distribution (workload D): recently-inserted items are
/// most popular. Draws `max - zipf_rank`, clamped to the live range.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use workloads::LatestGenerator;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let mut latest = LatestGenerator::new(100, 0.99);
/// latest.observe_insert(); // now 101 items
/// let k = latest.sample(&mut rng);
/// assert!(k < 101);
/// ```
#[derive(Debug, Clone)]
pub struct LatestGenerator {
    zipf: ZipfGenerator,
}

impl LatestGenerator {
    /// Creates a generator over `0..n` items favouring high (recent) ids.
    pub fn new(n: u64, theta: f64) -> Self {
        LatestGenerator {
            zipf: ZipfGenerator::new(n, theta),
        }
    }

    /// Current item count.
    pub fn n(&self) -> u64 {
        self.zipf.n()
    }

    /// Records one insert: the domain grows and popularity re-anchors on
    /// the new latest item.
    pub fn observe_insert(&mut self) {
        let n = self.zipf.n();
        self.zipf.grow(n + 1);
    }

    /// Draws an item id, biased toward the most recent.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let rank = self.zipf.sample(rng);
        self.zipf.n() - 1 - rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD15EA5E)
    }

    #[test]
    fn samples_stay_in_domain() {
        let z = ZipfGenerator::new(100, 0.99);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(z.sample(&mut r) < 100);
            assert!(z.sample_scrambled(&mut r) < 100);
        }
    }

    #[test]
    fn empirical_skew_matches_analytic_coverage() {
        let n = 1_000;
        let z = ZipfGenerator::new(n, 0.99);
        let mut r = rng();
        let mut counts = vec![0u64; n as usize];
        let draws = 200_000;
        for _ in 0..draws {
            counts[z.sample(&mut r) as usize] += 1;
        }
        // Top 10% of ranks should hold roughly coverage_of_top(n/10).
        let top_decile: u64 = counts[..(n / 10) as usize].iter().sum();
        let expected = z.coverage_of_top(n / 10);
        let got = top_decile as f64 / draws as f64;
        assert!(
            (got - expected).abs() < 0.03,
            "empirical {got:.3} vs analytic {expected:.3}"
        );
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let z = ZipfGenerator::new(10_000, 0.99);
        let mut r = rng();
        let mut counts = [0u64; 16];
        for _ in 0..50_000 {
            let s = z.sample(&mut r);
            if s < 16 {
                counts[s as usize] += 1;
            }
        }
        for pair in counts.windows(2) {
            // Monotone up to noise; enforce loosely on the big gap.
            assert!(counts[0] >= pair[1], "rank 0 must dominate");
        }
    }

    #[test]
    fn growth_keeps_distribution_valid() {
        let mut z = ZipfGenerator::new(10, 0.9);
        let full = ZipfGenerator::new(1_000, 0.9);
        z.grow(1_000);
        assert!(
            (z.zeta_n - full.zeta_n).abs() < 1e-9,
            "incremental zeta must match"
        );
        let mut r = rng();
        for _ in 0..1_000 {
            assert!(z.sample(&mut r) < 1_000);
        }
    }

    #[test]
    fn coverage_fraction_shrinks_with_population_the_fig5_effect() {
        let mut prev = 1.0;
        for &n in &[10_000u64, 100_000, 1_000_000] {
            let frac = zipf_coverage_fraction(n, 0.99, 90.0);
            assert!(frac < prev, "n={n}: {frac} !< {prev}");
            prev = frac;
        }
    }

    #[test]
    fn coverage_fraction_orders_by_percentile() {
        let p90 = zipf_coverage_fraction(100_000, 0.99, 90.0);
        let p95 = zipf_coverage_fraction(100_000, 0.99, 95.0);
        let p99 = zipf_coverage_fraction(100_000, 0.99, 99.0);
        assert!(p90 < p95 && p95 < p99);
    }

    #[test]
    fn latest_prefers_recent_items() {
        let mut l = LatestGenerator::new(1_000, 0.99);
        for _ in 0..100 {
            l.observe_insert();
        }
        let mut r = rng();
        let newest_tenth = (0..10_000)
            .filter(|_| l.sample(&mut r) >= l.n() - l.n() / 10)
            .count();
        assert!(
            newest_tenth > 6_000,
            "latest distribution must favour recent items: {newest_tenth}"
        );
    }

    #[test]
    #[should_panic(expected = "theta must be in")]
    fn uniform_theta_is_rejected() {
        let _ = ZipfGenerator::new(10, 1.0);
    }

    #[test]
    #[should_panic(expected = "only grow")]
    fn shrinking_domain_panics() {
        let mut z = ZipfGenerator::new(10, 0.5);
        z.grow(5);
    }
}
