//! Workload generation for the Viyojit evaluation: YCSB benchmark drivers
//! (§6.1), Zipfian and latest request distributions, and synthetic
//! datacenter file-system traces standing in for the proprietary Microsoft
//! traces of §3.
//!
//! # Examples
//!
//! ```
//! use workloads::{YcsbGenerator, YcsbOp, YcsbWorkload};
//!
//! let mut gen = YcsbGenerator::new(YcsbWorkload::A, 1_000, 7);
//! match gen.next_op() {
//!     YcsbOp::Read(k) | YcsbOp::Update(k) => assert!(k < 1_000),
//!     other => panic!("YCSB-A only reads and updates, got {other:?}"),
//! }
//! ```

mod datacenter;
mod ycsb;
mod zipf;

pub use datacenter::{
    paper_trace_suite, AppKind, AppTraceSpec, TraceEvent, TraceGenerator, VolumeSpec,
};
pub use ycsb::{YcsbGenerator, YcsbOp, YcsbWorkload};
pub use zipf::{zipf_coverage_fraction, LatestGenerator, ZipfGenerator};
