//! The Yahoo! Cloud Serving Benchmark operation mixes used in §6
//! (workloads A, B, C, D, and F; E needs cross-key scans the paper's store
//! does not support).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{LatestGenerator, ZipfGenerator};

/// Standard YCSB record size: 10 fields x 100 bytes.
pub(crate) const RECORD_BYTES: usize = 1_000;
/// Request-distribution exponent used by YCSB's zipfian generators.
const YCSB_THETA: f64 = 0.99;

/// The YCSB workloads the paper evaluates (§6.1), plus E.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YcsbWorkload {
    /// Update heavy: 50% reads, 50% updates (interactive content).
    A,
    /// Read mostly: 95% reads, 5% updates (document serving).
    B,
    /// Read only: 100% reads (image-serving front end).
    C,
    /// Read latest: 95% reads, 5% inserts, recent records popular
    /// (social-media posts).
    D,
    /// Short ranges: 95% scans, 5% inserts (threaded conversations). The
    /// paper could not run E ("it requires cross key transactions which we
    /// do not support for now"); this reproduction implements the ordered
    /// index and runs it as the paper's future work.
    E,
    /// Read-modify-write: 50% reads, 50% RMWs (user-record databases).
    F,
}

impl YcsbWorkload {
    /// All workloads the paper runs, in figure order. YCSB-E is provided
    /// by this reproduction but kept out of the paper-figure sweeps.
    pub const ALL: [YcsbWorkload; 5] = [
        YcsbWorkload::A,
        YcsbWorkload::B,
        YcsbWorkload::C,
        YcsbWorkload::D,
        YcsbWorkload::F,
    ];

    /// Maximum records returned per YCSB-E scan (the YCSB default).
    pub const MAX_SCAN_LEN: u16 = 100;

    /// The workload's display name ("YCSB-A", ...).
    pub fn name(self) -> &'static str {
        match self {
            YcsbWorkload::A => "YCSB-A",
            YcsbWorkload::B => "YCSB-B",
            YcsbWorkload::C => "YCSB-C",
            YcsbWorkload::D => "YCSB-D",
            YcsbWorkload::E => "YCSB-E",
            YcsbWorkload::F => "YCSB-F",
        }
    }

    /// The operation the paper's latency figures focus on for this
    /// workload (Fig. 8: update, update, read, insert, RMW).
    pub fn focus_op(self) -> &'static str {
        match self {
            YcsbWorkload::A | YcsbWorkload::B => "UPDATE",
            YcsbWorkload::C => "READ",
            YcsbWorkload::D => "INSERT",
            YcsbWorkload::E => "SCAN",
            YcsbWorkload::F => "READ-MODIFY-WRITE",
        }
    }
}

/// One benchmark operation on a record id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbOp {
    /// Read the record.
    Read(u64),
    /// Overwrite one field of the record.
    Update(u64),
    /// Insert a brand-new record with this id.
    Insert(u64),
    /// Read the record, modify, write it back.
    ReadModifyWrite(u64),
    /// Range scan: read up to `len` records in key order starting at the
    /// record id (YCSB-E).
    Scan(u64, u16),
}

impl YcsbOp {
    /// The record id this operation touches (the start record for scans).
    pub fn record(self) -> u64 {
        match self {
            YcsbOp::Read(k)
            | YcsbOp::Update(k)
            | YcsbOp::Insert(k)
            | YcsbOp::ReadModifyWrite(k)
            | YcsbOp::Scan(k, _) => k,
        }
    }

    /// `true` for operations that write the record.
    pub fn is_write(self) -> bool {
        !matches!(self, YcsbOp::Read(_) | YcsbOp::Scan(..))
    }
}

/// Deterministic, seedable generator of one workload's operation stream.
///
/// # Examples
///
/// ```
/// use workloads::{YcsbGenerator, YcsbOp, YcsbWorkload};
///
/// let mut gen = YcsbGenerator::new(YcsbWorkload::C, 500, 42);
/// assert!(matches!(gen.next_op(), YcsbOp::Read(_)), "C is read-only");
/// ```
#[derive(Debug)]
pub struct YcsbGenerator {
    workload: YcsbWorkload,
    rng: StdRng,
    zipf: ZipfGenerator,
    latest: LatestGenerator,
    record_count: u64,
}

impl YcsbGenerator {
    /// Creates a generator over an initial dataset of `records` records.
    ///
    /// # Panics
    ///
    /// Panics if `records == 0`.
    pub fn new(workload: YcsbWorkload, records: u64, seed: u64) -> Self {
        assert!(records > 0, "datasets must contain at least one record");
        YcsbGenerator {
            workload,
            rng: StdRng::seed_from_u64(seed),
            zipf: ZipfGenerator::new(records, YCSB_THETA),
            latest: LatestGenerator::new(records, YCSB_THETA),
            record_count: records,
        }
    }

    /// The workload this generator drives.
    pub fn workload(&self) -> YcsbWorkload {
        self.workload
    }

    /// Records in the dataset (grows under YCSB-D inserts).
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// The standard YCSB record payload size in bytes.
    pub fn record_bytes(&self) -> usize {
        RECORD_BYTES
    }

    fn zipf_key(&mut self) -> u64 {
        self.zipf.sample_scrambled(&mut self.rng)
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> YcsbOp {
        let roll: f64 = self.rng.gen();
        match self.workload {
            YcsbWorkload::A => {
                let k = self.zipf_key();
                if roll < 0.5 {
                    YcsbOp::Read(k)
                } else {
                    YcsbOp::Update(k)
                }
            }
            YcsbWorkload::B => {
                let k = self.zipf_key();
                if roll < 0.95 {
                    YcsbOp::Read(k)
                } else {
                    YcsbOp::Update(k)
                }
            }
            YcsbWorkload::C => YcsbOp::Read(self.zipf_key()),
            YcsbWorkload::D => {
                if roll < 0.95 {
                    YcsbOp::Read(self.latest.sample(&mut self.rng))
                } else {
                    let id = self.record_count;
                    self.record_count += 1;
                    self.latest.observe_insert();
                    self.zipf.grow(self.record_count);
                    YcsbOp::Insert(id)
                }
            }
            YcsbWorkload::E => {
                if roll < 0.95 {
                    let start = self.zipf_key();
                    let len = self.rng.gen_range(1..=YcsbWorkload::MAX_SCAN_LEN);
                    YcsbOp::Scan(start, len)
                } else {
                    let id = self.record_count;
                    self.record_count += 1;
                    self.latest.observe_insert();
                    self.zipf.grow(self.record_count);
                    YcsbOp::Insert(id)
                }
            }
            YcsbWorkload::F => {
                let k = self.zipf_key();
                if roll < 0.5 {
                    YcsbOp::Read(k)
                } else {
                    YcsbOp::ReadModifyWrite(k)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(workload: YcsbWorkload, ops: usize) -> (usize, usize, usize, usize) {
        let mut gen = YcsbGenerator::new(workload, 1_000, 99);
        let (mut r, mut u, mut i, mut rmw) = (0, 0, 0, 0);
        for _ in 0..ops {
            match gen.next_op() {
                YcsbOp::Read(_) => r += 1,
                YcsbOp::Update(_) => u += 1,
                YcsbOp::Insert(_) => i += 1,
                YcsbOp::ReadModifyWrite(_) => rmw += 1,
                YcsbOp::Scan(..) => {}
            }
        }
        (r, u, i, rmw)
    }

    #[test]
    fn workload_a_is_half_updates() {
        let (r, u, i, rmw) = mix(YcsbWorkload::A, 20_000);
        assert!(i == 0 && rmw == 0);
        assert!((0.45..0.55).contains(&(u as f64 / (r + u) as f64)));
    }

    #[test]
    fn workload_b_is_mostly_reads() {
        let (r, u, _, _) = mix(YcsbWorkload::B, 20_000);
        let frac = u as f64 / (r + u) as f64;
        assert!((0.03..0.08).contains(&frac), "update fraction {frac}");
    }

    #[test]
    fn workload_c_is_read_only() {
        let (r, u, i, rmw) = mix(YcsbWorkload::C, 5_000);
        assert_eq!((u, i, rmw), (0, 0, 0));
        assert_eq!(r, 5_000);
    }

    #[test]
    fn workload_d_inserts_grow_the_dataset() {
        let mut gen = YcsbGenerator::new(YcsbWorkload::D, 1_000, 7);
        let mut inserts = 0;
        for _ in 0..10_000 {
            if let YcsbOp::Insert(id) = gen.next_op() {
                assert_eq!(id, 1_000 + inserts, "insert ids are sequential");
                inserts += 1;
            }
        }
        assert_eq!(gen.record_count(), 1_000 + inserts);
        assert!((300..700).contains(&inserts), "≈5% of 10k ops: {inserts}");
    }

    #[test]
    fn workload_d_reads_favour_recent_records() {
        let mut gen = YcsbGenerator::new(YcsbWorkload::D, 10_000, 3);
        let mut recent = 0;
        let mut reads = 0;
        for _ in 0..20_000 {
            if let YcsbOp::Read(k) = gen.next_op() {
                reads += 1;
                if k >= gen.record_count() * 9 / 10 {
                    recent += 1;
                }
            }
        }
        assert!(
            recent as f64 / reads as f64 > 0.6,
            "recent tenth took {recent}/{reads}"
        );
    }

    #[test]
    fn workload_f_mixes_reads_and_rmws() {
        let (r, u, i, rmw) = mix(YcsbWorkload::F, 20_000);
        assert!(u == 0 && i == 0);
        assert!((0.45..0.55).contains(&(rmw as f64 / (r + rmw) as f64)));
    }

    #[test]
    fn workload_e_scans_and_inserts() {
        let mut gen = YcsbGenerator::new(YcsbWorkload::E, 1_000, 13);
        let (mut scans, mut inserts) = (0u64, 0u64);
        for _ in 0..10_000 {
            match gen.next_op() {
                YcsbOp::Scan(start, len) => {
                    assert!(start < gen.record_count());
                    assert!((1..=YcsbWorkload::MAX_SCAN_LEN).contains(&len));
                    scans += 1;
                }
                YcsbOp::Insert(id) => {
                    assert_eq!(id, 1_000 + inserts);
                    inserts += 1;
                }
                other => panic!("YCSB-E emitted {other:?}"),
            }
        }
        let frac = scans as f64 / 10_000.0;
        assert!((0.93..0.97).contains(&frac), "scan fraction {frac}");
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let ops = |seed| {
            let mut g = YcsbGenerator::new(YcsbWorkload::A, 100, seed);
            (0..100).map(|_| g.next_op()).collect::<Vec<_>>()
        };
        assert_eq!(ops(5), ops(5));
        assert_ne!(ops(5), ops(6));
    }

    #[test]
    fn requests_are_skewed() {
        let mut gen = YcsbGenerator::new(YcsbWorkload::A, 10_000, 11);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(gen.next_op().record()).or_insert(0u64) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top_100: u64 = freqs.iter().take(100).sum();
        assert!(
            top_100 as f64 / 50_000.0 > 0.3,
            "top 100 keys should dominate a zipfian stream"
        );
    }
}
