//! Synthetic datacenter file-system traces standing in for the proprietary
//! Microsoft traces of §3.
//!
//! The paper analyses file-system traces of four production applications
//! (Azure blob storage, Cosmos, Page rank, Search index serving), each
//! running on one machine with several volumes, and classifies volumes
//! into four behavioural categories (§3):
//!
//! 1. low write fraction, writes mostly to unique pages,
//! 2. low write fraction, writes further skewed (the best case),
//! 3. high write fraction, highly skewed (~10% of pages take 99% of
//!    writes),
//! 4. high write fraction, mostly unique pages (the worst case).
//!
//! The real traces cannot be redistributed, so [`paper_trace_suite`]
//! synthesizes one trace per application with volumes spanning those four
//! categories, calibrated so the headline conclusions reproduce: most
//! volumes write <15% of their capacity per hour, and skewed volumes need
//! only a small page fraction to cover 99% of writes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_clock::{SimDuration, SimTime};

use crate::ZipfGenerator;

/// The four applications of §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// Online blob store (S3-like).
    AzureBlob,
    /// Map-reduce-like data-parallel framework.
    Cosmos,
    /// Search-index construction.
    PageRank,
    /// Search-query serving.
    SearchIndex,
}

impl AppKind {
    /// Display name matching the paper's figure captions.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::AzureBlob => "Azure blob storage",
            AppKind::Cosmos => "Cosmos",
            AppKind::PageRank => "Page rank",
            AppKind::SearchIndex => "Search index serving",
        }
    }
}

/// Parameters of one synthetic file-system volume.
#[derive(Debug, Clone)]
pub struct VolumeSpec {
    /// Volume label ("A", "B", ...).
    pub name: &'static str,
    /// Volume size in pages.
    pub pages: u64,
    /// Total trace operations over the whole duration.
    pub total_ops: u64,
    /// Fraction of operations that are writes.
    pub write_fraction: f64,
    /// Zipf exponent of the write *page* distribution (higher = more
    /// skew). Ignored when `unique_writes` is set.
    pub write_theta: f64,
    /// If set, each write goes to the next never-written page — the
    /// log-structured worst case §3 assumes for its conservative analysis.
    pub unique_writes: bool,
    /// If set, `(hot_page_fraction, hot_write_fraction)`: that fraction of
    /// writes lands uniformly on that fraction of pages, the rest
    /// uniformly elsewhere. Models the paper's category-3 volumes ("10% of
    /// the pages accounting for 99% of the writes") whose concentration
    /// exceeds what a Zipf(theta < 1) tail can produce. Overrides
    /// `write_theta`.
    pub hot_mixture: Option<(f64, f64)>,
}

/// One application's trace specification.
#[derive(Debug, Clone)]
pub struct AppTraceSpec {
    /// Which application this models.
    pub app: AppKind,
    /// Trace duration (24 h for all apps except Cosmos's 3.5 h, §3).
    pub duration: SimDuration,
    /// The machine's volumes.
    pub volumes: Vec<VolumeSpec>,
}

/// One trace record: an access to a logical page of one volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the access happened.
    pub at: SimTime,
    /// The logical page within the volume.
    pub page: u64,
    /// Write or read.
    pub is_write: bool,
}

/// Streams the events of one volume in time order.
///
/// # Examples
///
/// ```
/// use workloads::{TraceGenerator, VolumeSpec};
/// use sim_clock::SimDuration;
///
/// let spec = VolumeSpec {
///     name: "A", pages: 1_000, total_ops: 500,
///     write_fraction: 0.3, write_theta: 0.9, unique_writes: false,
///     hot_mixture: None,
/// };
/// let events: Vec<_> = TraceGenerator::new(&spec, SimDuration::from_secs(60), 1).collect();
/// assert_eq!(events.len(), 500);
/// assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
/// ```
#[derive(Debug)]
pub struct TraceGenerator {
    rng: StdRng,
    write_zipf: ZipfGenerator,
    read_zipf: ZipfGenerator,
    pages: u64,
    write_fraction: f64,
    unique_writes: bool,
    hot_mixture: Option<(f64, f64)>,
    next_unique_page: u64,
    interarrival_nanos: u64,
    remaining: u64,
    now_nanos: u64,
}

impl TraceGenerator {
    /// Creates a generator for `spec` spread uniformly over `duration`.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no pages or no operations.
    pub fn new(spec: &VolumeSpec, duration: SimDuration, seed: u64) -> Self {
        assert!(
            spec.pages > 0 && spec.total_ops > 0,
            "degenerate volume spec"
        );
        TraceGenerator {
            rng: StdRng::seed_from_u64(seed),
            write_zipf: ZipfGenerator::new(spec.pages, spec.write_theta),
            read_zipf: ZipfGenerator::new(spec.pages, 0.9),
            pages: spec.pages,
            write_fraction: spec.write_fraction,
            unique_writes: spec.unique_writes,
            hot_mixture: spec.hot_mixture,
            next_unique_page: 0,
            interarrival_nanos: (duration.as_nanos() / spec.total_ops).max(1),
            remaining: spec.total_ops,
            now_nanos: 0,
        }
    }
}

impl Iterator for TraceGenerator {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Jittered arrival: uniform within the slot keeps bursts mild but
        // times strictly ordered.
        let jitter = self
            .rng
            .gen_range(0..self.interarrival_nanos.max(2) / 2 + 1);
        let at = SimTime::from_nanos(self.now_nanos + jitter);
        self.now_nanos += self.interarrival_nanos;

        let is_write = self.rng.gen::<f64>() < self.write_fraction;
        let page = if is_write {
            if self.unique_writes {
                let p = self.next_unique_page % self.pages;
                self.next_unique_page += 1;
                p
            } else if let Some((hot_pages, hot_writes)) = self.hot_mixture {
                let hot_count = ((self.pages as f64 * hot_pages) as u64).max(1);
                if self.rng.gen::<f64>() < hot_writes {
                    self.rng.gen_range(0..hot_count)
                } else {
                    self.rng.gen_range(hot_count..self.pages.max(hot_count + 1))
                }
            } else {
                self.write_zipf.sample(&mut self.rng)
            }
        } else {
            self.read_zipf.sample_scrambled(&mut self.rng)
        };
        Some(TraceEvent { at, page, is_write })
    }
}

/// The four-application trace suite whose volumes span §3's categories.
///
/// Volume scale is reduced from the production hundreds-of-GB to tens of
/// thousands of pages so analyses run in seconds; all §3 metrics are
/// fractions, which are scale-free.
pub fn paper_trace_suite() -> Vec<AppTraceSpec> {
    let day = SimDuration::from_secs(24 * 3600);
    vec![
        AppTraceSpec {
            app: AppKind::AzureBlob,
            duration: day,
            volumes: vec![
                // Category 1: few writes, mostly unique pages.
                vol("A", 40_000, 160_000, 0.02, 0.50, true),
                vol("B", 32_000, 200_000, 0.05, 0.60, false),
                vol("C", 48_000, 240_000, 0.08, 0.75, false),
                vol("D", 40_000, 200_000, 0.04, 0.55, true),
                vol("E", 36_000, 180_000, 0.10, 0.85, false),
                vol("F", 44_000, 220_000, 0.06, 0.70, false),
                vol("G", 40_000, 200_000, 0.12, 0.90, false),
                vol("H", 36_000, 180_000, 0.03, 0.50, true),
            ],
        },
        AppTraceSpec {
            app: AppKind::Cosmos,
            duration: SimDuration::from_secs(3 * 3600 + 1800), // 3.5 h
            volumes: vec![
                vol("A", 40_000, 300_000, 0.10, 0.80, false),
                // Category 2: few writes, strongly skewed (≈30% of touched
                // pages hold 99% of writes in the paper).
                vol_mixture("B", 36_000, 280_000, 0.08, 0.04, 0.95),
                vol_mixture("C", 40_000, 320_000, 0.06, 0.03, 0.95),
                vol("D", 32_000, 260_000, 0.15, 0.85, false),
                // Category 4: write heavy, unique pages (worst case).
                vol("E", 36_000, 600_000, 0.70, 0.60, true),
                // Category 3: write heavy, ~10% of pages hold 99% of writes.
                vol_mixture("F", 40_000, 700_000, 0.70, 0.10, 0.99),
                vol("G", 36_000, 300_000, 0.12, 0.90, false),
            ],
        },
        AppTraceSpec {
            app: AppKind::PageRank,
            duration: day,
            volumes: vec![
                vol("A", 40_000, 400_000, 0.20, 0.90, false),
                vol("B", 36_000, 360_000, 0.25, 0.92, false),
                vol("C", 40_000, 380_000, 0.10, 0.85, false),
                vol("D", 32_000, 300_000, 0.30, 0.95, false),
                vol("E", 36_000, 340_000, 0.15, 0.88, false),
                vol("F", 40_000, 360_000, 0.22, 0.93, false),
            ],
        },
        AppTraceSpec {
            app: AppKind::SearchIndex,
            duration: day,
            volumes: vec![
                vol("A", 40_000, 500_000, 0.05, 0.90, false),
                vol("B", 36_000, 440_000, 0.08, 0.92, false),
                vol("C", 40_000, 480_000, 0.03, 0.85, false),
                vol("D", 32_000, 400_000, 0.12, 0.95, false),
                vol("E", 36_000, 420_000, 0.06, 0.88, false),
                vol("F", 40_000, 460_000, 0.10, 0.93, false),
            ],
        },
    ]
}

fn vol(
    name: &'static str,
    pages: u64,
    total_ops: u64,
    write_fraction: f64,
    write_theta: f64,
    unique_writes: bool,
) -> VolumeSpec {
    VolumeSpec {
        name,
        pages,
        total_ops,
        write_fraction,
        write_theta,
        unique_writes,
        hot_mixture: None,
    }
}

fn vol_mixture(
    name: &'static str,
    pages: u64,
    total_ops: u64,
    write_fraction: f64,
    hot_page_fraction: f64,
    hot_write_fraction: f64,
) -> VolumeSpec {
    VolumeSpec {
        name,
        pages,
        total_ops,
        write_fraction,
        write_theta: 0.99,
        unique_writes: false,
        hot_mixture: Some((hot_page_fraction, hot_write_fraction)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> VolumeSpec {
        vol("T", 10_000, 50_000, 0.3, 0.95, false)
    }

    #[test]
    fn generator_emits_exactly_total_ops_in_time_order() {
        let events: Vec<_> =
            TraceGenerator::new(&sample_spec(), SimDuration::from_secs(3600), 9).collect();
        assert_eq!(events.len(), 50_000);
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(events.iter().all(|e| e.page < 10_000));
    }

    #[test]
    fn write_fraction_is_respected() {
        let events: Vec<_> =
            TraceGenerator::new(&sample_spec(), SimDuration::from_secs(3600), 10).collect();
        let writes = events.iter().filter(|e| e.is_write).count();
        let frac = writes as f64 / events.len() as f64;
        assert!((0.28..0.32).contains(&frac), "write fraction {frac}");
    }

    #[test]
    fn unique_writes_touch_distinct_pages() {
        let spec = vol("U", 100_000, 20_000, 1.0, 0.5, true);
        let events: Vec<_> = TraceGenerator::new(&spec, SimDuration::from_secs(60), 3).collect();
        let pages: std::collections::HashSet<u64> = events
            .iter()
            .filter(|e| e.is_write)
            .map(|e| e.page)
            .collect();
        assert_eq!(pages.len(), events.len(), "every write hits a fresh page");
    }

    #[test]
    fn skewed_writes_concentrate_on_few_pages() {
        let spec = vol("S", 10_000, 100_000, 1.0, 0.99, false);
        let mut counts = std::collections::HashMap::new();
        for e in TraceGenerator::new(&spec, SimDuration::from_secs(60), 4) {
            *counts.entry(e.page).or_insert(0u64) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = freqs.iter().sum();
        let top_decile: u64 = freqs.iter().take(counts.len() / 10).sum();
        assert!(
            top_decile as f64 / total as f64 > 0.6,
            "top decile only covered {:.2}",
            top_decile as f64 / total as f64
        );
    }

    #[test]
    fn suite_covers_all_four_apps_and_categories() {
        let suite = paper_trace_suite();
        assert_eq!(suite.len(), 4);
        let cosmos = suite.iter().find(|s| s.app == AppKind::Cosmos).unwrap();
        assert!(
            cosmos.duration < SimDuration::from_secs(24 * 3600),
            "Cosmos is 3.5 h"
        );
        // Category 3 exists: write heavy + very skewed.
        assert!(cosmos
            .volumes
            .iter()
            .any(|v| v.write_fraction >= 0.5 && v.write_theta > 0.95 && !v.unique_writes));
        // Category 4 exists: write heavy + unique.
        assert!(cosmos
            .volumes
            .iter()
            .any(|v| v.write_fraction >= 0.5 && v.unique_writes));
        for app in &suite {
            assert!(!app.volumes.is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a: Vec<_> =
            TraceGenerator::new(&sample_spec(), SimDuration::from_secs(60), 7).collect();
        let b: Vec<_> =
            TraceGenerator::new(&sample_spec(), SimDuration::from_secs(60), 7).collect();
        assert_eq!(a, b);
    }
}
