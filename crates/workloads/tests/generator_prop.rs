//! Property tests of the workload generators: domains, mixes, and
//! determinism under arbitrary parameters.

use proptest::prelude::*;
use sim_clock::SimDuration;
use workloads::{TraceGenerator, VolumeSpec, YcsbGenerator, YcsbOp, YcsbWorkload, ZipfGenerator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn zipf_samples_stay_in_domain_for_any_parameters(
        n in 1..100_000u64,
        theta in 0.01..0.999f64,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let zipf = ZipfGenerator::new(n, theta);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(zipf.sample(&mut rng) < n);
            prop_assert!(zipf.sample_scrambled(&mut rng) < n);
        }
    }

    #[test]
    fn zipf_coverage_is_monotone_in_k(
        n in 10..10_000u64,
        theta in 0.1..0.99f64,
    ) {
        let zipf = ZipfGenerator::new(n, theta);
        let mut prev = 0.0;
        for k in [1, n / 4 + 1, n / 2 + 1, n] {
            let cov = zipf.coverage_of_top(k);
            prop_assert!(cov >= prev - 1e-12);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&cov));
            prev = cov;
        }
        prop_assert!((zipf.coverage_of_top(n) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ycsb_ops_reference_only_live_records(
        workload_idx in 0..5usize,
        records in 1..5_000u64,
        seed in any::<u64>(),
    ) {
        let workload = YcsbWorkload::ALL[workload_idx];
        let mut gen = YcsbGenerator::new(workload, records, seed);
        for _ in 0..300 {
            let op = gen.next_op();
            match op {
                YcsbOp::Insert(id) => prop_assert!(id < gen.record_count()),
                other => prop_assert!(
                    other.record() < gen.record_count(),
                    "{other:?} out of range"
                ),
            }
        }
        prop_assert!(gen.record_count() >= records, "datasets never shrink");
    }

    #[test]
    fn ycsb_mixes_match_their_specification(
        seed in any::<u64>(),
    ) {
        // YCSB-B: 95/5 read/update within tolerance; C: strictly read-only.
        let mut b = YcsbGenerator::new(YcsbWorkload::B, 1_000, seed);
        let updates = (0..4_000).filter(|_| b.next_op().is_write()).count();
        prop_assert!((100..320).contains(&updates), "B updates: {updates}");

        let mut c = YcsbGenerator::new(YcsbWorkload::C, 1_000, seed);
        for _ in 0..500 {
            prop_assert!(!c.next_op().is_write());
        }
    }

    #[test]
    fn trace_generator_respects_spec_for_any_parameters(
        pages in 10..20_000u64,
        total_ops in 1..5_000u64,
        write_fraction in 0.0..1.0f64,
        theta in 0.1..0.99f64,
        unique in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let spec = VolumeSpec {
            name: "P",
            pages,
            total_ops,
            write_fraction,
            write_theta: theta,
            unique_writes: unique,
            hot_mixture: None,
        };
        let events: Vec<_> =
            TraceGenerator::new(&spec, SimDuration::from_secs(60), seed).collect();
        prop_assert_eq!(events.len() as u64, total_ops);
        for e in &events {
            prop_assert!(e.page < pages);
        }
        prop_assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn hot_mixture_concentrates_writes(
        seed in any::<u64>(),
    ) {
        let spec = VolumeSpec {
            name: "M",
            pages: 10_000,
            total_ops: 20_000,
            write_fraction: 1.0,
            write_theta: 0.9,
            unique_writes: false,
            hot_mixture: Some((0.1, 0.99)),
        };
        let hot_cutoff = 1_000u64;
        let events = TraceGenerator::new(&spec, SimDuration::from_secs(60), seed);
        let (mut hot, mut total) = (0u64, 0u64);
        for e in events {
            if e.is_write {
                total += 1;
                if e.page < hot_cutoff {
                    hot += 1;
                }
            }
        }
        let frac = hot as f64 / total as f64;
        prop_assert!(frac > 0.97, "hot fraction {frac}");
    }
}
