//! Battery, server power model, and dirty-budget derivation for
//! battery-backed DRAM (Viyojit §2.2, §5.1, §8).
//!
//! Viyojit's contract with the battery is a single number: the **dirty
//! budget**, the maximum number of NV-DRAM pages that may be inconsistent
//! with the backing SSD at any instant. §5.1 derives it as
//!
//! ```text
//! holdup_time  = effective_battery_energy / peak_system_power
//! dirty_budget = holdup_time x conservative_ssd_write_bandwidth
//! ```
//!
//! This crate implements that chain with the real-world derates §2.2
//! enumerates (depth-of-discharge limits for 3-4 year lifetime, datacenter
//! cell derating, aging/temperature health), plus the DRAM-vs-lithium
//! density scaling series behind Fig. 1.
//!
//! # Examples
//!
//! ```
//! use battery_sim::{Battery, BatteryConfig, DirtyBudget, PowerModel};
//!
//! let battery = Battery::new(BatteryConfig::with_capacity_joules(3_000.0));
//! let power = PowerModel::datacenter_server(4.0); // 4 GiB of DRAM
//! let budget = DirtyBudget::derive(&battery, &power, 2_000_000_000);
//! assert!(budget.bytes() > 0);
//! ```

mod battery;
mod budget;
mod dynamics;
mod power;
mod scaling;

pub use battery::{Battery, BatteryConfig};
pub use budget::DirtyBudget;
pub use dynamics::{BudgetGovernor, HealthModel};
pub use power::PowerModel;
pub use scaling::{density_series, DensityPoint, DRAM_GROWTH_PER_YEAR, LITHIUM_GROWTH_PER_YEAR};
