//! Time-varying battery capacity (§2.2, §8).
//!
//! The paper lists the reasons available battery capacity moves at
//! runtime: "variations in external power fluctuations, aging, ambient
//! temperature and humidity variation, depth of discharge". §8's answer
//! is to re-derive the dirty budget as capacity changes instead of
//! over-provisioning for the worst case. This module provides a health
//! model combining calendar aging, cycle wear, and a diurnal temperature
//! profile, plus a [`BudgetGovernor`] that turns the varying health into
//! a stream of budget updates.

use sim_clock::SimDuration;
use telemetry::{Telemetry, TraceEvent};

use crate::{Battery, DirtyBudget, PowerModel};

/// A battery-health trajectory: multiplicative factors from calendar
/// aging, discharge-cycle wear, and ambient temperature.
///
/// # Examples
///
/// ```
/// use battery_sim::HealthModel;
/// use sim_clock::SimDuration;
///
/// let model = HealthModel::datacenter_default();
/// let fresh = model.health_at(SimDuration::ZERO, 0);
/// let aged = model.health_at(SimDuration::from_secs(2 * 365 * 24 * 3600), 500);
/// assert!(aged < fresh);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HealthModel {
    /// Fractional capacity lost per year of calendar age.
    pub calendar_fade_per_year: f64,
    /// Fractional capacity lost per full discharge cycle.
    pub fade_per_cycle: f64,
    /// Amplitude of the diurnal temperature effect (fractional capacity
    /// swing between the coolest and hottest hour).
    pub diurnal_amplitude: f64,
    /// Health floor: the model never predicts below this.
    pub floor: f64,
}

impl HealthModel {
    /// Li-ion in a datacenter hot aisle: ~2%/year calendar fade, ~0.005%
    /// per cycle (§2.2's 3-4 year life at 50% DoD), ±3% diurnal swing.
    pub fn datacenter_default() -> Self {
        HealthModel {
            calendar_fade_per_year: 0.02,
            fade_per_cycle: 0.00005,
            diurnal_amplitude: 0.03,
            floor: 0.2,
        }
    }

    /// Predicted health in `[floor, 1]` at the given age and cycle count.
    pub fn health_at(&self, age: SimDuration, discharge_cycles: u64) -> f64 {
        let years = age.as_secs_f64() / (365.0 * 24.0 * 3600.0);
        let calendar = 1.0 - self.calendar_fade_per_year * years;
        let cycling = 1.0 - self.fade_per_cycle * discharge_cycles as f64;
        let day_fraction = (age.as_secs_f64() / (24.0 * 3600.0)).fract();
        // Coolest at 06:00, hottest at noon.
        let diurnal = 1.0
            - self.diurnal_amplitude / 2.0
                * (1.0 + (std::f64::consts::TAU * (day_fraction - 0.25)).sin())
            + self.diurnal_amplitude / 2.0;
        (calendar * cycling * diurnal).clamp(self.floor, 1.0)
    }
}

/// Drives a battery's health over time and re-derives the dirty budget,
/// §8's "tuning of the dirty budget at runtime according to changes in
/// battery capacity".
///
/// # Examples
///
/// ```
/// use battery_sim::{Battery, BatteryConfig, BudgetGovernor, HealthModel, PowerModel};
/// use sim_clock::SimDuration;
///
/// let mut governor = BudgetGovernor::new(
///     Battery::new(BatteryConfig::with_capacity_joules(100.0)),
///     PowerModel::datacenter_server(1.0),
///     2_000_000_000,
///     HealthModel::datacenter_default(),
/// );
/// let fresh = governor.advance(SimDuration::ZERO).pages();
/// let aged = governor.advance(SimDuration::from_secs(3 * 365 * 24 * 3600)).pages();
/// assert!(aged < fresh);
/// ```
#[derive(Debug, Clone)]
pub struct BudgetGovernor {
    battery: Battery,
    power: PowerModel,
    flush_bandwidth: u64,
    model: HealthModel,
    age: SimDuration,
    discharge_cycles: u64,
    telemetry: Telemetry,
}

impl BudgetGovernor {
    /// Creates a governor for a fresh battery.
    pub fn new(
        battery: Battery,
        power: PowerModel,
        flush_bandwidth_bytes_per_sec: u64,
        model: HealthModel,
    ) -> Self {
        BudgetGovernor {
            battery,
            power,
            flush_bandwidth: flush_bandwidth_bytes_per_sec,
            model,
            age: SimDuration::ZERO,
            discharge_cycles: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle; each [`BudgetGovernor::advance`] then
    /// emits a `BatteryRecalc` trace event and publishes battery state
    /// into the metrics registry.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The battery as currently derated.
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// Battery age so far.
    pub fn age(&self) -> SimDuration {
        self.age
    }

    /// Records one discharge cycle (a power event that drew on the
    /// battery).
    pub fn record_discharge(&mut self) {
        self.discharge_cycles += 1;
    }

    /// Advances time, updates health from the model, and returns the
    /// dirty budget the current capacity supports.
    pub fn advance(&mut self, elapsed: SimDuration) -> DirtyBudget {
        self.age += elapsed;
        let health = self.model.health_at(self.age, self.discharge_cycles);
        self.battery.set_health(health);
        let budget = DirtyBudget::derive(&self.battery, &self.power, self.flush_bandwidth);
        self.telemetry.emit(|| TraceEvent::BatteryRecalc {
            budget_pages: budget.pages(),
            health_permille: (health * 1000.0).round() as u64,
        });
        let (joules, cycles) = (self.battery.effective_joules(), self.discharge_cycles);
        self.telemetry.metrics(|m| {
            m.gauge_set("battery.health", health);
            m.gauge_set("battery.effective_joules", joules);
            m.gauge_set("battery.budget_pages", budget.pages() as f64);
            m.counter_set("battery.discharge_cycles", cycles);
        });
        budget
    }

    /// The budget at the current instant without advancing time.
    pub fn current_budget(&self) -> DirtyBudget {
        DirtyBudget::derive(&self.battery, &self.power, self.flush_bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BatteryConfig;

    fn day() -> SimDuration {
        SimDuration::from_secs(24 * 3600)
    }

    fn year() -> SimDuration {
        SimDuration::from_secs(365 * 24 * 3600)
    }

    #[test]
    fn health_declines_with_age_and_cycles() {
        let m = HealthModel::datacenter_default();
        let fresh = m.health_at(SimDuration::ZERO, 0);
        let one_year = m.health_at(year(), 0);
        let cycled = m.health_at(year(), 2_000);
        assert!(one_year < fresh);
        assert!(cycled < one_year);
    }

    #[test]
    fn health_never_falls_below_the_floor() {
        let m = HealthModel::datacenter_default();
        let ancient = m.health_at(year() * 100, 1_000_000);
        assert!((m.floor..=1.0).contains(&ancient));
    }

    #[test]
    fn diurnal_swing_moves_health_within_a_day() {
        let m = HealthModel::datacenter_default();
        let samples: Vec<f64> = (0..24)
            .map(|h| m.health_at(SimDuration::from_secs(h * 3600), 0))
            .collect();
        let min = samples.iter().copied().fold(f64::MAX, f64::min);
        let max = samples.iter().copied().fold(f64::MIN, f64::max);
        assert!(
            max - min > 0.01,
            "temperature should move health measurably: {min}..{max}"
        );
        assert!(max - min <= m.diurnal_amplitude + 1e-9);
    }

    #[test]
    fn governor_budget_tracks_declining_health() {
        let mut g = BudgetGovernor::new(
            Battery::new(BatteryConfig::with_capacity_joules(500.0)),
            PowerModel::datacenter_server(4.0),
            2_000_000_000,
            HealthModel::datacenter_default(),
        );
        let fresh = g.advance(SimDuration::ZERO);
        for _ in 0..50 {
            g.record_discharge();
        }
        let later = g.advance(year() * 3);
        assert!(later.pages() < fresh.pages());
        assert!(later.pages() > 0, "floor keeps the budget usable");
    }

    #[test]
    fn governor_age_accumulates() {
        let mut g = BudgetGovernor::new(
            Battery::new(BatteryConfig::with_capacity_joules(100.0)),
            PowerModel::datacenter_server(1.0),
            1_000_000_000,
            HealthModel::datacenter_default(),
        );
        g.advance(day());
        g.advance(day());
        assert_eq!(g.age(), day() * 2);
    }
}
