//! The DRAM-vs-lithium density scaling divergence behind Fig. 1.
//!
//! The paper anchors two facts: lithium battery energy density grew ~3.3x
//! over the 25 years before publication, while the DRAM capacity of a
//! high-end 1RU server grew by more than four orders of magnitude
//! (>50,000x) in the same period. Expressed as compound annual growth:

/// DRAM capacity growth per year (50,000x over 25 years).
pub const DRAM_GROWTH_PER_YEAR: f64 = 1.541632;
/// Lithium energy-density growth per year (3.3x over 25 years).
pub const LITHIUM_GROWTH_PER_YEAR: f64 = 1.048896;

/// One year's point on the Fig. 1 curves: growth of each technology
/// relative to the 1990 baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityPoint {
    /// Calendar year.
    pub year: u32,
    /// DRAM GB-per-rack-unit relative to 1990.
    pub dram_relative: f64,
    /// Lithium joules-per-unit-volume relative to 1990.
    pub lithium_relative: f64,
    /// `true` for years past the paper's measurement window (the dashed
    /// "Projected" region of Fig. 1).
    pub projected: bool,
}

impl DensityPoint {
    /// Ratio by which DRAM has out-grown lithium at this point.
    pub fn divergence(&self) -> f64 {
        self.dram_relative / self.lithium_relative
    }
}

/// The Fig. 1 series: relative growth of DRAM and lithium density from
/// `start_year` to `end_year` (inclusive), with years after
/// `measured_until` flagged as projections.
///
/// # Examples
///
/// ```
/// use battery_sim::density_series;
///
/// let series = density_series(1990, 2020, 2015);
/// let at_2015 = series.iter().find(|p| p.year == 2015).unwrap();
/// assert!(at_2015.dram_relative > 1e4, "four orders of magnitude by 2015");
/// assert!(at_2015.lithium_relative < 4.0, "lithium only ~3.3x");
/// ```
///
/// # Panics
///
/// Panics if `end_year < start_year`.
pub fn density_series(start_year: u32, end_year: u32, measured_until: u32) -> Vec<DensityPoint> {
    assert!(end_year >= start_year, "series must run forward in time");
    (start_year..=end_year)
        .map(|year| {
            let dt = (year - start_year) as f64;
            DensityPoint {
                year,
                dram_relative: DRAM_GROWTH_PER_YEAR.powf(dt),
                lithium_relative: LITHIUM_GROWTH_PER_YEAR.powf(dt),
                projected: year > measured_until,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_five_year_anchors_match_the_paper() {
        let series = density_series(1990, 2015, 2015);
        let last = series.last().unwrap();
        assert!(
            (45_000.0..60_000.0).contains(&last.dram_relative),
            "DRAM should be >4 orders of magnitude: {}",
            last.dram_relative
        );
        assert!(
            (3.0..3.6).contains(&last.lithium_relative),
            "lithium should be ~3.3x: {}",
            last.lithium_relative
        );
    }

    #[test]
    fn divergence_grows_monotonically() {
        let series = density_series(1990, 2020, 2015);
        for pair in series.windows(2) {
            assert!(pair[1].divergence() > pair[0].divergence());
        }
    }

    #[test]
    fn projection_flag_splits_at_measured_until() {
        let series = density_series(1990, 2020, 2015);
        for p in &series {
            assert_eq!(p.projected, p.year > 2015, "year {}", p.year);
        }
    }

    #[test]
    fn baseline_year_is_unity() {
        let series = density_series(2000, 2000, 2000);
        assert_eq!(series.len(), 1);
        assert!((series[0].dram_relative - 1.0).abs() < 1e-12);
        assert!((series[0].lithium_relative - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "forward in time")]
    fn backwards_series_panics() {
        let _ = density_series(2020, 1990, 2015);
    }
}
