//! The battery model with the derates of §2.2.

use sim_clock::SimDuration;

/// Static battery provisioning parameters.
///
/// The paper's §2.2 lists the factors that shrink a battery's *usable*
/// energy well below its nameplate capacity: a 50% depth-of-discharge limit
/// for a 3-4 year service life, ~30% lower-density cells for datacenter
/// power levels, and reserve capacity held back for other uses
/// (peak-shaving, power blips). All are modelled here.
///
/// # Examples
///
/// ```
/// use battery_sim::BatteryConfig;
///
/// let cfg = BatteryConfig::with_capacity_joules(1_000.0);
/// // Usable energy is nameplate x depth-of-discharge x (1 - reserve).
/// assert!(cfg.usable_joules() < 1_000.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BatteryConfig {
    /// Nameplate capacity in joules.
    pub capacity_joules: f64,
    /// Fraction of capacity that may be discharged per §2.2's lifetime
    /// guidance (0.5 for a 3-4 year life).
    pub depth_of_discharge: f64,
    /// Fraction of usable energy reserved for non-NV-DRAM uses
    /// (peak-shaving, brownouts).
    pub reserve_fraction: f64,
}

impl BatteryConfig {
    /// A config with the paper's default derates and the given nameplate
    /// capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_joules` is not positive and finite.
    pub fn with_capacity_joules(capacity_joules: f64) -> Self {
        assert!(
            capacity_joules > 0.0 && capacity_joules.is_finite(),
            "battery capacity must be positive and finite, got {capacity_joules}"
        );
        BatteryConfig {
            capacity_joules,
            depth_of_discharge: 0.5,
            reserve_fraction: 0.0,
        }
    }

    /// Returns `self` with a different depth-of-discharge limit.
    ///
    /// # Panics
    ///
    /// Panics if `dod` is outside `(0, 1]`.
    #[must_use]
    pub fn with_depth_of_discharge(mut self, dod: f64) -> Self {
        assert!(
            dod > 0.0 && dod <= 1.0,
            "depth of discharge must be in (0,1], got {dod}"
        );
        self.depth_of_discharge = dod;
        self
    }

    /// Returns `self` with a reserve fraction held back for other uses.
    ///
    /// # Panics
    ///
    /// Panics if `reserve` is outside `[0, 1)`.
    #[must_use]
    pub fn with_reserve_fraction(mut self, reserve: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&reserve),
            "reserve fraction must be in [0,1), got {reserve}"
        );
        self.reserve_fraction = reserve;
        self
    }

    /// Usable joules at full health.
    pub fn usable_joules(&self) -> f64 {
        self.capacity_joules * self.depth_of_discharge * (1.0 - self.reserve_fraction)
    }
}

/// A battery instance whose available capacity varies over time (aging,
/// ambient temperature, cell failures — §8 "Handling battery cell
/// failures").
///
/// # Examples
///
/// ```
/// use battery_sim::{Battery, BatteryConfig};
///
/// let mut b = Battery::new(BatteryConfig::with_capacity_joules(600.0));
/// let fresh = b.effective_joules();
/// b.set_health(0.8); // lost a cell, or a hot day
/// assert!(b.effective_joules() < fresh);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Battery {
    config: BatteryConfig,
    health: f64,
}

impl Battery {
    /// A battery at full health.
    pub fn new(config: BatteryConfig) -> Self {
        Battery {
            config,
            health: 1.0,
        }
    }

    /// The static provisioning parameters.
    pub fn config(&self) -> &BatteryConfig {
        &self.config
    }

    /// Current health in `[0, 1]`.
    pub fn health(&self) -> f64 {
        self.health
    }

    /// Updates health (1.0 = new, 0.0 = dead). Viyojit re-derives the dirty
    /// budget when this changes, rather than halting the server.
    ///
    /// # Panics
    ///
    /// Panics if `health` is outside `[0, 1]`.
    pub fn set_health(&mut self, health: f64) {
        assert!(
            (0.0..=1.0).contains(&health),
            "battery health must be in [0,1], got {health}"
        );
        self.health = health;
    }

    /// Joules actually available for a flush right now.
    pub fn effective_joules(&self) -> f64 {
        self.config.usable_joules() * self.health
    }

    /// How long this battery can hold up a system drawing `watts`.
    ///
    /// # Panics
    ///
    /// Panics if `watts` is not positive and finite.
    pub fn holdup_time(&self, watts: f64) -> SimDuration {
        assert!(
            watts > 0.0 && watts.is_finite(),
            "power draw must be positive and finite, got {watts}"
        );
        SimDuration::from_secs_f64(self.effective_joules() / watts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_derates_halve_capacity() {
        let cfg = BatteryConfig::with_capacity_joules(1_000.0);
        assert!((cfg.usable_joules() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn reserve_stacks_with_dod() {
        let cfg = BatteryConfig::with_capacity_joules(1_000.0)
            .with_depth_of_discharge(0.5)
            .with_reserve_fraction(0.2);
        assert!((cfg.usable_joules() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn holdup_time_is_energy_over_power() {
        let b =
            Battery::new(BatteryConfig::with_capacity_joules(600.0).with_depth_of_discharge(1.0));
        // 600 J at 300 W = 2 s.
        assert_eq!(b.holdup_time(300.0).as_millis(), 2_000);
    }

    #[test]
    fn health_scales_holdup_linearly() {
        let mut b =
            Battery::new(BatteryConfig::with_capacity_joules(600.0).with_depth_of_discharge(1.0));
        let full = b.holdup_time(100.0);
        b.set_health(0.5);
        assert_eq!(b.holdup_time(100.0).as_nanos() * 2, full.as_nanos());
    }

    #[test]
    #[should_panic(expected = "health must be in")]
    fn overcharged_health_panics() {
        Battery::new(BatteryConfig::with_capacity_joules(1.0)).set_health(1.5);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BatteryConfig::with_capacity_joules(0.0);
    }
}
