//! The battery model with the derates of §2.2.

use fault_sim::FaultPlan;
use sim_clock::SimDuration;

/// Static battery provisioning parameters.
///
/// The paper's §2.2 lists the factors that shrink a battery's *usable*
/// energy well below its nameplate capacity: a 50% depth-of-discharge limit
/// for a 3-4 year service life, ~30% lower-density cells for datacenter
/// power levels, and reserve capacity held back for other uses
/// (peak-shaving, power blips). All are modelled here.
///
/// # Examples
///
/// ```
/// use battery_sim::BatteryConfig;
///
/// let cfg = BatteryConfig::with_capacity_joules(1_000.0);
/// // Usable energy is nameplate x depth-of-discharge x (1 - reserve).
/// assert!(cfg.usable_joules() < 1_000.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BatteryConfig {
    /// Nameplate capacity in joules.
    pub capacity_joules: f64,
    /// Fraction of capacity that may be discharged per §2.2's lifetime
    /// guidance (0.5 for a 3-4 year life).
    pub depth_of_discharge: f64,
    /// Fraction of usable energy reserved for non-NV-DRAM uses
    /// (peak-shaving, brownouts).
    pub reserve_fraction: f64,
}

impl BatteryConfig {
    /// A config with the paper's default derates and the given nameplate
    /// capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_joules` is not positive and finite.
    pub fn with_capacity_joules(capacity_joules: f64) -> Self {
        assert!(
            capacity_joules > 0.0 && capacity_joules.is_finite(),
            "battery capacity must be positive and finite, got {capacity_joules}"
        );
        BatteryConfig {
            capacity_joules,
            depth_of_discharge: 0.5,
            reserve_fraction: 0.0,
        }
    }

    /// Returns `self` with a different depth-of-discharge limit.
    ///
    /// # Panics
    ///
    /// Panics if `dod` is outside `(0, 1]`.
    #[must_use]
    pub fn with_depth_of_discharge(mut self, dod: f64) -> Self {
        assert!(
            dod > 0.0 && dod <= 1.0,
            "depth of discharge must be in (0,1], got {dod}"
        );
        self.depth_of_discharge = dod;
        self
    }

    /// Returns `self` with a reserve fraction held back for other uses.
    ///
    /// # Panics
    ///
    /// Panics if `reserve` is outside `[0, 1)`.
    #[must_use]
    pub fn with_reserve_fraction(mut self, reserve: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&reserve),
            "reserve fraction must be in [0,1), got {reserve}"
        );
        self.reserve_fraction = reserve;
        self
    }

    /// Usable joules at full health.
    pub fn usable_joules(&self) -> f64 {
        self.capacity_joules * self.depth_of_discharge * (1.0 - self.reserve_fraction)
    }
}

/// A battery instance whose available capacity varies over time (aging,
/// ambient temperature, cell failures — §8 "Handling battery cell
/// failures").
///
/// # Examples
///
/// ```
/// use battery_sim::{Battery, BatteryConfig};
///
/// let mut b = Battery::new(BatteryConfig::with_capacity_joules(600.0));
/// let fresh = b.effective_joules();
/// b.set_health(0.8); // lost a cell, or a hot day
/// assert!(b.effective_joules() < fresh);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Battery {
    config: BatteryConfig,
    health: f64,
}

impl Battery {
    /// A battery at full health.
    pub fn new(config: BatteryConfig) -> Self {
        Battery {
            config,
            health: 1.0,
        }
    }

    /// The static provisioning parameters.
    pub fn config(&self) -> &BatteryConfig {
        &self.config
    }

    /// Current health in `[0, 1]`.
    pub fn health(&self) -> f64 {
        self.health
    }

    /// Updates health (1.0 = new, 0.0 = dead). Viyojit re-derives the dirty
    /// budget when this changes, rather than halting the server.
    ///
    /// # Panics
    ///
    /// Panics if `health` is outside `[0, 1]`.
    pub fn set_health(&mut self, health: f64) {
        assert!(
            (0.0..=1.0).contains(&health),
            "battery health must be in [0,1], got {health}"
        );
        self.health = health;
    }

    /// Joules actually available for a flush right now.
    pub fn effective_joules(&self) -> f64 {
        self.config.usable_joules() * self.health
    }

    /// How long this battery can hold up a system drawing `watts`.
    ///
    /// # Panics
    ///
    /// Panics if `watts` is not positive and finite.
    pub fn holdup_time(&self, watts: f64) -> SimDuration {
        assert!(
            watts > 0.0 && watts.is_finite(),
            "power draw must be positive and finite, got {watts}"
        );
        SimDuration::from_secs_f64(self.effective_joules() / watts)
    }

    /// The state of charge the battery's gauge *reports*, which under an
    /// active [`FaultPlan`] may differ from [`Battery::effective_joules`]
    /// (§2.2's gauges drift; fault kind `soc_misreport`). Control loops
    /// should budget from this; physics (the actual hold-up race) uses
    /// [`Battery::deliverable_joules`].
    pub fn reported_joules(&self, faults: &FaultPlan) -> f64 {
        self.effective_joules() * faults.soc_report_factor()
    }

    /// The health the battery's gauge reports: true health scaled by the
    /// same state-of-charge misreport channel.
    pub fn reported_health(&self, faults: &FaultPlan) -> f64 {
        (self.health * faults.soc_report_factor()).clamp(0.0, 1.0)
    }

    /// Checks the plan for an abrupt capacity drop (cell failure) and, if
    /// one fires, scales health down by the returned factor. Returns the
    /// new health so callers can re-derive the dirty budget immediately.
    pub fn apply_capacity_drop(&mut self, faults: &FaultPlan) -> Option<f64> {
        let factor = faults.capacity_drop()?;
        self.health = (self.health * factor).clamp(0.0, 1.0);
        Some(self.health)
    }

    /// Joules the battery actually delivers during a hold-up discharge:
    /// effective energy minus any injected hold-up shortfall (a cell that
    /// sags under load delivers less than its open-circuit gauge implied).
    pub fn deliverable_joules(&self, faults: &FaultPlan) -> f64 {
        self.effective_joules() * (1.0 - faults.holdup_shortfall())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_derates_halve_capacity() {
        let cfg = BatteryConfig::with_capacity_joules(1_000.0);
        assert!((cfg.usable_joules() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn reserve_stacks_with_dod() {
        let cfg = BatteryConfig::with_capacity_joules(1_000.0)
            .with_depth_of_discharge(0.5)
            .with_reserve_fraction(0.2);
        assert!((cfg.usable_joules() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn holdup_time_is_energy_over_power() {
        let b =
            Battery::new(BatteryConfig::with_capacity_joules(600.0).with_depth_of_discharge(1.0));
        // 600 J at 300 W = 2 s.
        assert_eq!(b.holdup_time(300.0).as_millis(), 2_000);
    }

    #[test]
    fn health_scales_holdup_linearly() {
        let mut b =
            Battery::new(BatteryConfig::with_capacity_joules(600.0).with_depth_of_discharge(1.0));
        let full = b.holdup_time(100.0);
        b.set_health(0.5);
        assert_eq!(b.holdup_time(100.0).as_nanos() * 2, full.as_nanos());
    }

    #[test]
    fn inactive_plan_reports_truthfully() {
        let b = Battery::new(BatteryConfig::with_capacity_joules(600.0));
        let plan = FaultPlan::none();
        assert_eq!(b.reported_joules(&plan), b.effective_joules());
        assert_eq!(b.reported_health(&plan), b.health());
        assert_eq!(b.deliverable_joules(&plan), b.effective_joules());
        let mut b = b;
        assert_eq!(b.apply_capacity_drop(&plan), None);
        assert_eq!(b.health(), 1.0);
    }

    #[test]
    fn capacity_drop_halves_health_and_holdup() {
        use fault_sim::FaultConfig;
        let mut b =
            Battery::new(BatteryConfig::with_capacity_joules(600.0).with_depth_of_discharge(1.0));
        let mut config = FaultConfig::none();
        config.capacity_drop_rate = 1.0;
        config.capacity_drop_factor = 0.5;
        let plan = FaultPlan::seeded(4, config);
        let full = b.holdup_time(100.0);
        assert_eq!(b.apply_capacity_drop(&plan), Some(0.5));
        assert_eq!(b.holdup_time(100.0).as_nanos() * 2, full.as_nanos());
    }

    #[test]
    fn holdup_shortfall_reduces_delivery_only() {
        use fault_sim::FaultConfig;
        let b =
            Battery::new(BatteryConfig::with_capacity_joules(600.0).with_depth_of_discharge(1.0));
        let mut config = FaultConfig::none();
        config.holdup_shortfall_rate = 1.0;
        config.holdup_shortfall_fraction = 0.25;
        let plan = FaultPlan::seeded(8, config);
        assert!((b.deliverable_joules(&plan) - 450.0).abs() < 1e-9);
        // The gauge (reported path) is a separate fault channel.
        assert_eq!(b.effective_joules(), 600.0);
    }

    #[test]
    fn misreport_is_reproducible_from_the_seed() {
        use fault_sim::FaultConfig;
        let b = Battery::new(BatteryConfig::with_capacity_joules(600.0));
        let mut config = FaultConfig::none();
        config.soc_misreport_rate = 1.0;
        config.soc_misreport_amplitude = 0.2;
        let a = b.reported_joules(&FaultPlan::seeded(21, config));
        let c = b.reported_joules(&FaultPlan::seeded(21, config));
        assert_eq!(a, c);
        assert!(a >= b.effective_joules() * 0.8 - 1e-9);
        assert!(a <= b.effective_joules() * 1.2 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "health must be in")]
    fn overcharged_health_panics() {
        Battery::new(BatteryConfig::with_capacity_joules(1.0)).set_health(1.5);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BatteryConfig::with_capacity_joules(0.0);
    }
}
