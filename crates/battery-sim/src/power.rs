//! Peak-power model of the server components that must stay up during a
//! battery-powered flush.

/// Peak power draw of the components involved in flushing NV-DRAM to the
/// SSD after a power failure (§5.1: "the peak power usage of different
/// system components (CPU, DRAM, SSD, etc)").
///
/// # Examples
///
/// ```
/// use battery_sim::PowerModel;
///
/// let p = PowerModel::datacenter_server(4096.0); // 4 TB server
/// assert!(p.total_watts() > 300.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// CPU package power while driving the flush.
    pub cpu_watts: f64,
    /// DRAM refresh + access power, per GiB.
    pub dram_watts_per_gib: f64,
    /// GiB of DRAM that must be kept alive.
    pub dram_gib: f64,
    /// SSD power while absorbing the flush at full write bandwidth.
    pub ssd_watts: f64,
    /// Everything else (fans, VRs, board).
    pub base_watts: f64,
}

impl PowerModel {
    /// A commodity 1RU datacenter server flushing with a minimal CPU
    /// complement: numbers chosen so a 4 TB configuration lands near the
    /// paper's "modest 300 W server" example.
    pub fn datacenter_server(dram_gib: f64) -> Self {
        PowerModel {
            cpu_watts: 120.0,
            dram_watts_per_gib: 0.03,
            dram_gib,
            ssd_watts: 25.0,
            base_watts: 40.0,
        }
    }

    /// Total flush-time power draw in watts.
    ///
    /// # Panics
    ///
    /// Panics if any component is negative or the total is not positive.
    pub fn total_watts(&self) -> f64 {
        let total = self.cpu_watts
            + self.dram_watts_per_gib * self.dram_gib
            + self.ssd_watts
            + self.base_watts;
        assert!(
            total > 0.0 && total.is_finite(),
            "power model must yield positive finite power, got {total}"
        );
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_tb_server_is_near_the_papers_300w_example() {
        let p = PowerModel::datacenter_server(4096.0);
        let w = p.total_watts();
        assert!((250.0..=350.0).contains(&w), "got {w} W");
    }

    #[test]
    fn dram_power_scales_with_capacity() {
        let small = PowerModel::datacenter_server(64.0).total_watts();
        let large = PowerModel::datacenter_server(4096.0).total_watts();
        assert!(large > small);
    }

    #[test]
    #[should_panic(expected = "positive finite power")]
    fn nonsensical_model_panics() {
        let p = PowerModel {
            cpu_watts: -500.0,
            dram_watts_per_gib: 0.0,
            dram_gib: 0.0,
            ssd_watts: 0.0,
            base_watts: 0.0,
        };
        let _ = p.total_watts();
    }
}
