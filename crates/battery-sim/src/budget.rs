//! Dirty-budget derivation (§5.1) and its inverse.

use mem_sim::PAGE_SIZE;
use sim_clock::SimDuration;

use crate::{Battery, PowerModel};

/// The maximum amount of NV-DRAM data allowed to be inconsistent with the
/// backing SSD, derived from a battery, a power model, and a conservative
/// SSD write bandwidth.
///
/// # Examples
///
/// ```
/// use battery_sim::{Battery, BatteryConfig, DirtyBudget, PowerModel};
///
/// let battery = Battery::new(
///     BatteryConfig::with_capacity_joules(600.0).with_depth_of_discharge(1.0),
/// );
/// let power = PowerModel {
///     cpu_watts: 300.0, dram_watts_per_gib: 0.0, dram_gib: 0.0,
///     ssd_watts: 0.0, base_watts: 0.0,
/// };
/// // 600 J / 300 W = 2 s holdup; at 1 GB/s that is 2 GB of dirty data.
/// let budget = DirtyBudget::derive(&battery, &power, 1_000_000_000);
/// assert_eq!(budget.bytes(), 2_000_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DirtyBudget {
    bytes: u64,
}

impl DirtyBudget {
    /// Derives the budget: `holdup(battery, power) x flush_bandwidth`.
    pub fn derive(
        battery: &Battery,
        power: &PowerModel,
        flush_bandwidth_bytes_per_sec: u64,
    ) -> Self {
        let holdup = battery.holdup_time(power.total_watts());
        DirtyBudget {
            bytes: (holdup.as_secs_f64() * flush_bandwidth_bytes_per_sec as f64) as u64,
        }
    }

    /// A budget stated directly in bytes (how the evaluation sweeps Fig. 7:
    /// "we use the dirty budget as a proxy for the battery capacity").
    pub const fn from_bytes(bytes: u64) -> Self {
        DirtyBudget { bytes }
    }

    /// A budget stated in pages.
    pub const fn from_pages(pages: u64) -> Self {
        DirtyBudget {
            bytes: pages * PAGE_SIZE as u64,
        }
    }

    /// The budget in bytes.
    pub const fn bytes(self) -> u64 {
        self.bytes
    }

    /// The budget in whole pages (rounded down: a partial page cannot be
    /// left dirty).
    pub const fn pages(self) -> u64 {
        self.bytes / PAGE_SIZE as u64
    }

    /// The nameplate joules a traditional full-backup design would need to
    /// guarantee this many bytes, inverting [`DirtyBudget::derive`] for a
    /// battery with the given config derates.
    pub fn required_nameplate_joules(
        self,
        power: &PowerModel,
        flush_bandwidth_bytes_per_sec: u64,
        depth_of_discharge: f64,
        reserve_fraction: f64,
    ) -> f64 {
        let flush_secs = self.bytes as f64 / flush_bandwidth_bytes_per_sec as f64;
        let joules_at_terminals = flush_secs * power.total_watts();
        joules_at_terminals / (depth_of_discharge * (1.0 - reserve_fraction))
    }

    /// Worst-case shutdown flush time at the given bandwidth (§8
    /// "Increased availability": bounding dirty pages bounds flush time).
    pub fn flush_time(self, flush_bandwidth_bytes_per_sec: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.bytes as f64 / flush_bandwidth_bytes_per_sec as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BatteryConfig;

    fn power_300w() -> PowerModel {
        PowerModel {
            cpu_watts: 300.0,
            dram_watts_per_gib: 0.0,
            dram_gib: 0.0,
            ssd_watts: 0.0,
            base_watts: 0.0,
        }
    }

    #[test]
    fn papers_4tb_example_needs_about_300kj() {
        // §2.2: 4 TB DRAM, 4 GB/s SSD write bandwidth, 300 W server
        // => ~300 kJ of energy delivered at the terminals.
        let budget = DirtyBudget::from_bytes(4 * 1024 * 1024 * 1024 * 1024);
        let joules = budget.required_nameplate_joules(&power_300w(), 4_000_000_000, 1.0, 0.0);
        assert!(
            (280_000.0..360_000.0).contains(&joules),
            "expected ~300 kJ, got {joules}"
        );
    }

    #[test]
    fn derive_matches_hand_computation() {
        let battery =
            Battery::new(BatteryConfig::with_capacity_joules(1_200.0).with_depth_of_discharge(0.5));
        // 600 J usable / 300 W = 2 s; at 500 MB/s -> 1 GB.
        let b = DirtyBudget::derive(&battery, &power_300w(), 500_000_000);
        assert_eq!(b.bytes(), 1_000_000_000);
    }

    #[test]
    fn derive_round_trips_with_required_joules() {
        let dod = 0.5;
        let reserve = 0.1;
        let battery = Battery::new(
            BatteryConfig::with_capacity_joules(10_000.0)
                .with_depth_of_discharge(dod)
                .with_reserve_fraction(reserve),
        );
        let bw = 750_000_000;
        let budget = DirtyBudget::derive(&battery, &power_300w(), bw);
        let back = budget.required_nameplate_joules(&power_300w(), bw, dod, reserve);
        assert!((back - 10_000.0).abs() < 1.0, "round-trip drifted: {back}");
    }

    #[test]
    fn pages_round_down() {
        let b = DirtyBudget::from_bytes(PAGE_SIZE as u64 * 2 + 17);
        assert_eq!(b.pages(), 2);
        assert_eq!(DirtyBudget::from_pages(3).bytes(), 3 * PAGE_SIZE as u64);
    }

    #[test]
    fn flush_time_bounds_shutdown() {
        // The paper: 4 TB at 4 GB/s is ~17 minutes; a 2 GB budget is ~0.5 s.
        let full = DirtyBudget::from_bytes(4 * 1024 * 1024 * 1024 * 1024);
        let mins = full.flush_time(4_000_000_000).as_secs_f64() / 60.0;
        assert!((15.0..20.0).contains(&mins), "got {mins} minutes");
        let bounded = DirtyBudget::from_bytes(2 * 1024 * 1024 * 1024);
        assert!(bounded.flush_time(4_000_000_000).as_millis() < 1_000);
    }
}
