//! Property-based tests of the paper's central guarantee (§4.1):
//! under *any* access pattern the dirty population never exceeds the
//! budget, and a power failure at *any* instant loses no data.

use mem_sim::PAGE_SIZE;
use proptest::prelude::*;
use sim_clock::{Clock, CostModel, SimDuration};
use ssd_sim::SsdConfig;
use viyojit::{NvHeap, TargetPolicy, Viyojit, ViyojitConfig};

const PAGE: u64 = PAGE_SIZE as u64;
const REGION_PAGES: u64 = 24;

/// One step of a random workload.
#[derive(Debug, Clone)]
enum Op {
    /// Write `len` bytes of `fill` at `offset`.
    Write { offset: u64, len: u16, fill: u8 },
    /// Read back a range (exercises the read path, may cross epochs).
    Read { offset: u64, len: u16 },
    /// Let virtual time pass (epochs run, IOs retire).
    Idle { micros: u16 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let max_off = REGION_PAGES * PAGE - u16::MAX as u64;
    prop_oneof![
        4 => (0..max_off, 1..2048u16, any::<u8>())
            .prop_map(|(offset, len, fill)| Op::Write { offset, len, fill }),
        2 => (0..max_off, 1..2048u16).prop_map(|(offset, len)| Op::Read { offset, len }),
        1 => (1..2000u16).prop_map(|micros| Op::Idle { micros }),
    ]
}

fn build(budget: u64, policy: TargetPolicy) -> Viyojit {
    Viyojit::new(
        32,
        ViyojitConfig::with_budget_pages(budget).with_target_policy(policy),
        Clock::new(),
        CostModel::calibrated(),
        SsdConfig::datacenter(),
    )
}

/// Runs `ops` against both Viyojit and a plain in-memory model, checking
/// the budget invariant after every step, then crashes at the end and
/// verifies recovery restores exactly the model's contents.
fn run_and_crash(budget: u64, policy: TargetPolicy, ops: &[Op]) {
    let mut v = build(budget, policy);
    let r = v.map(REGION_PAGES * PAGE).unwrap();
    let mut model = vec![0u8; (REGION_PAGES * PAGE) as usize];

    for op in ops {
        match *op {
            Op::Write { offset, len, fill } => {
                let data = vec![fill; len as usize];
                v.write(r, offset, &data).unwrap();
                model[offset as usize..offset as usize + len as usize].fill(fill);
            }
            Op::Read { offset, len } => {
                let mut buf = vec![0u8; len as usize];
                v.read(r, offset, &mut buf).unwrap();
                assert_eq!(
                    buf,
                    &model[offset as usize..offset as usize + len as usize],
                    "read diverged from model before any crash"
                );
            }
            Op::Idle { micros } => {
                v.clock().advance(SimDuration::from_micros(micros as u64));
            }
        }
        assert!(
            v.dirty_count() <= budget,
            "budget violated: {} > {budget}",
            v.dirty_count()
        );
    }
    v.validate();
    assert!(v.durable_state_consistent());

    let report = v.power_failure();
    assert!(
        report.dirty_pages <= budget,
        "flush obligation exceeded budget"
    );
    v.recover();

    let mut after = vec![0u8; model.len()];
    v.read(r, 0, &mut after).unwrap();
    assert_eq!(after, model, "data lost across the power cycle");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn durability_holds_for_any_workload_lru(
        ops in prop::collection::vec(op_strategy(), 1..120),
        budget in 1..16u64,
    ) {
        run_and_crash(budget, TargetPolicy::LeastRecentlyUpdated, &ops);
    }

    #[test]
    fn durability_holds_for_any_workload_random_policy(
        ops in prop::collection::vec(op_strategy(), 1..80),
        budget in 1..8u64,
    ) {
        run_and_crash(budget, TargetPolicy::Random, &ops);
    }

    #[test]
    fn durability_holds_for_any_workload_fifo(
        ops in prop::collection::vec(op_strategy(), 1..80),
        budget in 1..8u64,
    ) {
        run_and_crash(budget, TargetPolicy::Fifo, &ops);
    }

    #[test]
    fn crash_at_any_point_preserves_prior_writes(
        prefix in prop::collection::vec(op_strategy(), 1..60),
        crash_after in 0..60usize,
    ) {
        // Crash mid-workload rather than at the end: replay the prefix up
        // to the crash point against the model, crash, recover, verify.
        let cut = crash_after.min(prefix.len());
        run_and_crash(4, TargetPolicy::LeastRecentlyUpdated, &prefix[..cut.max(1)]);
    }

    #[test]
    fn budget_shrink_is_always_safe(
        ops in prop::collection::vec(op_strategy(), 1..60),
        first_budget in 4..16u64,
        second_budget in 1..4u64,
    ) {
        let mut v = build(first_budget, TargetPolicy::LeastRecentlyUpdated);
        let r = v.map(REGION_PAGES * PAGE).unwrap();
        for op in &ops {
            if let Op::Write { offset, len, fill } = *op {
                v.write(r, offset, &vec![fill; len as usize]).unwrap();
            }
        }
        v.set_dirty_budget(second_budget);
        prop_assert!(v.dirty_count() <= second_budget);
        v.validate();
        let report = v.power_failure();
        prop_assert!(report.dirty_pages <= second_budget);
    }
}
