//! Equivalence property tests for the bit-packed page-state structures.
//!
//! Part 1 drives the bitmap-backed [`PageTable`] and [`DirtySet`] and a
//! naive scalar reference model (one byte / one enum per page, exactly the
//! representation the bitmaps replaced) through random
//! dirty/protect/flush/discard/epoch sequences and asserts the two stay
//! observationally identical: same per-page states, same counts, same
//! iteration order, same epoch-drain harvests.
//!
//! Part 2 is the end-to-end check: three seeded workloads drive all three
//! engine backends — [`Viyojit`] (SoftwareWalk), [`MmuAssistedViyojit`]
//! (MmuAssisted), and [`NvdramBaseline`] (FullDirty) — through writes,
//! idles, and budget changes, holding the engine invariants at every step
//! and proving contents survive a power cycle. If a word-level scan ever
//! skipped or double-visited a page, these are the assertions that break.

use mem_sim::{
    AtomicBitmap2L, Bitmap2L, PageId, PageTable, RunClass, ScanPath, PAGE_SIZE, RUN_PAGES,
};
use proptest::prelude::*;
use sim_clock::{Clock, CostModel, SimDuration};
use ssd_sim::SsdConfig;
use viyojit::{
    DirtySet, MmuAssistedViyojit, NvHeap, NvdramBaseline, PageState, Viyojit, ViyojitConfig,
};

/// Enough pages to cross several leaf words and end mid-word, so the
/// partial-last-word paths are always exercised.
const MODEL_PAGES: usize = 193;

// ---------------------------------------------------------------------------
// Naive scalar reference models: the O(DRAM) representation the bitmaps
// replaced. Deliberately simple — correctness oracle, not a data structure.
// ---------------------------------------------------------------------------

const S_WRITABLE: u8 = 1 << 1;
const S_DIRTY: u8 = 1 << 2;
const S_ACCESSED: u8 = 1 << 3;
const S_SHADOW: u8 = 1 << 4;

struct ScalarPageTable {
    flags: Vec<u8>,
}

impl ScalarPageTable {
    fn new(pages: usize) -> Self {
        ScalarPageTable {
            flags: vec![0; pages],
        }
    }

    fn set(&mut self, page: usize, bit: u8, on: bool) {
        if on {
            self.flags[page] |= bit;
        } else {
            self.flags[page] &= !bit;
        }
    }

    fn take_dirty(&mut self, page: usize) -> bool {
        let was = self.flags[page] & S_DIRTY != 0;
        self.flags[page] &= !S_DIRTY;
        was
    }

    fn take_shadow(&mut self, page: usize) -> bool {
        let was = self.flags[page] & S_SHADOW != 0;
        self.flags[page] &= !S_SHADOW;
        was
    }

    fn dirty_pages(&self) -> Vec<usize> {
        (0..self.flags.len())
            .filter(|&i| self.flags[i] & S_DIRTY != 0)
            .collect()
    }

    fn drain_dirty(&mut self) -> Vec<usize> {
        let pages = self.dirty_pages();
        for &p in &pages {
            self.flags[p] &= !S_DIRTY;
        }
        pages
    }

    fn drain_shadow(&mut self) -> Vec<usize> {
        let pages: Vec<usize> = (0..self.flags.len())
            .filter(|&i| self.flags[i] & S_SHADOW != 0)
            .collect();
        for &p in &pages {
            self.flags[p] &= !S_SHADOW;
        }
        pages
    }
}

struct ScalarDirtySet {
    states: Vec<PageState>,
}

impl ScalarDirtySet {
    fn new(pages: usize) -> Self {
        ScalarDirtySet {
            states: vec![PageState::Clean; pages],
        }
    }

    fn dirty_count(&self) -> u64 {
        self.states
            .iter()
            .filter(|s| !matches!(s, PageState::Clean))
            .count() as u64
    }

    fn in_flight_count(&self) -> u64 {
        self.states
            .iter()
            .filter(|s| matches!(s, PageState::InFlight))
            .count() as u64
    }

    fn iter_dirty(&self) -> Vec<usize> {
        (0..self.states.len())
            .filter(|&i| matches!(self.states[i], PageState::Dirty))
            .collect()
    }

    fn iter_counted(&self) -> Vec<usize> {
        (0..self.states.len())
            .filter(|&i| !matches!(self.states[i], PageState::Clean))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Part 1: random op sequences, bitmap structures vs scalar models.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum ModelOp {
    /// Toggle one PTE flag bit (writable/accessed, and the raw dirty /
    /// shadow-dirty setters the MMU write path uses).
    SetFlag { page: usize, bit: u8, on: bool },
    /// Test-and-clear one page's dirty / shadow-dirty bit (the fault and
    /// stale-walk paths).
    TakeDirty { page: usize, shadow: bool },
    /// Word-level epoch drain of the whole dirty (or shadow) bitmap — the
    /// hot path the tentpole optimised. Harvest order must match a full
    /// ascending scan of the scalar table.
    EpochDrain { shadow: bool },
    /// Advance one page through the DirtySet lifecycle: whatever state the
    /// page is in, move it one legal step (clean→dirty→in-flight→clean).
    LifecycleStep { page: usize },
    /// Discard a page if dirty (unmap path).
    Discard { page: usize },
    /// Recovery: reset the dirty set.
    Reset,
}

fn model_op_strategy() -> impl Strategy<Value = ModelOp> {
    prop_oneof![
        5 => (0..MODEL_PAGES, prop_oneof![
                Just(S_WRITABLE), Just(S_DIRTY), Just(S_ACCESSED), Just(S_SHADOW)
            ], any::<bool>())
            .prop_map(|(page, bit, on)| ModelOp::SetFlag { page, bit, on }),
        3 => (0..MODEL_PAGES, any::<bool>())
            .prop_map(|(page, shadow)| ModelOp::TakeDirty { page, shadow }),
        1 => any::<bool>().prop_map(|shadow| ModelOp::EpochDrain { shadow }),
        6 => (0..MODEL_PAGES).prop_map(|page| ModelOp::LifecycleStep { page }),
        2 => (0..MODEL_PAGES).prop_map(|page| ModelOp::Discard { page }),
        1 => Just(ModelOp::Reset),
    ]
}

/// Full observational comparison: every per-page state, every count, and
/// every iteration order the engine relies on.
fn assert_states_agree(
    pt: &PageTable,
    spt: &ScalarPageTable,
    ds: &DirtySet,
    sds: &ScalarDirtySet,
) -> Result<(), TestCaseError> {
    for i in 0..MODEL_PAGES {
        let flags = pt.flags(PageId(i as u64));
        prop_assert_eq!(
            flags.is_writable(),
            spt.flags[i] & S_WRITABLE != 0,
            "writable bit diverged at page {}",
            i
        );
        prop_assert_eq!(flags.is_dirty(), spt.flags[i] & S_DIRTY != 0);
        prop_assert_eq!(flags.is_accessed(), spt.flags[i] & S_ACCESSED != 0);
        prop_assert_eq!(flags.is_shadow_dirty(), spt.flags[i] & S_SHADOW != 0);
        prop_assert_eq!(pt.is_dirty(PageId(i as u64)), spt.flags[i] & S_DIRTY != 0);
        prop_assert_eq!(ds.state(PageId(i as u64)), sds.states[i]);
    }
    prop_assert_eq!(pt.dirty_count(), spt.dirty_pages().len());
    prop_assert_eq!(
        pt.iter_dirty_pages().map(|p| p.index()).collect::<Vec<_>>(),
        spt.dirty_pages(),
        "PageTable dirty iteration order diverged"
    );
    prop_assert_eq!(ds.dirty_count(), sds.dirty_count());
    prop_assert_eq!(ds.in_flight_count(), sds.in_flight_count());
    prop_assert_eq!(
        ds.iter_dirty().map(|p| p.index()).collect::<Vec<_>>(),
        sds.iter_dirty(),
        "DirtySet dirty iteration order diverged"
    );
    prop_assert_eq!(
        ds.iter_counted().map(|p| p.index()).collect::<Vec<_>>(),
        sds.iter_counted(),
        "DirtySet counted iteration order diverged"
    );
    ds.check_invariants()
        .map_err(|v| TestCaseError::fail(format!("bitmap invariants broke: {v}")))?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The structure-level equivalence property: the bit-packed
    /// `PageTable` + `DirtySet` and the byte-per-page scalar models are
    /// indistinguishable under any op sequence.
    #[test]
    fn bitmap_structures_match_scalar_model(
        ops in prop::collection::vec(model_op_strategy(), 1..200),
    ) {
        let mut pt = PageTable::new(MODEL_PAGES);
        let mut spt = ScalarPageTable::new(MODEL_PAGES);
        let mut ds = DirtySet::new(MODEL_PAGES);
        let mut sds = ScalarDirtySet::new(MODEL_PAGES);

        for op in &ops {
            match *op {
                ModelOp::SetFlag { page, bit, on } => {
                    let id = PageId(page as u64);
                    match bit {
                        S_WRITABLE => pt.set_writable(id, on),
                        S_DIRTY => pt.set_dirty(id, on),
                        S_ACCESSED => pt.set_accessed(id, on),
                        S_SHADOW => pt.set_shadow_dirty(id, on),
                        _ => unreachable!(),
                    }
                    spt.set(page, bit, on);
                }
                ModelOp::TakeDirty { page, shadow } => {
                    let id = PageId(page as u64);
                    let (got, want) = if shadow {
                        (pt.take_shadow_dirty(id), spt.take_shadow(page))
                    } else {
                        (pt.take_dirty(id), spt.take_dirty(page))
                    };
                    prop_assert_eq!(got, want, "take_dirty result diverged at page {}", page);
                }
                ModelOp::EpochDrain { shadow } => {
                    let mut harvested: Vec<usize> = Vec::new();
                    fn unpack(out: &mut Vec<usize>, base: u64, mut bits: u64) {
                        while bits != 0 {
                            out.push((base + bits.trailing_zeros() as u64) as usize);
                            bits &= bits - 1;
                        }
                    }
                    let want = if shadow {
                        pt.take_shadow_dirty_words(|base, word| unpack(&mut harvested, base, word));
                        spt.drain_shadow()
                    } else {
                        pt.take_dirty_words(|base, word| unpack(&mut harvested, base, word));
                        spt.drain_dirty()
                    };
                    prop_assert_eq!(harvested, want, "epoch drain harvest diverged");
                }
                ModelOp::LifecycleStep { page } => {
                    let id = PageId(page as u64);
                    match ds.state(id) {
                        PageState::Clean => {
                            ds.mark_dirty(id);
                            sds.states[page] = PageState::Dirty;
                        }
                        PageState::Dirty => {
                            ds.mark_in_flight(id);
                            sds.states[page] = PageState::InFlight;
                        }
                        PageState::InFlight => {
                            ds.mark_clean(id);
                            sds.states[page] = PageState::Clean;
                        }
                    }
                }
                ModelOp::Discard { page } => {
                    let id = PageId(page as u64);
                    if ds.state(id) == PageState::Dirty {
                        ds.discard_dirty(id);
                        sds.states[page] = PageState::Clean;
                    }
                }
                ModelOp::Reset => {
                    ds.reset();
                    sds.states.fill(PageState::Clean);
                }
            }
            assert_states_agree(&pt, &spt, &ds, &sds)?;
        }
    }
}

// ---------------------------------------------------------------------------
// Part 1b: density-stratified scan-path equivalence.
//
// The per-scan dispatcher picks Skip / Dense / Unrolled from the
// maintained popcount, so a uniform random population would almost never
// exercise the sparse or dense extremes. These generators stratify the
// population by density band so every case pins the dispatcher to a known
// path, then assert all three paths — and the huge-tier run
// classification above them — agree on states, counts, and iteration
// order with the scalar model.
// ---------------------------------------------------------------------------

/// Three full 512-page runs plus a partial tail run, so run-boundary and
/// partial-run arithmetic is always in play.
const STRATA_PAGES: usize = 3 * RUN_PAGES + 137;

const ALL_PATHS: [ScanPath; 3] = [ScanPath::Skip, ScanPath::Dense, ScanPath::Unrolled];

/// A population pinned to one dispatch band. Band edges for 1673 bits:
/// Skip below 7 ones (density < 1/256), Dense below 210 (< 1/8),
/// Unrolled from 210 up; the ranges stay clear of the edges so the
/// expected path is unambiguous.
fn stratified_population() -> impl Strategy<Value = (ScanPath, Vec<usize>)> {
    let all: Vec<usize> = (0..STRATA_PAGES).collect();
    prop_oneof![
        proptest::sample::subsequence(all.clone(), 1..=6).prop_map(|v| (ScanPath::Skip, v)),
        proptest::sample::subsequence(all.clone(), 8..=200).prop_map(|v| (ScanPath::Dense, v)),
        proptest::sample::subsequence(all, 220..=800).prop_map(|v| (ScanPath::Unrolled, v)),
    ]
}

/// Asserts the bitmap and the sorted scalar population are
/// observationally identical on every scan path: same dispatch choice,
/// same counts, same iteration order, same word harvest, same drain, and
/// a huge tier that matches a per-run recount.
fn assert_paths_agree(b: &Bitmap2L, pages: &[usize]) -> Result<(), TestCaseError> {
    prop_assert_eq!(b.count(), pages.len());
    prop_assert_eq!(b.recount(), pages.len());
    b.check_consistency()
        .map_err(|e| TestCaseError::fail(format!("bitmap inconsistent: {e}")))?;

    let mut scalar_words: Vec<(usize, u64)> = Vec::new();
    for &p in pages {
        match scalar_words.last_mut() {
            Some((w, bits)) if *w == p / 64 => *bits |= 1u64 << (p % 64),
            _ => scalar_words.push((p / 64, 1u64 << (p % 64))),
        }
    }
    for path in ALL_PATHS {
        let mut collected = Vec::new();
        b.collect_into_with(path, &mut collected);
        prop_assert_eq!(&collected, pages, "collect order diverged on {:?}", path);

        let mut words = Vec::new();
        b.for_each_word_with(path, |w, bits| words.push((w, bits)));
        prop_assert_eq!(&words, &scalar_words, "word harvest diverged on {:?}", path);

        let mut drained = Vec::new();
        let mut clone = Bitmap2L::new(STRATA_PAGES);
        for &p in pages {
            clone.set(p);
        }
        clone.drain_words_with(path, |w, bits| drained.push((w, bits)));
        prop_assert_eq!(&drained, &scalar_words, "drain harvest diverged on {:?}", path);
        prop_assert_eq!(clone.count(), 0, "drain left bits behind on {:?}", path);
        clone
            .check_consistency()
            .map_err(|e| TestCaseError::fail(format!("post-drain inconsistent: {e}")))?;
    }

    // Huge tier: every run's maintained popcount and class must match a
    // recount of the pages that landed in it.
    let huge = b.huge();
    for r in 0..huge.runs() {
        let lo = r * RUN_PAGES;
        let hi = (lo + RUN_PAGES).min(STRATA_PAGES);
        let pop = pages.iter().filter(|&&p| p >= lo && p < hi).count();
        prop_assert_eq!(huge.run_pop(r), pop, "run {} popcount diverged", r);
        let want = if pop == 0 {
            RunClass::Empty
        } else if pop == hi - lo {
            RunClass::Full
        } else {
            RunClass::Mixed
        };
        prop_assert_eq!(huge.class(r), want, "run {} class diverged", r);
    }
    Ok(())
}

/// Round-trips the same population through the shared atomic map's batch
/// publication and checks count / run popcounts / per-word contents, then
/// retracts and checks it is empty again — at every density band this
/// covers the chunk-skip, straight-line, and run-batched RMW paths.
fn assert_atomic_publish_agrees(pages: &[usize]) -> Result<(), TestCaseError> {
    let stride = STRATA_PAGES.div_ceil(64);
    let mut word_bits = vec![0u64; stride];
    for &p in pages {
        word_bits[p / 64] |= 1u64 << (p % 64);
    }
    let shared = AtomicBitmap2L::new(STRATA_PAGES);
    let mut shadow = vec![0u64; stride];
    let stored = shared.publish_words(0, &word_bits, &mut shadow);
    prop_assert_eq!(
        stored,
        word_bits.iter().filter(|&&w| w != 0).count(),
        "publish stored a different word count than the population holds"
    );
    prop_assert_eq!(shared.count(), pages.len() as u64);
    for r in 0..shared.runs() {
        let lo = r * RUN_PAGES;
        let hi = (lo + RUN_PAGES).min(STRATA_PAGES);
        let pop = pages.iter().filter(|&&p| p >= lo && p < hi).count();
        prop_assert_eq!(shared.run_pop(r) as usize, pop, "shared run {} diverged", r);
    }
    shared
        .check_consistency()
        .map_err(|e| TestCaseError::fail(format!("shared map inconsistent: {e}")))?;
    let zero = vec![0u64; stride];
    shared.publish_words(0, &zero, &mut shadow);
    prop_assert_eq!(shared.count(), 0, "retraction left bits published");
    for r in 0..shared.runs() {
        prop_assert_eq!(shared.run_pop(r), 0, "retraction left run {} popcount", r);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Stratified equivalence: each density band pins the dispatcher to
    /// its expected path, and all three forced paths agree with the
    /// scalar model on states, counts, and iteration order.
    #[test]
    fn scan_paths_agree_at_every_density((expected, pages) in stratified_population()) {
        let mut b = Bitmap2L::new(STRATA_PAGES);
        for &p in &pages {
            b.set(p);
        }
        prop_assert_eq!(b.scan_path(), expected, "dispatcher left its density band");
        assert_paths_agree(&b, &pages)?;
        assert_atomic_publish_agrees(&pages)?;
    }

    /// Uniform whole runs: the huge tier must classify every chosen run
    /// `Full` and the rest `Empty`, and all three scan paths must still
    /// agree — this is the band the 2 MiB tier exists for.
    #[test]
    fn uniform_runs_classify_full_and_agree(
        runs in proptest::collection::btree_set(0usize..4, 1..=4),
    ) {
        let mut b = Bitmap2L::new(STRATA_PAGES);
        let mut pages = Vec::new();
        for &r in &runs {
            let lo = r * RUN_PAGES;
            let hi = (lo + RUN_PAGES).min(STRATA_PAGES);
            for p in lo..hi {
                b.set(p);
                pages.push(p);
            }
        }
        pages.sort_unstable();
        for r in 0..b.huge().runs() {
            let want = if runs.contains(&r) { RunClass::Full } else { RunClass::Empty };
            prop_assert_eq!(b.huge().class(r), want, "run {} class diverged", r);
        }
        assert_paths_agree(&b, &pages)?;
        assert_atomic_publish_agrees(&pages)?;
    }
}

// ---------------------------------------------------------------------------
// Part 2: seeded engine workloads across all three backends.
// ---------------------------------------------------------------------------

const ENGINE_PAGES: usize = 96;
const REGION_PAGES: u64 = 64;
const BUDGET: u64 = 12;
const SEEDS: [u64; 3] = [1, 7, 42];
const STEPS: usize = 400;

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// One seeded workload, applied identically to all three backends: random
/// writes (skewed toward a hot fraction of the region so the victim
/// selector has recency to exploit), idles, and occasional budget changes.
/// Every step holds the engine invariants on both budgeted backends; the
/// run ends with a power cycle and a byte-for-byte content check on all
/// three.
fn drive_all_backends(seed: u64) {
    let page = PAGE_SIZE as u64;
    let mut sw = Viyojit::new(
        ENGINE_PAGES,
        ViyojitConfig::with_budget_pages(BUDGET),
        Clock::new(),
        CostModel::free(),
        SsdConfig::instant(),
    );
    let mut hw = MmuAssistedViyojit::new(
        ENGINE_PAGES,
        ViyojitConfig::with_budget_pages(BUDGET),
        Clock::new(),
        CostModel::free(),
        SsdConfig::instant(),
    );
    let mut base = NvdramBaseline::new(
        ENGINE_PAGES,
        Clock::new(),
        CostModel::free(),
        SsdConfig::instant(),
    );
    let rs = sw.map(REGION_PAGES * page).unwrap();
    let rh = hw.map(REGION_PAGES * page).unwrap();
    let rb = base.map(REGION_PAGES * page).unwrap();
    let mut model = vec![0u8; (REGION_PAGES * page) as usize];

    let mut rng = seed | 1;
    for step in 0..STEPS {
        match xorshift(&mut rng) % 10 {
            0..=6 => {
                // 80/20 skew: most writes land in the first quarter.
                let span = if xorshift(&mut rng) % 10 < 8 {
                    REGION_PAGES * page / 4
                } else {
                    REGION_PAGES * page
                };
                let len = 1 + (xorshift(&mut rng) % 4096);
                let offset = xorshift(&mut rng) % (span.saturating_sub(len).max(1));
                let fill = (xorshift(&mut rng) & 0xff) as u8;
                let data = vec![fill; len as usize];
                sw.write(rs, offset, &data).unwrap();
                hw.write(rh, offset, &data).unwrap();
                base.write(rb, offset, &data).unwrap();
                model[offset as usize..(offset + len) as usize].fill(fill);
            }
            7 | 8 => {
                let micros = 1 + xorshift(&mut rng) % 1500;
                sw.clock().advance(SimDuration::from_micros(micros));
                hw.clock().advance(SimDuration::from_micros(micros));
                base.clock().advance(SimDuration::from_micros(micros));
            }
            _ => {
                let budget = 4 + xorshift(&mut rng) % 12;
                sw.set_dirty_budget(budget);
                hw.set_dirty_budget(budget);
            }
        }
        assert!(
            sw.dirty_count() <= sw.dirty_budget(),
            "seed {seed} step {step}: software walker broke the budget bound"
        );
        assert!(
            hw.dirty_count() <= hw.dirty_budget(),
            "seed {seed} step {step}: MMU-assisted tracker broke the budget bound"
        );
        sw.check_invariants()
            .unwrap_or_else(|v| panic!("seed {seed} step {step}: software walker: {v}"));
        hw.check_invariants()
            .unwrap_or_else(|v| panic!("seed {seed} step {step}: MMU-assisted: {v}"));
    }

    let sr = sw.power_failure();
    let hr = hw.power_failure();
    base.power_failure();
    assert!(sr.dirty_pages <= sw.dirty_budget());
    assert!(hr.dirty_pages <= hw.dirty_budget());
    sw.recover();
    hw.recover();
    base.recover();
    assert!(
        sw.durable_state_consistent(),
        "seed {seed}: software walker"
    );
    assert!(hw.durable_state_consistent(), "seed {seed}: MMU-assisted");
    for (label, buf) in [
        ("software walker", read_all(&mut sw, rs, model.len())),
        ("MMU-assisted", read_all(&mut hw, rh, model.len())),
        (
            "full-battery baseline",
            read_all(&mut base, rb, model.len()),
        ),
    ] {
        assert_eq!(
            buf, model,
            "seed {seed}: {label} lost contents across the power cycle"
        );
    }
}

fn read_all<N: NvHeap>(nv: &mut N, region: viyojit::RegionId, len: usize) -> Vec<u8> {
    let mut buf = vec![0u8; len];
    nv.read(region, 0, &mut buf).unwrap();
    buf
}

#[test]
fn seeded_workloads_agree_across_backends_seed_1() {
    drive_all_backends(SEEDS[0]);
}

#[test]
fn seeded_workloads_agree_across_backends_seed_7() {
    drive_all_backends(SEEDS[1]);
}

#[test]
fn seeded_workloads_agree_across_backends_seed_42() {
    drive_all_backends(SEEDS[2]);
}
