//! Property tests of the telemetry subsystem's two core guarantees:
//!
//! 1. **Zero observational cost** — attaching a recording telemetry
//!    handle (whatever sink later drains it) never changes virtual time
//!    or runtime counters relative to the same run with telemetry
//!    disabled (the NullSink-equivalent default).
//! 2. **Snapshot conservation** — per-epoch metric snapshot deltas sum
//!    exactly to the end-of-run counter totals.

use proptest::prelude::*;
use sim_clock::{Clock, CostModel, SimDuration};
use ssd_sim::SsdConfig;
use viyojit::{CsvSink, NvHeap, Telemetry, Viyojit, ViyojitConfig, ViyojitStats};

const PAGE: u64 = 4096;
const REGION_PAGES: u64 = 24;

/// One step of a random workload.
#[derive(Debug, Clone)]
enum Op {
    /// Dirty a page.
    Write { page: u64, fill: u8 },
    /// Let virtual time pass (epochs run, IOs retire).
    Idle { micros: u16 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..REGION_PAGES, any::<u8>()).prop_map(|(page, fill)| Op::Write { page, fill }),
        1 => (1..1500u16).prop_map(|micros| Op::Idle { micros }),
    ]
}

/// Runs `ops` on a tight-budget Viyojit; returns the final virtual time,
/// the runtime counters, and the telemetry handle (disabled when
/// `record` is false).
fn run(ops: &[Op], record: bool) -> (u64, ViyojitStats, Telemetry) {
    let clock = Clock::new();
    let telemetry = if record {
        Telemetry::recording(clock.clone())
    } else {
        Telemetry::disabled()
    };
    let mut v = Viyojit::new(
        32,
        ViyojitConfig::builder(6)
            .total_pages(32)
            .build()
            .expect("valid property-test configuration"),
        clock.clone(),
        CostModel::calibrated(),
        SsdConfig::datacenter(),
    );
    v.attach_telemetry(telemetry.clone());
    let r = v.map(REGION_PAGES * PAGE).unwrap();
    for op in ops {
        match *op {
            Op::Write { page, fill } => {
                v.write(r, page * PAGE, &[fill; 64]).unwrap();
            }
            Op::Idle { micros } => {
                clock.advance(SimDuration::from_micros(micros as u64));
            }
        }
    }
    (clock.now().as_nanos(), v.stats(), telemetry)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn recording_telemetry_never_perturbs_the_run(
        ops in prop::collection::vec(op_strategy(), 1..120)
    ) {
        let (plain_nanos, plain_stats, _) = run(&ops, false);
        let (recorded_nanos, recorded_stats, telemetry) = run(&ops, true);

        prop_assert_eq!(plain_nanos, recorded_nanos,
            "virtual time diverged under recording telemetry");
        prop_assert_eq!(plain_stats, recorded_stats,
            "runtime counters diverged under recording telemetry");

        // Draining through a CSV sink is pure observation too. Counters
        // publish at epoch boundaries, so the registry can only lag the
        // live stats, never exceed them.
        let mut sink = CsvSink::new(Vec::new());
        telemetry.drain_into(&mut sink);
        prop_assert!(telemetry.counter("viyojit.faults_handled")
            <= recorded_stats.faults_handled);
    }

    #[test]
    fn epoch_snapshot_deltas_sum_to_final_totals(
        ops in prop::collection::vec(op_strategy(), 1..120)
    ) {
        let (_, _, telemetry) = run(&ops, true);
        // Close the run with one final snapshot so any counters advanced
        // since the last epoch boundary are captured.
        telemetry.snapshot_epoch(u64::MAX);
        let snaps = telemetry.snapshots();
        let last = snaps.last().expect("at least the closing snapshot");

        for (name, final_sample) in &last.counters {
            let summed: u64 = snaps
                .iter()
                .filter_map(|s| s.counter(name).map(|c| c.delta))
                .sum();
            prop_assert_eq!(summed, final_sample.total,
                "snapshot deltas of {} do not sum to its total", name);
            prop_assert_eq!(telemetry.counter(name), final_sample.total);
        }
    }
}
