//! Integration tests of the Viyojit runtime: the Fig. 6 fault flow, budget
//! enforcement, proactive copying, power failure, and recovery.

use mem_sim::PAGE_SIZE;
use sim_clock::{Clock, CostModel, SimDuration};
use ssd_sim::SsdConfig;
use viyojit::{NvHeap, TargetPolicy, Viyojit, ViyojitConfig, ViyojitError};

const PAGE: u64 = PAGE_SIZE as u64;

fn viyojit(total_pages: usize, budget: u64) -> Viyojit {
    Viyojit::new(
        total_pages,
        ViyojitConfig::with_budget_pages(budget),
        Clock::new(),
        CostModel::free(),
        SsdConfig::instant(),
    )
}

/// A Viyojit with realistic time so stalls and epochs actually occur.
fn viyojit_timed(total_pages: usize, budget: u64) -> Viyojit {
    Viyojit::new(
        total_pages,
        ViyojitConfig::with_budget_pages(budget),
        Clock::new(),
        CostModel::calibrated(),
        SsdConfig::datacenter(),
    )
}

#[test]
fn first_write_faults_and_subsequent_writes_do_not() {
    let mut v = viyojit(16, 8);
    let r = v.map(PAGE * 4).unwrap();
    v.write(r, 0, b"first").unwrap();
    let faults_after_first = v.stats().faults_handled;
    assert_eq!(faults_after_first, 1);
    v.write(r, 100, b"second to same page").unwrap();
    assert_eq!(
        v.stats().faults_handled,
        1,
        "no fault on already-dirty page"
    );
    v.write(r, PAGE, b"different page").unwrap();
    assert_eq!(v.stats().faults_handled, 2);
}

#[test]
fn write_read_round_trip_through_fault_path() {
    let mut v = viyojit(16, 4);
    let r = v.map(PAGE * 4).unwrap();
    let data: Vec<u8> = (0..=255).collect();
    v.write(r, 10, &data).unwrap();
    let mut buf = vec![0u8; 256];
    v.read(r, 10, &mut buf).unwrap();
    assert_eq!(buf, data);
}

#[test]
fn writes_spanning_pages_fault_per_page() {
    let mut v = viyojit(16, 8);
    let r = v.map(PAGE * 3).unwrap();
    let big = vec![0xCD; PAGE_SIZE * 2];
    v.write(r, PAGE / 2, &big).unwrap();
    assert_eq!(v.stats().pages_dirtied, 3, "write touched three pages");
    let mut buf = vec![0u8; PAGE_SIZE * 2];
    v.read(r, PAGE / 2, &mut buf).unwrap();
    assert_eq!(buf, big);
}

#[test]
fn dirty_count_never_exceeds_budget() {
    let budget = 4;
    let mut v = viyojit(64, budget);
    let r = v.map(PAGE * 32).unwrap();
    for i in 0..32u64 {
        v.write(r, i * PAGE, &[i as u8; 32]).unwrap();
        assert!(v.dirty_count() <= budget, "page {i}: {}", v.dirty_count());
        v.validate();
    }
    assert!(
        v.stats().forced_flushes > 0,
        "budget pressure forced flushes"
    );
}

#[test]
fn budget_of_one_still_makes_progress() {
    let mut v = viyojit(16, 1);
    let r = v.map(PAGE * 8).unwrap();
    for i in 0..8u64 {
        v.write(r, i * PAGE, &[1]).unwrap();
        v.validate();
    }
    // Every page readable with its data.
    for i in 0..8u64 {
        let mut b = [0u8];
        v.read(r, i * PAGE, &mut b).unwrap();
        assert_eq!(b[0], 1);
    }
}

#[test]
fn durable_state_stays_consistent_under_churn() {
    let mut v = viyojit(32, 4);
    let r = v.map(PAGE * 16).unwrap();
    for round in 0..8u8 {
        for i in 0..16u64 {
            v.write(r, i * PAGE + round as u64, &[round ^ i as u8])
                .unwrap();
        }
        assert!(v.durable_state_consistent(), "round {round}");
    }
}

#[test]
fn power_failure_flushes_at_most_budget_pages() {
    let budget = 3;
    let mut v = viyojit(32, budget);
    let r = v.map(PAGE * 16).unwrap();
    for i in 0..16u64 {
        v.write(r, i * PAGE, &[0xAA]).unwrap();
    }
    let report = v.power_failure();
    assert!(report.dirty_pages <= budget);
    assert_eq!(report.bytes_flushed, report.dirty_pages * PAGE);
}

#[test]
fn recovery_restores_every_byte() {
    let mut v = viyojit(32, 4);
    let r = v.map(PAGE * 12).unwrap();
    // A recognizable pattern across all pages, overwritten a few times.
    for round in 0..3u8 {
        for i in 0..12u64 {
            let fill = round.wrapping_mul(31).wrapping_add(i as u8);
            v.write(r, i * PAGE, &[fill; 128]).unwrap();
        }
    }
    let mut expect = vec![0u8; (PAGE * 12) as usize];
    v.read(r, 0, &mut expect).unwrap();

    v.power_failure();
    v.recover();
    v.validate();

    let mut got = vec![0u8; (PAGE * 12) as usize];
    v.read(r, 0, &mut got).unwrap();
    assert_eq!(got, expect, "post-recovery contents differ");
}

#[test]
fn recovery_of_untouched_pages_yields_zeroes() {
    let mut v = viyojit(8, 2);
    let r = v.map(PAGE * 4).unwrap();
    v.write(r, 0, b"only page zero").unwrap();
    v.power_failure();
    v.recover();
    let mut buf = vec![0u8; PAGE_SIZE];
    v.read(r, PAGE * 2, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0));
}

#[test]
fn writes_after_recovery_fault_again() {
    let mut v = viyojit(8, 2);
    let r = v.map(PAGE * 2).unwrap();
    v.write(r, 0, b"x").unwrap();
    let faults_before = v.stats().faults_handled;
    v.power_failure();
    v.recover();
    v.write(r, 0, b"y").unwrap();
    assert!(
        v.stats().faults_handled > faults_before,
        "recovered pages must be write-protected again"
    );
}

#[test]
fn epochs_and_proactive_copies_happen_with_real_time() {
    let mut v = viyojit_timed(64, 8);
    let r = v.map(PAGE * 32).unwrap();
    // Enough writes to cross many 1 ms epochs (each op costs ~tens of us).
    for round in 0..40u64 {
        for i in 0..8u64 {
            v.write(r, (i + (round % 4) * 8) * PAGE, &[round as u8; 64])
                .unwrap();
        }
        v.clock().advance(SimDuration::from_micros(200));
    }
    // Force one more poll via an access.
    v.write(r, 0, &[1]).unwrap();
    assert!(v.stats().epochs > 0, "epochs should have run");
    assert!(
        v.stats().proactive_flushes > 0,
        "pressure should have triggered proactive copies: {:?}",
        v.stats()
    );
    v.validate();
}

#[test]
fn lru_policy_flushes_cold_pages_not_hot_ones() {
    let mut v = viyojit_timed(64, 4);
    let r = v.map(PAGE * 16).unwrap();
    // Page 0 is hot; pages 1..=7 are written once (cold).
    for i in 0..8u64 {
        v.write(r, i * PAGE, &[1]).unwrap();
        v.clock().advance(SimDuration::from_millis(2)); // epoch passes
        v.write(r, 0, &[2]).unwrap(); // keep page 0 hot
    }
    // Page 0 should still be dirty (never selected as victim).
    let mut hot_still_dirty = false;
    for _ in 0..1 {
        // If page 0 were flushed, the next write would fault; count faults.
        let before = v.stats().faults_handled;
        v.write(r, 0, &[3]).unwrap();
        hot_still_dirty = v.stats().faults_handled == before;
    }
    assert!(hot_still_dirty, "LRU must not evict the hottest page");
}

#[test]
fn unmap_releases_budget_and_space() {
    let mut v = viyojit(16, 2);
    let r = v.map(PAGE * 2).unwrap();
    v.write(r, 0, b"a").unwrap();
    v.write(r, PAGE, b"b").unwrap();
    assert_eq!(v.dirty_count(), 2);
    v.unmap(r).unwrap();
    assert_eq!(v.dirty_count(), 0, "unmapped dirty pages stop counting");
    // Space is reusable.
    let r2 = v.map(PAGE * 16).unwrap();
    assert_eq!(v.region_len(r2).unwrap(), PAGE * 16);
    v.validate();
}

#[test]
fn dead_region_accesses_error() {
    let mut v = viyojit(8, 2);
    let r = v.map(PAGE).unwrap();
    v.unmap(r).unwrap();
    assert!(matches!(
        v.write(r, 0, b"x"),
        Err(ViyojitError::BadRegion(_))
    ));
    let mut buf = [0u8];
    assert!(matches!(
        v.read(r, 0, &mut buf),
        Err(ViyojitError::BadRegion(_))
    ));
}

#[test]
fn out_of_range_accesses_error() {
    let mut v = viyojit(8, 2);
    let r = v.map(100).unwrap();
    assert!(matches!(
        v.write(r, 90, &[0u8; 20]),
        Err(ViyojitError::OutOfRange { .. })
    ));
}

#[test]
fn shrinking_budget_at_runtime_flushes_down() {
    let mut v = viyojit(32, 8);
    let r = v.map(PAGE * 16).unwrap();
    for i in 0..8u64 {
        v.write(r, i * PAGE, &[9]).unwrap();
    }
    assert_eq!(v.dirty_count(), 8);
    // A battery cell failed: budget drops to 3 (§8).
    v.set_dirty_budget(3);
    assert!(v.dirty_count() <= 3);
    v.validate();
    assert!(v.durable_state_consistent());
    // And the system keeps working at the smaller budget.
    for i in 0..16u64 {
        v.write(r, i * PAGE, &[10]).unwrap();
        assert!(v.dirty_count() <= 3);
    }
}

#[test]
fn growing_budget_at_runtime_reduces_stalls() {
    let mut v = viyojit(64, 2);
    let r = v.map(PAGE * 32).unwrap();
    for i in 0..32u64 {
        v.write(r, i * PAGE, &[1]).unwrap();
    }
    let stalls_small = v.stats().budget_stalls;
    v.set_dirty_budget(32);
    for i in 0..32u64 {
        v.write(r, i * PAGE, &[2]).unwrap();
    }
    assert_eq!(
        v.stats().budget_stalls,
        stalls_small,
        "no new stalls once the budget covers the working set"
    );
}

#[test]
fn stale_tlb_walks_degrade_victim_quality() {
    // §6.3 ablation: without TLB flushes on walks, the recency history goes
    // stale and hot pages get selected as victims, multiplying faults.
    let run = |flush: bool| -> u64 {
        let mut v = Viyojit::new(
            64,
            ViyojitConfig::with_budget_pages(16).with_tlb_flush_on_walk(flush),
            Clock::new(),
            CostModel::calibrated(),
            SsdConfig::datacenter(),
        );
        let r = v.map(PAGE * 32).unwrap();
        // Hot set of 6 pages (comfortably inside the budget) at high page
        // ids + a stream of cold writes cycling through low page ids.
        for round in 0..120u64 {
            for hot in 26..32u64 {
                v.write(r, hot * PAGE, &[round as u8]).unwrap();
            }
            for cold in 0..2u64 {
                v.write(r, ((round * 2 + cold) % 20) * PAGE, &[round as u8])
                    .unwrap();
            }
            v.clock().advance(SimDuration::from_millis(1));
        }
        v.stats().faults_handled
    };
    let faults_exact = run(true);
    let faults_stale = run(false);
    assert!(
        faults_stale > faults_exact,
        "stale dirty bits should cause more faults: exact={faults_exact} stale={faults_stale}"
    );
}

#[test]
fn policies_differ_in_victim_choice() {
    let run = |policy: TargetPolicy| -> u64 {
        let mut v = Viyojit::new(
            64,
            ViyojitConfig::with_budget_pages(4).with_target_policy(policy),
            Clock::new(),
            CostModel::calibrated(),
            SsdConfig::datacenter(),
        );
        let r = v.map(PAGE * 32).unwrap();
        for round in 0..50u64 {
            v.write(r, 0, &[round as u8]).unwrap(); // hot page
            v.write(r, (1 + round % 31) * PAGE, &[round as u8]).unwrap();
            v.clock().advance(SimDuration::from_millis(1));
        }
        v.stats().faults_handled
    };
    let lru = run(TargetPolicy::LeastRecentlyUpdated);
    let fifo = run(TargetPolicy::Fifo);
    // FIFO evicts the hot page (it was dirtied first), LRU protects it.
    assert!(
        lru <= fifo,
        "LRU should never fault more than FIFO here: lru={lru} fifo={fifo}"
    );
}

#[test]
fn stall_time_is_accounted_when_budget_saturates() {
    let mut v = viyojit_timed(64, 2);
    let r = v.map(PAGE * 32).unwrap();
    for i in 0..32u64 {
        v.write(r, i * PAGE, &[1]).unwrap();
    }
    let stats = v.stats();
    assert!(stats.budget_stalls > 0);
    assert!(!stats.stall_time.is_zero());
    assert!(stats.forced_flushes > 0);
}

#[test]
fn in_flight_collision_waits_for_the_io() {
    // Budget 2, slow SSD: dirty two pages, a third write forces a flush of
    // an LRU victim; immediately re-writing that victim while its IO is in
    // flight must wait, then re-dirty.
    let mut v = Viyojit::new(
        16,
        ViyojitConfig::with_budget_pages(2),
        Clock::new(),
        CostModel::free(),
        SsdConfig::datacenter(), // 80us writes: IOs stay in flight
    );
    let r = v.map(PAGE * 8).unwrap();
    v.write(r, 0, b"a").unwrap();
    v.write(r, PAGE, b"b").unwrap();
    v.write(r, 2 * PAGE, b"c").unwrap(); // forces flush of page 0 (LRU)
    v.write(r, 0, b"A").unwrap(); // may collide with its in-flight IO
    v.validate();
    let mut buf = [0u8];
    v.read(r, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"A");
    assert!(v.durable_state_consistent());
}

#[test]
fn read_only_workload_never_faults_or_flushes() {
    let mut v = viyojit_timed(32, 4);
    let r = v.map(PAGE * 16).unwrap();
    let mut buf = [0u8; 64];
    for i in 0..200u64 {
        v.read(r, (i % 16) * PAGE, &mut buf).unwrap();
    }
    assert_eq!(v.stats().faults_handled, 0);
    assert_eq!(v.ssd_stats().writes, 0);
}

#[test]
fn multiple_regions_share_the_budget() {
    let mut v = viyojit(64, 4);
    let a = v.map(PAGE * 8).unwrap();
    let b = v.map(PAGE * 8).unwrap();
    for i in 0..8u64 {
        v.write(a, i * PAGE, &[1]).unwrap();
        v.write(b, i * PAGE, &[2]).unwrap();
        assert!(v.dirty_count() <= 4);
    }
    v.validate();
}

#[test]
fn flush_codecs_shrink_physical_traffic_without_changing_data() {
    use viyojit::FlushCodec;
    let run = |codec: FlushCodec| {
        let mut v = Viyojit::new(
            64,
            ViyojitConfig::with_budget_pages(4).with_flush_codec(codec),
            Clock::new(),
            CostModel::free(),
            SsdConfig::instant(),
        );
        let r = v.map(PAGE * 32).unwrap();
        for round in 0..3u8 {
            for i in 0..32u64 {
                v.write(r, i * PAGE, &[round; 256]).unwrap();
            }
        }
        v.power_failure();
        v.recover();
        let mut data = vec![0u8; (PAGE * 32) as usize];
        v.read(r, 0, &mut data).unwrap();
        (v.stats().physical_bytes_flushed, data)
    };
    let (raw_bytes, raw_data) = run(FlushCodec::Raw);
    let (rle_bytes, rle_data) = run(FlushCodec::Rle);
    let (dedup_bytes, dedup_data) = run(FlushCodec::RleDedup);
    assert_eq!(raw_data, rle_data, "codec must never change contents");
    assert_eq!(raw_data, dedup_data);
    assert!(
        rle_bytes < raw_bytes / 4,
        "fill pages compress: {rle_bytes} vs {raw_bytes}"
    );
    assert!(dedup_bytes <= rle_bytes, "identical pages dedup");
}

#[test]
fn sector_flush_ships_only_modified_sectors() {
    let run = |sector: bool| {
        let mut v = Viyojit::new(
            64,
            ViyojitConfig::with_budget_pages(2).with_sector_flush(sector),
            Clock::new(),
            CostModel::free(),
            SsdConfig::instant(),
        );
        let r = v.map(PAGE * 8).unwrap();
        // Establish durable base copies of pages 0..4.
        for i in 0..4u64 {
            v.write(r, i * PAGE, &vec![1u8; PAGE_SIZE]).unwrap();
        }
        v.power_failure();
        v.recover();
        let base_phys = v.stats().physical_bytes_flushed;
        // Now dirty only 64 bytes of each page, cycling so flushes happen.
        for round in 0..4u8 {
            for i in 0..4u64 {
                v.write(r, i * PAGE + 128, &[round; 64]).unwrap();
            }
        }
        v.power_failure();
        v.recover();
        let mut data = vec![0u8; (PAGE * 4) as usize];
        v.read(r, 0, &mut data).unwrap();
        (v.stats().physical_bytes_flushed - base_phys, data)
    };
    let (full_bytes, full_data) = run(false);
    let (sector_bytes, sector_data) = run(true);
    assert_eq!(
        full_data, sector_data,
        "sector flushing must not change contents"
    );
    assert!(
        sector_bytes < full_bytes / 20,
        "64 B writes should ship tiny payloads: {sector_bytes} vs {full_bytes}"
    );
}

#[test]
fn repeated_power_cycles_preserve_data() {
    let mut v = viyojit(32, 4);
    let r = v.map(PAGE * 8).unwrap();
    for cycle in 0..5u8 {
        for i in 0..8u64 {
            v.write(r, i * PAGE, &[cycle.wrapping_add(i as u8); 16])
                .unwrap();
        }
        v.power_failure();
        v.recover();
        for i in 0..8u64 {
            let mut buf = [0u8; 16];
            v.read(r, i * PAGE, &mut buf).unwrap();
            assert_eq!(
                buf,
                [cycle.wrapping_add(i as u8); 16],
                "cycle {cycle} page {i}"
            );
        }
    }
}
