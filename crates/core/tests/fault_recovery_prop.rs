//! Seeded property tests for the executed emergency flush under fault
//! injection: recovery after a faulty power failure must reproduce the
//! durable state exactly, across every tracking backend and the sharded
//! manager.
//!
//! These are hand-rolled property loops (no external property-testing
//! framework): every scenario is a pure function of a `u64` seed, driven
//! through the same splitmix64 generator the fault plans use. Set
//! `FAULT_SEED=<n>` to replay a single seed; on any violation the run's
//! full telemetry trace is dumped to
//! `target/fault-telemetry/seed-<n>.jsonl` and the failing seed is printed
//! in the panic message.

use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use battery_sim::{Battery, BatteryConfig, PowerModel};
use mem_sim::PAGE_SIZE;
use sim_clock::{Clock, CostModel, SimDuration};
use ssd_sim::SsdConfig;
use viyojit::{
    CrashSchedule, CrashSignal, DegradationConfig, DegradationGovernor, DegradedMode, DirtyTracker,
    Engine, FaultConfig, FaultPlan, FlushOutcome, FullDirty, JsonlSink, MmuAssisted, NvHeap,
    PowerFailureReport, ShardedViyojitBuilder, SoftwareWalk, Telemetry, ViyojitConfig,
};

const PAGE: u64 = PAGE_SIZE as u64;
const TOTAL_PAGES: usize = 256;
const REGION_PAGES: u64 = 128;
const BUDGET: u64 = 32;
const WRITES: u64 = 1_024;
const STORM_RATE: f64 = 0.02;
const SEEDS_PER_PROPERTY: u64 = 16;

/// Seeds to sweep: the fixed default set, or the single seed named by
/// `FAULT_SEED` when replaying a reported failure.
fn seeds() -> Vec<u64> {
    match std::env::var("FAULT_SEED") {
        Ok(s) => vec![s.parse().expect("FAULT_SEED must be a u64")],
        Err(_) => (0..SEEDS_PER_PROPERTY).collect(),
    }
}

/// The same splitmix64 the fault plans replay from, reused to derive the
/// workload so the whole scenario is one seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Everything one storm scenario produced, kept around so a failed check
/// can dump the telemetry trace before panicking.
struct Run {
    seed: u64,
    report: PowerFailureReport,
    pre: Vec<u8>,
    post: Vec<u8>,
    invariant_violation: Option<String>,
    telemetry: Telemetry,
}

impl Run {
    /// Dumps the trace to `target/fault-telemetry/seed-<n>.jsonl` and
    /// panics with the seed and the replay instructions.
    fn fail(&self, why: &str) -> ! {
        let dir =
            PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()))
                .join("fault-telemetry");
        fs::create_dir_all(&dir).expect("create fault-telemetry dir");
        let path = dir.join(format!("seed-{}.jsonl", self.seed));
        let file = fs::File::create(&path).expect("create telemetry dump");
        let mut sink = JsonlSink::new(file);
        self.telemetry.drain_into(&mut sink);
        panic!(
            "[seed {}] {why}\nreport: {:?}\nreplay with FAULT_SEED={} (trace at {})",
            self.seed,
            self.report,
            self.seed,
            path.display()
        );
    }

    fn check(&self, cond: bool, why: &str) {
        if !cond {
            self.fail(why);
        }
    }
}

/// One full storm life: seeded workload, seeded faults, powered emergency
/// flush, recovery. `battery_pages` sizes the battery against that many
/// pages of conservative drain time (the §5.1 rule); the margin cycles
/// with the seed so the sweep exercises Complete, PagesLost, and
/// BatteryExhausted outcomes alike.
fn storm_scenario<B: DirtyTracker>(seed: u64, battery_pages: u64) -> Run {
    let clock = Clock::new();
    let telemetry = Telemetry::recording(clock.clone());
    let ssd_config = SsdConfig::datacenter();
    let mut nv = Engine::<B>::new(
        TOTAL_PAGES,
        ViyojitConfig::with_budget_pages(BUDGET),
        clock,
        CostModel::calibrated(),
        ssd_config.clone(),
    );
    nv.attach_telemetry(telemetry.clone());
    nv.attach_faults(FaultPlan::seeded(seed, FaultConfig::storm(STORM_RATE)));
    let region = nv.map(REGION_PAGES * PAGE).expect("map");

    let mut rng = seed;
    for _ in 0..WRITES {
        let page = splitmix64(&mut rng) % REGION_PAGES;
        let offset = splitmix64(&mut rng) % (PAGE - 8);
        let fill = splitmix64(&mut rng) as u8;
        nv.write(region, page * PAGE + offset, &[fill; 8])
            .expect("write");
    }

    let mut pre = vec![0u8; (REGION_PAGES * PAGE) as usize];
    nv.read(region, 0, &mut pre).expect("read pre-failure");

    let power = PowerModel::datacenter_server(0.064);
    let margin = 1.0 + (seed % 4) as f64;
    let needed = ssd_config.drain_time(battery_pages * PAGE).as_secs_f64() * power.total_watts();
    let battery = Battery::new(
        BatteryConfig::with_capacity_joules(needed * margin).with_depth_of_discharge(1.0),
    );

    let report = nv.power_failure_powered(&battery, &power);
    nv.recover();
    let invariant_violation = nv.check_invariants().err().map(|v| v.to_string());
    let mut post = vec![0u8; (REGION_PAGES * PAGE) as usize];
    nv.read(region, 0, &mut post).expect("read post-recovery");

    Run {
        seed,
        report,
        pre,
        post,
        invariant_violation,
        telemetry,
    }
}

/// The durability property: every dirty page is flushed or reported lost;
/// post-recovery memory differs from the pre-failure image on at most
/// `pages_lost` pages (a lost page reverts to its older durable copy);
/// a loss-free flush reproduces the image exactly; and the recovered
/// engine satisfies every invariant.
fn check_recovery(run: &Run) {
    run.check(
        run.report.all_pages_accounted(),
        "every dirty page must be flushed or reported lost",
    );
    if let Some(violation) = &run.invariant_violation {
        run.fail(&format!("post-recovery invariant violated: {violation}"));
    }
    let mismatches = (0..REGION_PAGES as usize)
        .filter(|&p| {
            run.pre[p * PAGE_SIZE..(p + 1) * PAGE_SIZE]
                != run.post[p * PAGE_SIZE..(p + 1) * PAGE_SIZE]
        })
        .count() as u64;
    run.check(
        mismatches <= run.report.pages_lost,
        &format!(
            "{mismatches} pages differ post-recovery but only {} were reported lost",
            run.report.pages_lost
        ),
    );
    if run.report.pages_lost == 0 {
        run.check(
            run.pre == run.post,
            "a loss-free flush must reproduce the durable state exactly",
        );
        run.check(
            run.report.outcome == FlushOutcome::Complete,
            "zero lost pages must report a Complete outcome",
        );
    } else {
        run.check(
            run.report.outcome != FlushOutcome::Complete,
            "lost pages must degrade the outcome",
        );
    }
}

#[test]
fn software_walk_recovers_durable_state_under_faults() {
    for seed in seeds() {
        check_recovery(&storm_scenario::<SoftwareWalk>(seed, BUDGET));
    }
}

#[test]
fn mmu_assisted_recovers_durable_state_under_faults() {
    for seed in seeds() {
        check_recovery(&storm_scenario::<MmuAssisted>(seed, BUDGET));
    }
}

#[test]
fn full_dirty_baseline_recovers_durable_state_under_faults() {
    // The baseline's obligation is the whole DRAM, so its battery is
    // sized against every page, not the budget.
    for seed in seeds() {
        check_recovery(&storm_scenario::<FullDirty>(seed, TOTAL_PAGES as u64));
    }
}

#[test]
fn same_seed_reproduces_the_same_partial_flush() {
    for seed in seeds() {
        let a = storm_scenario::<SoftwareWalk>(seed, BUDGET);
        let b = storm_scenario::<SoftwareWalk>(seed, BUDGET);
        a.check(
            a.report == b.report,
            &format!(
                "same seed must reproduce the same report: {:?} vs {:?}",
                a.report, b.report
            ),
        );
        a.check(
            a.post == b.post,
            "same seed must reproduce the same post-recovery memory",
        );
    }
}

/// One crash-armed storm life: the seeded [`CrashSchedule`] picks its own
/// crashpoint and ordinal, the workload (or the emergency flush itself)
/// trips it, and recovery runs from the exact intermediate state the
/// unwind left behind. Returns the firing, the final report, and the
/// post-recovery memory so the determinism property can compare runs.
fn crash_storm_scenario(seed: u64) -> (Option<CrashSignal>, PowerFailureReport, Vec<u8>) {
    let clock = Clock::new();
    let ssd_config = SsdConfig::datacenter();
    let crashes = CrashSchedule::seeded(seed);
    let mut nv = Engine::<SoftwareWalk>::new(
        TOTAL_PAGES,
        ViyojitConfig::with_budget_pages(BUDGET),
        clock,
        CostModel::calibrated(),
        ssd_config.clone(),
    );
    nv.attach_faults(FaultPlan::seeded(seed, FaultConfig::storm(STORM_RATE)));
    nv.attach_crashes(crashes.clone());
    let region = nv.map(REGION_PAGES * PAGE).expect("map");

    let mut rng = seed;
    let workload = catch_unwind(AssertUnwindSafe(|| {
        for _ in 0..WRITES {
            let page = splitmix64(&mut rng) % REGION_PAGES;
            let offset = splitmix64(&mut rng) % (PAGE - 8);
            let fill = splitmix64(&mut rng) as u8;
            nv.write(region, page * PAGE + offset, &[fill; 8])
                .expect("write");
        }
    }));
    if let Err(payload) = workload {
        payload
            .downcast::<CrashSignal>()
            .expect("only injected crashes unwind the workload");
    }

    let power = PowerModel::datacenter_server(0.064);
    let needed = ssd_config.drain_time(BUDGET * PAGE).as_secs_f64() * power.total_watts();
    let battery = Battery::new(
        BatteryConfig::with_capacity_joules(needed * (1.0 + (seed % 4) as f64))
            .with_depth_of_discharge(1.0),
    );
    // The armed point may sit inside the emergency flush itself
    // (emergency_retry); the schedule is latched, so the re-run flushes
    // the remaining obligation without re-firing.
    let report = catch_unwind(AssertUnwindSafe(|| {
        nv.power_failure_powered(&battery, &power)
    }))
    .unwrap_or_else(|_| nv.power_failure_powered(&battery, &power));
    nv.recover();
    let mut post = vec![0u8; (REGION_PAGES * PAGE) as usize];
    nv.read(region, 0, &mut post).expect("read post-recovery");
    (crashes.fired(), report, post)
}

#[test]
fn same_seed_fires_the_same_crashpoint_and_report() {
    for seed in seeds() {
        let (fired_a, report_a, post_a) = crash_storm_scenario(seed);
        let (fired_b, report_b, post_b) = crash_storm_scenario(seed);
        assert_eq!(
            fired_a, fired_b,
            "[seed {seed}] the same FAULT_SEED must fire the same crashpoint"
        );
        assert_eq!(
            report_a, report_b,
            "[seed {seed}] the same FAULT_SEED must reproduce the same report"
        );
        assert_eq!(
            post_a, post_b,
            "[seed {seed}] the same FAULT_SEED must reproduce the same durable state"
        );
    }
}

#[test]
fn sharded_aggregate_accounts_every_page_under_faults() {
    for seed in seeds() {
        let clock = Clock::new();
        let telemetry = Telemetry::recording(clock.clone());
        let ssd_config = SsdConfig::datacenter();
        let mut nv = ShardedViyojitBuilder::new(4, 64, ViyojitConfig::with_budget_pages(BUDGET))
            .backend::<SoftwareWalk>()
            .min_per_shard(4)
            .rebalance_period(SimDuration::from_millis(10))
            .clock(clock)
            .cost_model(CostModel::calibrated())
            .ssd(ssd_config.clone())
            .telemetry(telemetry.clone())
            .faults(FaultPlan::seeded(seed, FaultConfig::storm(STORM_RATE)))
            .build_sequential()
            .expect("a valid sharded configuration");
        let regions: Vec<_> = (0..4).map(|_| nv.map(32 * PAGE).expect("map")).collect();

        let mut rng = seed;
        for _ in 0..WRITES {
            let region = regions[(splitmix64(&mut rng) % 4) as usize];
            let page = splitmix64(&mut rng) % 32;
            nv.write(region, page * PAGE, &[splitmix64(&mut rng) as u8; 8])
                .expect("write");
        }

        let power = PowerModel::datacenter_server(0.064);
        let margin = 1.0 + (seed % 4) as f64;
        let needed = ssd_config.drain_time(BUDGET * PAGE).as_secs_f64() * power.total_watts();
        let battery = Battery::new(
            BatteryConfig::with_capacity_joules(needed * margin).with_depth_of_discharge(1.0),
        );
        let report = nv.power_failure_powered(&battery, &power);
        nv.recover();
        let run = Run {
            seed,
            report,
            pre: Vec::new(),
            post: Vec::new(),
            invariant_violation: nv.check_invariants().err().map(|v| v.to_string()),
            telemetry,
        };
        run.check(
            run.report.all_pages_accounted(),
            "the sharded aggregate must account for every dirty page",
        );
        if let Some(violation) = &run.invariant_violation {
            run.fail(&format!("post-recovery invariant violated: {violation}"));
        }
        run.check(
            (run.report.outcome == FlushOutcome::Complete) == (run.report.pages_lost == 0),
            "the aggregated outcome must agree with the aggregated losses",
        );
    }
}

#[test]
fn governor_restores_budget_invariant_after_capacity_drop() {
    for seed in seeds() {
        let clock = Clock::new();
        let telemetry = Telemetry::recording(clock.clone());
        let mut nv = Engine::<SoftwareWalk>::new(
            TOTAL_PAGES,
            ViyojitConfig::with_budget_pages(BUDGET),
            clock,
            CostModel::calibrated(),
            SsdConfig::datacenter(),
        );
        nv.attach_telemetry(telemetry.clone());
        let region = nv.map(REGION_PAGES * PAGE).expect("map");
        let mut rng = seed;
        for _ in 0..WRITES {
            let page = splitmix64(&mut rng) % REGION_PAGES;
            nv.write(region, page * PAGE, &[splitmix64(&mut rng) as u8; 8])
                .expect("write");
        }

        // The injected 50% capacity drop fires on the first poll.
        let mut config = FaultConfig::none();
        config.capacity_drop_rate = 1.0;
        config.capacity_drop_factor = 0.5;
        let plan = FaultPlan::seeded(seed, config);
        let mut battery =
            Battery::new(BatteryConfig::with_capacity_joules(12.0).with_depth_of_discharge(1.0));
        battery
            .apply_capacity_drop(&plan)
            .expect("the plan always fires a capacity drop");

        let mut governor = DegradationGovernor::new(BUDGET, DegradationConfig::default());
        let applied = nv.govern_degradation(&mut governor, battery.reported_health(&plan));
        let run = Run {
            seed,
            report: PowerFailureReport {
                dirty_pages: 0,
                pages_flushed: 0,
                pages_lost: 0,
                retries: 0,
                bytes_flushed: 0,
                flush_time: SimDuration::ZERO,
                energy_margin_joules: f64::INFINITY,
                outcome: FlushOutcome::Complete,
            },
            pre: Vec::new(),
            post: Vec::new(),
            invariant_violation: nv.check_invariants().err().map(|v| v.to_string()),
            telemetry,
        };
        run.check(
            applied == Some(BUDGET / 2),
            &format!("a 50% capacity drop must halve the budget, got {applied:?}"),
        );
        run.check(
            matches!(governor.mode(), DegradedMode::Degraded(_)),
            "the governor must report degraded mode",
        );
        run.check(
            nv.dirty_count() <= BUDGET / 2,
            &format!(
                "the shrink must stall until dirty_count ({}) fits the halved budget ({})",
                nv.dirty_count(),
                BUDGET / 2
            ),
        );
        if let Some(violation) = &run.invariant_violation {
            run.fail(&format!("degraded-mode invariant violated: {violation}"));
        }
    }
}
