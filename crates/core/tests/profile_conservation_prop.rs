//! Seeded property tests for the virtual-time profiler: every virtual
//! nanosecond the engine charges must be attributed to exactly one leaf
//! span (the conservation invariant behind the folded-stack export), and
//! attaching a profiler must never change what the engine computes.
//!
//! Hand-rolled property loops like `fault_recovery_prop`: every scenario
//! is a pure function of a `u64` seed through splitmix64. Set
//! `FAULT_SEED=<n>` to replay a single seed.

use battery_sim::{Battery, BatteryConfig, PowerModel};
use mem_sim::PAGE_SIZE;
use sim_clock::{Clock, CostModel, SimDuration};
use ssd_sim::SsdConfig;
use viyojit::{
    DirtyTracker, Engine, FaultConfig, FaultPlan, FullDirty, MmuAssisted, NvHeap, ProfileReport,
    Profiler, ShardedViyojitBuilder, SoftwareWalk, ViyojitConfig, ViyojitStats,
};

const PAGE: u64 = PAGE_SIZE as u64;
const TOTAL_PAGES: usize = 256;
const REGION_PAGES: u64 = 128;
const BUDGET: u64 = 32;
const OPS: u64 = 768;
const STORM_RATE: f64 = 0.02;
const SEEDS_PER_PROPERTY: u64 = 12;

fn seeds() -> Vec<u64> {
    match std::env::var("FAULT_SEED") {
        Ok(s) => vec![s.parse().expect("FAULT_SEED must be a u64")],
        Err(_) => (0..SEEDS_PER_PROPERTY).collect(),
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What one engine scenario produced: the final virtual instant, the
/// runtime counters, and the attribution report when profiling was on.
struct Outcome {
    end_nanos: u64,
    stats: ViyojitStats,
    report: Option<ProfileReport>,
}

/// One seeded life of a single engine: seeded writes and reads, a
/// mid-run budget shrink and restore (exercising the stall path), an
/// optional fault storm, and a powered emergency flush at the end. The
/// workload is a pure function of the seed, so the profiled and
/// unprofiled runs see identical operation streams.
fn engine_scenario<B: DirtyTracker>(seed: u64, profiled: bool, faults: bool) -> Outcome {
    let clock = Clock::new();
    let profiler = if profiled {
        Profiler::enabled(clock.clone())
    } else {
        Profiler::disabled()
    };
    let ssd_config = SsdConfig::datacenter();
    let mut nv = Engine::<B>::new(
        TOTAL_PAGES,
        ViyojitConfig::with_budget_pages(BUDGET),
        clock.clone(),
        CostModel::calibrated(),
        ssd_config.clone(),
    );
    nv.attach_profiler(profiler.clone());
    if faults {
        nv.attach_faults(FaultPlan::seeded(seed, FaultConfig::storm(STORM_RATE)));
    }
    let region = nv.map(REGION_PAGES * PAGE).expect("map");

    let mut rng = seed;
    let mut buf = [0u8; 8];
    for op in 0..OPS {
        let page = splitmix64(&mut rng) % REGION_PAGES;
        let offset = splitmix64(&mut rng) % (PAGE - 8);
        if splitmix64(&mut rng).is_multiple_of(4) {
            nv.read(region, page * PAGE + offset, &mut buf)
                .expect("read");
        } else {
            let fill = splitmix64(&mut rng) as u8;
            nv.write(region, page * PAGE + offset, &[fill; 8])
                .expect("write");
        }
        if op == OPS / 2 {
            // A §8 re-derivation mid-run: shrink (stalling down), restore.
            nv.set_dirty_budget(BUDGET / 2);
            nv.set_dirty_budget(BUDGET);
        }
    }

    let power = PowerModel::datacenter_server(0.064);
    let needed = ssd_config.drain_time(BUDGET * PAGE).as_secs_f64() * power.total_watts();
    let battery = Battery::new(
        BatteryConfig::with_capacity_joules(needed * 2.0).with_depth_of_discharge(1.0),
    );
    let report = nv.power_failure_powered(&battery, &power);
    assert!(report.all_pages_accounted());

    Outcome {
        end_nanos: clock.now().as_nanos(),
        stats: nv.stats(),
        report: profiler.report(),
    }
}

/// The conservation property: the folded leaf spans sum exactly to the
/// virtual time that elapsed while the profiler watched.
fn check_conserved(seed: u64, outcome: &Outcome) {
    let report = outcome
        .report
        .as_ref()
        .expect("profiled runs produce a report");
    assert_eq!(
        report.elapsed.as_nanos(),
        outcome.end_nanos,
        "[seed {seed}] the profiler watched the whole run"
    );
    assert!(
        report.is_conserved(),
        "[seed {seed}] leaf spans must sum to elapsed virtual time: \
         attributed {} of {} ns\nfolded:\n{}",
        report.attributed.as_nanos(),
        report.elapsed.as_nanos(),
        report.render_folded()
    );
}

#[test]
fn software_walk_attributes_every_nanosecond() {
    for seed in seeds() {
        check_conserved(seed, &engine_scenario::<SoftwareWalk>(seed, true, false));
        check_conserved(seed, &engine_scenario::<SoftwareWalk>(seed, true, true));
    }
}

#[test]
fn mmu_assisted_attributes_every_nanosecond() {
    for seed in seeds() {
        check_conserved(seed, &engine_scenario::<MmuAssisted>(seed, true, false));
        check_conserved(seed, &engine_scenario::<MmuAssisted>(seed, true, true));
    }
}

#[test]
fn full_dirty_baseline_attributes_every_nanosecond() {
    for seed in seeds() {
        check_conserved(seed, &engine_scenario::<FullDirty>(seed, true, false));
    }
}

#[test]
fn profiling_never_changes_virtual_time_or_stats() {
    for seed in seeds() {
        for faults in [false, true] {
            let off = engine_scenario::<SoftwareWalk>(seed, false, faults);
            let on = engine_scenario::<SoftwareWalk>(seed, true, faults);
            assert_eq!(
                off.end_nanos, on.end_nanos,
                "[seed {seed}] profiling must not move the virtual clock"
            );
            assert_eq!(
                off.stats, on.stats,
                "[seed {seed}] profiling must not change the control loop"
            );
            assert!(off.report.is_none(), "a disabled profiler reports nothing");
        }
    }
}

#[test]
fn sharded_manager_attributes_every_nanosecond_per_shard() {
    for seed in seeds() {
        let clock = Clock::new();
        let profiler = Profiler::enabled(clock.clone());
        let mut nv = ShardedViyojitBuilder::new(4, 64, ViyojitConfig::with_budget_pages(BUDGET))
            .backend::<SoftwareWalk>()
            .min_per_shard(4)
            .rebalance_period(SimDuration::from_millis(10))
            .clock(clock.clone())
            .cost_model(CostModel::calibrated())
            .ssd(SsdConfig::datacenter())
            .profiler(profiler.clone())
            .build_sequential()
            .expect("a valid sharded configuration");
        // Construction charged the initial protection pass to the clock
        // before any shard scope existed; that time stays at the root.
        let setup_nanos = clock.now().as_nanos();
        let regions: Vec<_> = (0..4).map(|_| nv.map(32 * PAGE).expect("map")).collect();
        let mut rng = seed;
        for _ in 0..OPS {
            let region = regions[(splitmix64(&mut rng) % 4) as usize];
            let page = splitmix64(&mut rng) % 32;
            nv.write(region, page * PAGE, &[splitmix64(&mut rng) as u8; 8])
                .expect("write");
        }
        let report = profiler.report().expect("enabled profiler reports");
        assert_eq!(report.elapsed.as_nanos(), clock.now().as_nanos());
        assert!(
            report.is_conserved(),
            "[seed {seed}] sharded attribution must conserve: {} of {} ns\n{}",
            report.attributed.as_nanos(),
            report.elapsed.as_nanos(),
            report.render_folded()
        );
        // Per-shard attribution: everything after construction descends
        // into a shard frame, so the flamegraph splits by shard.
        let shard_time: u64 = report
            .folded
            .iter()
            .filter(|(path, _)| path.starts_with("app;shard"))
            .map(|&(_, nanos)| nanos)
            .sum();
        assert_eq!(
            report.nanos_for("app"),
            setup_nanos,
            "[seed {seed}] only construction time stays at the root\n{}",
            report.render_folded()
        );
        assert_eq!(
            shard_time + setup_nanos,
            report.attributed.as_nanos(),
            "[seed {seed}] all post-setup time routes through shard scopes\n{}",
            report.render_folded()
        );
    }
}
