//! Property tests of the §5.4 MMU-assisted manager: the hardware counter
//! must enforce the same durability bound as the software tracker, under
//! any workload and crash point.

use mem_sim::PAGE_SIZE;
use proptest::prelude::*;
use sim_clock::{Clock, CostModel, SimDuration};
use ssd_sim::SsdConfig;
use viyojit::{MmuAssistedViyojit, NvHeap, ViyojitConfig};

const PAGE: u64 = PAGE_SIZE as u64;
const REGION_PAGES: u64 = 24;

#[derive(Debug, Clone)]
enum Op {
    Write { offset: u64, len: u16, fill: u8 },
    Read { offset: u64, len: u16 },
    Idle { micros: u16 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let max_off = REGION_PAGES * PAGE - u16::MAX as u64;
    prop_oneof![
        4 => (0..max_off, 1..2048u16, any::<u8>())
            .prop_map(|(offset, len, fill)| Op::Write { offset, len, fill }),
        2 => (0..max_off, 1..2048u16).prop_map(|(offset, len)| Op::Read { offset, len }),
        1 => (1..2000u16).prop_map(|micros| Op::Idle { micros }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn hardware_counter_bounds_dirty_pages_and_crashes_lose_nothing(
        ops in prop::collection::vec(op_strategy(), 1..100),
        budget in 1..16u64,
    ) {
        let mut nv = MmuAssistedViyojit::new(
            32,
            ViyojitConfig::with_budget_pages(budget),
            Clock::new(),
            CostModel::calibrated(),
            SsdConfig::datacenter(),
        );
        let r = nv.map(REGION_PAGES * PAGE).unwrap();
        let mut model = vec![0u8; (REGION_PAGES * PAGE) as usize];

        for op in &ops {
            match *op {
                Op::Write { offset, len, fill } => {
                    nv.write(r, offset, &vec![fill; len as usize]).unwrap();
                    model[offset as usize..offset as usize + len as usize].fill(fill);
                }
                Op::Read { offset, len } => {
                    let mut buf = vec![0u8; len as usize];
                    nv.read(r, offset, &mut buf).unwrap();
                    prop_assert_eq!(
                        &buf[..],
                        &model[offset as usize..offset as usize + len as usize]
                    );
                }
                Op::Idle { micros } => {
                    nv.clock().advance(SimDuration::from_micros(micros as u64));
                }
            }
            prop_assert!(nv.dirty_count() <= budget);
            nv.validate();
        }

        let report = nv.power_failure();
        prop_assert!(report.dirty_pages <= budget);
        nv.recover();
        let mut after = vec![0u8; model.len()];
        nv.read(r, 0, &mut after).unwrap();
        prop_assert_eq!(after, model);
    }

    #[test]
    fn hardware_and_software_managers_agree_on_contents(
        ops in prop::collection::vec(op_strategy(), 1..60),
        budget in 2..12u64,
    ) {
        use viyojit::Viyojit;

        let mut hw = MmuAssistedViyojit::new(
            32,
            ViyojitConfig::with_budget_pages(budget),
            Clock::new(),
            CostModel::calibrated(),
            SsdConfig::datacenter(),
        );
        let mut sw = Viyojit::new(
            32,
            ViyojitConfig::with_budget_pages(budget),
            Clock::new(),
            CostModel::calibrated(),
            SsdConfig::datacenter(),
        );
        let rh = hw.map(REGION_PAGES * PAGE).unwrap();
        let rs = sw.map(REGION_PAGES * PAGE).unwrap();
        for op in &ops {
            if let Op::Write { offset, len, fill } = *op {
                let data = vec![fill; len as usize];
                hw.write(rh, offset, &data).unwrap();
                sw.write(rs, offset, &data).unwrap();
            }
        }
        let mut a = vec![0u8; (REGION_PAGES * PAGE) as usize];
        let mut b = a.clone();
        hw.read(rh, 0, &mut a).unwrap();
        sw.read(rs, 0, &mut b).unwrap();
        prop_assert_eq!(a, b, "tracking strategy must never change data");
    }
}
