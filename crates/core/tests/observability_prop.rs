//! Property tests of the observability plane's two core contracts:
//!
//! 1. **Merge fidelity** — the merged view of per-thread telemetry
//!    shards is indistinguishable from the single shared registry the
//!    sequential frontend writes: counters agree exactly (`Sum`-kind
//!    counters add across shards, `Cumulative`-kind counters saturate to
//!    the max, reproducing what the one shared registry would hold) and
//!    histograms agree bucket-for-bucket. This is what lets dashboards
//!    and the exporter treat a parallel deployment as one machine.
//! 2. **Black-box determinism** — under the `FAULT_SEED` contract, a
//!    crash-armed parallel run dumps a byte-identical
//!    `postmortem-<thread>.jsonl` every time: the flight recorder
//!    captures only per-thread virtual-time data (no wall clock), so a
//!    crash report is reproducible evidence, not a race snapshot.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Once;

use mem_sim::PAGE_SIZE;
use proptest::prelude::*;
use sim_clock::{Clock, CostModel, SimDuration};
use ssd_sim::SsdConfig;
use telemetry::{FlightRecorder, RunMeta};
use viyojit::{
    CrashSchedule, CrashSignal, Crashpoint, FaultConfig, FaultPlan, NvHeap, ShardControlHandle,
    ShardControlPlane, ShardDataHandle, ShardDataPlane, ShardedViyojit, ShardedViyojitBuilder,
    SoftwareWalk, Telemetry, ViyojitConfig, ViyojitError,
};

const PAGE: u64 = PAGE_SIZE as u64;
const REGION_PAGES: u64 = 24;
const FAULT_SEED: u64 = 42;

/// Injected crashes unwind worker threads with a [`CrashSignal`]
/// payload; the supervisor absorbs them, so their backtraces are noise.
/// Genuine panics (including proptest failures) keep the default hook.
fn suppress_crash_signal_backtraces() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashSignal>().is_none() {
                default_hook(info);
            }
        }));
    });
}

#[derive(Debug, Clone)]
enum Op {
    Write { offset: u64, len: u16, fill: u8 },
    Idle { micros: u16 },
    SetBudget { pages: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let max_off = REGION_PAGES * PAGE - u16::MAX as u64;
    prop_oneof![
        6 => (0..max_off, 1..2048u16, any::<u8>())
            .prop_map(|(offset, len, fill)| Op::Write { offset, len, fill }),
        2 => (1..2000u16).prop_map(|micros| Op::Idle { micros }),
        1 => (2..14u64).prop_map(|pages| Op::SetBudget { pages }),
    ]
}

/// One sharded deployment in either execution mode, seen through the
/// plane traits (the same shape as the engine-equivalence driver).
enum Cluster {
    Sequential(Box<ShardedViyojit>),
    Parallel(ShardDataHandle, ShardControlHandle),
}

impl Cluster {
    fn data(&mut self) -> &mut dyn ShardDataPlane {
        match self {
            Cluster::Sequential(nv) => &mut **nv,
            Cluster::Parallel(data, _) => data,
        }
    }

    fn ctrl(&mut self) -> &mut dyn ShardControlPlane {
        match self {
            Cluster::Sequential(nv) => &mut **nv,
            Cluster::Parallel(_, ctrl) => ctrl,
        }
    }
}

/// Free writes and an instant SSD freeze the clock between steps, so the
/// only timeline is the driver's — the precondition for identical
/// virtual-time metrics across execution modes.
fn observed_builder(shards: usize, budget: u64, telemetry: Telemetry) -> ShardedViyojitBuilder {
    ShardedViyojitBuilder::new(shards, 64, ViyojitConfig::with_budget_pages(budget))
        .min_per_shard(2)
        .rebalance_period(SimDuration::from_micros(500))
        .clock(Clock::new())
        .cost_model(CostModel::free())
        .ssd(SsdConfig::instant())
        .telemetry(telemetry)
}

/// One histogram's comparable shape: sample count plus its occupied
/// `(bucket, count)` pairs.
type HistogramShape = (u64, Vec<(u64, u64)>);

/// Everything the merge-fidelity property compares: every counter by
/// name, and every histogram as (sample count, occupied buckets).
#[derive(Debug, PartialEq)]
struct MetricsOutcome {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, HistogramShape>,
}

/// Drives one deployment through the shared workload and returns its
/// merged metrics. Besides the engine-published metrics, the driver
/// records its own samples — in sequential mode into the one shared
/// handle, in parallel mode round-robined across two explicitly forked
/// telemetry shards — so the property exercises every merge rule
/// (`Sum` add, `Cumulative` max, bucket-wise histograms), not just the
/// engine's publication pattern.
fn drive_observed(
    threads: Option<usize>,
    shards: usize,
    budget: u64,
    ops: &[Op],
) -> Result<MetricsOutcome, ViyojitError> {
    let telemetry = Telemetry::recording(Clock::new());
    let builder = observed_builder(shards, budget, telemetry.clone());
    let (mut nv, recorders) = match threads {
        None => (
            Cluster::Sequential(Box::new(builder.build_sequential()?)),
            vec![telemetry.clone()],
        ),
        Some(t) => {
            let (data, ctrl) = builder.threads(t).build_parallel()?;
            let recorders = (0..2).map(|_| telemetry.fork_shard(Clock::new())).collect();
            (Cluster::Parallel(data, ctrl), recorders)
        }
    };

    let region_bytes = (REGION_PAGES / 4 * PAGE) as usize;
    let regions = (0..4)
        .map(|_| nv.data().map(region_bytes as u64))
        .collect::<Result<Vec<_>, _>>()?;

    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Write { offset, len, fill } => {
                let region = i % regions.len();
                let off = offset as usize % (region_bytes - len as usize);
                nv.data()
                    .write(regions[region], off as u64, &vec![fill; len as usize])?;
            }
            Op::Idle { micros } => {
                nv.data().step(SimDuration::from_micros(micros as u64))?;
            }
            Op::SetBudget { pages } => {
                nv.data().sync()?;
                match nv.ctrl().set_total_budget(pages) {
                    Ok(()) | Err(ViyojitError::InvalidConfig(_)) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        recorders[i % recorders.len()].metrics(|m| {
            m.counter_add("driver.ops", 1);
            m.counter_set("driver.high_water", i as u64 + 1);
            m.histogram_record(
                "driver.op_nanos",
                SimDuration::from_nanos((i as u64 % 13) * 97 + 1),
            );
        });
    }

    nv.data().sync()?;
    nv.ctrl().check_invariants()?;
    nv.ctrl().power_failure()?;
    let merged = telemetry
        .merged_registry()
        .expect("a recording telemetry always merges");
    Ok(MetricsOutcome {
        counters: merged.counters().collect(),
        histograms: merged
            .histograms()
            .map(|(name, h)| (name, (h.len(), h.bucket_counts().collect())))
            .collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The merge-fidelity property: whatever the workload, the merged
    /// multi-thread registry replays the sequential shared registry —
    /// every counter exactly (engine `Cumulative` publications saturate
    /// to the same max, driver `Sum` counters add to the same total)
    /// and every histogram bucket-for-bucket.
    #[test]
    fn merged_parallel_metrics_replay_the_sequential_registry(
        ops in prop::collection::vec(op_strategy(), 1..60),
        shards in 2..5usize,
        budget in 8..40u64,
    ) {
        let seq = drive_observed(None, shards, budget, &ops)
            .expect("the sequential run must not fail");
        prop_assert_eq!(
            seq.counters.get("driver.ops").copied(),
            Some(ops.len() as u64),
            "the driver's Sum counter must total the op count"
        );
        for &threads in &[2usize, 4] {
            let par = drive_observed(Some(threads), shards, budget, &ops)
                .expect("the parallel run must not fail");
            prop_assert_eq!(
                &par.counters,
                &seq.counters,
                "{} threads: merged counters must replay the shared registry",
                threads
            );
            prop_assert_eq!(
                &par.histograms,
                &seq.histograms,
                "{} threads: merged histograms must agree bucket-for-bucket",
                threads
            );
        }
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("viyojit-obsprop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One crash-armed single-worker parallel run under the `FAULT_SEED`
/// contract; returns the bytes of the worker's black box.
fn crashed_run_dump(dir: &PathBuf) -> Vec<u8> {
    suppress_crash_signal_backtraces();
    let meta = RunMeta::new(
        "observability_prop",
        "Viyojit",
        "shards=2 budget=16 storm=0.05",
        Some(FAULT_SEED),
    );
    let flight = FlightRecorder::new(dir, meta).expect("create flight recorder");
    let crashes = CrashSchedule::armed(Crashpoint::BudgetRound, 1);
    let (mut data, mut ctrl) =
        ShardedViyojitBuilder::new(2, 64, ViyojitConfig::with_budget_pages(16))
            .backend::<SoftwareWalk>()
            .min_per_shard(2)
            .rebalance_period(SimDuration::from_micros(500))
            .clock(Clock::new())
            .cost_model(CostModel::free())
            .ssd(SsdConfig::instant())
            .telemetry(Telemetry::recording(Clock::new()))
            .faults(FaultPlan::seeded(FAULT_SEED, FaultConfig::storm(0.05)))
            .crashes(crashes.clone())
            .restart_budget(1)
            .threads(1)
            .flight_recorder(flight)
            .build_parallel()
            .expect("a valid crash-armed configuration");

    let regions: Vec<_> = (0..2).map(|_| data.map(8 * PAGE).expect("map")).collect();
    for (i, &region) in regions.iter().enumerate() {
        for page in 0..8u64 {
            data.write(region, page * PAGE, &[(i as u8) ^ (page as u8); 64])
                .expect("write");
        }
    }
    data.sync().expect("drain staged writes");
    ctrl.rebalance().expect("the armed round must be absorbed");
    assert!(
        crashes.fired().is_some(),
        "the armed budget_round seam never fired"
    );
    data.write(regions[0], 0, &[0xAB; 64])
        .expect("post-respawn write");
    data.sync().expect("drain staged writes");
    drop(data);
    drop(ctrl);

    std::fs::read(dir.join("postmortem-worker0.jsonl")).expect("the black box must exist")
}

/// The black-box determinism property: two crash-armed runs under the
/// same `FAULT_SEED` leave byte-identical postmortem dumps, and the
/// dump carries the full renderable structure — run-identity header,
/// crash seam, retained events, and the final registry snapshot.
#[test]
fn flight_recorder_dumps_are_deterministic_under_the_fault_seed() {
    let dir_a = temp_dir("seed-a");
    let dir_b = temp_dir("seed-b");
    let first = crashed_run_dump(&dir_a);
    let second = crashed_run_dump(&dir_b);
    assert_eq!(
        first, second,
        "the same seed must reproduce the black box byte-for-byte"
    );

    let text = String::from_utf8(first).expect("dumps are UTF-8 JSONL");
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines[0].starts_with("{\"type\":\"meta\"") && lines[0].contains("\"fault_seed\":42"),
        "the dump must open with the run-identity record: {}",
        lines[0]
    );
    assert!(
        lines[1].starts_with("{\"type\":\"postmortem\"")
            && lines[1].contains("\"label\":\"worker0\"")
            && lines[1].contains("\"trigger\":\"crash_signal:budget_round\""),
        "the dump must name the dumping thread and the firing seam: {}",
        lines[1]
    );
    assert!(
        lines[2..lines.len() - 1]
            .iter()
            .all(|l| l.starts_with("{\"type\":\"event\"")),
        "the body must be the thread's retained trace events"
    );
    assert!(
        lines.len() > 3,
        "a crash mid-workload must retain at least one event"
    );
    assert!(
        lines[lines.len() - 1].starts_with("{\"type\":\"snapshot\""),
        "the dump must close with the registry snapshot: {}",
        lines[lines.len() - 1]
    );
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// Guards the merge property against vacuity: a handcrafted workload in
/// parallel mode must actually cross budget rounds and dirty pages, and
/// its merged registry must carry the engine counters, the per-shard
/// gauges, and the driver histogram the property compares.
#[test]
fn the_observed_workload_populates_the_merged_registry() {
    let mut ops = Vec::new();
    for round in 0..4u64 {
        for i in 0..12u64 {
            ops.push(Op::Write {
                offset: (i % 6) * PAGE,
                len: 16,
                fill: (round * 12 + i) as u8,
            });
        }
        ops.push(Op::Idle { micros: 1500 });
    }
    let outcome =
        drive_observed(Some(2), 4, 16, &ops).expect("the handcrafted workload must not fail");
    assert!(outcome.counters["viyojit.pages_dirtied"] > 0);
    assert!(outcome.counters["viyojit.epochs"] > 0, "no epoch walk ran");
    assert!(
        outcome.counters["sharded.rebalances"] > 0,
        "no budget round ran"
    );
    assert_eq!(outcome.counters["driver.ops"], ops.len() as u64);
    assert_eq!(outcome.counters["driver.high_water"], ops.len() as u64);
    let (samples, buckets) = &outcome.histograms["driver.op_nanos"];
    assert_eq!(*samples, ops.len() as u64);
    assert!(!buckets.is_empty());
}
