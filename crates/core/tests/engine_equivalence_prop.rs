//! Property tests of the unified engine: the pluggable dirty-tracking
//! backends are different *mechanisms* for the same Fig. 6 policy, so
//! under a cost-free clock the software walker and the MMU-assisted
//! tracker must agree on everything the policy observes — dirty counts,
//! flush counts, and the power-failure obligation. A second property
//! pins the sharded frontend's global invariant: however the arbiter
//! re-divides the budget, the cluster-wide dirty population never
//! exceeds what the battery provisions.

use mem_sim::PAGE_SIZE;
use proptest::prelude::*;
use sim_clock::{Clock, CostModel, SimDuration};
use ssd_sim::SsdConfig;
use viyojit::{
    DegradationConfig, DegradationGovernor, MmuAssisted, MmuAssistedViyojit, NvHeap,
    PowerFailureReport, ShardControlHandle, ShardControlPlane, ShardDataHandle, ShardDataPlane,
    ShardedViyojit, ShardedViyojitBuilder, SoftwareWalk, TenantId, TenantQos, Viyojit,
    ViyojitConfig, ViyojitError, ViyojitStats,
};

const PAGE: u64 = PAGE_SIZE as u64;
const REGION_PAGES: u64 = 24;

#[derive(Debug, Clone)]
enum Op {
    Write { offset: u64, len: u16, fill: u8 },
    Idle { micros: u16 },
    SetBudget { pages: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let max_off = REGION_PAGES * PAGE - u16::MAX as u64;
    prop_oneof![
        6 => (0..max_off, 1..2048u16, any::<u8>())
            .prop_map(|(offset, len, fill)| Op::Write { offset, len, fill }),
        2 => (1..2000u16).prop_map(|micros| Op::Idle { micros }),
        1 => (2..14u64).prop_map(|pages| Op::SetBudget { pages }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The cross-backend equivalence property: with writes free and the
    /// SSD instant, the same operation sequence must produce *identical*
    /// dirty counts for as long as neither backend has flushed anything —
    /// first-write detection by trap and by hardware counter are the same
    /// observation. Once the copier acts the mechanisms legitimately
    /// diverge (the walker feeds fault-time recency and pressure into
    /// victim choice, the hardware backend only walk-time discovery —
    /// §5.4's coarser observability), so past that point the property
    /// weakens to what the *policy* guarantees both backends: the bound
    /// holds at every step, budgets re-derive identically, and a crash at
    /// the end loses nothing on either.
    #[test]
    fn software_and_mmu_backends_are_policy_equivalent(
        ops in prop::collection::vec(op_strategy(), 1..100),
        budget in 2..16u64,
    ) {
        let mut sw = Viyojit::new(
            32,
            ViyojitConfig::with_budget_pages(budget),
            Clock::new(),
            CostModel::free(),
            SsdConfig::instant(),
        );
        let mut hw = MmuAssistedViyojit::new(
            32,
            ViyojitConfig::with_budget_pages(budget),
            Clock::new(),
            CostModel::free(),
            SsdConfig::instant(),
        );
        let rs = sw.map(REGION_PAGES * PAGE).unwrap();
        let rh = hw.map(REGION_PAGES * PAGE).unwrap();
        let mut model = vec![0u8; (REGION_PAGES * PAGE) as usize];

        for op in &ops {
            match *op {
                Op::Write { offset, len, fill } => {
                    let data = vec![fill; len as usize];
                    sw.write(rs, offset, &data).unwrap();
                    hw.write(rh, offset, &data).unwrap();
                    model[offset as usize..offset as usize + len as usize].fill(fill);
                }
                Op::Idle { micros } => {
                    sw.clock().advance(SimDuration::from_micros(micros as u64));
                    hw.clock().advance(SimDuration::from_micros(micros as u64));
                }
                Op::SetBudget { pages } => {
                    sw.set_dirty_budget(pages);
                    hw.set_dirty_budget(pages);
                }
            }
            if sw.stats().flushes_issued() == 0 && hw.stats().flushes_issued() == 0 {
                prop_assert_eq!(
                    sw.dirty_count(),
                    hw.dirty_count(),
                    "backends disagree on the dirty population after {:?}",
                    op
                );
            }
            prop_assert_eq!(sw.dirty_budget(), hw.dirty_budget());
            prop_assert!(sw.dirty_count() <= sw.dirty_budget());
            prop_assert!(hw.dirty_count() <= hw.dirty_budget());
            sw.check_invariants().unwrap();
            hw.check_invariants().unwrap();
        }

        let (sr, hr) = (sw.power_failure(), hw.power_failure());
        prop_assert!(sr.dirty_pages <= sw.dirty_budget());
        prop_assert!(hr.dirty_pages <= hw.dirty_budget());

        sw.recover();
        hw.recover();
        prop_assert!(sw.durable_state_consistent());
        prop_assert!(hw.durable_state_consistent());
        let mut a = vec![0u8; model.len()];
        let mut b = a.clone();
        sw.read(rs, 0, &mut a).unwrap();
        hw.read(rh, 0, &mut b).unwrap();
        prop_assert_eq!(&a, &model, "software contents survive the power cycle");
        prop_assert_eq!(&b, &model, "hardware contents survive the power cycle");
    }

    /// The sharded frontend's global invariant: across routing, epoch
    /// processing, and arbiter rebalances, the *sum* of per-shard dirty
    /// pages never exceeds the single global budget, reads agree with a
    /// flat model, and the power-failure obligation stays inside the
    /// battery's provisioning.
    #[test]
    fn sharded_dirty_population_stays_inside_the_global_budget(
        ops in prop::collection::vec(op_strategy(), 1..120),
        shards in 1..5usize,
        budget in 8..40u64,
    ) {
        let mut nv: ShardedViyojit =
            ShardedViyojitBuilder::new(shards, 64, ViyojitConfig::with_budget_pages(budget))
                .min_per_shard(2)
                .rebalance_period(SimDuration::from_micros(500))
                .build_sequential()
                .unwrap();
        let regions: Vec<_> = (0..4)
            .map(|_| nv.map(REGION_PAGES / 4 * PAGE).unwrap())
            .collect();
        let region_bytes = (REGION_PAGES / 4 * PAGE) as usize;
        let mut model = vec![vec![0u8; region_bytes]; regions.len()];

        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Write { offset, len, fill } => {
                    let region = i % regions.len();
                    let off = offset as usize % (region_bytes - len as usize);
                    nv.write(regions[region], off as u64, &vec![fill; len as usize])
                        .unwrap();
                    model[region][off..off + len as usize].fill(fill);
                }
                Op::Idle { micros } => {
                    nv.clock().advance(SimDuration::from_micros(micros as u64));
                }
                Op::SetBudget { .. } => {
                    // The sharded frontend owns its shards' budgets; a
                    // burst of idle time triggers rebalances instead.
                    nv.clock().advance(SimDuration::from_micros(700));
                }
            }
            prop_assert!(
                nv.dirty_count() <= budget,
                "shard dirty sum {} exceeded the global budget {}",
                nv.dirty_count(),
                budget
            );
            nv.check_invariants().unwrap();
        }

        let report = nv.power_failure();
        prop_assert!(report.dirty_pages <= budget);
        nv.recover();
        for (region, contents) in regions.iter().zip(&model) {
            let mut buf = vec![0u8; region_bytes];
            nv.read(*region, 0, &mut buf).unwrap();
            prop_assert_eq!(&buf, contents, "region contents survive the power cycle");
        }
    }
}

/// One sharded deployment in either execution mode, seen through the
/// plane traits. The enum lets the same driver exercise the sequential
/// frontend (one object implementing both planes) and the parallel
/// runtime (a data handle and a control handle) without duplicating the
/// workload logic the equivalence property depends on.
enum Cluster {
    Sequential(Box<ShardedViyojit>),
    Parallel(ShardDataHandle, ShardControlHandle),
}

impl Cluster {
    fn sequential(shards: usize, budget: u64) -> Result<Cluster, ViyojitError> {
        Cluster::sequential_from(equivalence_builder(shards, budget))
    }

    fn parallel(shards: usize, budget: u64, threads: usize) -> Result<Cluster, ViyojitError> {
        Cluster::parallel_from(equivalence_builder(shards, budget), threads)
    }

    fn sequential_from(builder: ShardedViyojitBuilder) -> Result<Cluster, ViyojitError> {
        Ok(Cluster::Sequential(Box::new(builder.build_sequential()?)))
    }

    fn parallel_from(
        builder: ShardedViyojitBuilder,
        threads: usize,
    ) -> Result<Cluster, ViyojitError> {
        let (data, ctrl) = builder.threads(threads).build_parallel()?;
        Ok(Cluster::Parallel(data, ctrl))
    }

    fn data(&mut self) -> &mut dyn ShardDataPlane {
        match self {
            Cluster::Sequential(nv) => &mut **nv,
            Cluster::Parallel(data, _) => data,
        }
    }

    fn ctrl(&mut self) -> &mut dyn ShardControlPlane {
        match self {
            Cluster::Sequential(nv) => &mut **nv,
            Cluster::Parallel(_, ctrl) => ctrl,
        }
    }
}

/// Free writes and an instant SSD freeze the clock between [`step`]s, so
/// the only timeline is the one the driver advances explicitly — the
/// precondition for bit-equal virtual-time results across modes.
///
/// [`step`]: ShardDataPlane::step
fn equivalence_builder(shards: usize, budget: u64) -> ShardedViyojitBuilder {
    ShardedViyojitBuilder::new(shards, 64, ViyojitConfig::with_budget_pages(budget))
        .min_per_shard(2)
        .rebalance_period(SimDuration::from_micros(500))
        .clock(Clock::new())
        .cost_model(CostModel::free())
        .ssd(SsdConfig::instant())
}

/// Everything the equivalence property compares across execution modes.
#[derive(Debug, PartialEq)]
struct ClusterOutcome {
    stats: ViyojitStats,
    dirty: u64,
    budget: u64,
    rebalances: u64,
    floor_rejections: u32,
    report: PowerFailureReport,
    contents: Vec<Vec<u8>>,
    model: Vec<Vec<u8>>,
}

/// Drives one deployment through the shared workload: routed writes,
/// explicit [`ShardDataPlane::step`]s, and mid-run budget re-provisioning
/// through the control plane, then a power cycle and a full audit read.
fn drive_cluster(mut nv: Cluster, ops: &[Op]) -> Result<ClusterOutcome, ViyojitError> {
    let region_bytes = (REGION_PAGES / 4 * PAGE) as usize;
    let regions = (0..4)
        .map(|_| nv.data().map(region_bytes as u64))
        .collect::<Result<Vec<_>, _>>()?;
    let mut model = vec![vec![0u8; region_bytes]; regions.len()];
    let mut floor_rejections = 0u32;

    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Write { offset, len, fill } => {
                let region = i % regions.len();
                let off = offset as usize % (region_bytes - len as usize);
                nv.data()
                    .write(regions[region], off as u64, &vec![fill; len as usize])?;
                model[region][off..off + len as usize].fill(fill);
            }
            Op::Idle { micros } => {
                nv.data().step(SimDuration::from_micros(micros as u64))?;
            }
            Op::SetBudget { pages } => {
                // Cross-plane handoff: drain the data plane first (the
                // documented consistency rule), then re-provision. The
                // floors may reject the new total; both modes must agree
                // on when they did.
                nv.data().sync()?;
                match nv.ctrl().set_total_budget(pages) {
                    Ok(()) => {}
                    Err(ViyojitError::InvalidConfig(_)) => floor_rejections += 1,
                    Err(e) => return Err(e),
                }
            }
        }
    }

    nv.data().sync()?;
    nv.ctrl().check_invariants()?;
    let stats = nv.ctrl().stats()?;
    let dirty = nv.ctrl().dirty_count()?;
    let budget = nv.ctrl().total_budget_pages();
    let rebalances = nv.ctrl().rebalances()?;
    let report = nv.ctrl().power_failure()?;
    nv.ctrl().recover()?;
    let mut contents = Vec::with_capacity(regions.len());
    for &region in &regions {
        let mut buf = vec![0u8; region_bytes];
        nv.data().read(region, 0, &mut buf)?;
        contents.push(buf);
    }
    Ok(ClusterOutcome {
        stats,
        dirty,
        budget,
        rebalances,
        floor_rejections,
        report,
        contents,
        model,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The execution-mode equivalence property: the thread-parallel
    /// runtime is an *implementation* of the sharded frontend, not a
    /// variant of it. With writes free and the SSD instant, the same
    /// operation sequence driven through [`ShardDataPlane`] /
    /// [`ShardControlPlane`] must produce identical aggregated stats,
    /// dirty populations, rebalance counts, power-failure reports, and
    /// post-recovery memory images at every thread count — including
    /// thread counts above the shard count (which clamp).
    #[test]
    fn parallel_and_sequential_sharding_are_equivalent(
        ops in prop::collection::vec(op_strategy(), 1..80),
        shards in 1..5usize,
        budget in 8..40u64,
    ) {
        let seq = drive_cluster(
            Cluster::sequential(shards, budget).expect("a valid sequential configuration"),
            &ops,
        )
        .expect("the sequential run must not fail");
        prop_assert_eq!(
            &seq.contents,
            &seq.model,
            "sequential contents must survive the power cycle"
        );
        for &threads in &[1usize, 2, 4] {
            let par = drive_cluster(
                Cluster::parallel(shards, budget, threads)
                    .expect("a valid parallel configuration"),
                &ops,
            )
            .expect("the parallel run must not fail");
            prop_assert_eq!(
                &par,
                &seq,
                "{} threads must replay the sequential outcome exactly",
                threads
            );
        }
    }
}

/// One explicitly declared tenant spanning every shard, with its
/// guarantee exactly at the shard floors and an unbounded burst — the
/// hierarchy configuration that must be indistinguishable from the flat
/// (no-tenant) arbiter.
fn whole_machine_tenant_builder(shards: usize, budget: u64) -> ShardedViyojitBuilder {
    equivalence_builder(shards, budget).tenant(
        "whole-machine",
        shards,
        TenantQos::guaranteed(2 * shards as u64),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The hierarchy equivalence property: routing the budget through the
    /// machine → tenant → shard tree with a single whole-machine tenant
    /// must replay the flat arbiter byte-for-byte — identical stats,
    /// dirty populations, rebalance counts, floor rejections,
    /// power-failure reports, and post-recovery contents — in both
    /// execution modes. This is what keeps every pre-hierarchy golden
    /// valid.
    #[test]
    fn a_single_declared_tenant_replays_the_flat_arbiter(
        ops in prop::collection::vec(op_strategy(), 1..80),
        shards in 1..5usize,
        budget in 8..40u64,
    ) {
        let flat = drive_cluster(
            Cluster::sequential(shards, budget).expect("a valid flat configuration"),
            &ops,
        )
        .expect("the flat run must not fail");
        let tree_seq = drive_cluster(
            Cluster::sequential_from(whole_machine_tenant_builder(shards, budget))
                .expect("a valid single-tenant configuration"),
            &ops,
        )
        .expect("the single-tenant sequential run must not fail");
        prop_assert_eq!(
            &tree_seq,
            &flat,
            "the single-tenant tree must replay the flat arbiter (sequential)"
        );
        let tree_par = drive_cluster(
            Cluster::parallel_from(whole_machine_tenant_builder(shards, budget), 2)
                .expect("a valid single-tenant parallel configuration"),
            &ops,
        )
        .expect("the single-tenant parallel run must not fail");
        prop_assert_eq!(
            &tree_par,
            &flat,
            "the single-tenant tree must replay the flat arbiter (parallel)"
        );
    }
}

/// The tenant control surface must behave identically in both execution
/// modes: a degradation-governed throttle squeezes only the governed
/// tenant, the freed pages flow to the sibling, lifting the cap restores
/// demand division, and every per-tenant observable matches between the
/// sequential frontend and the parallel runtime.
#[test]
fn tenant_throttles_agree_across_execution_modes() -> Result<(), ViyojitError> {
    let build = |threads: Option<usize>| -> Result<Cluster, ViyojitError> {
        let b = equivalence_builder(4, 32)
            .tenant("hot", 2, TenantQos::guaranteed(16).burst(8))
            .tenant("cold", 2, TenantQos::guaranteed(8));
        match threads {
            None => Cluster::sequential_from(b),
            Some(t) => Cluster::parallel_from(b, t),
        }
    };
    let mut outcomes = Vec::new();
    for threads in [None, Some(2)] {
        let mut c = build(threads)?;
        let region = c.data().map(8 * PAGE)?;
        for i in 0..16u64 {
            c.data().write(region, (i % 8) * PAGE, &[i as u8; 32])?;
        }
        c.data().sync()?;

        // A collapsing battery gauge trips the hot tenant's governor:
        // degraded fraction 0.5 of its 16-page nominal budget.
        let mut gov = DegradationGovernor::new(16, DegradationConfig::default());
        let prescribed = c
            .ctrl()
            .govern_tenant_degradation(TenantId(0), &mut gov, 0.1)?;
        assert_eq!(prescribed, Some(8), "an unhealthy battery must degrade");
        let throttled = c.ctrl().tenant_stats()?;
        assert!(throttled[0].throttled && !throttled[1].throttled);
        assert_eq!(
            throttled[0].budget_pages, 8,
            "capped at the governor's budget"
        );
        assert_eq!(
            throttled.iter().map(|t| t.budget_pages).sum::<u64>(),
            32,
            "the sibling absorbs whatever the throttle frees"
        );

        c.ctrl().throttle_tenant(TenantId(0), None)?;
        let released = c.ctrl().tenant_stats()?;
        assert!(
            !released[0].throttled,
            "lifting the cap restores the tenant"
        );

        let err = c
            .ctrl()
            .throttle_tenant(TenantId(5), None)
            .expect_err("tenant 5 does not exist");
        assert!(matches!(err, ViyojitError::InvalidConfig(_)));
        outcomes.push((throttled, released));
    }
    assert_eq!(
        outcomes[0], outcomes[1],
        "parallel must agree with sequential on every per-tenant observable"
    );
    Ok(())
}

/// Guards the property above against vacuity: a handcrafted workload
/// must actually cross rebalance boundaries, dirty pages, and exercise
/// both outcomes of a mid-run re-provisioning — in parallel mode — or
/// the equivalence comparison would be comparing idle clusters.
#[test]
fn the_equivalence_workload_exercises_rounds_and_reprovisioning() {
    let mut ops = Vec::new();
    for i in 0..48u64 {
        ops.push(Op::Write {
            offset: (i % 6) * PAGE,
            len: 16,
            fill: i as u8,
        });
    }
    ops.push(Op::Idle { micros: 600 });
    // Four shards with a floor of 2: 7 pages must be rejected, 8 applied.
    ops.push(Op::SetBudget { pages: 7 });
    ops.push(Op::SetBudget { pages: 8 });
    for i in 0..24u64 {
        ops.push(Op::Write {
            offset: (i % 6) * PAGE,
            len: 16,
            fill: !i as u8,
        });
    }
    ops.push(Op::Idle { micros: 1200 });

    let outcome = drive_cluster(
        Cluster::parallel(4, 16, 2).expect("a valid parallel configuration"),
        &ops,
    )
    .expect("the workload must complete");
    assert!(outcome.rebalances > 0, "no budget round ever ran");
    assert!(outcome.stats.pages_dirtied > 0, "no page was ever dirtied");
    assert_eq!(outcome.floor_rejections, 1, "the floor check never fired");
    assert_eq!(outcome.budget, 8, "the accepted re-provisioning stuck");
    assert_eq!(&outcome.contents, &outcome.model);
}

/// The backend consts are part of the public contract benchmarks key on.
#[test]
fn backend_system_names_are_stable() {
    use viyojit::{DirtyTracker, FullDirty};
    assert_eq!(SoftwareWalk::SYSTEM, "Viyojit");
    assert_eq!(MmuAssisted::SYSTEM, "Viyojit-MMU");
    assert_eq!(FullDirty::SYSTEM, "NV-DRAM");
}
