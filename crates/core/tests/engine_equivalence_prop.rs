//! Property tests of the unified engine: the pluggable dirty-tracking
//! backends are different *mechanisms* for the same Fig. 6 policy, so
//! under a cost-free clock the software walker and the MMU-assisted
//! tracker must agree on everything the policy observes — dirty counts,
//! flush counts, and the power-failure obligation. A second property
//! pins the sharded frontend's global invariant: however the arbiter
//! re-divides the budget, the cluster-wide dirty population never
//! exceeds what the battery provisions.

use mem_sim::PAGE_SIZE;
use proptest::prelude::*;
use sim_clock::{Clock, CostModel, SimDuration};
use ssd_sim::SsdConfig;
use viyojit::{
    MmuAssisted, MmuAssistedViyojit, NvHeap, ShardedViyojit, SoftwareWalk, Viyojit, ViyojitConfig,
};

const PAGE: u64 = PAGE_SIZE as u64;
const REGION_PAGES: u64 = 24;

#[derive(Debug, Clone)]
enum Op {
    Write { offset: u64, len: u16, fill: u8 },
    Idle { micros: u16 },
    SetBudget { pages: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let max_off = REGION_PAGES * PAGE - u16::MAX as u64;
    prop_oneof![
        6 => (0..max_off, 1..2048u16, any::<u8>())
            .prop_map(|(offset, len, fill)| Op::Write { offset, len, fill }),
        2 => (1..2000u16).prop_map(|micros| Op::Idle { micros }),
        1 => (2..14u64).prop_map(|pages| Op::SetBudget { pages }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The cross-backend equivalence property: with writes free and the
    /// SSD instant, the same operation sequence must produce *identical*
    /// dirty counts for as long as neither backend has flushed anything —
    /// first-write detection by trap and by hardware counter are the same
    /// observation. Once the copier acts the mechanisms legitimately
    /// diverge (the walker feeds fault-time recency and pressure into
    /// victim choice, the hardware backend only walk-time discovery —
    /// §5.4's coarser observability), so past that point the property
    /// weakens to what the *policy* guarantees both backends: the bound
    /// holds at every step, budgets re-derive identically, and a crash at
    /// the end loses nothing on either.
    #[test]
    fn software_and_mmu_backends_are_policy_equivalent(
        ops in prop::collection::vec(op_strategy(), 1..100),
        budget in 2..16u64,
    ) {
        let mut sw = Viyojit::new(
            32,
            ViyojitConfig::with_budget_pages(budget),
            Clock::new(),
            CostModel::free(),
            SsdConfig::instant(),
        );
        let mut hw = MmuAssistedViyojit::new(
            32,
            ViyojitConfig::with_budget_pages(budget),
            Clock::new(),
            CostModel::free(),
            SsdConfig::instant(),
        );
        let rs = sw.map(REGION_PAGES * PAGE).unwrap();
        let rh = hw.map(REGION_PAGES * PAGE).unwrap();
        let mut model = vec![0u8; (REGION_PAGES * PAGE) as usize];

        for op in &ops {
            match *op {
                Op::Write { offset, len, fill } => {
                    let data = vec![fill; len as usize];
                    sw.write(rs, offset, &data).unwrap();
                    hw.write(rh, offset, &data).unwrap();
                    model[offset as usize..offset as usize + len as usize].fill(fill);
                }
                Op::Idle { micros } => {
                    sw.clock().advance(SimDuration::from_micros(micros as u64));
                    hw.clock().advance(SimDuration::from_micros(micros as u64));
                }
                Op::SetBudget { pages } => {
                    sw.set_dirty_budget(pages);
                    hw.set_dirty_budget(pages);
                }
            }
            if sw.stats().flushes_issued() == 0 && hw.stats().flushes_issued() == 0 {
                prop_assert_eq!(
                    sw.dirty_count(),
                    hw.dirty_count(),
                    "backends disagree on the dirty population after {:?}",
                    op
                );
            }
            prop_assert_eq!(sw.dirty_budget(), hw.dirty_budget());
            prop_assert!(sw.dirty_count() <= sw.dirty_budget());
            prop_assert!(hw.dirty_count() <= hw.dirty_budget());
            sw.check_invariants().unwrap();
            hw.check_invariants().unwrap();
        }

        let (sr, hr) = (sw.power_failure(), hw.power_failure());
        prop_assert!(sr.dirty_pages <= sw.dirty_budget());
        prop_assert!(hr.dirty_pages <= hw.dirty_budget());

        sw.recover();
        hw.recover();
        prop_assert!(sw.durable_state_consistent());
        prop_assert!(hw.durable_state_consistent());
        let mut a = vec![0u8; model.len()];
        let mut b = a.clone();
        sw.read(rs, 0, &mut a).unwrap();
        hw.read(rh, 0, &mut b).unwrap();
        prop_assert_eq!(&a, &model, "software contents survive the power cycle");
        prop_assert_eq!(&b, &model, "hardware contents survive the power cycle");
    }

    /// The sharded frontend's global invariant: across routing, epoch
    /// processing, and arbiter rebalances, the *sum* of per-shard dirty
    /// pages never exceeds the single global budget, reads agree with a
    /// flat model, and the power-failure obligation stays inside the
    /// battery's provisioning.
    #[test]
    fn sharded_dirty_population_stays_inside_the_global_budget(
        ops in prop::collection::vec(op_strategy(), 1..120),
        shards in 1..5usize,
        budget in 8..40u64,
    ) {
        let mut nv: ShardedViyojit = ShardedViyojit::new(
            shards,
            64,
            ViyojitConfig::with_budget_pages(budget),
            2,
            SimDuration::from_micros(500),
            Clock::new(),
            CostModel::free(),
            SsdConfig::instant(),
        );
        let regions: Vec<_> = (0..4)
            .map(|_| nv.map(REGION_PAGES / 4 * PAGE).unwrap())
            .collect();
        let region_bytes = (REGION_PAGES / 4 * PAGE) as usize;
        let mut model = vec![vec![0u8; region_bytes]; regions.len()];

        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Write { offset, len, fill } => {
                    let region = i % regions.len();
                    let off = offset as usize % (region_bytes - len as usize);
                    nv.write(regions[region], off as u64, &vec![fill; len as usize])
                        .unwrap();
                    model[region][off..off + len as usize].fill(fill);
                }
                Op::Idle { micros } => {
                    nv.clock().advance(SimDuration::from_micros(micros as u64));
                }
                Op::SetBudget { .. } => {
                    // The sharded frontend owns its shards' budgets; a
                    // burst of idle time triggers rebalances instead.
                    nv.clock().advance(SimDuration::from_micros(700));
                }
            }
            prop_assert!(
                nv.dirty_count() <= budget,
                "shard dirty sum {} exceeded the global budget {}",
                nv.dirty_count(),
                budget
            );
            nv.check_invariants().unwrap();
        }

        let report = nv.power_failure();
        prop_assert!(report.dirty_pages <= budget);
        nv.recover();
        for (region, contents) in regions.iter().zip(&model) {
            let mut buf = vec![0u8; region_bytes];
            nv.read(*region, 0, &mut buf).unwrap();
            prop_assert_eq!(&buf, contents, "region contents survive the power cycle");
        }
    }
}

/// The backend consts are part of the public contract benchmarks key on.
#[test]
fn backend_system_names_are_stable() {
    use viyojit::{DirtyTracker, FullDirty};
    assert_eq!(SoftwareWalk::SYSTEM, "Viyojit");
    assert_eq!(MmuAssisted::SYSTEM, "Viyojit-MMU");
    assert_eq!(FullDirty::SYSTEM, "NV-DRAM");
}
