//! Crash-point torture properties: bounded loss at every interleaving.
//!
//! Each test arms one named [`Crashpoint`] — a state-mutation seam where
//! an instantaneous power cut would abandon a multi-step mutation half
//! applied — lets the seeded workload (or the emergency flush itself)
//! trip it, then runs the *real* stepped emergency executor from that
//! exact intermediate state, recovers, and oracle-checks the paper's
//! durability contract:
//!
//! - every dirty page is flushed or reported lost;
//! - post-recovery memory diverges from the crash-instant image on at
//!   most `pages_lost` pages (at most the budget when the crash fired
//!   inside the flush itself, whose partial report is lost to the
//!   unwind);
//! - `pages_lost` never exceeds the dirty budget;
//! - every engine invariant holds after recovery.
//!
//! The parallel tests exercise the supervised runtime instead: a worker
//! panicking between its `ShardStats` upload and its `BudgetGrant`
//! download is quarantined, respawned from its shards' durable state,
//! and rejoined — siblings untouched, quarantined budget returned at the
//! next round — while a zero restart budget degrades to the fatal typed
//! error. Set `FAULT_SEED=<n>` to replay a single seed.

use std::panic::{catch_unwind, AssertUnwindSafe};

use battery_sim::{Battery, BatteryConfig, PowerModel};
use mem_sim::PAGE_SIZE;
use sim_clock::{Clock, CostModel, SimDuration};
use ssd_sim::SsdConfig;
use viyojit::{
    CrashSchedule, CrashSignal, Crashpoint, DirtyTracker, Engine, FaultConfig, FaultPlan,
    MmuAssisted, NvHeap, PowerFailureReport, ShardControlHandle, ShardControlPlane,
    ShardDataHandle, ShardDataPlane, ShardedViyojitBuilder, Sink, SoftwareWalk, Telemetry,
    TraceEvent, TracedEvent, ViyojitConfig, ViyojitError,
};

const PAGE: u64 = PAGE_SIZE as u64;
const TOTAL_PAGES: usize = 256;
const REGION_PAGES: u64 = 128;
const BUDGET: u64 = 32;
const WRITES: u64 = 1_024;
const STORM_RATE: f64 = 0.02;
const SEEDS_PER_PROPERTY: u64 = 16;

/// Seeds to sweep: the fixed default set, or the single seed named by
/// `FAULT_SEED` when replaying a reported failure.
fn seeds() -> Vec<u64> {
    match std::env::var("FAULT_SEED") {
        Ok(s) => vec![s.parse().expect("FAULT_SEED must be a u64")],
        Err(_) => (0..SEEDS_PER_PROPERTY).collect(),
    }
}

/// The same splitmix64 the fault plans replay from, reused to derive the
/// workload so the whole scenario is one seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mismatched_pages(a: &[u8], b: &[u8]) -> u64 {
    (0..a.len() / PAGE_SIZE)
        .filter(|&p| a[p * PAGE_SIZE..(p + 1) * PAGE_SIZE] != b[p * PAGE_SIZE..(p + 1) * PAGE_SIZE])
        .count() as u64
}

/// Everything one crash-armed life produced, for the bounded-loss oracle.
struct CrashRun {
    seed: u64,
    point: Crashpoint,
    fired: Option<CrashSignal>,
    /// The crash interrupted the powered flush itself, so `report` is the
    /// re-run's and the first attempt's partial accounting is lost.
    fired_in_flush: bool,
    crash_image: Vec<u8>,
    post: Vec<u8>,
    report: PowerFailureReport,
    invariant_violation: Option<String>,
    durable_consistent: bool,
}

/// One crash-armed storm life on a single engine: seeded workload under
/// fault injection with `point` armed at hit `hit`, the crash-instant
/// memory image captured through the costless [`Engine::peek`] (the
/// shadow reference), then the real powered emergency flush from the
/// abandoned intermediate state, and recovery.
fn engine_crash_scenario<B: DirtyTracker>(seed: u64, point: Crashpoint, hit: u64) -> CrashRun {
    let clock = Clock::new();
    let ssd_config = SsdConfig::datacenter();
    let crashes = CrashSchedule::armed(point, hit);
    let mut nv = Engine::<B>::new(
        TOTAL_PAGES,
        ViyojitConfig::with_budget_pages(BUDGET),
        clock,
        CostModel::calibrated(),
        ssd_config.clone(),
    );
    nv.attach_faults(FaultPlan::seeded(seed, FaultConfig::storm(STORM_RATE)));
    nv.attach_crashes(crashes.clone());
    let region = nv.map(REGION_PAGES * PAGE).expect("map");

    let mut rng = seed;
    let workload = catch_unwind(AssertUnwindSafe(|| {
        for _ in 0..WRITES {
            let page = splitmix64(&mut rng) % REGION_PAGES;
            let offset = splitmix64(&mut rng) % (PAGE - 8);
            let fill = splitmix64(&mut rng) as u8;
            nv.write(region, page * PAGE + offset, &[fill; 8])
                .expect("write");
        }
    }));
    if let Err(payload) = workload {
        payload
            .downcast::<CrashSignal>()
            .expect("only injected crashes unwind the workload");
    }

    // The crash-instant image, read without touching the engine state the
    // unwind abandoned.
    let mut crash_image = vec![0u8; (REGION_PAGES * PAGE) as usize];
    nv.peek(region, 0, &mut crash_image).expect("peek");

    let power = PowerModel::datacenter_server(0.064);
    let needed = ssd_config.drain_time(BUDGET * PAGE).as_secs_f64() * power.total_watts();
    let battery = Battery::new(
        BatteryConfig::with_capacity_joules(needed * (1.0 + (seed % 4) as f64))
            .with_depth_of_discharge(1.0),
    );
    let flush = catch_unwind(AssertUnwindSafe(|| {
        nv.power_failure_powered(&battery, &power)
    }));
    let fired_in_flush = flush.is_err();
    let report = flush.unwrap_or_else(|payload| {
        payload
            .downcast::<CrashSignal>()
            .expect("only injected crashes unwind the flush");
        // The schedule is latched, so the re-run flushes the remaining
        // obligation from the interrupted retry state without re-firing.
        nv.power_failure_powered(&battery, &power)
    });
    nv.recover();
    let mut post = vec![0u8; (REGION_PAGES * PAGE) as usize];
    nv.peek(region, 0, &mut post).expect("peek post-recovery");

    CrashRun {
        seed,
        point,
        fired: crashes.fired(),
        fired_in_flush,
        crash_image,
        post,
        report,
        invariant_violation: nv.check_invariants().err().map(|v| v.to_string()),
        durable_consistent: nv.durable_state_consistent(),
    }
}

/// The bounded-loss oracle, checked from whatever intermediate state the
/// unwind left behind.
fn check_bounded_loss(run: &CrashRun) {
    let ctx = format!(
        "[seed {} point {} fired {:?}]",
        run.seed,
        run.point.name(),
        run.fired
    );
    if let Some(violation) = &run.invariant_violation {
        panic!("{ctx} post-recovery invariant violated: {violation}");
    }
    assert!(
        run.durable_consistent,
        "{ctx} recovered memory must match the durable copies"
    );
    assert!(
        run.report.all_pages_accounted(),
        "{ctx} every dirty page must be flushed or reported lost: {:?}",
        run.report
    );
    assert!(
        run.report.pages_lost <= BUDGET,
        "{ctx} loss must respect the budget bound: {} > {BUDGET}",
        run.report.pages_lost
    );
    // A crash inside the flush loses that attempt's partial report to the
    // unwind, so the per-page accounting degrades to the budget bound.
    let bound = if run.fired_in_flush {
        BUDGET
    } else {
        run.report.pages_lost
    };
    let mismatches = mismatched_pages(&run.crash_image, &run.post);
    assert!(
        mismatches <= bound,
        "{ctx} {mismatches} pages diverge from the crash-instant image but the bound is {bound}"
    );
}

/// Sweeps `points` over the seed set on backend `B`, checking the oracle
/// on every run and that every seam actually fired at least once (a seam
/// no seed reaches is dead instrumentation, not a passing test).
fn sweep_engine_crashpoints<B: DirtyTracker>(points: &[Crashpoint]) {
    for &point in points {
        let mut fired = 0u32;
        for seed in seeds() {
            // Deep retries are rarer than walks; always take the first.
            let hit = if point == Crashpoint::EmergencyRetry {
                1
            } else {
                1 + seed % 4
            };
            let run = engine_crash_scenario::<B>(seed, point, hit);
            if let Some(signal) = run.fired {
                assert_eq!(
                    signal.point, point,
                    "an armed schedule must fire only its own point"
                );
                fired += 1;
            }
            check_bounded_loss(&run);
        }
        assert!(
            fired > 0,
            "crashpoint {} never fired across the sweep — the seam is unreachable",
            point.name()
        );
    }
}

#[test]
fn software_walk_bounds_loss_at_every_reachable_crashpoint() {
    sweep_engine_crashpoints::<SoftwareWalk>(&[
        Crashpoint::EpochWalk,
        Crashpoint::FlushInFlight,
        Crashpoint::EmergencyRetry,
    ]);
}

#[test]
fn mmu_assisted_bounds_loss_at_discovery_and_walk_crashpoints() {
    sweep_engine_crashpoints::<MmuAssisted>(&[Crashpoint::DiscoveryScan, Crashpoint::EpochWalk]);
}

/// One crash-armed life on the sequential sharded frontend, where the
/// rebalance seams live: mid-rebalance (targets planned, no engine
/// touched) and between the shrink and grow passes of the apply loop.
fn sharded_crash_scenario(
    seed: u64,
    point: Crashpoint,
    hit: u64,
) -> (Option<CrashSignal>, PowerFailureReport, Option<String>) {
    let clock = Clock::new();
    let ssd_config = SsdConfig::datacenter();
    let crashes = CrashSchedule::armed(point, hit);
    let mut nv = ShardedViyojitBuilder::new(4, 64, ViyojitConfig::with_budget_pages(BUDGET))
        .backend::<SoftwareWalk>()
        .min_per_shard(4)
        .rebalance_period(SimDuration::from_micros(200))
        .clock(clock)
        .cost_model(CostModel::calibrated())
        .ssd(ssd_config.clone())
        .faults(FaultPlan::seeded(seed, FaultConfig::storm(STORM_RATE)))
        .crashes(crashes.clone())
        .build_sequential()
        .expect("a valid sharded configuration");
    let regions: Vec<_> = (0..4).map(|_| nv.map(32 * PAGE).expect("map")).collect();

    let mut rng = seed;
    let workload = catch_unwind(AssertUnwindSafe(|| {
        for _ in 0..WRITES {
            let region = regions[(splitmix64(&mut rng) % 4) as usize];
            let page = splitmix64(&mut rng) % 32;
            nv.write(region, page * PAGE, &[splitmix64(&mut rng) as u8; 8])
                .expect("write");
        }
    }));
    if let Err(payload) = workload {
        payload
            .downcast::<CrashSignal>()
            .expect("only injected crashes unwind the workload");
    }

    let power = PowerModel::datacenter_server(0.064);
    let needed = ssd_config.drain_time(BUDGET * PAGE).as_secs_f64() * power.total_watts();
    let battery = Battery::new(
        BatteryConfig::with_capacity_joules(needed * (1.0 + (seed % 4) as f64))
            .with_depth_of_discharge(1.0),
    );
    let report = catch_unwind(AssertUnwindSafe(|| {
        nv.power_failure_powered(&battery, &power)
    }))
    .unwrap_or_else(|_| nv.power_failure_powered(&battery, &power));
    nv.recover();
    let violation = nv.check_invariants().err().map(|v| v.to_string());
    (crashes.fired(), report, violation)
}

#[test]
fn sharded_survives_rebalance_and_shrink_grow_crashes() {
    for &point in &[Crashpoint::Rebalance, Crashpoint::BudgetShrinkGrow] {
        let mut fired = 0u32;
        for seed in seeds() {
            let hit = 1 + seed % 3;
            let (signal, report, violation) = sharded_crash_scenario(seed, point, hit);
            let ctx = format!("[seed {seed} point {}]", point.name());
            if let Some(signal) = signal {
                assert_eq!(signal.point, point, "{ctx} wrong seam fired");
                fired += 1;
            }
            if let Some(violation) = violation {
                panic!("{ctx} post-recovery invariant violated: {violation}");
            }
            assert!(
                report.all_pages_accounted(),
                "{ctx} the aggregate must account for every dirty page: {report:?}"
            );
            assert!(
                report.pages_lost <= BUDGET,
                "{ctx} aggregate loss must respect the global budget: {} > {BUDGET}",
                report.pages_lost
            );
        }
        assert!(
            fired > 0,
            "crashpoint {} never fired across the sweep — the seam is unreachable",
            point.name()
        );
    }
}

/// Collects drained trace events so the supervision tests can assert on
/// the panic/respawn lifecycle.
#[derive(Default)]
struct EventLog(Vec<TraceEvent>);

impl Sink for EventLog {
    fn event(&mut self, event: &TracedEvent) {
        self.0.push(event.event);
    }
}

/// A supervised parallel cluster: 4 shards of 64 pages, free costs and an
/// instant SSD so a respawn's emergency flush is lossless, rounds only
/// when the test asks for them.
fn supervised_cluster(
    threads: usize,
    restart_budget: u32,
    crashes: CrashSchedule,
    telemetry: Telemetry,
) -> (ShardDataHandle, ShardControlHandle) {
    ShardedViyojitBuilder::new(4, 64, ViyojitConfig::with_budget_pages(BUDGET))
        .backend::<SoftwareWalk>()
        .min_per_shard(2)
        .rebalance_period(SimDuration::from_secs(3_600))
        .clock(Clock::new())
        .cost_model(CostModel::free())
        .ssd(SsdConfig::instant())
        .telemetry(telemetry)
        .crashes(crashes)
        .restart_budget(restart_budget)
        .threads(threads)
        .build_parallel()
        .expect("a valid supervised configuration")
}

/// The satellite supervision property: a worker panicking inside a budget
/// round — after the arbiter owns its stats, before any grant lands — is
/// quarantined, respawned from durable state, and rejoined. The round
/// still completes, sibling shards' state is untouched, the panicked
/// shards recover losslessly at the floor budget, and the next round
/// returns the quarantined budget to the full provisioned total.
fn panic_mid_budget_round_is_survived(threads: usize) {
    let crashes = CrashSchedule::armed(Crashpoint::BudgetRound, 1);
    let clock = Clock::new();
    let telemetry = Telemetry::recording(clock);
    let (mut data, mut ctrl) = supervised_cluster(threads, 1, crashes.clone(), telemetry.clone());
    // Shard-sized regions force a 1:1 region/shard placement, so every
    // shard carries data and the respawned worker is identifiable.
    let regions: Vec<_> = (0..4).map(|_| data.map(64 * PAGE).expect("map")).collect();
    for (i, &region) in regions.iter().enumerate() {
        for page in 0..4u64 {
            data.write(region, page * PAGE, &[i as u8 + 1; 64])
                .expect("write");
        }
    }
    data.sync().expect("drain staged writes");
    let before = ctrl.shard_stats().expect("stats before the crash");
    for s in &before {
        assert!(s.dirty_pages > 0, "every shard starts dirty");
    }

    // The round one worker never finishes: it panics between its stats
    // upload and its grant download, and the arbiter finishes the round
    // over synthesized floor stats while the worker respawns.
    ctrl.rebalance().expect("the crashed round must complete");
    let fired = crashes.fired().expect("the armed budget_round seam fires");
    assert_eq!(fired.point, Crashpoint::BudgetRound);

    let after = ctrl.shard_stats().expect("stats after the respawn");
    let respawned: Vec<usize> = after
        .iter()
        .filter(|s| s.dirty_pages == 0)
        .map(|s| s.shard)
        .collect();
    assert_eq!(
        respawned.len(),
        4 / threads,
        "exactly one worker's shards were power-cycled: {respawned:?}"
    );
    for (b, a) in before.iter().zip(&after) {
        if respawned.contains(&a.shard) {
            assert_eq!(
                a.budget_pages, 2,
                "shard {} respawns pinned to the floor budget",
                a.shard
            );
        } else {
            assert_eq!(
                a.dirty_pages, b.dirty_pages,
                "sibling shard {} must keep its dirty set across the respawn",
                a.shard
            );
            assert_eq!(
                a.stats.bytes_flushed, b.stats.bytes_flushed,
                "sibling shard {} must not flush during the respawn",
                a.shard
            );
        }
    }

    let mut log = EventLog::default();
    telemetry.drain_into(&mut log);
    let panicked: Vec<_> = log
        .0
        .iter()
        .filter(|e| matches!(e, TraceEvent::ShardPanicked { .. }))
        .collect();
    assert_eq!(panicked.len(), 1, "exactly one worker panics: {panicked:?}");
    let respawn_losses: Vec<u64> = log
        .0
        .iter()
        .filter_map(|e| match e {
            TraceEvent::ShardRespawned { pages_lost, .. } => Some(*pages_lost),
            _ => None,
        })
        .collect();
    assert_eq!(
        respawn_losses,
        vec![0],
        "one lossless respawn (instant SSD, free costs)"
    );

    // Every byte survives: siblings never flushed, the panicked worker's
    // shards flushed everything before reloading from durable copies.
    for (i, &region) in regions.iter().enumerate() {
        for page in 0..4u64 {
            let mut buf = [0u8; 64];
            data.read(region, page * PAGE, &mut buf).expect("read");
            assert_eq!(
                buf,
                [i as u8 + 1; 64],
                "region {i} page {page} survives the supervised respawn"
            );
        }
    }

    // The quarantine lifted with the respawn: the next round replans the
    // full provisioned total across all shards, floors included.
    ctrl.rebalance().expect("post-respawn round");
    let rebalanced = ctrl.shard_stats().expect("stats after the next round");
    let assigned: u64 = rebalanced.iter().map(|s| s.budget_pages).sum();
    assert_eq!(
        assigned, BUDGET,
        "the quarantined budget returns once the worker rejoins"
    );
}

#[test]
fn panic_mid_budget_round_is_survived_at_two_threads() {
    panic_mid_budget_round_is_survived(2);
}

#[test]
fn panic_mid_budget_round_is_survived_at_four_threads() {
    panic_mid_budget_round_is_survived(4);
}

#[test]
fn exhausted_restart_budget_degrades_to_the_typed_error() {
    let crashes = CrashSchedule::armed(Crashpoint::BudgetRound, 1);
    let clock = Clock::new();
    let telemetry = Telemetry::recording(clock);
    let (mut data, mut ctrl) = supervised_cluster(2, 0, crashes, telemetry);
    let region = data.map(32 * PAGE).expect("map");
    data.write(region, 0, &[7u8; 64]).expect("write");
    data.sync().expect("drain staged writes");

    let err = ctrl
        .rebalance()
        .expect_err("with no restart budget the panic is fatal");
    assert!(
        matches!(err, ViyojitError::ShardFailed { .. }),
        "a dead worker surfaces as ShardFailed, got {err:?}"
    );
}
