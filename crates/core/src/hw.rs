//! The §5.4 alternative implementation: offloading dirty accounting to
//! the MMU.
//!
//! The software Viyojit pays a trap on the *first write to every page*.
//! §5.4 sketches a hardware fix: the MMU counts dirty-bit transitions
//! itself, raises an interrupt only when the count reaches the OS-set
//! limit, and provides a *shadow dirty bit* the OS can read-and-clear for
//! recency tracking without disturbing the counter. Writes to clean pages
//! then proceed at full speed; traps happen only at the budget boundary.
//! The paper's prediction: "a hardware implementation ... could eradicate
//! such tail latency overheads."
//!
//! [`MmuAssistedViyojit`] is that design on the simulated MMU's
//! [`dirty-limit`](mem_sim::Mmu::set_dirty_limit) and
//! [shadow-walk](mem_sim::Mmu::walk_and_clear_shadow) extensions. It
//! enforces the same durability bound as the software manager — the
//! hardware counter *is* the bound — while removing first-write faults
//! and epoch TLB flushes from the application's path. The tracking
//! mechanics live in the [`MmuAssisted`] backend; the control loop is the
//! shared [`Engine`](crate::Engine).

use crate::engine::{Engine, MmuAssisted};

/// Viyojit with §5.4's MMU offload: no first-write traps, interrupt-driven
/// budget enforcement, shadow-bit recency.
///
/// Since the engine unification this is [`Engine`] instantiated with the
/// [`MmuAssisted`] backend, so it exposes the same full surface as the
/// software manager — including `set_dirty_budget`, `regions`, and
/// `durable_state_consistent`, which the historical standalone
/// implementation lacked.
///
/// # Examples
///
/// ```
/// use sim_clock::{Clock, CostModel};
/// use ssd_sim::SsdConfig;
/// use viyojit::{MmuAssistedViyojit, NvHeap, ViyojitConfig};
///
/// let mut nv = MmuAssistedViyojit::new(
///     64,
///     ViyojitConfig::with_budget_pages(8),
///     Clock::new(),
///     CostModel::calibrated(),
///     SsdConfig::datacenter(),
/// );
/// let r = nv.map(16 * 4096)?;
/// nv.write(r, 0, b"no trap for this write")?;
/// assert_eq!(nv.stats().faults_handled, 0, "first writes do not trap");
/// # Ok::<(), viyojit::ViyojitError>(())
/// ```
pub type MmuAssistedViyojit = Engine<MmuAssisted>;

#[cfg(test)]
mod tests {
    use crate::{MmuAssistedViyojit, NvHeap, ViyojitConfig};
    use mem_sim::PAGE_SIZE;
    use sim_clock::{Clock, CostModel};
    use ssd_sim::SsdConfig;

    const PAGE: u64 = PAGE_SIZE as u64;

    fn hw(total: usize, budget: u64) -> MmuAssistedViyojit {
        MmuAssistedViyojit::new(
            total,
            ViyojitConfig::with_budget_pages(budget),
            Clock::new(),
            CostModel::free(),
            SsdConfig::instant(),
        )
    }

    #[test]
    fn first_writes_do_not_trap() {
        let mut nv = hw(64, 32);
        let r = nv.map(PAGE * 16).unwrap();
        for i in 0..16u64 {
            nv.write(r, i * PAGE, &[1]).unwrap();
        }
        assert_eq!(nv.stats().faults_handled, 0);
        assert_eq!(nv.dirty_count(), 16);
        nv.validate();
    }

    #[test]
    fn budget_is_enforced_by_the_hardware_counter() {
        let mut nv = hw(64, 4);
        let r = nv.map(PAGE * 32).unwrap();
        for i in 0..32u64 {
            nv.write(r, i * PAGE, &[i as u8]).unwrap();
            assert!(nv.dirty_count() <= 4, "page {i}");
            nv.validate();
        }
        assert!(nv.stats().faults_handled > 0, "limit interrupts must fire");
    }

    #[test]
    fn data_round_trips_and_survives_power_cycles() {
        let mut nv = hw(64, 4);
        let r = nv.map(PAGE * 16).unwrap();
        for i in 0..16u64 {
            nv.write(r, i * PAGE, &[i as u8 + 1; 64]).unwrap();
        }
        let report = nv.power_failure();
        assert!(report.dirty_pages <= 4);
        nv.recover();
        for i in 0..16u64 {
            let mut buf = [0u8; 64];
            nv.read(r, i * PAGE, &mut buf).unwrap();
            assert_eq!(buf, [i as u8 + 1; 64], "page {i}");
        }
        nv.validate();
    }

    #[test]
    fn rewrites_after_recovery_recount() {
        let mut nv = hw(32, 4);
        let r = nv.map(PAGE * 8).unwrap();
        nv.write(r, 0, b"x").unwrap();
        nv.power_failure();
        nv.recover();
        assert_eq!(nv.dirty_count(), 0);
        nv.write(r, 0, b"y").unwrap();
        assert_eq!(nv.dirty_count(), 1);
        nv.validate();
    }

    #[test]
    fn unmap_credits_the_hardware_counter() {
        let mut nv = hw(32, 8);
        let r = nv.map(PAGE * 8).unwrap();
        for i in 0..8u64 {
            nv.write(r, i * PAGE, &[1]).unwrap();
        }
        assert_eq!(nv.dirty_count(), 8);
        nv.unmap(r).unwrap();
        assert_eq!(nv.dirty_count(), 0);
        nv.validate();
    }

    #[test]
    fn epoch_discovery_feeds_the_proactive_copier() {
        use sim_clock::SimDuration;
        let mut nv = MmuAssistedViyojit::new(
            128,
            ViyojitConfig::with_budget_pages(16),
            Clock::new(),
            CostModel::calibrated(),
            SsdConfig::datacenter(),
        );
        let r = nv.map(PAGE * 64).unwrap();
        for round in 0..30u64 {
            for i in 0..8u64 {
                nv.write(r, ((round * 3 + i) % 64) * PAGE, &[round as u8])
                    .unwrap();
            }
            nv.clock().advance(SimDuration::from_millis(1));
        }
        nv.write(r, 0, &[99]).unwrap();
        assert!(nv.stats().epochs > 0);
        assert!(
            nv.stats().proactive_flushes > 0,
            "discovered pages must be proactively copied: {:?}",
            nv.stats()
        );
        nv.validate();
    }

    #[test]
    fn budget_rederivation_works_on_the_hardware_backend() {
        // The historical standalone implementation had no
        // `set_dirty_budget`; the unified engine provides it for free.
        let mut nv = hw(64, 8);
        let r = nv.map(PAGE * 16).unwrap();
        for i in 0..8u64 {
            nv.write(r, i * PAGE, &[1]).unwrap();
        }
        assert_eq!(nv.dirty_count(), 8);
        nv.set_dirty_budget(3);
        assert!(nv.dirty_count() <= 3, "shrinking stalls down to the bound");
        assert_eq!(nv.dirty_budget(), 3);
        assert!(nv.durable_state_consistent());
        assert_eq!(nv.regions().count(), 1);
        nv.validate();
    }
}
