//! The §5.4 alternative implementation: offloading dirty accounting to
//! the MMU.
//!
//! The software Viyojit pays a trap on the *first write to every page*.
//! §5.4 sketches a hardware fix: the MMU counts dirty-bit transitions
//! itself, raises an interrupt only when the count reaches the OS-set
//! limit, and provides a *shadow dirty bit* the OS can read-and-clear for
//! recency tracking without disturbing the counter. Writes to clean pages
//! then proceed at full speed; traps happen only at the budget boundary.
//! The paper's prediction: "a hardware implementation ... could eradicate
//! such tail latency overheads."
//!
//! [`MmuAssistedViyojit`] is that design on the simulated MMU's
//! [`dirty-limit`](mem_sim::Mmu::set_dirty_limit) and
//! [shadow-walk](mem_sim::Mmu::walk_and_clear_shadow) extensions. It
//! enforces the same durability bound as the software manager — the
//! hardware counter *is* the bound — while removing first-write faults
//! and epoch TLB flushes from the application's path.

use mem_sim::{AccessError, Mmu, MmuStats, PageId, WalkOptions, PAGE_SIZE};
use sim_clock::{Clock, CostModel, SimTime};
use ssd_sim::{Ssd, SsdConfig, SsdStats};
use telemetry::{FlushReason, Telemetry, TraceEvent};

use crate::{
    NvHeap, PowerFailureReport, PressureEstimator, RegionId, RegionTable, UpdateHistory,
    VictimSelector, ViyojitConfig, ViyojitError, ViyojitStats,
};

/// Per-page runtime state in the hardware-assisted manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HwPageState {
    /// Clean and writable (the hardware will count its next dirtying).
    Clean,
    /// Known dirty (discovered via interrupt or epoch scan).
    Dirty,
    /// Dirty with a flush IO in flight; write-protected so the snapshot
    /// stays stable (§5.1's ordering still applies in hardware).
    InFlight,
}

/// Viyojit with §5.4's MMU offload: no first-write traps, interrupt-driven
/// budget enforcement, shadow-bit recency.
///
/// # Examples
///
/// ```
/// use sim_clock::{Clock, CostModel};
/// use ssd_sim::SsdConfig;
/// use viyojit::{MmuAssistedViyojit, NvHeap, ViyojitConfig};
///
/// let mut nv = MmuAssistedViyojit::new(
///     64,
///     ViyojitConfig::with_budget_pages(8),
///     Clock::new(),
///     CostModel::calibrated(),
///     SsdConfig::datacenter(),
/// );
/// let r = nv.map(16 * 4096)?;
/// nv.write(r, 0, b"no trap for this write")?;
/// assert_eq!(nv.stats().faults_handled, 0, "first writes do not trap");
/// # Ok::<(), viyojit::ViyojitError>(())
/// ```
#[derive(Debug)]
pub struct MmuAssistedViyojit {
    config: ViyojitConfig,
    clock: Clock,
    mmu: Mmu,
    ssd: Ssd,
    regions: RegionTable,
    states: Vec<HwPageState>,
    dirty_known: u64,
    in_flight_count: u64,
    history: UpdateHistory,
    selector: VictimSelector,
    pressure: PressureEstimator,
    inflight: Vec<(SimTime, PageId)>,
    next_epoch_at: SimTime,
    current_threshold: u64,
    stats: ViyojitStats,
    telemetry: Telemetry,
}

impl MmuAssistedViyojit {
    /// Creates a hardware-assisted manager. Pages start *writable* (no
    /// protection pass); the MMU's dirty limit is armed at the budget.
    pub fn new(
        total_pages: usize,
        config: ViyojitConfig,
        clock: Clock,
        costs: CostModel,
        ssd_config: SsdConfig,
    ) -> Self {
        let mut mmu = Mmu::new(total_pages, clock.clone(), costs);
        mmu.set_dirty_limit(Some(config.dirty_budget_pages));
        let ssd = Ssd::new(total_pages, ssd_config, clock.clone());
        let next_epoch_at = clock.now() + config.epoch;
        MmuAssistedViyojit {
            states: vec![HwPageState::Clean; total_pages],
            dirty_known: 0,
            in_flight_count: 0,
            history: UpdateHistory::new(total_pages, config.history_epochs),
            selector: VictimSelector::new(total_pages, config.target_policy, 0x5eed),
            pressure: PressureEstimator::new(config.pressure_alpha),
            regions: RegionTable::new(total_pages as u64),
            inflight: Vec::new(),
            next_epoch_at,
            current_threshold: config.dirty_budget_pages,
            stats: ViyojitStats::default(),
            telemetry: Telemetry::disabled(),
            config,
            clock,
            mmu,
            ssd,
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The hardware dirty counter — the exact budget-bound population.
    pub fn dirty_count(&self) -> u64 {
        self.mmu.dirty_counted()
    }

    /// The dirty budget in pages.
    pub fn dirty_budget(&self) -> u64 {
        self.config.dirty_budget_pages
    }

    /// Runtime counters. `faults_handled` counts only dirty-limit
    /// interrupts and in-flight collisions — there are no first-write
    /// traps in this mode.
    pub fn stats(&self) -> ViyojitStats {
        self.stats
    }

    /// MMU counters.
    pub fn mmu_stats(&self) -> MmuStats {
        self.mmu.stats()
    }

    /// SSD counters.
    pub fn ssd_stats(&self) -> SsdStats {
        self.ssd.stats()
    }

    /// The backing SSD (wear statistics, configuration).
    pub fn ssd(&self) -> &Ssd {
        &self.ssd
    }

    /// Attaches a telemetry handle (shared with the backing SSD).
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.ssd.attach_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Publishes runtime counters and SSD state into the attached
    /// registry. No-op when telemetry is disabled.
    fn publish_metrics(&mut self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let stats = self.stats;
        let dirty = self.mmu.dirty_counted();
        let in_flight = self.in_flight_count;
        let threshold = self.current_threshold;
        let predicted = self.pressure.predicted();
        self.telemetry.metrics(|m| {
            m.counter_set("viyojit.faults_handled", stats.faults_handled);
            m.counter_set("viyojit.pages_dirtied", stats.pages_dirtied);
            m.counter_set("viyojit.proactive_flushes", stats.proactive_flushes);
            m.counter_set("viyojit.forced_flushes", stats.forced_flushes);
            m.counter_set("viyojit.flushes_completed", stats.flushes_completed);
            m.counter_set("viyojit.budget_stalls", stats.budget_stalls);
            m.counter_set("viyojit.stall_nanos", stats.stall_time.as_nanos());
            m.counter_set("viyojit.in_flight_collisions", stats.in_flight_collisions);
            m.counter_set("viyojit.epochs", stats.epochs);
            m.counter_set("viyojit.bytes_flushed", stats.bytes_flushed);
            m.counter_set("viyojit.walk_touches", stats.walk_touches);
            m.gauge_set("viyojit.dirty_pages", dirty as f64);
            m.gauge_set("viyojit.in_flight_pages", in_flight as f64);
            m.gauge_set("viyojit.proactive_threshold", threshold as f64);
            m.gauge_set("viyojit.predicted_pressure", predicted);
        });
        self.ssd.publish_metrics();
    }

    fn retire_completions(&mut self) {
        let now = self.clock.now();
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].0 <= now {
                let (_, page) = self.inflight.swap_remove(i);
                // Hardware credit: dirty bit cleared, counter decremented;
                // the page becomes writable again with no fault pending.
                self.mmu.credit_dirty_page(page);
                self.mmu.unprotect_page(page);
                self.states[page.index()] = HwPageState::Clean;
                self.dirty_known -= 1;
                self.in_flight_count -= 1;
                self.stats.flushes_completed += 1;
                self.telemetry
                    .emit(|| TraceEvent::FlushComplete { page: page.0 });
            } else {
                i += 1;
            }
        }
    }

    fn poll(&mut self) {
        self.retire_completions();
        let now = self.clock.now();
        if now < self.next_epoch_at {
            return;
        }
        // Idle fast-forward, as in the software manager: epochs beyond the
        // catch-up window observe nothing and copy nothing.
        let pending = (now - self.next_epoch_at).as_nanos() / self.config.epoch.as_nanos() + 1;
        let cap = self.config.history_epochs as u64
            + self.config.dirty_budget_pages / self.config.max_outstanding_ios as u64
            + 2;
        if pending > cap {
            let skipped = pending - cap;
            self.history.advance_epochs(skipped);
            self.pressure.reset();
            self.next_epoch_at += self.config.epoch * skipped;
            self.stats.epochs_fast_forwarded += skipped;
        }
        while self.clock.now() >= self.next_epoch_at {
            self.run_epoch();
            self.next_epoch_at += self.config.epoch;
        }
    }

    /// Epoch duties: discover newly dirty pages (the OS only learns page
    /// *addresses* by scanning, since dirtying no longer traps), refresh
    /// recency from shadow bits, update pressure, issue proactive copies.
    fn run_epoch(&mut self) {
        self.stats.epochs += 1;
        self.history.advance_epoch();
        let epoch = self.history.current_epoch();

        // Discovery scan over mapped pages: PTE dirty bit set but page not
        // yet known-dirty => it was dirtied silently since the last epoch.
        let mapped: Vec<PageId> = self
            .regions
            .iter()
            .flat_map(|(_, info)| info.iter_pages().collect::<Vec<_>>())
            .collect();
        let mut discovered = 0u64;
        for &page in &mapped {
            if self.states[page.index()] == HwPageState::Clean
                && self.mmu.page_table().flags(page).is_dirty()
            {
                self.states[page.index()] = HwPageState::Dirty;
                self.dirty_known += 1;
                self.history.touch(page);
                self.selector.on_dirty(page, &self.history);
                self.stats.pages_dirtied += 1;
                discovered += 1;
            }
        }
        // Shadow walk over known-dirty pages refreshes recency without
        // touching the counter. No full TLB flush is required for
        // correctness here — the shadow bit is only advisory — but the
        // walk flushes when configured, like the software mode.
        let known: Vec<PageId> = mapped
            .iter()
            .copied()
            .filter(|p| self.states[p.index()] == HwPageState::Dirty)
            .collect();
        let options = WalkOptions {
            flush_tlb: self.config.tlb_flush_on_walk,
            charge_costs: false,
        };
        for page in self.mmu.walk_and_clear_shadow(&known, options) {
            self.history.touch(page);
            self.selector.on_touch(page, &self.history);
            self.stats.walk_touches += 1;
        }
        self.telemetry.emit(|| TraceEvent::EpochWalk {
            epoch,
            walked: (mapped.len() + known.len()) as u64,
            new_dirty: discovered,
        });
        if self.config.tlb_flush_on_walk {
            self.telemetry.emit(|| TraceEvent::TlbFlush { epoch });
        }

        // Pressure from the pages discovered newly dirty this epoch.
        self.pressure.observe(discovered);
        self.current_threshold = match self.config.threshold_policy {
            crate::ThresholdPolicy::Adaptive => {
                self.pressure.threshold(self.config.dirty_budget_pages)
            }
            crate::ThresholdPolicy::FixedSlack(slack) => {
                self.config.dirty_budget_pages.saturating_sub(slack)
            }
        };

        self.retire_completions();
        while self
            .mmu
            .dirty_counted()
            .saturating_sub(self.in_flight_count)
            > self.current_threshold
            && self.inflight.len() < self.config.max_outstanding_ios
        {
            let Some(victim) = self.selector.peek() else {
                break;
            };
            self.issue_flush(victim, FlushReason::Proactive);
        }
        self.publish_metrics();
        self.telemetry.snapshot_epoch(epoch);
    }

    fn issue_flush(&mut self, victim: PageId, reason: FlushReason) {
        debug_assert_eq!(self.states[victim.index()], HwPageState::Dirty);
        self.telemetry.emit(|| TraceEvent::FlushIssued {
            page: victim.0,
            reason,
            last_update_epoch: self.history.last_update_epoch(victim),
        });
        // Snapshot safety still demands write-protect-before-flush.
        self.mmu.protect_page(victim);
        self.states[victim.index()] = HwPageState::InFlight;
        self.in_flight_count += 1;
        self.selector.on_removed(victim);
        let data = self.mmu.page_data(victim).to_vec();
        let done = self.ssd.submit_write(victim, &data);
        self.inflight.push((done, victim));
        self.stats.bytes_flushed += PAGE_SIZE as u64;
        match reason {
            FlushReason::Proactive => self.stats.proactive_flushes += 1,
            FlushReason::Forced => self.stats.forced_flushes += 1,
        }
    }

    /// Handles the §5.4 dirty-limit interrupt: free one hardware slot by
    /// flushing, waiting for completions as needed.
    fn handle_limit_interrupt(&mut self) {
        self.stats.faults_handled += 1;
        self.retire_completions();
        let mut stalled = false;
        while self.mmu.dirty_counted() >= self.config.dirty_budget_pages {
            if self.inflight.is_empty() {
                let victim = match self.selector.peek() {
                    Some(v) => v,
                    None => {
                        // The runtime's view lags the hardware: discover now.
                        self.emergency_discovery();
                        self.selector
                            .peek()
                            .expect("hardware counts a dirty page the scan cannot find")
                    }
                };
                self.issue_flush(victim, FlushReason::Forced);
            }
            let earliest = self
                .inflight
                .iter()
                .map(|&(t, _)| t)
                .min()
                .expect("at least one IO in flight");
            let before = self.clock.now();
            self.clock.advance_to(earliest);
            self.stats.stall_time += self.clock.now().saturating_since(before);
            if !stalled {
                self.stats.budget_stalls += 1;
                stalled = true;
                self.telemetry.emit(|| TraceEvent::BudgetStall {
                    dirty: self.mmu.dirty_counted(),
                    budget: self.config.dirty_budget_pages,
                });
            }
            self.retire_completions();
        }
    }

    /// Out-of-band discovery scan, used when the limit interrupt arrives
    /// before the epoch walker has catalogued the dirty population.
    fn emergency_discovery(&mut self) {
        let mapped: Vec<PageId> = self
            .regions
            .iter()
            .flat_map(|(_, info)| info.iter_pages().collect::<Vec<_>>())
            .collect();
        for page in mapped {
            if self.states[page.index()] == HwPageState::Clean
                && self.mmu.page_table().flags(page).is_dirty()
            {
                self.states[page.index()] = HwPageState::Dirty;
                self.dirty_known += 1;
                self.history.touch(page);
                self.selector.on_dirty(page, &self.history);
                self.stats.pages_dirtied += 1;
            }
        }
    }

    /// Simulated power failure: the hardware counter bounds the flush.
    pub fn power_failure(&mut self) -> PowerFailureReport {
        let dirty: Vec<PageId> = self
            .mmu
            .page_table()
            .iter()
            .filter(|(_, f)| f.is_dirty())
            .map(|(p, _)| p)
            .collect();
        for &p in &dirty {
            let data = self.mmu.page_data(p).to_vec();
            self.ssd.submit_write(p, &data);
        }
        let bytes = dirty.len() as u64 * PAGE_SIZE as u64;
        PowerFailureReport {
            dirty_pages: dirty.len() as u64,
            bytes_flushed: bytes,
            flush_time: self.ssd.config().drain_time(bytes),
        }
    }

    /// Reloads NV-DRAM from the SSD after a power cycle.
    pub fn recover(&mut self) {
        for i in 0..self.mmu.pages() {
            let page = PageId(i as u64);
            match self.ssd.page_data(page) {
                Some(durable) => {
                    let durable = durable.to_vec();
                    self.mmu.page_data_mut(page).copy_from_slice(&durable);
                }
                None => self.mmu.page_data_mut(page).fill(0),
            }
            self.mmu.unprotect_page(page);
        }
        self.mmu.set_dirty_limit(None);
        for i in 0..self.mmu.pages() {
            // Reset dirty/shadow bits so the re-armed counter starts at 0.
            let page = PageId(i as u64);
            let _ = self.mmu.walk_and_clear_dirty(&[page], WalkOptions::stale());
            let _ = self
                .mmu
                .walk_and_clear_shadow(&[page], WalkOptions::stale());
        }
        self.mmu
            .set_dirty_limit(Some(self.config.dirty_budget_pages));
        self.states.fill(HwPageState::Clean);
        self.dirty_known = 0;
        self.in_flight_count = 0;
        self.history.reset();
        self.selector.reset();
        self.pressure.reset();
        self.inflight.clear();
        self.next_epoch_at = self.clock.now() + self.config.epoch;
    }

    /// Asserts the hardware-mode invariants, chiefly the durability bound
    /// `hardware dirty counter <= budget`.
    ///
    /// # Panics
    ///
    /// Panics on violation.
    pub fn validate(&self) {
        assert!(
            self.mmu.dirty_counted() <= self.config.dirty_budget_pages,
            "durability violation: hardware counter {} exceeds budget {}",
            self.mmu.dirty_counted(),
            self.config.dirty_budget_pages
        );
        let pte_dirty = self.mmu.page_table().dirty_count() as u64;
        assert_eq!(
            pte_dirty,
            self.mmu.dirty_counted(),
            "hardware counter out of sync with PTE dirty bits"
        );
        assert_eq!(self.inflight.len() as u64, self.in_flight_count);
    }
}

impl NvHeap for MmuAssistedViyojit {
    fn map(&mut self, len_bytes: u64) -> Result<RegionId, ViyojitError> {
        self.regions.map(len_bytes)
    }

    fn unmap(&mut self, region: RegionId) -> Result<(), ViyojitError> {
        let info = self.regions.info(region)?;
        for page in info.iter_pages() {
            if self.states[page.index()] == HwPageState::InFlight {
                let done = self
                    .inflight
                    .iter()
                    .find(|&&(_, p)| p == page)
                    .map(|&(t, _)| t)
                    .expect("in-flight page has a pending IO");
                self.clock.advance_to(done);
                self.retire_completions();
            }
        }
        for page in info.iter_pages() {
            if self.states[page.index()] == HwPageState::Dirty {
                self.selector.on_removed(page);
                self.states[page.index()] = HwPageState::Clean;
                self.dirty_known -= 1;
                self.mmu.credit_dirty_page(page);
            } else if self.mmu.page_table().flags(page).is_dirty() {
                // Dirty but not yet discovered: still credit the counter.
                self.mmu.credit_dirty_page(page);
            }
        }
        self.regions.unmap(region)?;
        Ok(())
    }

    fn read(&mut self, region: RegionId, offset: u64, buf: &mut [u8]) -> Result<(), ViyojitError> {
        let addr = self.regions.resolve(region, offset, buf.len())?;
        self.poll();
        self.mmu
            .read(addr, buf)
            .expect("resolved addresses are in range");
        self.poll();
        Ok(())
    }

    fn write(&mut self, region: RegionId, offset: u64, data: &[u8]) -> Result<(), ViyojitError> {
        let mut addr = self.regions.resolve(region, offset, data.len())?;
        self.poll();
        let mut rest = data;
        while !rest.is_empty() {
            let in_page = PAGE_SIZE - (addr as usize % PAGE_SIZE);
            let n = in_page.min(rest.len());
            let (chunk, tail) = rest.split_at(n);
            loop {
                match self.mmu.write(addr, chunk) {
                    Ok(()) => break,
                    Err(AccessError::DirtyLimitReached(_)) => self.handle_limit_interrupt(),
                    Err(AccessError::WriteProtected(page)) => {
                        // Only in-flight pages are protected in this mode.
                        self.stats.in_flight_collisions += 1;
                        let done = self
                            .inflight
                            .iter()
                            .find(|&&(_, p)| p == page)
                            .map(|&(t, _)| t)
                            .expect("protected page has a pending IO");
                        self.clock.advance_to(done);
                        self.retire_completions();
                    }
                    Err(e @ AccessError::OutOfRange { .. }) => {
                        unreachable!("resolved addresses are in range: {e}")
                    }
                }
            }
            addr += n as u64;
            rest = tail;
        }
        self.poll();
        Ok(())
    }

    fn region_len(&self, region: RegionId) -> Result<u64, ViyojitError> {
        Ok(self.regions.info(region)?.len_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: u64 = PAGE_SIZE as u64;

    fn hw(total: usize, budget: u64) -> MmuAssistedViyojit {
        MmuAssistedViyojit::new(
            total,
            ViyojitConfig::with_budget_pages(budget),
            Clock::new(),
            CostModel::free(),
            SsdConfig::instant(),
        )
    }

    #[test]
    fn first_writes_do_not_trap() {
        let mut nv = hw(64, 32);
        let r = nv.map(PAGE * 16).unwrap();
        for i in 0..16u64 {
            nv.write(r, i * PAGE, &[1]).unwrap();
        }
        assert_eq!(nv.stats().faults_handled, 0);
        assert_eq!(nv.dirty_count(), 16);
        nv.validate();
    }

    #[test]
    fn budget_is_enforced_by_the_hardware_counter() {
        let mut nv = hw(64, 4);
        let r = nv.map(PAGE * 32).unwrap();
        for i in 0..32u64 {
            nv.write(r, i * PAGE, &[i as u8]).unwrap();
            assert!(nv.dirty_count() <= 4, "page {i}");
            nv.validate();
        }
        assert!(nv.stats().faults_handled > 0, "limit interrupts must fire");
    }

    #[test]
    fn data_round_trips_and_survives_power_cycles() {
        let mut nv = hw(64, 4);
        let r = nv.map(PAGE * 16).unwrap();
        for i in 0..16u64 {
            nv.write(r, i * PAGE, &[i as u8 + 1; 64]).unwrap();
        }
        let report = nv.power_failure();
        assert!(report.dirty_pages <= 4);
        nv.recover();
        for i in 0..16u64 {
            let mut buf = [0u8; 64];
            nv.read(r, i * PAGE, &mut buf).unwrap();
            assert_eq!(buf, [i as u8 + 1; 64], "page {i}");
        }
        nv.validate();
    }

    #[test]
    fn rewrites_after_recovery_recount() {
        let mut nv = hw(32, 4);
        let r = nv.map(PAGE * 8).unwrap();
        nv.write(r, 0, b"x").unwrap();
        nv.power_failure();
        nv.recover();
        assert_eq!(nv.dirty_count(), 0);
        nv.write(r, 0, b"y").unwrap();
        assert_eq!(nv.dirty_count(), 1);
        nv.validate();
    }

    #[test]
    fn unmap_credits_the_hardware_counter() {
        let mut nv = hw(32, 8);
        let r = nv.map(PAGE * 8).unwrap();
        for i in 0..8u64 {
            nv.write(r, i * PAGE, &[1]).unwrap();
        }
        assert_eq!(nv.dirty_count(), 8);
        nv.unmap(r).unwrap();
        assert_eq!(nv.dirty_count(), 0);
        nv.validate();
    }

    #[test]
    fn epoch_discovery_feeds_the_proactive_copier() {
        use sim_clock::SimDuration;
        let mut nv = MmuAssistedViyojit::new(
            128,
            ViyojitConfig::with_budget_pages(16),
            Clock::new(),
            CostModel::calibrated(),
            SsdConfig::datacenter(),
        );
        let r = nv.map(PAGE * 64).unwrap();
        for round in 0..30u64 {
            for i in 0..8u64 {
                nv.write(r, ((round * 3 + i) % 64) * PAGE, &[round as u8])
                    .unwrap();
            }
            nv.clock().advance(SimDuration::from_millis(1));
        }
        nv.write(r, 0, &[99]).unwrap();
        assert!(nv.stats().epochs > 0);
        assert!(
            nv.stats().proactive_flushes > 0,
            "discovered pages must be proactively copied: {:?}",
            nv.stats()
        );
        nv.validate();
    }
}
