//! Runtime counters exposed by the Viyojit manager.

use sim_clock::SimDuration;

/// Counters accumulated by a [`Viyojit`](crate::Viyojit) instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViyojitStats {
    /// Write-protection faults handled (first writes to clean pages, plus
    /// faults on in-flight pages).
    pub faults_handled: u64,
    /// Pages transitioned clean -> dirty.
    pub pages_dirtied: u64,
    /// Flushes issued by the background copier ahead of need.
    pub proactive_flushes: u64,
    /// Flushes issued synchronously because the dirty budget was reached
    /// (Fig. 6 steps 6-7, the slow path).
    pub forced_flushes: u64,
    /// Flush completions retired (pages transitioned back to clean).
    pub flushes_completed: u64,
    /// Times a writer had to wait for budget headroom.
    pub budget_stalls: u64,
    /// Total virtual time writers spent stalled on the budget.
    pub stall_time: SimDuration,
    /// Faults that hit a page whose flush was in flight and had to wait
    /// for the IO to complete before re-dirtying.
    pub in_flight_collisions: u64,
    /// Epoch boundaries processed.
    pub epochs: u64,
    /// Idle epoch boundaries skipped by the fast-forward path (long gaps
    /// with nothing for the walker or copier to do).
    pub epochs_fast_forwarded: u64,
    /// Logical bytes copied to the SSD by the copier (excludes failure
    /// flushes).
    pub bytes_flushed: u64,
    /// Physical bytes after the flush codec (== `bytes_flushed` for raw).
    pub physical_bytes_flushed: u64,
    /// Pages whose updates were observed by epoch walks (recency refreshes).
    pub walk_touches: u64,
    /// Transient SSD write errors retried (copier retries plus emergency
    /// flush retries under fault injection; always zero without faults).
    pub flush_retries: u64,
}

impl ViyojitStats {
    /// Total flushes issued (proactive + forced).
    pub fn flushes_issued(&self) -> u64 {
        self.proactive_flushes + self.forced_flushes
    }

    /// Adds `other`'s counters field-wise into `self` — the one
    /// aggregation rule shared by every multi-engine frontend (sharded
    /// sums over shards, the budget hierarchy sums over a tenant's
    /// shards).
    pub fn accumulate(&mut self, other: &ViyojitStats) {
        self.faults_handled += other.faults_handled;
        self.pages_dirtied += other.pages_dirtied;
        self.proactive_flushes += other.proactive_flushes;
        self.forced_flushes += other.forced_flushes;
        self.flushes_completed += other.flushes_completed;
        self.budget_stalls += other.budget_stalls;
        self.stall_time += other.stall_time;
        self.in_flight_collisions += other.in_flight_collisions;
        self.epochs += other.epochs;
        self.epochs_fast_forwarded += other.epochs_fast_forwarded;
        self.bytes_flushed += other.bytes_flushed;
        self.physical_bytes_flushed += other.physical_bytes_flushed;
        self.walk_touches += other.walk_touches;
        self.flush_retries += other.flush_retries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flushes_issued_sums_both_paths() {
        let s = ViyojitStats {
            proactive_flushes: 3,
            forced_flushes: 2,
            ..ViyojitStats::default()
        };
        assert_eq!(s.flushes_issued(), 5);
    }

    #[test]
    fn default_is_all_zero() {
        let s = ViyojitStats::default();
        assert_eq!(s.faults_handled, 0);
        assert_eq!(s.stall_time, SimDuration::ZERO);
    }
}
