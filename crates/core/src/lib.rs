//! # Viyojit: decoupling battery and DRAM capacities for battery-backed DRAM
//!
//! A from-scratch reproduction of *Viyojit* (Kateja, Badam, Govindan,
//! Sharma, Ganger — ISCA 2017). Battery-backed DRAM traditionally requires
//! battery energy proportional to DRAM capacity, but battery density grows
//! ~3x per 25 years while server DRAM grows >50,000x. Viyojit breaks the
//! coupling: it bounds the number of *dirty* pages (pages inconsistent with
//! a backing SSD) to a **dirty budget** derived from whatever battery is
//! provisioned, and exploits write skew so the bound costs little
//! performance.
//!
//! The crate provides:
//!
//! - [`Engine`] — the unified manager: one Fig. 6 state machine (mmap-like
//!   [`NvHeap`] API, exact synchronous dirty counting, epoch-based
//!   least-recently-updated victim selection ([`UpdateHistory`],
//!   [`VictimSelector`]), EWMA dirty-page-pressure prediction
//!   ([`PressureEstimator`]), proactive copy-out, power-failure flush and
//!   recovery), generic over a [`DirtyTracker`] backend;
//! - [`Viyojit`] — the engine with the [`SoftwareWalk`] backend
//!   (write-protection fault tracking, the paper's §5 design);
//! - [`MmuAssistedViyojit`] — the engine with the [`MmuAssisted`] backend
//!   (§5.4's hardware dirty counter and shadow bits);
//! - [`NvdramBaseline`] — the full-battery comparison system of Figs. 7-8
//!   (the engine with the [`FullDirty`] backend, which tracks nothing);
//! - [`ShardedViyojit`] — N per-shard engines multiplexing one battery's
//!   budget through a [`BudgetArbiter`], with [`BalloonedCluster`] doing
//!   the same across whole tenants (§6.3);
//! - [`PeriodicCountTracker`] — the flawed periodic-counting design §4.1
//!   rejects, kept to demonstrate *why* synchronous tracking is required.
//!
//! # Examples
//!
//! ```
//! use sim_clock::{Clock, CostModel};
//! use ssd_sim::SsdConfig;
//! use viyojit::{NvHeap, Viyojit, ViyojitConfig};
//!
//! // 256 pages of NV-DRAM, battery for only 16 dirty pages.
//! let mut nv = Viyojit::new(
//!     256,
//!     ViyojitConfig::with_budget_pages(16),
//!     Clock::new(),
//!     CostModel::calibrated(),
//!     SsdConfig::datacenter(),
//! );
//! let heap = nv.map(64 * 4096)?;
//! nv.write(heap, 0, b"durable at 6% of the battery")?;
//!
//! // Power fails: at most 16 pages need battery power to flush.
//! let report = nv.power_failure();
//! assert!(report.dirty_pages <= 16);
//! nv.recover();
//! let mut buf = [0u8; 28];
//! nv.read(heap, 0, &mut buf)?;
//! assert_eq!(&buf, b"durable at 6% of the battery");
//! # Ok::<(), viyojit::ViyojitError>(())
//! ```

mod balloon;
mod baseline;
mod codec;
mod config;
mod dirty;
pub mod engine;
mod error;
mod heap;
mod history;
mod hw;
mod policy;
mod pressure;
mod region;
mod runtime;
mod stats;
mod store;

pub use balloon::{BalloonResult, BalloonedCluster};
pub use baseline::{NvdramBaseline, PeriodicCountTracker};
pub use codec::{rle_decode, rle_encode, FlushCodec};
pub use config::{ThresholdPolicy, ViyojitConfig, ViyojitConfigBuilder};
pub use dirty::{DirtySet, PageState};
pub use engine::{
    BudgetArbiter, BudgetGrant, BudgetTree, DegradationConfig, DegradationGovernor, DegradeReason,
    DegradedMode, DirtyTracker, Engine, EngineCore, FullDirty, MmuAssisted, ShardControlHandle,
    ShardControlPlane, ShardDataHandle, ShardDataPlane, ShardStats, ShardedViyojit,
    ShardedViyojitBuilder, SoftwareWalk, TenantId, TenantQos, TenantStats, MAX_FLUSH_ATTEMPTS,
    RETRY_BACKOFF_BASE, RETRY_BACKOFF_MAX, ROUND_TIMEOUT,
};
pub use error::{InvariantViolation, ViyojitError};
pub use heap::NvHeap;
pub use history::UpdateHistory;
pub use hw::MmuAssistedViyojit;
pub use mem_sim::{AtomicBitmap2L, Bitmap2L};
pub use policy::{TargetPolicy, VictimSelector};
pub use pressure::PressureEstimator;
pub use region::{RegionId, RegionInfo, RegionTable};
pub use runtime::{FlushOutcome, PowerFailureReport, Viyojit};
pub use stats::ViyojitStats;
pub use store::NvStore;

// Re-export the fault-injection vocabulary so tests and benches can seed
// plans and crash schedules without naming the fault-sim crate directly.
pub use fault_sim::{CrashSchedule, CrashSignal, Crashpoint, FaultConfig, FaultPlan, FaultStats};

// Re-export the telemetry vocabulary so stores and drivers can be
// instrumented without naming the telemetry crate directly.
pub use telemetry::{
    fnv1a_64, CostClass, CsvSink, EpochSnapshot, FaultKind, FlushReason, JsonlSink,
    MetricsRegistry, NullSink, ProfileReport, Profiler, RunMeta, Sink, Telemetry, TelemetryConfig,
    TraceEvent, TracedEvent,
};
