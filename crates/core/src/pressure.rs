//! Dirty-page pressure prediction (§5.3).
//!
//! At every epoch boundary Viyojit counts the pages newly dirtied during
//! the epoch and feeds the count into an exponentially decaying average
//! with weight 0.75 on the newest observation. The predicted pressure sets
//! the proactive-copy threshold: `threshold = dirty_budget - pressure`, so
//! the system keeps enough budget slack to absorb the predicted burst of
//! new dirty pages without blocking writers on the SSD.

/// EWMA predictor of new-dirty-pages-per-epoch.
///
/// # Examples
///
/// ```
/// use viyojit::PressureEstimator;
///
/// let mut p = PressureEstimator::new(0.75);
/// p.observe(100);
/// assert_eq!(p.predicted().round() as u64, 75);
/// assert_eq!(p.threshold(1_000), 925);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PressureEstimator {
    alpha: f64,
    predicted: f64,
}

impl PressureEstimator {
    /// Creates an estimator with weight `alpha` on the newest observation
    /// (the paper uses 0.75).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0,1], got {alpha}"
        );
        PressureEstimator {
            alpha,
            predicted: 0.0,
        }
    }

    /// Folds in the newest per-epoch new-dirty-page count and returns the
    /// updated prediction.
    pub fn observe(&mut self, new_dirty_pages: u64) -> f64 {
        self.predicted = self.alpha * new_dirty_pages as f64 + (1.0 - self.alpha) * self.predicted;
        self.predicted
    }

    /// Predicted new dirty pages in the next epoch.
    pub fn predicted(&self) -> f64 {
        self.predicted
    }

    /// The proactive-copy threshold for a given budget: pages kept dirty
    /// beyond this trigger background copies. Saturates at zero.
    pub fn threshold(&self, dirty_budget_pages: u64) -> u64 {
        dirty_budget_pages.saturating_sub(self.predicted.ceil() as u64)
    }

    /// Resets the prediction to zero (recovery).
    pub fn reset(&mut self) {
        self.predicted = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_is_convex_combination_of_history() {
        let mut p = PressureEstimator::new(0.75);
        let observations = [10u64, 50, 20, 0, 100];
        for &o in &observations {
            let predicted = p.observe(o);
            let max = *observations.iter().max().unwrap() as f64;
            assert!(predicted >= 0.0 && predicted <= max);
        }
    }

    #[test]
    fn steady_state_converges_to_the_observation() {
        let mut p = PressureEstimator::new(0.75);
        for _ in 0..50 {
            p.observe(40);
        }
        assert!((p.predicted() - 40.0).abs() < 1e-6);
    }

    #[test]
    fn paper_weighting_mixes_three_to_one() {
        let mut p = PressureEstimator::new(0.75);
        p.observe(100); // predicted = 75
        p.observe(0); // predicted = 0.25 * 75 = 18.75
        assert!((p.predicted() - 18.75).abs() < 1e-9);
    }

    #[test]
    fn threshold_saturates_at_zero() {
        let mut p = PressureEstimator::new(1.0);
        p.observe(500);
        assert_eq!(p.threshold(100), 0);
        assert_eq!(p.threshold(501), 1);
    }

    #[test]
    fn bursts_decay_after_quiet_epochs() {
        let mut p = PressureEstimator::new(0.75);
        p.observe(1_000);
        for _ in 0..20 {
            p.observe(0);
        }
        assert!(p.predicted() < 1.0, "burst influence should decay");
    }

    #[test]
    fn reset_zeroes_the_prediction() {
        let mut p = PressureEstimator::new(0.5);
        p.observe(10);
        p.reset();
        assert_eq!(p.predicted(), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn alpha_above_one_panics() {
        let _ = PressureEstimator::new(1.5);
    }
}
